"""Ablation: the paper's invalid-set-first victim policy vs round-robin.

Section III-C: "SEALDB gives priority to compact the set with more
invalid SSTables, hence fragments can be recycled implicitly with no
overhead."  Implemented as ``Options.victim_policy="invalid-set-first"``.
The trade-off the measurement exposes: chasing invalid-rich sets
recycles dead space faster (fewer dead bytes pinned by live sets), but
revisiting the same key ranges costs extra write amplification --
which is why the default SEALDB configuration keeps the round-robin
pointer, matching the paper's equal-WA result in Fig. 12(a).
"""

from repro.core.sealdb import SealDB
from repro.experiments.common import MiB, kv_for, scaled_bytes
from repro.harness.profiles import DEFAULT_PROFILE
from repro.harness.report import render_table
from repro.workloads.microbench import MicroBenchmark

DB_BYTES = scaled_bytes(8 * MiB)


def _run(policy: str):
    profile = DEFAULT_PROFILE
    store = SealDB(profile)
    store.db.options.victim_policy = policy
    bench = MicroBenchmark(kv_for(profile),
                           profile.entries_for_bytes(DB_BYTES), seed=0)
    result = bench.fill_random(store)
    return {
        "policy": policy,
        "ops_per_sec": result.ops_per_sec,
        "wa": store.wa(),
        "dead_bytes": store.set_registry.dead_bytes(),
        "fragments": sum(f.length for f in store.fragments()),
        "live_sets": len(store.set_registry),
    }


def test_ablation_victim_policy(benchmark, record_result):
    def both():
        return _run("pointer"), _run("invalid-set-first")

    pointer, invalid_first = benchmark.pedantic(both, rounds=1, iterations=1)

    rows = [[r["policy"], r["ops_per_sec"], r["wa"],
             r["dead_bytes"] / 1024, r["fragments"] / 1024, r["live_sets"]]
            for r in (pointer, invalid_first)]
    record_result("ablation_victim_policy", render_table(
        "Ablation: SEALDB victim policy (random load)",
        ["policy", "ops/s", "WA", "dead KiB", "frag KiB", "live sets"],
        rows,
    ))

    # the aggressive policy recycles fragments implicitly, as the paper
    # claims (fewer small free regions pinned behind live sets) ...
    assert invalid_first["fragments"] <= pointer["fragments"]
    assert invalid_first["live_sets"] <= pointer["live_sets"]
    # ... at the cost of equal-or-higher write amplification, which is
    # why the default SEALDB keeps the round-robin pointer
    assert invalid_first["wa"] >= pointer["wa"] * 0.99
