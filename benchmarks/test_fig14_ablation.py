"""Fig. 14: contribution analysis of sets vs dynamic bands."""

from repro.experiments import fig14_ablation as exp
from repro.experiments.common import MiB, scaled_bytes

DB_BYTES = scaled_bytes(8 * MiB)
READ_OPS = 2000


def test_fig14_ablation(benchmark, record_result):
    result = benchmark.pedantic(
        exp.run, kwargs={"db_bytes": DB_BYTES, "read_ops": READ_OPS},
        rounds=1, iterations=1)
    record_result("fig14_ablation", exp.render(result))

    norm = result.normalized

    # monotone random-write ladder: LevelDB < LevelDB+sets < SEALDB
    assert 1.0 < norm["fillrandom"]["LevelDB+sets"] < norm["fillrandom"]["SEALDB"]

    # sets alone deliver a substantial share of the random-write gain
    # (paper: ~41%)
    share = result.sets_contribution("fillrandom")
    assert 0.10 <= share <= 0.85

    # sequential write gains come from dynamic bands, not sets: the
    # sets-only configuration stays close to LevelDB while SEALDB leads
    assert norm["fillseq"]["LevelDB+sets"] < norm["fillseq"]["SEALDB"]
    assert norm["fillseq"]["LevelDB+sets"] < 1.25
