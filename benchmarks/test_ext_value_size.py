"""Extension bench: the SEALDB speedup holds across value sizes."""

from repro.experiments import ext_value_size as exp
from repro.experiments.common import MiB, scaled_bytes

DB_BYTES = scaled_bytes(4 * MiB)


def test_ext_value_size(benchmark, record_result):
    result = benchmark.pedantic(
        exp.run, kwargs={"db_bytes": DB_BYTES}, rounds=1, iterations=1)
    record_result("ext_value_size", exp.render(result))

    assert len(result.points) == 4
    # SEALDB wins random load at every value size
    for point in result.points:
        assert point.speedup > 1.5, f"value={point.value_size}"
    # the advantage is substantial somewhere in the sweep
    assert max(p.speedup for p in result.points) > 2.5
