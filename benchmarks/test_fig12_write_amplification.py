"""Fig. 12: WA, AWA, and MWA for the three stores."""

from repro.experiments import fig12_write_amplification as exp
from repro.experiments.common import MiB, scaled_bytes

DB_BYTES = scaled_bytes(8 * MiB)


def test_fig12_write_amplification(benchmark, record_result):
    result = benchmark.pedantic(exp.run, kwargs={"db_bytes": DB_BYTES},
                                rounds=1, iterations=1)
    record_result("fig12_write_amplification", exp.render(result))

    wa = {s: f[0] for s, f in result.factors.items()}
    awa = {s: f[1] for s, f in result.factors.items()}
    mwa = {s: f[2] for s, f in result.factors.items()}

    # (a) sets do not change WA: SEALDB == LevelDB exactly (same engine
    # schedule); SMRDB's 2-level structure lowers WA
    assert abs(wa["SEALDB"] - wa["LevelDB"]) / wa["LevelDB"] < 0.1
    assert wa["SMRDB"] < wa["LevelDB"]

    # AWA: eliminated by SMRDB and SEALDB, large for LevelDB
    assert awa["SEALDB"] == 1.0
    assert awa["SMRDB"] == 1.0
    assert awa["LevelDB"] > 3.0        # paper: 5.37 at the 10x band

    # (b) MWA: SEALDB several times lower than LevelDB (paper: 6.70x)
    reduction = result.mwa_reduction_vs_leveldb()
    assert 3.0 <= reduction <= 12.0
    assert mwa["LevelDB"] > mwa["SEALDB"] > mwa["SMRDB"] * 0.9
