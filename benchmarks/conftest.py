"""Benchmark-suite plumbing.

Every benchmark regenerates one table/figure of the paper: it runs the
corresponding ``repro.experiments`` module once under pytest-benchmark,
prints the paper-style table, saves it under ``benchmarks/results/``,
and asserts the *shape* of the result (orderings and rough factors, not
absolute numbers).

``REPRO_SCALE=<f>`` scales every database size for closer-to-paper runs.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_result(results_dir):
    """Print a rendered table and persist it under benchmarks/results/."""
    def _record(name: str, text: str) -> None:
        print()
        print(text)
        (results_dir / f"{name}.txt").write_text(text + "\n")
    return _record
