"""Fig. 8: basic performance (seq/random x read/write), 3 stores."""

from repro.experiments import fig08_microbench as exp
from repro.experiments.common import MiB, scaled_bytes

# SMRDB's whole-level merges grow with the database; the paper's
# crossover (SEALDB 1.67x SMRDB) appears at the calibrated 16 MiB scale
DB_BYTES = scaled_bytes(16 * MiB)
READ_OPS = 2500


def test_fig08_microbench(benchmark, record_result):
    result = benchmark.pedantic(
        exp.run, kwargs={"db_bytes": DB_BYTES, "read_ops": READ_OPS},
        rounds=1, iterations=1)
    record_result("fig08_microbench", exp.render(result))

    norm = result.normalized

    # random write: SEALDB > SMRDB > LevelDB (paper 3.42x / ~2x),
    # with SEALDB roughly 1.7x SMRDB
    assert norm["fillrandom"]["SEALDB"] > norm["fillrandom"]["SMRDB"] > 1.2
    assert 2.0 <= norm["fillrandom"]["SEALDB"] <= 6.5          # paper 3.42
    ratio = norm["fillrandom"]["SEALDB"] / norm["fillrandom"]["SMRDB"]
    assert 1.1 <= ratio <= 2.6                                 # paper 1.67

    # sequential write: SEALDB ~ SMRDB, both above LevelDB
    assert norm["fillseq"]["SEALDB"] > 1.05
    assert norm["fillseq"]["SMRDB"] > 1.05
    assert abs(norm["fillseq"]["SEALDB"] - norm["fillseq"]["SMRDB"]) < 0.5

    # sequential read: SEALDB at or above LevelDB (paper 3.96x; the
    # positional model reproduces the direction, not the full factor --
    # see EXPERIMENTS.md)
    assert norm["readseq"]["SEALDB"] > 0.95

    # random read: no store collapses below LevelDB
    assert norm["readrandom"]["SEALDB"] > 0.8
    assert norm["readrandom"]["SMRDB"] > 0.8
