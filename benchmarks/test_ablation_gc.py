"""Ablation: the fragment garbage collection (paper future work).

Fig. 13 leaves ~9 % of occupied space in fragments and defers a GC
policy to future work.  ``SealDB.collect_fragments`` relocates the sets
pinning fragments in place; this bench measures how much fragment space
one pass reclaims and what the relocation traffic costs.
"""

from repro.core.sealdb import SealDB
from repro.experiments.common import MiB, kv_for, scaled_bytes
from repro.harness.profiles import DEFAULT_PROFILE
from repro.harness.report import render_table
from repro.workloads.microbench import MicroBenchmark

DB_BYTES = scaled_bytes(8 * MiB)


def _run():
    profile = DEFAULT_PROFILE
    store = SealDB(profile)
    bench = MicroBenchmark(kv_for(profile),
                           profile.entries_for_bytes(DB_BYTES), seed=0)
    bench.fill_random(store)

    frag_before = sum(f.length for f in store.fragments())
    occupied_before = store.band_manager.occupied_bytes()
    time_before = store.now
    moves, rewritten = store.collect_fragments(max_moves=64)
    gc_seconds = store.now - time_before
    frag_after = sum(f.length for f in store.fragments())
    store.band_manager.check_invariants()
    return {
        "frag_before": frag_before,
        "frag_after": frag_after,
        "occupied_before": occupied_before,
        "moves": moves,
        "rewritten": rewritten,
        "gc_seconds": gc_seconds,
    }


def test_ablation_gc(benchmark, record_result):
    r = benchmark.pedantic(_run, rounds=1, iterations=1)

    rows = [
        ["fragment bytes before (KiB)", r["frag_before"] / 1024],
        ["fragment bytes after (KiB)", r["frag_after"] / 1024],
        ["fragment reduction",
         f"{1 - r['frag_after'] / max(1, r['frag_before']):.0%}"],
        ["sets relocated", r["moves"]],
        ["bytes rewritten (KiB)", r["rewritten"] / 1024],
        ["GC time (simulated s)", r["gc_seconds"]],
    ]
    record_result("ablation_gc", render_table(
        "Ablation: fragment GC pass after random load", ["metric", "value"],
        rows,
    ))

    assert r["frag_before"] > 0
    assert r["moves"] > 0
    assert r["frag_after"] < r["frag_before"]
    # GC pays real (simulated) time; it is not free
    assert r["gc_seconds"] > 0
