"""Fig. 13: dynamic-band layout and fragment share."""

from repro.experiments import fig13_fragments as exp
from repro.experiments.common import MiB, scaled_bytes

DB_BYTES = scaled_bytes(8 * MiB)


def test_fig13_fragments(benchmark, record_result):
    result = benchmark.pedantic(exp.run, kwargs={"db_bytes": DB_BYTES},
                                rounds=1, iterations=1)
    record_result("fig13_fragments", exp.render(result))

    # the layout decomposes into multiple variable-size dynamic bands
    assert result.num_bands > 3
    assert len(set(result.band_sizes)) > 1   # sizes actually vary

    # fragments exist but take only a small share of the occupied space
    # (paper: 9.32%)
    assert 0.0 < result.fragment_share < 0.30

    # every fragment is, by definition, no larger than the average set
    assert result.fragment_bytes <= result.fragment_count * result.avg_set_size

    # live data fits inside the occupied banded area
    assert result.allocated_bytes <= result.occupied_bytes
