"""Fig. 2: LevelDB-on-ext4 compaction outputs scatter across the disk."""

from repro.experiments import fig02_sstable_scatter as exp
from repro.experiments.common import MiB, scaled_bytes

DB_BYTES = scaled_bytes(6 * MiB)


def test_fig02_sstable_scatter(benchmark, record_result):
    result = benchmark.pedantic(exp.run, kwargs={"db_bytes": DB_BYTES},
                                rounds=1, iterations=1)
    record_result("fig02_sstable_scatter", exp.render(result))
    exp.save_csv(result, "benchmarks/results/fig02_sstable_scatter.csv")

    # hundreds of compactions happen during a random load (paper: ~600
    # for 10 GB; scales with DB/SSTable ratio)
    assert result.num_compactions > 50
    # the outputs of a single compaction scatter widely: on average one
    # compaction's I/O spans a large fraction of the used disk region
    assert result.mean_coverage > 0.25
    # and virtually no compaction writes one contiguous run
    multi = [row for row in result.offsets if len(row) > 2]
    contiguous = 0
    for row in multi:
        ordered = sorted(row)
        gaps = [b - a for a, b in zip(ordered, ordered[1:])]
        if all(g < 64 * 1024 for g in gaps):
            contiguous += 1
    assert contiguous / max(1, len(multi)) < 0.2
