"""Extension bench: put-latency tails across the three stores."""

from repro.experiments import ext_tail_latency as exp
from repro.experiments.common import MiB, scaled_bytes

DB_BYTES = scaled_bytes(8 * MiB)


def test_ext_tail_latency(benchmark, record_result):
    result = benchmark.pedantic(
        exp.run, kwargs={"db_bytes": DB_BYTES}, rounds=1, iterations=1)
    record_result("ext_tail_latency", exp.render(result))

    leveldb = result.profiles["LevelDB"]
    smrdb = result.profiles["SMRDB"]
    sealdb = result.profiles["SEALDB"]

    # the typical put is cheap everywhere (a WAL append)
    for p in result.profiles.values():
        assert p.percentiles[50.0] < 0.05

    # SEALDB's efficient compactions shrink the tail vs LevelDB
    assert sealdb.percentiles[99.9] < leveldb.percentiles[99.9]
    assert sealdb.max_latency < leveldb.max_latency

    # SMRDB's giant merges produce the worst single stall of all
    assert smrdb.max_latency > sealdb.max_latency
    assert smrdb.max_latency > leveldb.max_latency
