"""Fig. 9: YCSB workloads A-F on the three stores."""

from repro.experiments import fig09_ycsb as exp
from repro.experiments.common import MiB, scaled_bytes

DB_BYTES = scaled_bytes(12 * MiB)


def test_fig09_ycsb(benchmark, record_result):
    result = benchmark.pedantic(exp.run, kwargs={"db_bytes": DB_BYTES},
                                rounds=1, iterations=1)
    record_result("fig09_ycsb", exp.render(result))

    norm = result.normalized

    # the load phase is random-write dominated: SEALDB leads (Fig. 9's
    # "larger performance improvement in random load/write dominated
    # workloads"); SMRDB sits between SEALDB and LevelDB
    assert norm["load"]["SEALDB"] > 1.5
    assert norm["load"]["SEALDB"] > norm["load"]["SMRDB"] > 0.9

    # update-heavy workload A: SEALDB ahead of LevelDB
    assert norm["A"]["SEALDB"] > 1.0

    # read-dominated workloads never collapse below LevelDB
    for w in ("B", "C", "D"):
        assert norm[w]["SEALDB"] > 0.8
        assert norm[w]["SMRDB"] > 0.8

    # every workload completed its operations on every store
    for workload, by_store in result.results.items():
        for store, r in by_store.items():
            assert r.ops > 0 and r.sim_seconds > 0
