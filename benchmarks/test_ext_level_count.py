"""Extension bench: level-count sweep on the set-aware engine.

Context: SMRDB lowers WA with 2 levels *because* its runs are
band-sized (few, huge flushes).  At a fixed (small) SSTable size the
opposite happens -- with only 2 levels every L0 merge rewrites most of
L1, so WA explodes while the compaction count collapses.  The sweep
maps that trade-off; the paper's design point (7 levels + sets) sits at
the low-WA, small-compaction end.
"""

from repro.experiments import ext_level_count as exp
from repro.experiments.common import MiB, scaled_bytes

DB_BYTES = scaled_bytes(6 * MiB)


def test_ext_level_count(benchmark, record_result):
    result = benchmark.pedantic(
        exp.run, kwargs={"db_bytes": DB_BYTES, "levels": (2, 3, 4, 7)},
        rounds=1, iterations=1)
    record_result("ext_level_count", exp.render(result))

    by_levels = {p.levels: p for p in result.points}

    # two levels with small tables: few, enormous, WA-heavy compactions
    assert by_levels[2].wa > by_levels[7].wa
    assert by_levels[2].compactions < by_levels[7].compactions
    assert by_levels[2].avg_compaction_bytes > \
        5 * by_levels[7].avg_compaction_bytes

    # beyond the depth the database actually needs, nothing changes
    assert abs(by_levels[4].wa - by_levels[7].wa) < 0.5

    # and the throughput winner at this scale is the deep tree
    assert by_levels[7].ops_per_sec > by_levels[2].ops_per_sec
