"""Table II: raw drive characteristics of the two timing models."""

from repro.experiments import table02_drive_params as exp


def test_table02_drive_params(benchmark, record_result):
    result = benchmark.pedantic(exp.run, rounds=1, iterations=1)
    record_result("table02_drive_params", exp.render(result))

    hdd, smr = result.hdd, result.smr
    # sequential rates equal the configured drive profiles (Table II)
    assert abs(hdd.seq_read_mbps - 169) < 5
    assert abs(hdd.seq_write_mbps - 155) < 5
    assert abs(smr.seq_read_mbps - 165) < 5
    assert abs(smr.seq_write_mbps - 148) < 5
    # random 4K IOPS within ~20% of the paper's measurements
    assert 51 <= hdd.rand_read_iops <= 77
    assert 56 <= smr.rand_read_iops <= 84
    assert 114 <= hdd.rand_write_iops_max <= 172
    # SMR random writes are bimodal: slow RMWs far below fast appends
    assert smr.rand_write_iops_min < smr.rand_write_iops_max / 5
