"""Extension bench: fragment aging under churn, GC vs no GC."""

from repro.experiments import ext_aging as exp
from repro.experiments.common import MiB, scaled_bytes

DB_BYTES = scaled_bytes(4 * MiB)


def test_ext_aging(benchmark, record_result):
    result = benchmark.pedantic(
        exp.run, kwargs={"db_bytes": DB_BYTES, "phases": 6},
        rounds=1, iterations=1)
    record_result("ext_aging", exp.render(result))

    assert len(result.without_gc) == 6
    assert len(result.with_gc) == 6

    # churn keeps fragments/dead space alive without GC
    assert any(s.fragment_share > 0 for s in result.without_gc)

    # the GC actually does work over the run ...
    assert result.gc_moves > 0
    # ... and ends no worse than letting fragments accumulate
    no_gc_final, gc_final = result.final_fragment_shares()
    assert gc_final <= no_gc_final + 0.02

    # dead bytes held inside live sets shrink under per-phase GC on
    # average across the run
    mean_dead_no_gc = sum(s.dead_bytes for s in result.without_gc) / 6
    mean_dead_gc = sum(s.dead_bytes for s in result.with_gc) / 6
    assert mean_dead_gc <= mean_dead_no_gc * 1.05
