"""Fig. 10: compaction latency trace and average compaction size."""

from repro.experiments import fig10_compaction_detail as exp
from repro.experiments.common import MiB, scaled_bytes

# large enough that SMRDB's rare whole-level merges dominate its total
# compaction latency (the paper's 1.89x-of-SEALDB regime)
DB_BYTES = scaled_bytes(16 * MiB)


def test_fig10_compaction_detail(benchmark, record_result):
    result = benchmark.pedantic(exp.run, kwargs={"db_bytes": DB_BYTES},
                                rounds=1, iterations=1)
    record_result("fig10_compaction_detail", exp.render(result))

    leveldb = result.details["LevelDB"].summary
    smrdb = result.details["SMRDB"].summary
    sealdb = result.details["SEALDB"].summary

    # (a) SEALDB and LevelDB share a similar number of compactions ...
    assert abs(sealdb.count - leveldb.count) / leveldb.count < 0.3
    # ... but SEALDB's total compaction latency is several times lower
    # (paper: 4.30x)
    assert leveldb.total_latency / sealdb.total_latency > 2.0

    # SMRDB: far fewer compactions, enormous average size, and a larger
    # total latency than SEALDB (paper: 1.89x)
    assert smrdb.count < leveldb.count / 10
    assert smrdb.avg_input_bytes > 10 * sealdb.avg_input_bytes  # paper 900 vs 27 MB
    assert smrdb.total_latency > sealdb.total_latency

    # (b) SEALDB's average compaction size equals its average set size
    avg_set = result.details["SEALDB"].avg_set_size
    assert avg_set is not None
    assert abs(sealdb.avg_input_bytes - avg_set) / sealdb.avg_input_bytes < 0.6
