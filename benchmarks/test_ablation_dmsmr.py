"""Ablation: drive-managed SMR does not fix the MWA problem.

Section II-C: "existing SMR drives with a media cache cannot address
the MWA problem, since cache cleaning processes induce large latency as
well as write amplification and bring a bimodal behavior."

This bench random-loads stock LevelDB on three devices -- the host-
visible fixed-band SMR, a drive-managed SMR with a persistent media
cache, and SEALDB's full stack -- and compares MWA and put-latency
spread.  The DM-SMR absorbs random writes cheaply until its cache
fills, then stalls on cleaning; its device-level write amplification
remains, so SEALDB's co-design still wins.
"""

from repro.baselines.leveldb import LevelDBStore
from repro.core.sealdb import SealDB
from repro.experiments.common import MiB, kv_for, scaled_bytes
from repro.harness.profiles import DEFAULT_PROFILE
from repro.harness.report import render_table
from repro.workloads.microbench import MicroBenchmark

DB_BYTES = scaled_bytes(6 * MiB)


def _load(store):
    profile = DEFAULT_PROFILE
    bench = MicroBenchmark(kv_for(profile),
                           profile.entries_for_bytes(DB_BYTES), seed=0)
    result = bench.fill_random(store)
    return result


def _run():
    rows = {}
    for label, store in (
        ("LevelDB/HM-SMR", LevelDBStore(DEFAULT_PROFILE)),
        ("LevelDB/DM-SMR", LevelDBStore(DEFAULT_PROFILE, drive_kind="dm-smr")),
        ("SEALDB", SealDB(DEFAULT_PROFILE)),
    ):
        result = _load(store)
        rows[label] = {
            "ops_per_sec": result.ops_per_sec,
            "mwa": store.mwa(),
            "awa": store.awa(),
            "cleanings": getattr(store.drive, "cleanings", 0),
        }
    return rows


def test_ablation_dmsmr(benchmark, record_result):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    table = [[label, r["ops_per_sec"], r["awa"], r["mwa"], r["cleanings"]]
             for label, r in rows.items()]
    record_result("ablation_dmsmr", render_table(
        "Ablation: a media cache (DM-SMR) does not fix MWA",
        ["configuration", "ops/s", "AWA", "MWA", "cleanings"],
        table,
    ))

    dm = rows["LevelDB/DM-SMR"]
    hm = rows["LevelDB/HM-SMR"]
    seal = rows["SEALDB"]

    # the media cache absorbed writes but cleaning kept AWA well above 1
    assert dm["cleanings"] > 0
    assert dm["awa"] > 1.5
    # ... so MWA remains well above SEALDB's (which is exactly WA)
    assert dm["mwa"] > 1.5 * seal["mwa"]
    # and SEALDB still beats both LevelDB configurations outright
    assert seal["ops_per_sec"] > dm["ops_per_sec"]
    assert seal["ops_per_sec"] > hm["ops_per_sec"]
