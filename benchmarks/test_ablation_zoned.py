"""Ablation: dynamic bands vs standardized zones (ZBC/ZNS).

SEALDB deliberately avoids the standardized zoned interface: Section
III-B2 argues that fixed bands/zones "result in space wastage due to
partially used bands and unnecessary guard regions" and require
cleaning.  This bench runs the *same* set-aware engine over (a) dynamic
bands on the raw drive and (b) a ZenFS-style zone allocator on a zoned
device, and compares device write amplification (zone GC traffic), GC
work, and load throughput.
"""

from repro.baselines.zonekv import ZoneKVStore
from repro.core.sealdb import SealDB
from repro.experiments.common import MiB, kv_for, scaled_bytes
from repro.harness.profiles import DEFAULT_PROFILE
from repro.harness.report import render_table
from repro.workloads.microbench import MicroBenchmark

DB_BYTES = scaled_bytes(8 * MiB)


def _run():
    # a tight device (2.5x the database) puts the zoned stack under the
    # space pressure where zone GC matters; dynamic bands reuse holes
    # in place and feel none of it
    profile = DEFAULT_PROFILE.scaled(capacity=int(2.5 * DB_BYTES))
    rows = {}
    for store in (SealDB(profile), ZoneKVStore(profile)):
        bench = MicroBenchmark(kv_for(profile),
                               profile.entries_for_bytes(DB_BYTES), seed=0)
        result = bench.fill_random(store)
        rows[store.name] = {
            "ops_per_sec": result.ops_per_sec,
            "awa": store.awa(),
            "mwa": store.mwa(),
            "gc_runs": getattr(store, "zone_gc_runs", 0),
            "gc_bytes": getattr(store, "zone_gc_bytes", 0),
        }
    return rows


def test_ablation_zoned(benchmark, record_result):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    table = [[name, r["ops_per_sec"], r["awa"], r["mwa"], r["gc_runs"],
              r["gc_bytes"] / 1024]
             for name, r in rows.items()]
    record_result("ablation_zoned", render_table(
        "Ablation: dynamic bands vs ZBC/ZNS zones (same set-aware engine)",
        ["configuration", "ops/s", "AWA", "MWA", "zone GCs", "GC KiB"],
        table,
    ))

    seal, zone = rows["SEALDB"], rows["ZoneKV"]
    # dynamic bands never clean: AWA is exactly 1
    assert seal["awa"] == 1.0
    # the zoned stack must garbage-collect under space pressure, which
    # shows up as extra device writes (AWA > 1)
    assert zone["gc_runs"] > 0
    assert zone["awa"] > 1.0
    # and dynamic bands load at least as fast
    assert seal["ops_per_sec"] >= zone["ops_per_sec"] * 0.95
