"""Extension bench: LinkBench-style social-graph workload, 3 stores.

The paper's intro motivates SEALDB with social networking (LinkBench);
this bench runs the graph load + the default read-heavy operation mix
on each store.  Expectations mirror the YCSB findings: SEALDB leads the
write-heavy load phase; the read-dominated run phase stays near parity.
"""

from repro.experiments.common import scaled_bytes
from repro.harness.profiles import DEFAULT_PROFILE
from repro.harness.report import normalize, render_table
from repro.harness.runner import make_store
from repro.workloads.linkbench import LinkBenchWorkload

NUM_NODES = scaled_bytes(20_000)
RUN_OPS = 4_000


def _run():
    rows = {}
    for kind in ("leveldb", "smrdb", "sealdb"):
        store = make_store(kind, DEFAULT_PROFILE)
        workload = LinkBenchWorkload(int(NUM_NODES), links_per_node=4, seed=0)
        load = workload.load(store)
        run = workload.run(store, RUN_OPS)
        rows[store.name] = {"load": load.ops_per_sec,
                            "run": run.ops_per_sec,
                            "wa": store.wa(), "mwa": store.mwa()}
    return rows


def test_ext_linkbench(benchmark, record_result):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    load_norm = normalize({s: r["load"] for s, r in rows.items()}, "LevelDB")
    run_norm = normalize({s: r["run"] for s, r in rows.items()}, "LevelDB")
    table = [[name, r["load"], f"{load_norm[name]:.2f}x", r["run"],
              f"{run_norm[name]:.2f}x", r["mwa"]]
             for name, r in rows.items()]
    record_result("ext_linkbench", render_table(
        "Extension: LinkBench-style graph workload",
        ["store", "load ops/s", "norm", "run ops/s", "norm", "MWA"],
        table,
    ))

    # graph loading is write-heavy: SEALDB leads clearly
    assert load_norm["SEALDB"] > 1.5
    # the read-heavy run phase never collapses
    assert run_norm["SEALDB"] > 0.7
    assert run_norm["SMRDB"] > 0.7
    # MWA ordering as always
    assert rows["LevelDB"]["mwa"] > rows["SEALDB"]["mwa"]
