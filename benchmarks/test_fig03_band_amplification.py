"""Fig. 3: bands touched per compaction and WA/MWA vs band size."""

from repro.experiments import fig03_band_amplification as exp
from repro.experiments.common import MiB, scaled_bytes

DB_BYTES = scaled_bytes(5 * MiB)


def test_fig03_band_amplification(benchmark, record_result):
    result = benchmark.pedantic(exp.run, kwargs={"db_bytes": DB_BYTES},
                                rounds=1, iterations=1)
    record_result("fig03_band_amplification", exp.render(result))
    exp.save_csv(result, "benchmarks/results/fig03_band_amplification.csv")

    points = result.points
    assert len(points) == 5

    # (a) each compaction writes several SSTables into several bands
    mid = points[2]  # the paper's 40 MB reference point (10x SSTable)
    assert 4 <= mid.avg_sstables_per_compaction <= 18   # paper: 9.83
    assert 2 <= mid.avg_bands_per_compaction <= 12      # paper: 6.22

    # (b) WA is band-size independent; AWA/MWA grow with band size
    was = [p.wa for p in points]
    assert max(was) - min(was) < 0.5
    assert points[-1].awa > points[0].awa
    assert points[-1].mwa > points[0].mwa
    # at the 40 MB-equivalent point MWA is several times WA
    # (paper: 9.83 -> 52.85)
    assert mid.mwa > 3 * mid.wa
