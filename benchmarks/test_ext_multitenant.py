"""Extension bench: consolidation of SEALDB tenants on one drive."""

from repro.experiments import ext_multitenant as exp
from repro.experiments.common import MiB, scaled_bytes

DB_BYTES = scaled_bytes(2 * MiB)   # per tenant


def test_ext_multitenant(benchmark, record_result):
    result = benchmark.pedantic(
        exp.run, kwargs={"db_bytes": DB_BYTES, "tenant_counts": (1, 2, 4)},
        rounds=1, iterations=1)
    record_result("ext_multitenant", exp.render(result))

    solo, two, four = result.points

    # SMR safety holds for every tenant on the shared shingled surface
    for point in result.points:
        assert point.awa == 1.0

    # time sharing: per-tenant throughput scales down roughly with N ...
    assert two.per_tenant_ops < solo.per_tenant_ops
    assert four.per_tenant_ops < two.per_tenant_ops

    # ... but SEALDB's large sequential units keep the *aggregate*
    # within ~15% of the solo rate -- consolidation is nearly free in
    # head time, the paper's density story
    assert four.aggregate_ops > 0.85 * solo.aggregate_ops
    assert four.aggregate_ops < 1.3 * solo.aggregate_ops
