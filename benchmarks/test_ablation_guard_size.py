"""Ablation: guard-region size sweep.

The guard region (Eq. 1's ``S_guard``) is the paper's 4 MB = one
SSTable.  Larger guards leave more unusable reserve at the tail of
every free region, so the fragment share of occupied space grows and
fewer inserts qualify; smaller guards pack tighter.  (The physical
shingle-overlap width is a drive property -- this sweep shows why the
paper's choice of one-SSTable guards is a reasonable operating point.)
"""

from repro.core.sealdb import SealDB
from repro.experiments.common import MiB, kv_for, scaled_bytes
from repro.harness.profiles import DEFAULT_PROFILE
from repro.harness.report import render_table
from repro.workloads.microbench import MicroBenchmark

DB_BYTES = scaled_bytes(6 * MiB)


def _run(guard_ratio: float):
    profile = DEFAULT_PROFILE.scaled(
        guard_size=int(DEFAULT_PROFILE.sstable_size * guard_ratio))
    store = SealDB(profile)
    bench = MicroBenchmark(kv_for(profile),
                           profile.entries_for_bytes(DB_BYTES), seed=0)
    result = bench.fill_random(store)
    occupied = store.band_manager.occupied_bytes()
    fragments = sum(f.length for f in store.fragments())
    return {
        "ratio": guard_ratio,
        "ops_per_sec": result.ops_per_sec,
        "inserts": store.band_manager.inserts,
        "appends": store.band_manager.appends,
        "occupied": occupied,
        "fragment_share": fragments / occupied if occupied else 0.0,
    }


def test_ablation_guard_size(benchmark, record_result):
    ratios = (0.5, 1.0, 2.0)
    points = benchmark.pedantic(
        lambda: [_run(r) for r in ratios], rounds=1, iterations=1)

    rows = [[f"{p['ratio']:.1f}x sstable", p["ops_per_sec"], p["inserts"],
             p["appends"], p["occupied"] / MiB,
             f"{p['fragment_share']:.1%}"] for p in points]
    record_result("ablation_guard_size", render_table(
        "Ablation: guard-region size (SEALDB random load)",
        ["guard", "ops/s", "inserts", "appends", "occupied MiB", "frag share"],
        rows,
    ))

    half, one, two = points
    # a larger guard qualifies fewer free regions for insert
    assert two["inserts"] <= one["inserts"] <= half["inserts"]
    # and inflates the on-disk footprint
    assert two["occupied"] >= half["occupied"]
