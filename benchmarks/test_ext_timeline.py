"""Extension bench: throughput timelines during random load."""

from repro.experiments import ext_timeline as exp
from repro.experiments.common import MiB, scaled_bytes

DB_BYTES = scaled_bytes(8 * MiB)


def test_ext_timeline(benchmark, record_result):
    result = benchmark.pedantic(
        exp.run, kwargs={"db_bytes": DB_BYTES, "windows": 50},
        rounds=1, iterations=1)
    record_result("ext_timeline", exp.render(result))

    leveldb = result.timelines["LevelDB"]
    sealdb = result.timelines["SEALDB"]
    smrdb = result.timelines["SMRDB"]

    # every store's timeline was sampled end to end
    for t in result.timelines.values():
        assert len(t.series) >= 45

    # SEALDB is faster in the mean AND its worst window beats LevelDB's:
    # same compaction schedule, much shorter stalls
    assert sealdb.mean > leveldb.mean
    assert sealdb.worst_window > leveldb.worst_window

    # SMRDB's cliffs: its worst window (a giant merge) is the deepest
    # dip relative to its own typical pace
    smrdb_spread = smrdb.best_window / max(smrdb.worst_window, 1e-9)
    sealdb_spread = sealdb.best_window / max(sealdb.worst_window, 1e-9)
    assert smrdb_spread > sealdb_spread
