"""Fig. 11: SEALDB writes every compaction as one contiguous set."""

from repro.experiments import fig11_set_layout as exp
from repro.experiments.common import MiB, scaled_bytes

DB_BYTES = scaled_bytes(6 * MiB)


def test_fig11_set_layout(benchmark, record_result):
    result = benchmark.pedantic(exp.run, kwargs={"db_bytes": DB_BYTES},
                                rounds=1, iterations=1)
    record_result("fig11_set_layout", exp.render(result))
    exp.save_csv(result, "benchmarks/results/fig11_set_layout.csv")

    # the defining property: every compaction's outputs form one
    # contiguous physical run (compare Fig. 2's ~0 %)
    assert result.contiguous_fraction > 0.98
    assert result.num_compactions > 50
    # dynamic bands keep the footprint bounded: well under the
    # worst-case WA x database size that no-reuse appending would need
    assert result.footprint < 2.5 * result.db_bytes
