"""Extension bench: the serving layer over loopback, 1/2/4 shards.

Boots a real TCP server per shard count, drives it with the pipelined
closed-loop generator, and reports wall req/s alongside device-parallel
req/s (requests / max per-shard simulated-clock advance -- the same
convention as ``fig08_sharded``: Python's GIL serializes wall time, the
simulated drives do not).  The shape assertion is the point of the
sharded serving stack: device-parallel throughput scales with shard
count while every request still gets a correct, in-order reply.
"""

from repro.experiments import ext_network as exp
from repro.experiments.common import MiB, scaled_bytes

DB_BYTES = scaled_bytes(1 * MiB)


def test_ext_network(benchmark, record_result):
    result = benchmark.pedantic(
        exp.run, kwargs={"db_bytes": DB_BYTES}, rounds=1, iterations=1)
    record_result("ext_network", exp.render(result))

    # every request answered, none dropped, none shed, none failed
    for report in result.reports.values():
        assert report.ops == result.requests
        assert report.ok == result.requests
        assert report.errors == 0
        assert report.overloaded == 0
        assert report.unavailable == 0

    # every fleet ended the run healthy, reported over the wire
    for health in result.shard_health.values():
        assert set(health.split(",")) == {"healthy"}

    # device-parallel throughput scales with shard count: the router
    # spreads the keyspace, so each drive's simulated clock advances
    # ~1/N as far for the same request budget
    assert result.speedup(2) > 1.3
    assert result.speedup(4) > 1.3 * result.speedup(2)
