"""The Fig. 14 ablation: LevelDB with sets but without dynamic bands.

The engine groups compaction outputs and prefetches inputs (the *set*
technique), and the ext4 layer honours the grouping by allocating each
group one contiguous run when it can -- but the store still runs on the
fixed-band SMR drive through the filesystem, so the auxiliary write
amplification of band read-modify-writes remains.
"""

from __future__ import annotations

from repro.fs.ext4sim import Ext4Storage
from repro.harness.profiles import DEFAULT_PROFILE, ScaleProfile
from repro.kvstore import KVStoreBase
from repro.registry import register_store
from repro.smr.fixed_band import FixedBandSMRDrive
from repro.smr.timing import SMR_PROFILE, SimClock


@register_store("leveldb+sets", "leveldb_sets")
class LevelDBWithSets(KVStoreBase):
    """LevelDB + sets (no dynamic bands)."""

    name = "LevelDB+sets"

    def __init__(self, profile: ScaleProfile = DEFAULT_PROFILE,
                 capacity: int | None = None,
                 band_size: int | None = None,
                 clock: SimClock | None = None) -> None:
        self.profile = profile
        cap = capacity if capacity is not None else profile.capacity
        band = band_size if band_size is not None else profile.band_size
        drive = FixedBandSMRDrive(cap, band,
                                  profile=SMR_PROFILE.scaled(profile.io_scale),
                                  clock=clock)
        storage = Ext4Storage(
            drive,
            wal_size=profile.wal_region,
            meta_size=profile.meta_region,
            block_size=profile.block_size,
            contiguous_groups=True,
        )
        options = profile.options(use_sets=True)
        super().__init__(drive, storage, options)
