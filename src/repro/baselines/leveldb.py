"""The LevelDB baseline: stock engine on ext4 over a fixed-band SMR drive.

This is the paper's primary comparison point: SSTables are placed by an
ext4-like allocator, so the files of one compaction scatter over the
used region (Fig. 2), and every write below a band's frontier costs a
band read-modify-write (the source of AWA, Fig. 3).

``drive_kind="hdd"`` reproduces the Fig. 2 motivation setup (plain HDD,
no band RMW).
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.fs.ext4sim import Ext4Storage
from repro.harness.profiles import DEFAULT_PROFILE, ScaleProfile
from repro.kvstore import KVStoreBase
from repro.registry import register_store
from repro.smr.drive import ConventionalDrive
from repro.smr.fixed_band import FixedBandSMRDrive
from repro.smr.timing import HDD_PROFILE, SMR_PROFILE, SimClock


@register_store("leveldb")
class LevelDBStore(KVStoreBase):
    """Stock LevelDB configuration."""

    name = "LevelDB"

    def __init__(self, profile: ScaleProfile = DEFAULT_PROFILE,
                 capacity: int | None = None,
                 drive_kind: str = "smr",
                 band_size: int | None = None,
                 clock: SimClock | None = None) -> None:
        self.profile = profile
        cap = capacity if capacity is not None else profile.capacity
        band = band_size if band_size is not None else profile.band_size
        if drive_kind == "smr":
            drive = FixedBandSMRDrive(cap, band,
                                      profile=SMR_PROFILE.scaled(profile.io_scale),
                                      clock=clock)
        elif drive_kind == "hdd":
            drive = ConventionalDrive(cap,
                                      profile=HDD_PROFILE.scaled(profile.io_scale),
                                      clock=clock)
        elif drive_kind == "dm-smr":
            # drive-managed SMR with a persistent media cache, for the
            # Section II-C claim that a media cache does not fix MWA
            from repro.smr.drive_managed import DriveManagedSMRDrive
            drive = DriveManagedSMRDrive(
                cap, band, cache_size=cap // 50,
                profile=SMR_PROFILE.scaled(profile.io_scale), clock=clock)
        else:
            raise ReproError(f"unknown drive kind {drive_kind!r}")
        # On the DM-SMR model the low LBAs stand in for the drive's
        # internal media cache; table data must be placed past it (the
        # WAL/meta regions use buffered writes and coexist harmlessly).
        gap = 0
        native_start = getattr(drive, "native_start", 0)
        reserved = profile.wal_region + profile.meta_region
        if native_start > reserved:
            gap = (native_start - reserved + 1) // 2
        storage = Ext4Storage(
            drive,
            wal_size=profile.wal_region,
            meta_size=profile.meta_region,
            block_size=profile.block_size,
            region_gap=gap,
        )
        options = profile.options()
        super().__init__(drive, storage, options)
