"""ZoneKV: the LSM engine on a standardized zoned device (extension).

Not one of the paper's configurations -- this is the *modern*
counterfactual: instead of SEALDB's raw-drive dynamic bands, run the
same set-aware engine on a ZBC/ZNS zoned device through a ZenFS-style
zone allocator.  The comparison (``benchmarks/test_ablation_zoned.py``)
quantifies the paper's Section III-B2 argument that fixed zones/bands
waste space and force cleaning work that dynamic bands avoid.
"""

from __future__ import annotations

from repro.fs.zonefs import ZoneStorage
from repro.harness.profiles import DEFAULT_PROFILE, ScaleProfile
from repro.kvstore import KVStoreBase
from repro.registry import register_store
from repro.smr.timing import SMR_PROFILE, SimClock
from repro.smr.zoned import ZonedDrive


@register_store("zonekv")
class ZoneKVStore(KVStoreBase):
    """Set-aware LSM over append-only zones with zone GC."""

    name = "ZoneKV"

    def __init__(self, profile: ScaleProfile = DEFAULT_PROFILE,
                 capacity: int | None = None,
                 zone_size: int | None = None,
                 clock: SimClock | None = None) -> None:
        self.profile = profile
        cap = capacity if capacity is not None else profile.capacity
        # a zone is much larger than an SMR band (real ZNS zones are
        # ~1-2 GB vs 15-40 MB bands); default 4 bands' worth
        zone = zone_size if zone_size is not None else profile.band_size * 4
        drive = ZonedDrive(cap, zone,
                           profile=SMR_PROFILE.scaled(profile.io_scale),
                           clock=clock)
        storage = ZoneStorage(
            drive,
            wal_size=min(profile.wal_region, zone),
            meta_size=min(profile.meta_region, zone),
        )
        options = profile.options(use_sets=True)
        super().__init__(drive, storage, options)

    @property
    def zone_gc_runs(self) -> int:
        return self.storage.gc_runs

    @property
    def zone_gc_bytes(self) -> int:
        return self.storage.gc_bytes_moved
