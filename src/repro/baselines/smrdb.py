"""The SMRDB baseline (Pitchumani et al., SYSTOR'15), as the paper
re-implemented it for comparison.

Design choices per Section IV: "enlarging SSTables to the band size,
assigning SSTables to dedicated bands and reserving only two levels for
LSM-trees where key ranges of SSTables in the same level may be
overlapped."

Mapping onto the shared engine:

* ``max_levels = 2`` -- L0 holds overlapping memtable dumps; when the
  L0 trigger fires, **all** of L0 merges with every overlapping L1
  table, which is why SMRDB's compactions are few but enormous
  (~900 MB average in the paper's Fig. 10(b));
* SSTables sized to (just under) a band, placed one-per-dedicated-band
  by :class:`~repro.fs.storage.BandAlignedStorage`.  Whole-band writes
  start at a freshly reset band frontier, so AWA = 1;
* the write buffer grows to match the band-sized tables.

A size reserve (1/8 of the band) absorbs index/filter/block framing
overhead so a finished table always fits its band.
"""

from __future__ import annotations

from repro.fs.storage import BandAlignedStorage
from repro.harness.profiles import DEFAULT_PROFILE, ScaleProfile
from repro.kvstore import KVStoreBase
from repro.registry import register_store
from repro.smr.fixed_band import FixedBandSMRDrive
from repro.smr.timing import SMR_PROFILE, SimClock


@register_store("smrdb")
class SMRDBStore(KVStoreBase):
    """Two-level, band-sized-SSTable store on dedicated bands."""

    name = "SMRDB"

    def __init__(self, profile: ScaleProfile = DEFAULT_PROFILE,
                 capacity: int | None = None,
                 band_size: int | None = None,
                 clock: SimClock | None = None) -> None:
        self.profile = profile
        cap = capacity if capacity is not None else profile.capacity
        band = band_size if band_size is not None else profile.band_size
        drive = FixedBandSMRDrive(cap, band,
                                  profile=SMR_PROFILE.scaled(profile.io_scale),
                                  clock=clock)
        storage = BandAlignedStorage(
            drive,
            band_size=band,
            wal_size=max(profile.wal_region, band),
            meta_size=profile.meta_region,
        )
        # Leveled with exactly two levels: L0 holds overlapping
        # band-sized memtable dumps (the "key ranges of SSTables in the
        # same level may be overlapped" of SMRDB's design); when the L0
        # trigger fires, every overlapping L0 run merges with all
        # overlapping L1 tables -- the few, enormous compactions of
        # Fig. 10.  The engine also offers style="two-tier" (lazier L1
        # with overlapping runs), benchmarked as an ablation.
        # the 1/8 reserve absorbs index/filter/block-framing overhead so
        # a finished table always fits its dedicated band (the overhead
        # fraction is larger at simulation scale than at 40 MB scale)
        options = profile.options(
            max_levels=2,
            sstable_size=band * 7 // 8,
            write_buffer_size=band * 3 // 4,
            base_level_bytes=band * profile.level_base_tables,
        )
        super().__init__(drive, storage, options)
