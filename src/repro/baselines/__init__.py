"""The paper's comparison stores, plus the ZoneKV extension."""

from repro.baselines.leveldb import LevelDBStore
from repro.baselines.smrdb import SMRDBStore
from repro.baselines.leveldb_sets import LevelDBWithSets
from repro.baselines.zonekv import ZoneKVStore

__all__ = ["LevelDBStore", "LevelDBWithSets", "SMRDBStore", "ZoneKVStore"]
