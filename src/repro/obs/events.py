"""Typed events emitted on the observability bus.

Every event carries ``ts`` — the *simulated* drive time (seconds) at
which the event happened — plus a small, flat payload.  ``TYPE`` is the
dotted wire name used for subscription filters and the JSON-lines
``event`` field.  Payloads stay flat (ints / floats / strings / bools)
so a trace line is one self-contained JSON object.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass
class Event:
    """Base class; subclasses set :attr:`TYPE` to their wire name."""

    TYPE = "event"

    ts: float

    def to_dict(self) -> dict:
        d = {"event": self.TYPE}
        for f in fields(self):
            d[f.name] = getattr(self, f.name)
        return d


# -- engine operations --------------------------------------------------------

@dataclass
class PutEvent(Event):
    TYPE = "op.put"
    key_len: int
    value_len: int
    latency: float


@dataclass
class GetEvent(Event):
    TYPE = "op.get"
    key_len: int
    hit: bool
    latency: float


@dataclass
class DeleteEvent(Event):
    TYPE = "op.delete"
    key_len: int
    latency: float


@dataclass
class ScanEvent(Event):
    TYPE = "op.scan"
    keys: int  # pairs actually yielded (after limit / early break)
    latency: float


@dataclass
class FlushStart(Event):
    TYPE = "flush.start"
    entries: int
    nbytes: int


@dataclass
class FlushEnd(Event):
    TYPE = "flush.end"
    name: str
    nbytes: int
    duration: float


@dataclass
class CompactionStart(Event):
    TYPE = "compaction.start"
    level: int
    output_level: int
    num_inputs: int
    input_bytes: int
    trivial_move: bool


@dataclass
class CompactionEnd(Event):
    TYPE = "compaction.end"
    index: int
    level: int
    output_level: int
    num_inputs: int
    num_outputs: int
    input_bytes: int
    output_bytes: int
    duration: float
    trivial_move: bool


# -- dynamic-band allocator ---------------------------------------------------

@dataclass
class BandAllocate(Event):
    TYPE = "band.allocate"
    offset: int
    nbytes: int
    mode: str  # "append" (residual frontier) or "insert" (reused hole)


@dataclass
class BandFree(Event):
    TYPE = "band.free"
    offset: int
    nbytes: int
    to_residual: bool


@dataclass
class BandCoalesce(Event):
    TYPE = "band.coalesce"
    offset: int
    nbytes: int
    side: str  # "left" or "right"


@dataclass
class BandSplit(Event):
    TYPE = "band.split"
    offset: int
    used: int
    remainder: int


# -- drives -------------------------------------------------------------------

@dataclass
class RMWEvent(Event):
    TYPE = "drive.rmw"
    band: int
    offset: int
    nbytes: int
    moved_bytes: int  # band-prefix bytes re-shingled on top of the payload


@dataclass
class MediaCacheClean(Event):
    TYPE = "drive.cache_clean"
    bands: int
    nbytes: int


@dataclass
class ZoneReset(Event):
    TYPE = "zone.reset"
    zone: int


# -- filesystem / log layers --------------------------------------------------

@dataclass
class WALAppend(Event):
    TYPE = "wal.append"
    nbytes: int


@dataclass
class ManifestAppend(Event):
    TYPE = "manifest.append"
    nbytes: int


@dataclass
class ExtentAllocate(Event):
    TYPE = "fs.alloc"
    nbytes: int
    extents: int  # 1 == contiguous


@dataclass
class ZoneGC(Event):
    TYPE = "zone.gc"
    zone: int
    moved_bytes: int


@dataclass
class SetRegister(Event):
    TYPE = "set.register"
    members: int
    nbytes: int


@dataclass
class SetFade(Event):
    TYPE = "set.fade"
    nbytes: int


# -- media-fault resilience ---------------------------------------------------

@dataclass
class ScrubEvent(Event):
    """One scrubber pass over a store's live data finished."""

    TYPE = "scrub.pass"
    tables: int
    blocks: int
    errors: int       # tables that failed verification this pass
    quarantined: int  # tables newly quarantined this pass
    duration: float


@dataclass
class QuarantineEvent(Event):
    """A table was fenced off after persistent media errors."""

    TYPE = "table.quarantine"
    name: str
    level: int
    reason: str


@dataclass
class RepairDrop(Event):
    """``repair()`` discarded an unreadable or malformed table."""

    TYPE = "repair.drop"
    name: str
    reason: str


# -- network serving layer ----------------------------------------------------
# ``ts`` on net events is wall-clock monotonic seconds, not simulated
# drive time: the server lives outside the simulation, fronting stores
# whose internal clocks keep their own (simulated) timelines.

@dataclass
class NetConnOpen(Event):
    """A client connection was accepted."""

    TYPE = "net.conn_open"
    peer: str


@dataclass
class NetConnClose(Event):
    """A client connection ended (QUIT, EOF, drain, or protocol error)."""

    TYPE = "net.conn_close"
    peer: str
    requests: int
    reason: str  # "eof" | "quit" | "drain" | "protocol" | "reset"


@dataclass
class NetRequest(Event):
    """One request finished (reply written or error mapped)."""

    TYPE = "net.request"
    command: str
    ok: bool
    latency: float  # wall seconds from parse to reply-ready


@dataclass
class NetOverload(Event):
    """Admission control rejected a request with ``-OVERLOADED``."""

    TYPE = "net.overload"
    command: str
    inflight: int
    inflight_bytes: int


@dataclass
class NetDrain(Event):
    """Graceful shutdown started: listener closed, in-flight finishing."""

    TYPE = "net.drain"
    connections: int
    inflight: int


#: wire name -> event class, for filter validation and trace replay
EVENT_TYPES: dict[str, type[Event]] = {
    cls.TYPE: cls
    for cls in (
        PutEvent, GetEvent, DeleteEvent, ScanEvent, FlushStart, FlushEnd,
        CompactionStart, CompactionEnd, BandAllocate, BandFree,
        BandCoalesce, BandSplit, RMWEvent, MediaCacheClean, ZoneReset,
        WALAppend, ManifestAppend, ExtentAllocate, ZoneGC,
        SetRegister, SetFade, ScrubEvent, QuarantineEvent, RepairDrop,
        NetConnOpen, NetConnClose, NetRequest, NetOverload, NetDrain,
    )
}
