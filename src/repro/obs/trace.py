"""JSON-lines trace writer / reader for the event bus.

One event per line::

    {"ts": 0.01342, "store": "SEALDB", "event": "band.allocate",
     "offset": 268435456, "nbytes": 2097152, "mode": "append"}

``JsonLinesWriter.bound(name)`` returns a subscriber callback tagged
with the store name, so one writer can multiplex every store an
experiment constructs into a single ordered stream.
"""

from __future__ import annotations

import json
from typing import Callable, IO, Iterable

from repro.obs.events import Event


class JsonLinesWriter:
    """Serialise bus events to a text stream, one JSON object per line."""

    def __init__(self, stream: IO[str]) -> None:
        self.stream = stream
        self.lines = 0

    def bound(self, store_name: str) -> Callable[[Event], None]:
        """A subscriber that tags every event with ``store_name``."""
        def write(event: Event) -> None:
            d = event.to_dict()
            line = {"ts": round(d.pop("ts"), 9),
                    "store": store_name,
                    "event": d.pop("event")}
            line.update(d)
            self.stream.write(json.dumps(line) + "\n")
            self.lines += 1
        return write


def read_jsonl(lines: Iterable[str]) -> list[dict]:
    """Parse a JSON-lines trace back into dicts (blank lines skipped)."""
    out = []
    for line in lines:
        line = line.strip()
        if line:
            out.append(json.loads(line))
    return out
