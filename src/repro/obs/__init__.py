"""``repro.obs`` — unified observability: typed events, metrics, traces.

One instrumentation surface shared by experiments, benchmarks, the CLI
(``repro trace`` / ``repro metrics``) and the crash sweeper.  Every
:class:`~repro.kvstore.KVStoreBase` owns an :class:`Observability`
handle at ``store.obs``; hooks throughout the drive / filesystem /
engine layers are free when nothing listens (one falsy check, the same
pattern as :mod:`repro.faults`).

Quick use::

    import repro

    with repro.open("sealdb") as db:
        db.obs.subscribe(print, events={"compaction.end"})
        ...
        print(db.obs.metrics.render())
"""

from repro.obs.bus import (
    Observability,
    apply_taps,
    install_tap,
    remove_tap,
    tapping,
)
from repro.obs.events import (
    EVENT_TYPES,
    BandAllocate,
    BandCoalesce,
    BandFree,
    BandSplit,
    CompactionEnd,
    CompactionStart,
    DeleteEvent,
    Event,
    ExtentAllocate,
    FlushEnd,
    FlushStart,
    GetEvent,
    ManifestAppend,
    MediaCacheClean,
    NetConnClose,
    NetConnOpen,
    NetDrain,
    NetOverload,
    NetRequest,
    PutEvent,
    RMWEvent,
    ScanEvent,
    SetFade,
    SetRegister,
    WALAppend,
    ZoneGC,
    ZoneReset,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_registries,
)
from repro.obs.trace import JsonLinesWriter, read_jsonl

__all__ = [
    "Observability", "apply_taps", "install_tap", "remove_tap", "tapping",
    "EVENT_TYPES", "Event",
    "PutEvent", "GetEvent", "DeleteEvent", "ScanEvent",
    "FlushStart", "FlushEnd", "CompactionStart", "CompactionEnd",
    "BandAllocate", "BandFree", "BandCoalesce", "BandSplit",
    "RMWEvent", "MediaCacheClean", "ZoneReset",
    "WALAppend", "ManifestAppend", "ExtentAllocate", "ZoneGC",
    "SetRegister", "SetFade",
    "NetConnOpen", "NetConnClose", "NetRequest", "NetOverload", "NetDrain",
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "merge_registries",
    "JsonLinesWriter", "read_jsonl",
]
