"""Metrics registry: counters, gauges, and HDR-style latency histograms.

The histogram uses logarithmic bucketing (HdrHistogram's trick without
the library): a value lands in bucket ``round(log(v) / log(GROWTH))``,
so relative error is bounded by ``GROWTH - 1`` (~2.3%) at any scale —
from sub-millisecond media-cache hits to multi-second compactions —
with a few hundred buckets total.  Percentiles walk the cumulative
bucket counts; p50/p90/p99/p999 come out of one dict scan.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable

#: per-bucket growth factor; relative quantile error is bounded by this - 1
GROWTH = 1.0232
_LOG_GROWTH = math.log(GROWTH)


class Counter:
    """Monotonic event/byte counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int | float = 1) -> None:
        self.value += n


class Gauge:
    """Point-in-time value; either set explicitly or bound to a callable
    that is evaluated lazily on read (e.g. ``amp.wa`` -> ``tracker.wa``)."""

    __slots__ = ("name", "_value", "_fn")

    def __init__(self, name: str,
                 fn: Callable[[], float] | None = None) -> None:
        self.name = name
        self._value = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        self._value = value

    @property
    def value(self) -> float:
        return self._fn() if self._fn is not None else self._value


class Histogram:
    """Log-bucketed latency histogram with bounded relative error."""

    __slots__ = ("name", "count", "total", "min", "max", "_buckets", "_zeros")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = 0.0
        self._buckets: dict[int, int] = {}
        self._zeros = 0

    def record(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value <= 0.0:
            self._zeros += 1
            return
        idx = round(math.log(value) / _LOG_GROWTH)
        self._buckets[idx] = self._buckets.get(idx, 0) + 1

    def percentile(self, p: float) -> float:
        """Value at quantile ``p`` (0..100), within ~2.3% relative error."""
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(self.count * p / 100.0))
        if rank <= self._zeros:
            return 0.0
        seen = self._zeros
        for idx in sorted(self._buckets):
            seen += self._buckets[idx]
            if seen >= rank:
                return math.exp(idx * _LOG_GROWTH)
        return self.max

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantiles(self) -> dict[str, float]:
        return {"p50": self.percentile(50), "p90": self.percentile(90),
                "p99": self.percentile(99), "p999": self.percentile(99.9)}

    def merge(self, other: "Histogram") -> None:
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        self._zeros += other._zeros
        for idx, n in other._buckets.items():
            self._buckets[idx] = self._buckets.get(idx, 0) + n


class MetricsRegistry:
    """Named counters / gauges / histograms for one store (or one merged
    view across stores — see :meth:`merge`)."""

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    # -- registration / access ------------------------------------------------

    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(name)
        return c

    def gauge(self, name: str,
              fn: Callable[[], float] | None = None) -> Gauge:
        g = self.gauges.get(name)
        if g is None or fn is not None:
            g = self.gauges[name] = Gauge(name, fn)
        return g

    def histogram(self, name: str) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram(name)
        return h

    def value(self, name: str) -> float:
        """Read one metric by name (counter, then gauge)."""
        if name in self.counters:
            return self.counters[name].value
        if name in self.gauges:
            return self.gauges[name].value
        raise KeyError(name)

    # -- aggregation ----------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other`` into this registry: counters add, histograms
        merge bucket-wise, gauges keep the most recent reading."""
        for name, c in other.counters.items():
            self.counter(name).inc(c.value)
        for name, g in other.gauges.items():
            self.gauge(name).set(g.value)
        for name, h in other.histograms.items():
            self.histogram(name).merge(h)

    def snapshot(self) -> dict:
        """Plain-dict summary (JSON-friendly)."""
        out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
        for name in sorted(self.counters):
            out["counters"][name] = self.counters[name].value
        for name in sorted(self.gauges):
            out["gauges"][name] = self.gauges[name].value
        for name in sorted(self.histograms):
            h = self.histograms[name]
            if not h.count:
                continue
            out["histograms"][name] = {
                "count": h.count, "mean": h.mean,
                "min": h.min, "max": h.max, **h.quantiles(),
            }
        return out

    def render(self, title: str = "metrics") -> str:
        """Fixed-width summary table for the ``repro metrics`` CLI."""
        lines = [title, "-" * len(title)]
        for name in sorted(self.counters):
            lines.append(f"  {name:<28s} {self.counters[name].value:>14,}")
        for name in sorted(self.gauges):
            lines.append(f"  {name:<28s} {self.gauges[name].value:>14.3f}")
        hists = [self.histograms[n] for n in sorted(self.histograms)
                 if self.histograms[n].count]
        if hists:
            lines.append(f"  {'histogram':<20s} {'count':>8s} {'mean':>10s} "
                         f"{'p50':>10s} {'p90':>10s} {'p99':>10s} {'p999':>10s}")
            for h in hists:
                q = h.quantiles()
                lines.append(
                    f"  {h.name:<20s} {h.count:>8,} {_si(h.mean):>10s} "
                    f"{_si(q['p50']):>10s} {_si(q['p90']):>10s} "
                    f"{_si(q['p99']):>10s} {_si(q['p999']):>10s}")
        return "\n".join(lines)


def _si(seconds: float) -> str:
    """Human-scaled seconds: 1.2us / 3.4ms / 5.6s."""
    if seconds <= 0:
        return "0"
    for scale, unit in ((1e-6, "us"), (1e-3, "ms")):
        if seconds < scale * 1000:
            return f"{seconds / scale:.1f}{unit}"
    return f"{seconds:.2f}s"


def merge_registries(registries: Iterable[MetricsRegistry]) -> MetricsRegistry:
    merged = MetricsRegistry()
    for reg in registries:
        merged.merge(reg)
    return merged
