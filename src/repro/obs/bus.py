"""The per-store observability bus.

Design mirrors :mod:`repro.faults`: instrumented components (drive,
storage, allocator, engine, facade) each carry ``self._obs = None`` and
hot paths guard every hook with one falsy check::

    obs = self._obs
    if obs is not None:
        obs.emit(RMWEvent(...))

so a store with no subscriber pays a single attribute load per hook
and allocates nothing.  Arming the bus (first subscriber, or an
explicit :meth:`Observability.arm` for metrics-only collection) patches
``_obs`` onto every bound component; disarming restores ``None``.

Every emitted event also feeds the built-in :class:`MetricsRegistry`
(op counters, latency histograms, band/RMW/WAL tallies), so
``store.obs.metrics`` is populated whenever the bus is armed even with
zero subscribers.

Module-level *taps* let the CLI instrument stores it never constructs:
``repro.open`` calls :func:`apply_taps` on every new store, and
``tapping(fn)`` installs a callback for the duration of an experiment
run (this is how ``repro trace fig10`` sees the stores fig10 builds
internally).
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable

from repro.obs.events import Event
from repro.obs.metrics import MetricsRegistry

Subscriber = Callable[[Event], None]


class Observability:
    """Event bus + metrics registry for one store."""

    def __init__(self, name: str = "store") -> None:
        self.name = name
        self.metrics = MetricsRegistry()
        self._subscribers: list[tuple[Subscriber, frozenset[str] | None]] = []
        self._components: list = []
        self._armed = False
        self._hold = False  # explicit arm() keeps the bus live w/o subscribers

    # -- wiring ---------------------------------------------------------------

    def bind(self, *components) -> None:
        """(Re)bind the instrumented components.  Called by the store
        facade at construction and again after ``reopen()`` replaces
        the engine."""
        if self._armed:
            for c in self._components:
                c._obs = None
        self._components = [c for c in components if c is not None]
        if self._armed:
            for c in self._components:
                c._obs = self

    def arm(self) -> None:
        """Turn the hooks on (metrics collect even with no subscriber)."""
        self._hold = True
        if not self._armed:
            self._armed = True
            for c in self._components:
                c._obs = self

    def disarm(self) -> None:
        """Turn every hook back into a single falsy check."""
        self._hold = False
        if self._armed and not self._subscribers:
            self._armed = False
            for c in self._components:
                c._obs = None

    @property
    def armed(self) -> bool:
        return self._armed

    # -- subscription ---------------------------------------------------------

    def subscribe(self, callback: Subscriber,
                  events: Iterable[str] | None = None) -> Subscriber:
        """Deliver events to ``callback`` (optionally only the wire
        names in ``events``).  Subscribing arms the bus."""
        flt = frozenset(events) if events is not None else None
        self._subscribers.append((callback, flt))
        if not self._armed:
            self._armed = True
            for c in self._components:
                c._obs = self
        return callback

    def unsubscribe(self, callback: Subscriber) -> None:
        self._subscribers = [(cb, flt) for cb, flt in self._subscribers
                             if cb is not callback]
        if not self._subscribers and not self._hold:
            self._armed = False
            for c in self._components:
                c._obs = None

    @contextlib.contextmanager
    def subscribed(self, callback: Subscriber,
                   events: Iterable[str] | None = None):
        self.subscribe(callback, events)
        try:
            yield callback
        finally:
            self.unsubscribe(callback)

    # -- emission -------------------------------------------------------------

    def emit(self, event: Event) -> None:
        update = _METRIC_UPDATES.get(event.TYPE)
        if update is not None:
            update(self.metrics, event)
        for callback, flt in self._subscribers:
            if flt is None or event.TYPE in flt:
                callback(event)


# -- built-in metrics aggregation ---------------------------------------------
# One small updater per event type; emit() dispatches through this table
# so unknown/new events still reach subscribers without a registry entry.

def _on_put(m: MetricsRegistry, e) -> None:
    m.counter("ops.put").inc()
    m.histogram("latency.put").record(e.latency)


def _on_get(m: MetricsRegistry, e) -> None:
    m.counter("ops.get").inc()
    if e.hit:
        m.counter("ops.get_hit").inc()
    m.histogram("latency.get").record(e.latency)


def _on_delete(m: MetricsRegistry, e) -> None:
    m.counter("ops.delete").inc()
    m.histogram("latency.delete").record(e.latency)


def _on_scan(m: MetricsRegistry, e) -> None:
    m.counter("ops.scan").inc()
    m.counter("ops.scan_keys").inc(e.keys)
    m.histogram("latency.scan").record(e.latency)


def _on_flush_end(m: MetricsRegistry, e) -> None:
    m.counter("flush.count").inc()
    m.counter("flush.bytes").inc(e.nbytes)
    m.histogram("latency.flush").record(e.duration)


def _on_compaction_end(m: MetricsRegistry, e) -> None:
    if e.trivial_move:
        m.counter("compaction.trivial").inc()
        return
    m.counter("compaction.count").inc()
    m.counter("compaction.bytes_in").inc(e.input_bytes)
    m.counter("compaction.bytes_out").inc(e.output_bytes)
    m.histogram("latency.compaction").record(e.duration)


def _on_band_allocate(m: MetricsRegistry, e) -> None:
    m.counter("band.appends" if e.mode == "append" else "band.inserts").inc()


def _on_rmw(m: MetricsRegistry, e) -> None:
    m.counter("drive.rmw").inc()
    m.counter("drive.rmw_bytes").inc(e.moved_bytes)


def _on_cache_clean(m: MetricsRegistry, e) -> None:
    m.counter("drive.cache_cleans").inc()
    m.counter("drive.cache_clean_bytes").inc(e.nbytes)


def _on_wal(m: MetricsRegistry, e) -> None:
    m.counter("wal.appends").inc()
    m.counter("wal.bytes").inc(e.nbytes)


def _on_zone_gc(m: MetricsRegistry, e) -> None:
    m.counter("zone.gc_runs").inc()
    m.counter("zone.gc_bytes").inc(e.moved_bytes)


def _count(name: str):
    def update(m: MetricsRegistry, e) -> None:
        m.counter(name).inc()
    return update


def _on_scrub(m: MetricsRegistry, e) -> None:
    m.counter("scrub.passes").inc()
    m.counter("scrub.blocks").inc(e.blocks)
    m.counter("scrub.errors").inc(e.errors)


def _on_quarantine(m: MetricsRegistry, e) -> None:
    m.counter("resilience.quarantine_events").inc()


def _on_net_request(m: MetricsRegistry, e) -> None:
    m.counter("net.requests").inc()
    m.counter(f"net.cmd.{e.command.lower()}").inc()
    if not e.ok:
        m.counter("net.errors").inc()
    m.histogram("latency.net").record(e.latency)


def _on_net_overload(m: MetricsRegistry, e) -> None:
    m.counter("net.overloads").inc()


def _on_net_conn_close(m: MetricsRegistry, e) -> None:
    m.counter("net.conns_closed").inc()
    m.counter(f"net.close.{e.reason}").inc()


_METRIC_UPDATES: dict[str, Callable[[MetricsRegistry, Event], None]] = {
    "op.put": _on_put,
    "op.get": _on_get,
    "op.delete": _on_delete,
    "op.scan": _on_scan,
    "flush.end": _on_flush_end,
    "compaction.start": _count("compaction.started"),
    "compaction.end": _on_compaction_end,
    "band.allocate": _on_band_allocate,
    "band.free": _count("band.frees"),
    "band.coalesce": _count("band.coalesces"),
    "band.split": _count("band.splits"),
    "drive.rmw": _on_rmw,
    "drive.cache_clean": _on_cache_clean,
    "zone.reset": _count("zone.resets"),
    "wal.append": _on_wal,
    "manifest.append": _count("manifest.appends"),
    "fs.alloc": _count("fs.allocs"),
    "zone.gc": _on_zone_gc,
    "set.register": _count("sets.registered"),
    "set.fade": _count("sets.faded"),
    "scrub.pass": _on_scrub,
    "table.quarantine": _on_quarantine,
    "repair.drop": _count("repair.drops"),
    "net.conn_open": _count("net.conns_opened"),
    "net.conn_close": _on_net_conn_close,
    "net.request": _on_net_request,
    "net.overload": _on_net_overload,
    "net.drain": _count("net.drains"),
}


# -- global taps (used by repro.open / the trace & metrics CLI) ---------------

_taps: list[Callable] = []


def install_tap(fn: Callable) -> Callable:
    """Register ``fn(store)`` to run on every store ``repro.open``
    constructs (including stores experiments build internally)."""
    _taps.append(fn)
    return fn


def remove_tap(fn: Callable) -> None:
    with contextlib.suppress(ValueError):
        _taps.remove(fn)


@contextlib.contextmanager
def tapping(fn: Callable):
    install_tap(fn)
    try:
        yield fn
    finally:
        remove_tap(fn)


def apply_taps(store) -> None:
    for fn in _taps:
        fn(store)
