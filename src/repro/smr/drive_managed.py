"""Drive-managed SMR with a persistent media cache (DM-SMR).

Section II-C of the paper dismisses DM-SMR as a fix: "existing SMR
drives with a media cache cannot address the MWA problem, since cache
cleaning processes induce large latency as well as write amplification
and bring a bimodal behavior" (citing the Skylight and evaluation
studies [8], [27]).  This model exists to *demonstrate* that claim (see
``benchmarks/test_ablation_dmsmr.py``): it is not used by any of the
paper's four store configurations.

Mechanics, following the Skylight findings for Seagate drive-managed
disks:

* a reserved **media cache** region absorbs non-sequential writes as a
  persistent log (fast path: sequential appends into the cache plus a
  mapping entry);
* sequential writes at a band's frontier bypass the cache (streamed);
* when the cache fills beyond a high-water mark, the drive **cleans**:
  for every band with dirty cache entries it performs a band
  read-modify-write folding the cached updates in, then resets the
  cache -- the long stalls that produce the bimodal service times;
* reads must consult the cache mapping and may pay an extra seek when
  the newest data lives in the cache.
"""

from __future__ import annotations

from repro.obs.events import MediaCacheClean, RMWEvent
from repro.smr.drive import Drive
from repro.smr.timing import DriveProfile, SMR_PROFILE, SimClock


class DriveManagedSMRDrive(Drive):
    """Fixed-band SMR behind a shingled translation layer with a
    persistent media cache."""

    def __init__(self, capacity: int, band_size: int,
                 cache_size: int | None = None,
                 profile: DriveProfile = SMR_PROFILE,
                 clock: SimClock | None = None,
                 clean_watermark: float = 0.8) -> None:
        if band_size <= 0:
            raise ValueError("band size must be positive")
        super().__init__(capacity, profile, clock)
        self.band_size = band_size
        self.cache_size = (cache_size if cache_size is not None
                           else max(band_size, capacity // 100))
        if not 0.1 <= clean_watermark <= 1.0:
            raise ValueError("clean watermark must be in [0.1, 1.0]")
        self.clean_watermark = clean_watermark
        #: native area starts after the cache region
        self.native_start = self.cache_size
        self.num_bands = (capacity - self.native_start) // band_size
        self._frontier = [self.native_start + b * band_size
                          for b in range(self.num_bands)]
        #: cache occupancy in bytes (the log tail within the cache region)
        self._cache_used = 0
        #: native offset -> pending length of cached (newest) data,
        #: coalesced per write
        self._dirty: dict[int, int] = {}
        self._dirty_bands: set[int] = set()
        self.cleanings = 0
        self.cache_hits = 0

    def band_of(self, offset: int) -> int:
        return (offset - self.native_start) // self.band_size

    def _write_impl(self, offset: int, data: bytes, category: str = "data") -> None:
        length = len(data)
        self._check_range(offset, length)
        if offset < self.native_start:
            raise ValueError("the cache region is drive-internal")
        band = self.band_of(offset)
        frontier = self._frontier[band]
        if offset == frontier:
            # sequential fast path: streamed straight to the band
            seeked = offset != self.model.head
            elapsed = self.model.access(offset, length, is_write=True)
            self.stats.record_write(offset, length, elapsed, category,
                                    seeked=seeked, now=self.clock.now)
            self._data[offset : offset + length] = data
            self._frontier[band] = offset + length
            return

        if length >= self.cache_size // 2:
            # too large for the cache: fold into the band directly
            band_start = self.native_start + band * self.band_size
            prefix = max(self._frontier[band], offset + length) - band_start
            read_elapsed = self.model.access(band_start, prefix, is_write=False)
            self.stats.record_read(band_start, prefix, read_elapsed, category,
                                   seeked=True, now=self.clock.now, rmw=True)
            self._data[offset : offset + length] = data
            write_elapsed = self.model.access(band_start, prefix,
                                              is_write=True,
                                              sequential_hint=True)
            self.stats.record_write(band_start, prefix, write_elapsed,
                                    category, seeked=True, now=self.clock.now,
                                    rmw=True)
            self._frontier[band] = band_start + prefix
            obs = self._obs
            if obs is not None:
                obs.emit(RMWEvent(ts=self.clock.now, band=band, offset=offset,
                                  nbytes=length, moved_bytes=prefix - length))
            return

        # non-sequential: absorb into the media cache (sequential append
        # inside the cache region + a mapping update)
        cache_offset = self._cache_used % max(1, self.cache_size - length)
        elapsed = self.model.access(cache_offset, length, is_write=True,
                                    sequential_hint=True)
        self.stats.record_write(offset, length, elapsed, category,
                                seeked=False, now=self.clock.now)
        self._data[offset : offset + length] = data  # logical content
        self._frontier[band] = max(frontier, offset + length)
        self._cache_used += length
        self._dirty[offset] = max(self._dirty.get(offset, 0), length)
        self._dirty_bands.add(band)
        if self._cache_used >= self.cache_size * self.clean_watermark:
            self._clean(category)

    def _clean(self, category: str) -> None:
        """Fold every dirty band: read band, merge cached data, rewrite.

        This is the long stall behind DM-SMR's bimodal write latency;
        every cleaned band adds a full band of device write traffic.
        """
        self.cleanings += 1
        start = self.clock.now
        folded = 0
        for band in sorted(self._dirty_bands):
            band_start = self.native_start + band * self.band_size
            prefix = self._frontier[band] - band_start
            if prefix <= 0:
                continue
            read_elapsed = self.model.access(band_start, prefix, is_write=False)
            self.stats.record_read(band_start, prefix, read_elapsed, category,
                                   seeked=True, now=self.clock.now, rmw=True)
            write_elapsed = self.model.access(band_start, prefix,
                                              is_write=True,
                                              sequential_hint=True)
            self.stats.record_write(band_start, prefix, write_elapsed,
                                    category, seeked=True, now=self.clock.now,
                                    rmw=True)
            folded += prefix
        obs = self._obs
        if obs is not None:
            obs.emit(MediaCacheClean(ts=start, bands=len(self._dirty_bands),
                                     nbytes=folded))
        self._dirty.clear()
        self._dirty_bands.clear()
        self._cache_used = 0

    def read(self, offset: int, length: int, category: str = "data") -> bytes:
        if self._covers_dirty(offset, length):
            # newest copy lives in the cache region: extra head trip
            self.cache_hits += 1
            self.model.access(0, 0, is_write=False)  # reposition only
        return super().read(offset, length, category)

    def _covers_dirty(self, offset: int, length: int) -> bool:
        for dirty_offset, dirty_len in self._dirty.items():
            if dirty_offset < offset + length and offset < dirty_offset + dirty_len:
                return True
        return False

    def trim(self, offset: int, length: int) -> None:
        self._check_range(offset, length)
        if offset < self.native_start:
            return
        end = offset + length
        first = self.band_of(offset)
        last = self.band_of(end - 1) if length > 0 else first
        for band in range(first, last + 1):
            band_start = self.native_start + band * self.band_size
            if offset <= band_start and end >= self._frontier[band]:
                self._frontier[band] = band_start
