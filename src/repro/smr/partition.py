"""Drive partitions: several stores consolidated on one spindle.

The paper's opening motivation is consolidation: virtualization packs
many applications' KV stores onto fewer servers and fewer (denser)
drives.  A :class:`DrivePartition` exposes a byte-range slice of a
parent drive as a drive of its own, so several independent store stacks
can share one simulated device.

What sharing buys the simulation:

* one head and one clock -- tenants *interfere*: a tenant's compaction
  drags the head away from its neighbours (the consolidation tax the
  experiment ``ext_multitenant`` measures);
* one SMR surface -- on a raw HM-SMR parent, the damage-zone rule is
  enforced globally, so partitions must be separated by guard gaps
  (handled by :func:`partition_drive`);
* two ledgers -- the partition keeps its own
  :class:`~repro.smr.stats.DriveStats` (per-tenant AWA) while the
  parent's counters keep the whole-device view.
"""

from __future__ import annotations

from repro.errors import OutOfRangeError, ReproError
from repro.smr.drive import Drive
from repro.smr.stats import DriveStats


class DrivePartition:
    """A byte-range view of a parent drive, usable as a drive."""

    def __init__(self, parent: Drive, start: int, size: int) -> None:
        if start < 0 or size <= 0 or start + size > parent.capacity:
            raise ReproError(
                f"partition [{start}, {start + size}) exceeds parent capacity "
                f"{parent.capacity}"
            )
        self.parent = parent
        self.start = start
        self.capacity = size
        self.stats = DriveStats()
        # duck-typed surface shared with Drive
        self.profile = parent.profile
        self.clock = parent.clock
        self.model = parent.model

    @property
    def now(self) -> float:
        return self.parent.now

    @property
    def guard_size(self) -> int:
        """Forwarded for raw HM-SMR parents (used by band managers)."""
        return getattr(self.parent, "guard_size", 0)

    def _check(self, offset: int, length: int) -> None:
        if offset < 0 or length < 0 or offset + length > self.capacity:
            raise OutOfRangeError(offset, length, self.capacity)

    def read(self, offset: int, length: int, category: str = "data") -> bytes:
        self._check(offset, length)
        t0 = self.clock.now
        seeked = (self.start + offset) != self.model.head
        data = self.parent.read(self.start + offset, length, category)
        self.stats.record_read(offset, length, self.clock.now - t0, category,
                               seeked=seeked, now=self.clock.now)
        return data

    def write(self, offset: int, data: bytes, category: str = "data") -> None:
        self._check(offset, len(data))
        t0 = self.clock.now
        seeked = (self.start + offset) != self.model.head
        self.parent.write(self.start + offset, data, category)
        self.stats.record_write(offset, len(data), self.clock.now - t0,
                                category, seeked=seeked, now=self.clock.now)

    def write_buffered(self, offset: int, data: bytes,
                       category: str = "data") -> None:
        self._check(offset, len(data))
        t0 = self.clock.now
        self.parent.write_buffered(self.start + offset, data, category)
        self.stats.record_write(offset, len(data), self.clock.now - t0,
                                category, seeked=False, now=self.clock.now)

    def trim(self, offset: int, length: int) -> None:
        self._check(offset, length)
        self.parent.trim(self.start + offset, length)

    def charge_metadata_op(self) -> float:
        return self.parent.charge_metadata_op()

    def peek(self, offset: int, length: int) -> bytes:
        self._check(offset, length)
        return self.parent.peek(self.start + offset, length)


def partition_drive(parent: Drive, tenants: int,
                    gap: int | None = None) -> list[DrivePartition]:
    """Split ``parent`` into equal tenant partitions with guard gaps.

    The gap (default: the parent's guard size) keeps one tenant's
    shingle damage zone out of the next tenant's space on raw HM-SMR
    parents; it is harmless padding on other drive types.
    """
    if tenants < 1:
        raise ReproError("need at least one tenant")
    if gap is None:
        gap = getattr(parent, "guard_size", 0)
    usable = parent.capacity - gap * (tenants - 1)
    size = usable // tenants
    if size <= 0:
        raise ReproError("parent too small for that many tenants")
    partitions = []
    cursor = 0
    for _ in range(tenants):
        partitions.append(DrivePartition(parent, cursor, size))
        cursor += size + gap
    return partitions
