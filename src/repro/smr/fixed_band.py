"""Fixed-band SMR drive with read-modify-write semantics.

This models the "emulated conventional SMR drives with band sizes
ranging from 20 MB to 60 MB" the paper uses for its baselines
(Section II-C).  The address space is divided into equal fixed-size
bands.  Within each band the drive tracks a *write frontier*: the end of
the highest byte ever written since the band was last reset.

* A write starting exactly at the frontier is a safe sequential append.
* A write starting **below** the frontier would overwrite shingled
  tracks, so the drive performs a band **read-modify-write**: it reads
  the valid prefix of the band, applies the modification, and rewrites
  the band up to the (possibly extended) frontier.  The extra device
  traffic is the paper's *auxiliary write amplification* (AWA).
* A write starting **above** the frontier leaves a never-written gap;
  that is physically safe on SMR (nothing downstream within the gap is
  valid), so it is treated as a sequential write and the frontier jumps.

Writes spanning multiple bands are split on band boundaries, exactly as
a real drive would handle them.
"""

from __future__ import annotations

from repro.obs.events import RMWEvent
from repro.smr.drive import Drive
from repro.smr.timing import DriveProfile, SMR_PROFILE, SimClock


class FixedBandSMRDrive(Drive):
    """Drive-emulated SMR with fixed bands and naive band RMW."""

    def __init__(self, capacity: int, band_size: int,
                 profile: DriveProfile = SMR_PROFILE,
                 clock: SimClock | None = None) -> None:
        if band_size <= 0:
            raise ValueError(f"band size must be positive, got {band_size}")
        super().__init__(capacity, profile, clock)
        self.band_size = band_size
        self.num_bands = (capacity + band_size - 1) // band_size
        #: per-band write frontier, as an absolute byte offset
        self._frontier = [band * band_size for band in range(self.num_bands)]
        #: band whose contents sit in the drive's buffer after an RMW;
        #: further sub-frontier writes to it are patched without another
        #: read-modify-write cycle (burst coalescing)
        self._open_band: int | None = None

    def band_of(self, offset: int) -> int:
        """Index of the band containing byte ``offset``."""
        return offset // self.band_size

    def band_frontier(self, band: int) -> int:
        """Absolute offset of ``band``'s write frontier."""
        return self._frontier[band]

    def bands_touched(self, offset: int, length: int) -> int:
        """Number of bands an extent ``[offset, offset+length)`` spans."""
        if length <= 0:
            return 0
        return self.band_of(offset + length - 1) - self.band_of(offset) + 1

    def _write_impl(self, offset: int, data: bytes, category: str = "data") -> None:
        self._check_range(offset, len(data))
        cursor = 0
        while cursor < len(data):
            start = offset + cursor
            band = self.band_of(start)
            band_end = (band + 1) * self.band_size
            chunk_len = min(len(data) - cursor, band_end - start)
            self._write_within_band(band, start, data[cursor : cursor + chunk_len], category)
            cursor += chunk_len

    def _write_within_band(self, band: int, offset: int, data: bytes,
                           category: str) -> None:
        band_start = band * self.band_size
        frontier = self._frontier[band]
        end = offset + len(data)

        if offset >= frontier:
            # Sequential append (possibly leaving a harmless gap).
            seeked = offset != self.model.head
            elapsed = self.model.access(offset, len(data), is_write=True)
            self.stats.record_write(offset, len(data), elapsed, category,
                                    seeked=seeked, now=self.clock.now)
            self._data[offset:end] = data
            self._frontier[band] = end
            return

        new_frontier = max(frontier, end)
        prefix_len = new_frontier - band_start

        if band == self._open_band:
            # Burst coalescing: the band's contents already sit in the
            # drive buffer from a preceding RMW, so this update is
            # patched in place and written back within the same cycle --
            # only the new bytes add device traffic.
            elapsed = len(data) / self.profile.seq_write_bps
            self.clock.advance(elapsed)
            self.stats.record_write(offset, len(data), elapsed, category,
                                    seeked=False, now=self.clock.now, rmw=True)
            self._data[offset:end] = data
            self._frontier[band] = new_frontier
            obs = self._obs
            if obs is not None:
                obs.emit(RMWEvent(ts=self.clock.now, band=band, offset=offset,
                                  nbytes=len(data), moved_bytes=0))
            return

        if offset == band_start and end >= frontier:
            # The write replaces the whole valid prefix: a straight
            # sequential rewrite from the band start needs no read phase.
            seeked = band_start != self.model.head
            elapsed = self.model.access(band_start, len(data), is_write=True)
            self.stats.record_write(band_start, len(data), elapsed, category,
                                    seeked=seeked, now=self.clock.now)
            self._data[offset:end] = data
            self._frontier[band] = end
            self._open_band = band
            return

        # Update below the frontier: read-modify-write the written prefix
        # of the band.  The drive streams the prefix into its buffer,
        # patches it, and rewrites from the band start.
        seeked = band_start != self.model.head
        read_elapsed = self.model.access(band_start, prefix_len, is_write=False)
        self.stats.record_read(band_start, prefix_len, read_elapsed, category,
                               seeked=seeked, now=self.clock.now, rmw=True)

        self._data[offset:end] = data

        write_elapsed = self.model.access(band_start, prefix_len, is_write=True,
                                          sequential_hint=True)
        self.stats.record_write(band_start, prefix_len, write_elapsed, category,
                                seeked=True, now=self.clock.now, rmw=True)
        self._frontier[band] = new_frontier
        self._open_band = band
        obs = self._obs
        if obs is not None:
            obs.emit(RMWEvent(ts=self.clock.now, band=band, offset=offset,
                              nbytes=len(data),
                              moved_bytes=prefix_len - len(data)))

    def trim(self, offset: int, length: int) -> None:
        """Reset a band's frontier when its entire written prefix is trimmed.

        Partial trims cannot lower the frontier (shingled tracks below
        still hold data the drive must protect), matching real devices
        where only a full band reset reclaims sequential-write ability.
        """
        self._check_range(offset, length)
        end = offset + length
        first = self.band_of(offset)
        last = self.band_of(end - 1) if length > 0 else first
        for band in range(first, last + 1):
            band_start = band * self.band_size
            if offset <= band_start and end >= self._frontier[band]:
                self._frontier[band] = band_start
                if self._open_band == band:
                    self._open_band = None
