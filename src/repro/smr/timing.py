"""Positional disk timing model and simulated clock.

The evaluation in the paper is entirely relative (everything is
normalized to LevelDB) and the relative differences come from *access
patterns*: how many seeks a compaction performs, how much extra data a
band read-modify-write moves, how long a sequential run is.  A classic
positional model -- seek time as a function of distance, plus rotational
latency, plus transfer time at the drive's sequential rate -- captures
exactly those effects while staying deterministic.

Profile parameters are calibrated so the model approximately reproduces
Table II of the paper:

===================  ======  ======
metric               HDD     SMR
===================  ======  ======
sequential read      169     165    MB/s
sequential write     155     148    MB/s
random read 4 KB     64      70     IOPS
random write 4 KB    143     5-140  IOPS
===================  ======  ======

Random writes on the conventional HDD hit the on-drive write-back cache
(hence 143 IOPS, faster than reads); the model charges a flat cached
service time for small writes when ``write_cache`` is enabled.  The SMR
drive's 5-140 IOPS spread is an emergent property of band
read-modify-writes in :class:`~repro.smr.fixed_band.FixedBandSMRDrive`,
not a profile constant.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

MiB = 1024 * 1024


class SimClock:
    """A monotonically advancing simulated clock (seconds)."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Advance the clock by ``seconds`` (must be non-negative)."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds}")
        self._now += seconds
        return self._now


@dataclass(frozen=True)
class DriveProfile:
    """Mechanical parameters of a simulated drive.

    ``full_seek_s`` is the full-stroke seek; per-request seek time scales
    with the square root of the distance fraction, the standard
    first-order model for voice-coil actuators.
    """

    name: str
    seq_read_bps: float
    seq_write_bps: float
    rpm: float = 7200.0
    track_switch_s: float = 0.0012
    full_seek_s: float = 0.0
    write_cache: bool = False
    #: flat service time for a small write absorbed by the write-back cache
    cached_write_s: float = 0.007
    #: writes at most this large may be absorbed by the cache
    cache_threshold: int = 256 * 1024

    @property
    def half_rotation_s(self) -> float:
        """Average rotational latency: half a platter revolution."""
        return 60.0 / self.rpm / 2.0

    def scaled(self, io_scale: float) -> "DriveProfile":
        """Profile for a size-scaled simulation.

        The simulation shrinks every object (SSTables, bands, databases)
        by ``io_scale`` relative to the paper's hardware scale.  Seek and
        rotation times are physical constants, so to keep the
        transfer-time : seek-time proportions of the real experiments,
        transfer rates shrink by the same factor -- a scaled 640 KiB band
        then costs what a 40 MB band costs on the real drive.  The
        write-cache absorption threshold shrinks likewise.
        """
        if io_scale <= 0:
            raise ValueError("io_scale must be positive")
        return DriveProfile(
            name=f"{self.name}/scale{io_scale:g}",
            seq_read_bps=self.seq_read_bps / io_scale,
            seq_write_bps=self.seq_write_bps / io_scale,
            rpm=self.rpm,
            track_switch_s=self.track_switch_s,
            full_seek_s=self.full_seek_s,
            write_cache=self.write_cache,
            cached_write_s=self.cached_write_s,
            cache_threshold=max(1, int(self.cache_threshold / io_scale)),
        )


def _calibrated_full_seek(target_iops: float, profile_half_rot: float,
                          track_switch: float, transfer_s: float) -> float:
    """Solve for the full-stroke seek that yields ``target_iops`` on
    uniformly random 4 KB reads.

    For uniformly random positions the expected value of
    ``sqrt(|d|/capacity)`` is 8/15 (distance of two independent uniforms),
    so  E[service] = track_switch + full_seek * 8/15 + half_rot + transfer.
    """
    service = 1.0 / target_iops
    return max(0.0, (service - track_switch - profile_half_rot - transfer_s) / (8.0 / 15.0))


# Calibrated against Table II.  4 KiB transfer times are ~25 us and folded in.
HDD_PROFILE = DriveProfile(
    name="hdd-st1000dm003",
    seq_read_bps=169 * MiB,
    seq_write_bps=155 * MiB,
    rpm=7200.0,
    track_switch_s=0.0012,
    full_seek_s=_calibrated_full_seek(64.0, 60.0 / 7200.0 / 2.0, 0.0012, 4096 / (169 * MiB)),
    write_cache=True,
    cached_write_s=1.0 / 143.0,
)

SMR_PROFILE = DriveProfile(
    name="smr-st5000as0011",
    seq_read_bps=165 * MiB,
    seq_write_bps=148 * MiB,
    rpm=5900.0,
    track_switch_s=0.0012,
    full_seek_s=_calibrated_full_seek(70.0, 60.0 / 5900.0 / 2.0, 0.0012, 4096 / (165 * MiB)),
    write_cache=False,
)


@dataclass
class DiskTimingModel:
    """Tracks head position and converts I/O requests into elapsed time.

    The model is shared by all drive classes; SMR semantics (RMW, damage
    zones) are layered above and call into :meth:`access` for the raw
    mechanical cost of each device-level transfer.
    """

    profile: DriveProfile
    capacity: int
    clock: SimClock = field(default_factory=SimClock)
    head: int = 0

    def seek_time(self, distance: int) -> float:
        """Seek cost for moving the head ``distance`` bytes (0 => free)."""
        if distance == 0:
            return 0.0
        frac = min(1.0, abs(distance) / self.capacity)
        return self.profile.track_switch_s + self.profile.full_seek_s * math.sqrt(frac)

    def access(self, offset: int, length: int, *, is_write: bool,
               sequential_hint: bool = False) -> float:
        """Charge one device-level transfer; returns elapsed seconds.

        ``sequential_hint`` suppresses the rotational-latency charge for
        transfers known to continue a streaming pattern even if the head
        moved (e.g. the write phase of a band RMW, which follows its own
        read of the same band).
        """
        rate = self.profile.seq_write_bps if is_write else self.profile.seq_read_bps
        transfer = length / rate

        if (is_write and self.profile.write_cache
                and length <= self.profile.cache_threshold
                and offset != self.head):
            # Small random write absorbed by the write-back cache: flat
            # service time, head position is eventually wherever the
            # drive flushed -- model it as moving to the write target.
            self.head = offset + length
            elapsed = self.profile.cached_write_s
            self.clock.advance(elapsed)
            return elapsed

        distance = offset - self.head
        elapsed = transfer
        if distance != 0:
            elapsed += self.seek_time(distance)
            if not sequential_hint:
                elapsed += self.profile.half_rotation_s
        self.head = offset + length
        self.clock.advance(elapsed)
        return elapsed
