"""Base drive interface and the conventional (HDD) drive.

A drive owns a byte-addressable address space, a timing model driven by
a :class:`~repro.smr.timing.SimClock`, and a :class:`DriveStats`.  Data
is held in an in-memory ``bytearray`` so the KV engines above operate on
real bytes while latency comes from the model.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro import faults
from repro.errors import OutOfRangeError
from repro.smr.stats import DriveStats
from repro.smr.timing import DiskTimingModel, DriveProfile, HDD_PROFILE, SimClock


class Drive(ABC):
    """Abstract simulated drive."""

    def __init__(self, capacity: int, profile: DriveProfile,
                 clock: SimClock | None = None) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.profile = profile
        self.clock = clock if clock is not None else SimClock()
        self.model = DiskTimingModel(profile=profile, capacity=capacity, clock=self.clock)
        self.stats = DriveStats()
        self._data = bytearray(capacity)
        #: observability bus; None while no subscriber (zero-cost hooks)
        self._obs = None
        #: injected media faults; None while healthy (zero-cost reads)
        self._media = None

    @property
    def now(self) -> float:
        """Current simulated time (seconds)."""
        return self.clock.now

    def _check_range(self, offset: int, length: int) -> None:
        if offset < 0 or length < 0 or offset + length > self.capacity:
            raise OutOfRangeError(offset, length, self.capacity)

    def read(self, offset: int, length: int, category: str = "data") -> bytes:
        """Read ``length`` bytes at ``offset``, advancing the clock.

        Carries the read-side fault model: a latent sector error in the
        drive's :class:`~repro.resilience.media.MediaErrorMap` raises
        :class:`~repro.errors.MediaError` (after the head moved and the
        clock advanced -- the drive *tried*), rotted bytes come back
        silently flipped, and the ``drive.read`` failpoint can corrupt
        the returned payload one-shot.
        """
        self._check_range(offset, length)
        seeked = offset != self.model.head
        elapsed = self.model.access(offset, length, is_write=False)
        self.stats.record_read(offset, length, elapsed, category,
                               seeked=seeked, now=self.clock.now)
        data = bytes(self._data[offset : offset + length])
        media = self._media
        if media is not None:
            media.check_read(offset, length)
            data = media.corrupt(offset, data)
        inj = faults.fire(faults.DRIVE_READ, data=data, clock=self.clock)
        if inj is not None:
            data = inj.mutate_bytes(data)
            inj.finish()
        return data

    def inject_media_errors(self, seed: int = 0):
        """Attach (lazily) and return this drive's media-error map."""
        if self._media is None:
            from repro.resilience.media import MediaErrorMap
            self._media = MediaErrorMap(seed=seed)
        return self._media

    @property
    def media_errors(self):
        """The attached media-error map, or ``None`` while healthy."""
        return self._media

    def write(self, offset: int, data: bytes, category: str = "data") -> None:
        """Write ``data`` at ``offset`` under this drive's semantics.

        Carries the ``drive.write`` failpoint: an armed torn-write
        action truncates ``data`` to the prefix that "reached the
        medium" before the simulated power failure.
        """
        inj = faults.fire(faults.DRIVE_WRITE, data=data, clock=self.clock)
        if inj is None:
            self._write_impl(offset, data, category)
            if self._media is not None:
                self._media.note_write(offset, len(data))
            return
        data = inj.mutate_bytes(data)
        if data:
            self._write_impl(offset, data, category)
            if self._media is not None:
                self._media.note_write(offset, len(data))
        inj.finish()

    @abstractmethod
    def _write_impl(self, offset: int, data: bytes, category: str = "data") -> None:
        """The drive-specific write semantics (no failpoint handling)."""

    def write_buffered(self, offset: int, data: bytes, category: str = "data") -> None:
        """Write absorbed by the page cache / journal (WAL and manifests).

        LevelDB does not sync its log by default, so WAL and manifest
        traffic is coalesced by the OS and written back sequentially in
        the background on every store alike.  The model charges pure
        transfer time -- no seek, no rotational latency, no band RMW --
        and leaves the head where it was.  Bytes still land in the data
        array and are counted per category.
        """
        inj = faults.fire(faults.DRIVE_WRITE, data=data, clock=self.clock)
        if inj is not None:
            data = inj.mutate_bytes(data)
        length = len(data)
        self._check_range(offset, length)
        elapsed = length / self.profile.seq_write_bps
        self.clock.advance(elapsed)
        self.stats.record_write(offset, length, elapsed, category,
                                seeked=False, now=self.clock.now)
        self._data[offset : offset + length] = data
        if self._media is not None:
            self._media.note_write(offset, length)
        if inj is not None:
            inj.finish()

    def charge_metadata_op(self) -> float:
        """Charge the cost of one filesystem-metadata update.

        Ext4 touches inode tables / block bitmaps / the journal on every
        file create and delete -- the "redundant software overhead" the
        paper's direct-on-disk stores avoid.  Modelled as one small
        random write: absorbed by the write cache when the drive has
        one, a seek plus rotation otherwise.  No user data moves.
        """
        if self.profile.write_cache:
            elapsed = self.profile.cached_write_s
        else:
            elapsed = (self.profile.track_switch_s
                       + self.profile.full_seek_s * 0.3
                       + self.profile.half_rotation_s)
        self.clock.advance(elapsed)
        self.stats.busy_time += elapsed
        return elapsed

    def trim(self, offset: int, length: int) -> None:
        """Hint that ``[offset, offset+length)`` no longer holds valid data.

        A no-op for conventional drives; SMR drives use it to update
        their valid-data bookkeeping.
        """
        self._check_range(offset, length)

    # -- raw access without timing, for tests and verification ----------

    def peek(self, offset: int, length: int) -> bytes:
        """Read without advancing the clock or touching stats (test hook)."""
        self._check_range(offset, length)
        return bytes(self._data[offset : offset + length])


class ConventionalDrive(Drive):
    """A plain hard disk: reads and writes anywhere, positional timing only."""

    def __init__(self, capacity: int, profile: DriveProfile = HDD_PROFILE,
                 clock: SimClock | None = None) -> None:
        super().__init__(capacity, profile, clock)

    def _write_impl(self, offset: int, data: bytes, category: str = "data") -> None:
        length = len(data)
        self._check_range(offset, length)
        seeked = offset != self.model.head
        elapsed = self.model.access(offset, length, is_write=True)
        self.stats.record_write(offset, length, elapsed, category,
                                seeked=seeked, now=self.clock.now)
        self._data[offset : offset + length] = data
