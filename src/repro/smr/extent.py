"""Byte-range (extent) bookkeeping.

:class:`ExtentMap` maintains a set of disjoint half-open intervals
``[start, end)`` over the drive's address space.  It is used by the raw
HM-SMR drive to track which bytes currently hold valid data (the
damage-zone safety check), and by the dynamic-band manager and the
experiment harness to reason about on-disk layout.

The implementation keeps two parallel sorted lists of starts and ends and
uses :mod:`bisect`, giving ``O(log n)`` queries and ``O(n)`` worst-case
mutation -- ample for the tens of thousands of extents a simulation
produces.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Iterator

from repro.errors import InvariantViolation


@dataclass(frozen=True, order=True)
class Extent:
    """A half-open byte range ``[start, end)``."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise InvariantViolation(f"extent end {self.end} < start {self.start}")

    @property
    def length(self) -> int:
        return self.end - self.start

    def overlaps(self, start: int, end: int) -> bool:
        return self.start < end and start < self.end

    def contains(self, start: int, end: int) -> bool:
        return self.start <= start and end <= self.end


class ExtentMap:
    """A set of disjoint extents with merge-on-insert semantics."""

    def __init__(self) -> None:
        self._starts: list[int] = []
        self._ends: list[int] = []

    def __len__(self) -> int:
        return len(self._starts)

    def __iter__(self) -> Iterator[Extent]:
        for s, e in zip(self._starts, self._ends):
            yield Extent(s, e)

    def __repr__(self) -> str:
        ranges = ", ".join(f"[{s},{e})" for s, e in zip(self._starts, self._ends))
        return f"ExtentMap({ranges})"

    @property
    def total_bytes(self) -> int:
        """Sum of all extent lengths."""
        return sum(e - s for s, e in zip(self._starts, self._ends))

    def add(self, start: int, end: int) -> None:
        """Mark ``[start, end)``; adjacent/overlapping extents are merged."""
        if end <= start:
            return
        # Find the window of existing extents that touch [start, end].
        lo = bisect_left(self._ends, start)       # first extent with end >= start
        hi = bisect_right(self._starts, end)      # first extent with start > end
        if lo < hi:
            start = min(start, self._starts[lo])
            end = max(end, self._ends[hi - 1])
            del self._starts[lo:hi]
            del self._ends[lo:hi]
        self._starts.insert(lo, start)
        self._ends.insert(lo, end)

    def remove(self, start: int, end: int) -> int:
        """Clear ``[start, end)``; returns the number of bytes removed."""
        if end <= start:
            return 0
        lo = bisect_right(self._ends, start)      # first extent with end > start
        removed = 0
        i = lo
        new_pieces: list[tuple[int, int]] = []
        while i < len(self._starts) and self._starts[i] < end:
            s, e = self._starts[i], self._ends[i]
            removed += min(e, end) - max(s, start)
            if s < start:
                new_pieces.append((s, start))
            if e > end:
                new_pieces.append((end, e))
            i += 1
        if i > lo:
            del self._starts[lo:i]
            del self._ends[lo:i]
        for s, e in reversed(new_pieces):
            self._starts.insert(lo, s)
            self._ends.insert(lo, e)
        return removed

    def first_overlap(self, start: int, end: int) -> Extent | None:
        """Return the first extent overlapping ``[start, end)``, if any."""
        if end <= start:
            return None
        i = bisect_right(self._ends, start)
        if i < len(self._starts) and self._starts[i] < end:
            return Extent(self._starts[i], self._ends[i])
        return None

    def contains_range(self, start: int, end: int) -> bool:
        """True when ``[start, end)`` lies entirely inside one extent."""
        if end <= start:
            return True
        i = bisect_right(self._starts, start) - 1
        return i >= 0 and self._ends[i] >= end

    def covered_bytes(self, start: int, end: int) -> int:
        """Number of marked bytes inside ``[start, end)``."""
        if end <= start:
            return 0
        covered = 0
        i = bisect_right(self._ends, start)
        while i < len(self._starts) and self._starts[i] < end:
            covered += min(self._ends[i], end) - max(self._starts[i], start)
            i += 1
        return covered

    def last_end_leq(self, pos: int) -> int | None:
        """Largest extent end that is <= ``pos`` (None when there is none)."""
        i = bisect_right(self._ends, pos)
        if i == 0:
            return None
        return self._ends[i - 1]

    def max_end(self) -> int:
        """Highest marked byte offset (0 when empty)."""
        return self._ends[-1] if self._ends else 0

    def gaps(self, start: int, end: int) -> Iterator[Extent]:
        """Yield the unmarked sub-ranges of ``[start, end)``."""
        cursor = start
        i = bisect_right(self._ends, start)
        while i < len(self._starts) and self._starts[i] < end:
            s, e = self._starts[i], self._ends[i]
            if s > cursor:
                yield Extent(cursor, min(s, end))
            cursor = max(cursor, e)
            i += 1
        if cursor < end:
            yield Extent(cursor, end)

    def check_invariants(self) -> None:
        """Raise :class:`InvariantViolation` unless extents are sorted,
        disjoint, non-adjacent, and non-empty (test hook)."""
        prev_end: int | None = None
        for s, e in zip(self._starts, self._ends):
            if e <= s:
                raise InvariantViolation(f"empty extent [{s},{e})")
            if prev_end is not None and s <= prev_end:
                raise InvariantViolation(
                    f"extent [{s},{e}) not strictly after previous end {prev_end}"
                )
            prev_end = e
