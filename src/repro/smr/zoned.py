"""Zoned block device (ZBC/ZAC host-managed SMR, ZNS-style semantics).

The paper builds SEALDB on a *raw* HM-SMR drive precisely to escape the
fixed-zone model standardized by T10/T13 ZBC (Section II-A cites the
standardization effort).  This module implements that standardized
alternative so the trade-off can be measured: fixed, equal-size
**sequential-write-required zones**, each with a write pointer.

Rules enforced (per ZBC):

* a write must start exactly at its zone's write pointer;
* a write must not cross the zone boundary;
* rewinding requires an explicit ``reset_zone`` (which discards the
  zone's contents).

Anything else raises :class:`ZoneViolation`.  Unlike the fixed-band SMR
model there is no drive-side read-modify-write: the device simply
refuses; the *host* (see :class:`repro.fs.zonefs.ZoneStorage`) must
garbage-collect zones, which is where the write amplification
reappears.
"""

from __future__ import annotations

from repro.errors import DriveError
from repro.obs.events import ZoneReset
from repro.smr.drive import Drive
from repro.smr.timing import DriveProfile, SMR_PROFILE, SimClock


class ZoneViolation(DriveError):
    """A write broke the zoned-device sequential-write rule."""


class ZonedDrive(Drive):
    """Host-managed zoned device with sequential-write-required zones."""

    def __init__(self, capacity: int, zone_size: int,
                 profile: DriveProfile = SMR_PROFILE,
                 clock: SimClock | None = None) -> None:
        if zone_size <= 0:
            raise ValueError("zone size must be positive")
        if capacity % zone_size:
            capacity -= capacity % zone_size
        super().__init__(capacity, profile, clock)
        self.zone_size = zone_size
        self.num_zones = capacity // zone_size
        #: per-zone write pointer, as an absolute offset
        self._wp = [z * zone_size for z in range(self.num_zones)]
        self.zone_resets = 0

    def zone_of(self, offset: int) -> int:
        return offset // self.zone_size

    def write_pointer(self, zone: int) -> int:
        """Absolute offset of ``zone``'s write pointer."""
        return self._wp[zone]

    def zone_remaining(self, zone: int) -> int:
        """Writable bytes left in ``zone``."""
        return (zone + 1) * self.zone_size - self._wp[zone]

    def _write_impl(self, offset: int, data: bytes, category: str = "data") -> None:
        length = len(data)
        self._check_range(offset, length)
        zone = self.zone_of(offset)
        if offset != self._wp[zone]:
            raise ZoneViolation(
                f"write at {offset} but zone {zone} write pointer is "
                f"{self._wp[zone]}"
            )
        if offset + length > (zone + 1) * self.zone_size:
            raise ZoneViolation(
                f"write [{offset}, {offset + length}) crosses the boundary "
                f"of zone {zone}"
            )
        seeked = offset != self.model.head
        elapsed = self.model.access(offset, length, is_write=True)
        self.stats.record_write(offset, length, elapsed, category,
                                seeked=seeked, now=self.clock.now)
        self._data[offset : offset + length] = data
        self._wp[zone] = offset + length

    def reset_zone(self, zone: int) -> None:
        """Rewind ``zone``'s write pointer, discarding its contents."""
        if not 0 <= zone < self.num_zones:
            raise DriveError(f"no such zone {zone}")
        self._wp[zone] = zone * self.zone_size
        self.zone_resets += 1
        obs = self._obs
        if obs is not None:
            obs.emit(ZoneReset(ts=self.clock.now, zone=zone))

    def trim(self, offset: int, length: int) -> None:
        """Zones only reset wholesale; byte trims are advisory no-ops."""
        self._check_range(offset, length)

    def empty_zones(self) -> list[int]:
        return [z for z in range(self.num_zones)
                if self._wp[z] == z * self.zone_size]
