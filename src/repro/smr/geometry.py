"""Track geometry of a shingled disk.

The byte-addressed drive models express the shingle hazard as "writing
``[a, b)`` damages the next ``guard_size`` bytes".  This module derives
that byte figure from physical geometry -- track capacity and how many
downstream tracks a write head overlaps -- so profiles can be stated in
drive terms (the paper's guard region is "assigned by reserving
non-written shingled tracks").

Real drives have zoned bit recording (outer tracks hold more bytes);
the model uses the mean track size, which is what matters for guard
sizing.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TrackGeometry:
    """Geometry of the shingled surface."""

    #: bytes per track (mean across zones)
    track_bytes: int
    #: how many subsequent tracks a track write destroys
    shingle_overlap_tracks: int = 2

    def __post_init__(self) -> None:
        if self.track_bytes <= 0:
            raise ValueError("track size must be positive")
        if self.shingle_overlap_tracks < 1:
            raise ValueError("shingle overlap must be at least one track")

    @property
    def guard_bytes(self) -> int:
        """Bytes of guard space one write's damage zone covers."""
        return self.track_bytes * self.shingle_overlap_tracks

    def track_of(self, offset: int) -> int:
        """Track index containing byte ``offset``."""
        return offset // self.track_bytes

    def track_start(self, track: int) -> int:
        return track * self.track_bytes

    def tracks_spanned(self, offset: int, length: int) -> int:
        """Number of tracks an extent touches."""
        if length <= 0:
            return 0
        return self.track_of(offset + length - 1) - self.track_of(offset) + 1

    def damage_zone(self, offset: int, length: int) -> tuple[int, int]:
        """Byte range destroyed *beyond* a write of ``[offset, offset+length)``.

        Writing up to track ``t`` damages tracks ``t+1 ..
        t+shingle_overlap_tracks``; returned as a half-open byte range
        starting at the write's end (conservative: partial final tracks
        damage from the write end, not the track boundary).
        """
        end = offset + length
        last_track = self.track_of(end - 1) if length > 0 else self.track_of(end)
        zone_end = self.track_start(last_track + 1 + self.shingle_overlap_tracks)
        return end, max(end, zone_end)

    @classmethod
    def for_guard(cls, guard_bytes: int,
                  shingle_overlap_tracks: int = 2) -> "TrackGeometry":
        """Geometry whose guard region equals ``guard_bytes``.

        Used by the scaled profiles: the paper's 4 MB guard with a
        2-track overlap implies ~2 MB tracks; the scaled profile keeps
        the same relationship.
        """
        track = max(1, guard_bytes // shingle_overlap_tracks)
        return cls(track_bytes=track,
                   shingle_overlap_tracks=shingle_overlap_tracks)
