"""Simulated-drive substrate.

This package models the storage devices the paper evaluates on:

* :class:`~repro.smr.drive.ConventionalDrive` -- an ordinary HDD
  (Seagate ST1000DM003 in the paper), used for the Fig. 2 motivation
  experiment.
* :class:`~repro.smr.fixed_band.FixedBandSMRDrive` -- a conventional
  fixed-band SMR emulation where writing below a band's write frontier
  forces a read-modify-write of the whole band.  This is the device the
  LevelDB and SMRDB baselines run on and the source of *auxiliary write
  amplification* (AWA).
* :class:`~repro.smr.raw_hmsmr.RawHMSMRDrive` -- a raw, Caveat-Scriptor
  style host-managed SMR drive: writes may land anywhere provided the
  shingle "damage zone" following the write holds no valid data.
  SEALDB's dynamic-band manager runs on this device.

All drives share a positional :class:`~repro.smr.timing.DiskTimingModel`
driven by a simulated clock, so reported latencies and throughputs are
deterministic and host-independent.
"""

from repro.smr.timing import DiskTimingModel, DriveProfile, SimClock, HDD_PROFILE, SMR_PROFILE
from repro.smr.stats import AmplificationTracker, DriveStats, IORecord
from repro.smr.extent import Extent, ExtentMap
from repro.smr.geometry import TrackGeometry
from repro.smr.drive import ConventionalDrive, Drive
from repro.smr.fixed_band import FixedBandSMRDrive
from repro.smr.raw_hmsmr import RawHMSMRDrive
from repro.smr.drive_managed import DriveManagedSMRDrive
from repro.smr.partition import DrivePartition, partition_drive
from repro.smr.zoned import ZonedDrive

__all__ = [
    "AmplificationTracker",
    "ConventionalDrive",
    "DiskTimingModel",
    "Drive",
    "DriveManagedSMRDrive",
    "DrivePartition",
    "ZonedDrive",
    "partition_drive",
    "DriveProfile",
    "DriveStats",
    "Extent",
    "ExtentMap",
    "FixedBandSMRDrive",
    "HDD_PROFILE",
    "IORecord",
    "RawHMSMRDrive",
    "SMR_PROFILE",
    "SimClock",
    "TrackGeometry",
]
