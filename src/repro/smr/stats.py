"""I/O accounting: device statistics and the WA/AWA/MWA tracker.

Table I of the paper defines three amplification factors::

    WA   = bytes written by LSM compactions / bytes written by users
    AWA  = bytes written by the device      / bytes written by compactions
    MWA  = WA * AWA

The layering here mirrors those definitions exactly:

* the KV store reports *user* bytes (``put`` payloads) and *LSM* bytes
  (SSTable bytes emitted by flushes and compactions) to an
  :class:`AmplificationTracker`;
* each simulated drive counts *device* bytes per category in a
  :class:`DriveStats`, including read-modify-write overhead on
  fixed-band SMR drives;
* the tracker divides the two.

Write-ahead-log traffic is tagged with its own category so it never
pollutes AWA (the paper measures amplification of table data).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field


@dataclass
class IORecord:
    """One device-level I/O, recorded when tracing is enabled."""

    time: float
    offset: int
    length: int
    is_write: bool
    category: str
    rmw: bool = False


@dataclass
class DriveStats:
    """Per-drive counters; byte counters are additionally kept per category."""

    bytes_read: int = 0
    bytes_written: int = 0
    read_ops: int = 0
    write_ops: int = 0
    seeks: int = 0
    busy_time: float = 0.0
    rmw_count: int = 0
    rmw_bytes: int = 0
    bytes_read_by_category: dict[str, int] = field(default_factory=lambda: defaultdict(int))
    bytes_written_by_category: dict[str, int] = field(default_factory=lambda: defaultdict(int))
    trace: list[IORecord] | None = None

    def record_read(self, offset: int, length: int, elapsed: float,
                    category: str, *, seeked: bool, now: float, rmw: bool = False) -> None:
        self.bytes_read += length
        self.read_ops += 1
        self.busy_time += elapsed
        self.bytes_read_by_category[category] += length
        if seeked:
            self.seeks += 1
        if self.trace is not None:
            self.trace.append(IORecord(now, offset, length, False, category, rmw))

    def record_write(self, offset: int, length: int, elapsed: float,
                     category: str, *, seeked: bool, now: float, rmw: bool = False) -> None:
        self.bytes_written += length
        self.write_ops += 1
        self.busy_time += elapsed
        self.bytes_written_by_category[category] += length
        if seeked:
            self.seeks += 1
        if rmw:
            self.rmw_count += 1
            self.rmw_bytes += length
        if self.trace is not None:
            self.trace.append(IORecord(now, offset, length, True, category, rmw))

    def enable_trace(self) -> None:
        """Start recording every I/O (memory-hungry; use in experiments only)."""
        if self.trace is None:
            self.trace = []


#: category used for SSTable/table data; AWA is computed over this category
CATEGORY_TABLE = "table"
#: category used for write-ahead-log traffic (excluded from AWA)
CATEGORY_WAL = "wal"
#: category used for manifest / metadata traffic (excluded from AWA)
CATEGORY_META = "meta"


@dataclass
class AmplificationTracker:
    """Accumulates the Table I amplification factors for one store.

    The store calls :meth:`add_user_write` on every ``put`` and
    :meth:`add_lsm_write` whenever it emits SSTable bytes (memtable
    flushes and compaction outputs both count, as in the paper's
    definition of "data size in compactions").  Device bytes come from
    the attached drive's stats, restricted to the ``table`` category.
    """

    user_bytes: int = 0
    lsm_bytes: int = 0
    flush_bytes: int = 0
    compaction_bytes: int = 0

    def add_user_write(self, nbytes: int) -> None:
        self.user_bytes += nbytes

    def add_lsm_write(self, nbytes: int, *, is_flush: bool = False) -> None:
        self.lsm_bytes += nbytes
        if is_flush:
            self.flush_bytes += nbytes
        else:
            self.compaction_bytes += nbytes

    def wa(self) -> float:
        """Write amplification from the LSM-tree."""
        if self.user_bytes == 0:
            return 0.0
        return self.lsm_bytes / self.user_bytes

    def awa(self, drive_stats: DriveStats) -> float:
        """Auxiliary write amplification from the SMR drive."""
        if self.lsm_bytes == 0:
            return 0.0
        device = drive_stats.bytes_written_by_category.get(CATEGORY_TABLE, 0)
        return device / self.lsm_bytes

    def mwa(self, drive_stats: DriveStats) -> float:
        """Multiplicative overall write amplification (WA x AWA)."""
        return self.wa() * self.awa(drive_stats)
