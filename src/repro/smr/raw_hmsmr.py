"""Raw host-managed SMR drive (Caveat-Scriptor model).

The paper builds SEALDB on "a raw HM-SMR drive without physically
divided bands and persistent cache ... preferably written sequentially
and allowed to write anywhere with the promise of never overlapping
valid data" (Section II-A), citing Caveat-Scriptor [29].

The physical hazard being modelled: writing a track destroys data on
the next few shingled tracks.  We express that in bytes: a write to
``[offset, end)`` *damages* the following ``guard_size`` bytes
``[end, end + guard_size)``.  The drive keeps an
:class:`~repro.smr.extent.ExtentMap` of valid data and enforces two
rules on every write:

1. the target range must not itself contain valid data (the host must
   ``trim`` before reuse -- in-place overwrite is impossible on SMR);
2. the damage zone must not contain valid data (Eq. 1's guard-region
   requirement).

Violations raise :class:`~repro.errors.ShingleOverwriteError`; the
dynamic-band manager is responsible for never triggering them, and the
property-based tests verify it never does.

There is **no** read-modify-write here: every byte the host writes is
exactly one byte of device traffic, which is why AWA = 1 for SEALDB.
"""

from __future__ import annotations

import random

from repro.errors import ShingleOverwriteError
from repro.smr.drive import Drive
from repro.smr.extent import ExtentMap
from repro.smr.timing import DriveProfile, SMR_PROFILE, SimClock


class RawHMSMRDrive(Drive):
    """Write-anywhere shingled drive with a valid-data damage check."""

    def __init__(self, capacity: int, guard_size: int,
                 profile: DriveProfile = SMR_PROFILE,
                 clock: SimClock | None = None,
                 enforce: bool = True) -> None:
        if guard_size < 0:
            raise ValueError(f"guard size must be non-negative, got {guard_size}")
        super().__init__(capacity, profile, clock)
        self.guard_size = guard_size
        self.enforce = enforce
        self.valid = ExtentMap()

    def _write_impl(self, offset: int, data: bytes, category: str = "data") -> None:
        length = len(data)
        self._check_range(offset, length)
        end = offset + length
        if self.enforce:
            hit = self.valid.first_overlap(offset, end)
            if hit is not None:
                raise ShingleOverwriteError(offset, length, (hit.start, hit.end))
            damage_end = min(end + self.guard_size, self.capacity)
            hit = self.valid.first_overlap(end, damage_end)
            if hit is not None:
                raise ShingleOverwriteError(offset, length, (hit.start, hit.end))

        seeked = offset != self.model.head
        elapsed = self.model.access(offset, length, is_write=True)
        self.stats.record_write(offset, length, elapsed, category,
                                seeked=seeked, now=self.clock.now)
        self._data[offset:end] = data
        self.valid.add(offset, end)

    def trim(self, offset: int, length: int) -> None:
        """Invalidate ``[offset, offset+length)`` so the space may be reused."""
        self._check_range(offset, length)
        self.valid.remove(offset, offset + length)

    def valid_bytes(self) -> int:
        """Total bytes currently holding valid data."""
        return self.valid.total_bytes

    def rot_valid_bytes(self, count: int = 1, seed: int = 0) -> list[int]:
        """Inject bit-rot at ``count`` seeded positions inside valid data.

        Models ageing shingled media: rot lands where data actually
        lives, never in trimmed gaps (which the next write would heal
        unnoticed).  Returns the chosen absolute offsets so tests can
        assert on which table was hit.  Deterministic for a given seed
        and valid-extent layout.
        """
        extents = list(self.valid)
        if not extents or count <= 0:
            return []
        rng = random.Random(seed)
        media = self.inject_media_errors(seed=seed)
        total = sum(e.length for e in extents)
        offsets = []
        for _ in range(count):
            pick = rng.randrange(total)
            for extent in extents:
                if pick < extent.length:
                    offsets.append(extent.start + pick)
                    break
                pick -= extent.length
        for offset in offsets:
            media.add_rot(offset)
        return offsets

    def highest_valid_offset(self) -> int:
        """End offset of the last valid extent (the append frontier)."""
        return self.valid.max_end()
