"""SEALDB reproduction: a set-aware LSM key-value store on simulated
SMR drives with dynamic bands.

Public entry points:

* :func:`repro.open` -- construct any registered store kind
  (``"leveldb"``, ``"smrdb"``, ``"leveldb+sets"``, ``"sealdb"``,
  ``"zonekv"``); the blessed way to build a store.
* :class:`repro.KVStoreBase` -- the store facade every kind returns
  (context manager; ``store.obs`` is its observability bus).
* :mod:`repro.obs` -- typed events, metrics registry, JSON-lines traces.
* :class:`repro.SealDB` and friends -- the concrete classes, still
  importable directly.
* :mod:`repro.workloads` -- micro-benchmarks and YCSB.
* :mod:`repro.experiments` -- one module per paper table/figure.

Quick start::

    import repro

    with repro.open("sealdb") as db:
        db.put(b"key", b"value")
        assert db.get(b"key") == b"value"
"""

from repro.baselines import LevelDBStore, LevelDBWithSets, SMRDBStore
from repro.core import SealDB
from repro.harness import (
    DEFAULT_PROFILE,
    SMALL_PROFILE,
    ScaleProfile,
    make_store,
)
from repro.kvstore import KVStoreBase
from repro.lsm import DB, Options
from repro.registry import open_store, register_store, store_kinds
from repro.obs import Observability

#: the single public constructor: ``repro.open("sealdb")``
open = open_store

__version__ = "1.1.0"

__all__ = [
    "DB",
    "DEFAULT_PROFILE",
    "KVStoreBase",
    "LevelDBStore",
    "LevelDBWithSets",
    "Observability",
    "Options",
    "SMALL_PROFILE",
    "SMRDBStore",
    "ScaleProfile",
    "SealDB",
    "__version__",
    "make_store",
    "open",
    "open_store",
    "register_store",
    "store_kinds",
]
