"""SEALDB reproduction: a set-aware LSM key-value store on simulated
SMR drives with dynamic bands.

Public entry points:

* :class:`repro.SealDB` -- the paper's store (sets + dynamic bands on a
  raw HM-SMR drive).
* :class:`repro.LevelDBStore`, :class:`repro.SMRDBStore`,
  :class:`repro.LevelDBWithSets` -- the comparison stores.
* :func:`repro.make_store` -- factory over all four.
* :mod:`repro.workloads` -- micro-benchmarks and YCSB.
* :mod:`repro.experiments` -- one module per paper table/figure.

Quick start::

    from repro import SealDB
    db = SealDB()
    db.put(b"key", b"value")
    assert db.get(b"key") == b"value"
"""

from repro.baselines import LevelDBStore, LevelDBWithSets, SMRDBStore
from repro.core import SealDB
from repro.harness import (
    DEFAULT_PROFILE,
    SMALL_PROFILE,
    ScaleProfile,
    make_store,
)
from repro.kvstore import KVStoreBase
from repro.lsm import DB, Options

__version__ = "1.0.0"

__all__ = [
    "DB",
    "DEFAULT_PROFILE",
    "KVStoreBase",
    "LevelDBStore",
    "LevelDBWithSets",
    "Options",
    "SMALL_PROFILE",
    "SMRDBStore",
    "ScaleProfile",
    "SealDB",
    "__version__",
    "make_store",
]
