"""SEALDB reproduction: a set-aware LSM key-value store on simulated
SMR drives with dynamic bands.

Public entry points (everything a caller needs without reaching into
``repro.lsm.*`` internals):

* :func:`repro.open` -- construct any registered store kind
  (``"leveldb"``, ``"smrdb"``, ``"leveldb+sets"``, ``"sealdb"``,
  ``"zonekv"``); the blessed way to build a store.  ``shards=N``
  returns a keyspace-partitioned :class:`repro.ShardedStore` over N
  independent instances.
* :class:`repro.KVStoreBase` -- the store facade every kind returns
  (context manager; ``store.obs`` is its observability bus;
  ``store.snapshot()`` is a pinned read view).
* :class:`repro.WriteBatch` -- atomic multi-key updates for
  ``store.write_batch`` (previously only at ``repro.lsm.wal``).
* :class:`repro.Options` / :class:`repro.ScaleProfile` and the named
  profiles in :data:`repro.PROFILES`.
* :mod:`repro.shard` -- routers and the sharded frontend.
* :mod:`repro.net` -- the serving layer: RESP-subset TCP server
  (``repro serve``), sync/pipelined client, and network load generator
  (imported lazily; ``from repro.net import ServerThread, NetClient``).
* :mod:`repro.obs` -- typed events, metrics registry, JSON-lines traces.
* :class:`repro.SealDB` and friends -- the concrete classes, still
  importable directly.
* :mod:`repro.workloads` -- micro-benchmarks and YCSB.
* :mod:`repro.experiments` -- one module per paper table/figure.

Quick start::

    import repro

    with repro.open("sealdb") as db:
        db.put(b"key", b"value")
        assert db.get(b"key") == b"value"

    with repro.open("sealdb", shards=4) as db:   # partitioned, parallel
        db.write_batch(repro.WriteBatch().put(b"a", b"1").put(b"z", b"2"))
        print(db.timeline())
"""

from repro.baselines import LevelDBStore, LevelDBWithSets, SMRDBStore
from repro.core import SealDB
from repro.errors import KeyRangeUnavailable, MediaError, ShardUnavailable
from repro.harness import (
    DEFAULT_PROFILE,
    SMALL_PROFILE,
    ScaleProfile,
    make_store,
)
from repro.kvstore import KVStoreBase
from repro.lsm import DB, Options
from repro.lsm.db import Snapshot
from repro.lsm.wal import WriteBatch
from repro.registry import default_shards, open_store, register_store, store_kinds
from repro.obs import Observability
from repro.shard import HashRouter, RangeRouter, Router, ShardedStore

#: the single public constructor: ``repro.open("sealdb")``
open = open_store

#: the named scale profiles experiments refer to
PROFILES: dict[str, ScaleProfile] = {
    DEFAULT_PROFILE.name: DEFAULT_PROFILE,
    SMALL_PROFILE.name: SMALL_PROFILE,
}

__version__ = "1.3.0"

__all__ = [
    "DB",
    "DEFAULT_PROFILE",
    "HashRouter",
    "KVStoreBase",
    "KeyRangeUnavailable",
    "LevelDBStore",
    "LevelDBWithSets",
    "MediaError",
    "ShardUnavailable",
    "Observability",
    "Options",
    "PROFILES",
    "RangeRouter",
    "Router",
    "SMALL_PROFILE",
    "SMRDBStore",
    "ScaleProfile",
    "SealDB",
    "ShardedStore",
    "Snapshot",
    "WriteBatch",
    "__version__",
    "default_shards",
    "make_store",
    "open",
    "open_store",
    "register_store",
    "store_kinds",
]
