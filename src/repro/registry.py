"""Store registry and the single public entry point ``repro.open``.

Every store class registers itself under its CLI kind name::

    @register_store("sealdb")
    class SealDB(KVStoreBase):
        ...

and callers construct stores uniformly::

    import repro

    with repro.open("sealdb") as db:                 # default profile
        ...
    db = repro.open("leveldb", profile=SMALL_PROFILE, drive_kind="hdd")

``repro.open`` replaces the per-module wiring that used to live in
``harness.runner.make_store`` (now a thin deprecated alias) and applies
any installed observability taps (:func:`repro.obs.tapping`), which is
how ``repro trace`` / ``repro metrics`` instrument stores that
experiments construct internally.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Callable

from repro.errors import ReproError
from repro.harness.profiles import DEFAULT_PROFILE, ScaleProfile

if TYPE_CHECKING:  # pragma: no cover
    from repro.kvstore import KVStoreBase

_REGISTRY: dict[str, Callable[..., "KVStoreBase"]] = {}
_ALIASES: dict[str, str] = {
    "leveldb_sets": "leveldb+sets",  # shell-friendly spelling
}
_builtin_loaded = False


def register_store(kind: str, *aliases: str):
    """Class decorator: make ``kind`` constructible via ``repro.open``."""
    def decorate(cls):
        _REGISTRY[kind] = cls
        for alias in aliases:
            _ALIASES[alias] = kind
        return cls
    return decorate


def _ensure_builtin() -> None:
    """Import the bundled store modules so their decorators run.

    Lazy because the store modules import ``harness.profiles`` — a
    top-level import here would be circular.
    """
    global _builtin_loaded
    if _builtin_loaded:
        return
    _builtin_loaded = True
    import repro.baselines.leveldb      # noqa: F401
    import repro.baselines.leveldb_sets  # noqa: F401
    import repro.baselines.smrdb        # noqa: F401
    import repro.baselines.zonekv       # noqa: F401
    import repro.core.sealdb            # noqa: F401


def store_kinds() -> tuple[str, ...]:
    """The registered store kinds, sorted."""
    _ensure_builtin()
    return tuple(sorted(_REGISTRY))


def default_shards() -> int:
    """The implicit shard count: ``REPRO_DEFAULT_SHARDS`` if set
    (used by the CI matrix to smoke out single-shard assumptions),
    else 1."""
    raw = os.environ.get("REPRO_DEFAULT_SHARDS", "").strip()
    if not raw:
        return 1
    try:
        value = int(raw)
    except ValueError as exc:
        raise ReproError(
            f"REPRO_DEFAULT_SHARDS must be an integer, got {raw!r}") from exc
    if value < 1:
        raise ReproError(f"REPRO_DEFAULT_SHARDS must be >= 1, got {value}")
    return value


def open_store(kind: str, *, profile: ScaleProfile = DEFAULT_PROFILE,
               shards: int | None = None, router: str = "hash",
               router_boundaries: list[bytes] | None = None,
               shard_parallel: bool = True,
               **overrides) -> "KVStoreBase":
    """Construct a store by kind name — the public entry point
    (exported as ``repro.open``).

    ``overrides`` are forwarded to the store constructor (``capacity``,
    ``clock``, drive/placement knobs, plus any ``Options`` overrides
    the store accepts).

    ``shards`` > 1 returns a :class:`repro.shard.ShardedStore` over
    that many independent instances of ``kind`` (each with its own
    drive, WAL, and compaction state; ``capacity`` and the profile
    apply *per shard*), keys partitioned by ``router`` (``"hash"``,
    ``"range"``, or a :class:`repro.shard.Router`).  ``shards=1`` (or
    unset, with ``REPRO_DEFAULT_SHARDS`` empty) is exactly the
    single-store construction path.
    """
    _ensure_builtin()
    key = kind.lower()
    key = _ALIASES.get(key, key)
    cls = _REGISTRY.get(key)
    if cls is None:
        raise ReproError(
            f"unknown store kind {kind!r}; choose from {store_kinds()}")
    if shards is None:
        shards = default_shards()
    if shards < 1:
        raise ReproError(f"shards must be >= 1, got {shards}")
    from repro.obs.bus import apply_taps
    if shards == 1:
        store = cls(profile, **overrides)
        apply_taps(store)
        return store
    if "clock" in overrides:
        raise ReproError(
            "cannot share one clock across shards; every shard owns an "
            "independent simulated timeline")
    from repro.shard import ShardedStore, make_router
    instances = [cls(profile, **overrides) for _ in range(shards)]
    store = ShardedStore(
        instances, make_router(router, shards, router_boundaries),
        parallel=shard_parallel)
    apply_taps(store)
    return store
