"""RESP-subset wire codec: incremental parser + reply encoders.

The serving layer speaks a compatible subset of the Redis
serialization protocol (RESP2).  Requests are arrays of bulk strings
(``*N\\r\\n$len\\r\\n...``); for telnet-friendliness a bare line
(``PING\\r\\n``) is also accepted as an *inline* command and split on
whitespace.  Replies use the five RESP value types:

====================  =======================================
``+OK\\r\\n``           simple string (decoded to ``str``)
``-CODE message``     error (``RespError``; CODE is the first token)
``:42\\r\\n``           integer
``$5\\r\\nhello\\r\\n``   bulk string (``bytes``; ``$-1`` is ``None``)
``*N ...``            array (``list``; ``*-1`` is ``None``)
====================  =======================================

The parser is incremental and allocation-light: ``feed()`` appends to
one buffer, ``next_value()`` / ``next_request()`` return a complete
value or ``None`` when more bytes are needed, and malformed input
raises :class:`ProtocolError` (the server answers ``-ERR protocol``
and closes the connection).  Hard limits on bulk and array sizes bound
the memory a single peer can pin before admission control even runs.
"""

from __future__ import annotations

from repro.errors import ReproError

CRLF = b"\r\n"

#: parser safety limits (per value, before admission control applies)
MAX_BULK = 32 * 1024 * 1024
MAX_ARRAY = 1024 * 1024
MAX_INLINE = 64 * 1024


class ProtocolError(ReproError):
    """The peer sent bytes that are not valid RESP (subset)."""


class RespError(Exception):
    """A ``-CODE message`` error reply, decoded.

    ``code`` is the leading token (``ERR``, ``OVERLOADED``,
    ``UNAVAILABLE`` ...), ``message`` the human remainder.
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"{code} {message}".strip())
        self.code = code
        self.message = message


#: sentinel distinguishing "need more bytes" from a parsed None (null bulk)
_INCOMPLETE = object()


# -- encoding -----------------------------------------------------------------

def encode_simple(text: str) -> bytes:
    return b"+" + text.encode() + CRLF


def encode_error(code: str, message: str) -> bytes:
    # CR/LF inside a message would desynchronise the stream
    flat = f"{code} {message}".replace("\r", " ").replace("\n", " ")
    return b"-" + flat.encode() + CRLF


def encode_int(value: int) -> bytes:
    return b":%d\r\n" % value


def encode_bulk(data: bytes | None) -> bytes:
    if data is None:
        return b"$-1\r\n"
    return b"$%d\r\n" % len(data) + data + CRLF


def encode_array(items: list | None) -> bytes:
    if items is None:
        return b"*-1\r\n"
    parts = [b"*%d\r\n" % len(items)]
    for item in items:
        if item is None or isinstance(item, (bytes, bytearray)):
            parts.append(encode_bulk(item))
        elif isinstance(item, bool):  # before int: bool is an int subclass
            parts.append(encode_int(int(item)))
        elif isinstance(item, int):
            parts.append(encode_int(item))
        elif isinstance(item, list):
            parts.append(encode_array(item))
        elif isinstance(item, str):
            parts.append(encode_bulk(item.encode()))
        else:
            raise ProtocolError(f"cannot encode {type(item).__name__}")
    return b"".join(parts)


def encode_command(args: list[bytes]) -> bytes:
    """A client request: an array of bulk strings."""
    parts = [b"*%d\r\n" % len(args)]
    for arg in args:
        if isinstance(arg, str):
            arg = arg.encode()
        parts.append(encode_bulk(arg))
    return b"".join(parts)


# -- incremental parsing ------------------------------------------------------

class RespParser:
    """Incremental RESP reader over one byte stream (either direction)."""

    def __init__(self) -> None:
        self._buf = bytearray()

    def feed(self, data: bytes) -> None:
        self._buf.extend(data)

    @property
    def buffered(self) -> int:
        return len(self._buf)

    def _find_line(self, start: int) -> int | None:
        """Index just past the CRLF of the line beginning at ``start``."""
        idx = self._buf.find(b"\r\n", start)
        if idx < 0:
            if len(self._buf) - start > MAX_INLINE:
                raise ProtocolError("line too long")
            return None
        return idx + 2

    def _parse_int_line(self, start: int, end: int, what: str) -> int:
        raw = bytes(self._buf[start + 1:end - 2])
        try:
            return int(raw)
        except ValueError:
            raise ProtocolError(f"bad {what} length {raw!r}") from None

    def _parse(self, pos: int):
        """Parse one value at ``pos``; returns ``(value, next_pos)`` or
        ``(_INCOMPLETE, pos)`` when the buffer ends mid-value."""
        if pos >= len(self._buf):
            return _INCOMPLETE, pos
        marker = self._buf[pos:pos + 1]
        if marker in (b"+", b"-", b":"):
            end = self._find_line(pos)
            if end is None:
                return _INCOMPLETE, pos
            line = bytes(self._buf[pos + 1:end - 2])
            if marker == b":":
                try:
                    return int(line), end
                except ValueError:
                    raise ProtocolError(f"bad integer {line!r}") from None
            text = line.decode("utf-8", "replace")
            if marker == b"+":
                return text, end
            code, _, message = text.partition(" ")
            return RespError(code or "ERR", message), end
        if marker == b"$":
            end = self._find_line(pos)
            if end is None:
                return _INCOMPLETE, pos
            length = self._parse_int_line(pos, end, "bulk")
            if length == -1:
                return None, end
            if length < 0 or length > MAX_BULK:
                raise ProtocolError(f"bulk length {length} out of range")
            if len(self._buf) < end + length + 2:
                return _INCOMPLETE, pos
            data = bytes(self._buf[end:end + length])
            if self._buf[end + length:end + length + 2] != b"\r\n":
                raise ProtocolError("bulk string missing CRLF terminator")
            return data, end + length + 2
        if marker == b"*":
            end = self._find_line(pos)
            if end is None:
                return _INCOMPLETE, pos
            count = self._parse_int_line(pos, end, "array")
            if count == -1:
                return None, end
            if count < 0 or count > MAX_ARRAY:
                raise ProtocolError(f"array length {count} out of range")
            items = []
            cursor = end
            for _ in range(count):
                value, cursor = self._parse(cursor)
                if value is _INCOMPLETE:
                    return _INCOMPLETE, pos
                items.append(value)
            return items, cursor
        # inline command: a bare CRLF-terminated line
        end = self._find_line(pos)
        if end is None:
            return _INCOMPLETE, pos
        return _Inline(bytes(self._buf[pos:end - 2])), end

    def next_value(self):
        """One complete RESP value, or ``None`` if more bytes are needed.

        Null bulk/array values come back as the :data:`NULL` sentinel so
        callers can tell them apart from "incomplete".
        """
        value, cursor = self._parse(0)
        if value is _INCOMPLETE:
            return None
        del self._buf[:cursor]
        if value is None:
            return NULL
        return value

    def next_request(self) -> list[bytes] | None:
        """One complete client request as a list of ``bytes`` args, or
        ``None`` if more bytes are needed.  Accepts RESP arrays of bulk
        strings and inline commands; anything else is a protocol error."""
        value = self.next_value()
        if value is None:
            return None
        if isinstance(value, _Inline):
            if not value.line.strip():
                return []
            return value.line.split()
        if not isinstance(value, list):
            raise ProtocolError("request must be an array of bulk strings")
        args: list[bytes] = []
        for item in value:
            if not isinstance(item, (bytes, bytearray)):
                raise ProtocolError("request args must be bulk strings")
            args.append(bytes(item))
        return args


class _Inline:
    """Marker wrapper for an inline command line."""

    __slots__ = ("line",)

    def __init__(self, line: bytes) -> None:
        self.line = line


class _Null:
    """Parsed RESP null (``$-1`` / ``*-1``); distinct from "incomplete"."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover
        return "NULL"

    def __bool__(self) -> bool:
        return False


NULL = _Null()
