"""Network load generator: closed- and open-loop clients over loopback.

Closed loop (the throughput probe): ``clients`` threads, each with one
connection, keep ``pipeline`` requests outstanding until their op
quota (or deadline) is met -- offered load adapts to service rate, so
ops/sec measures the server+store ceiling.

Open loop (the latency probe): each client fires requests on a fixed
schedule derived from ``rate`` regardless of completions, the way real
user traffic arrives; queueing delay shows up as latency instead of
reduced throughput, and admission control shows up as ``-OVERLOADED``
counts rather than client-side backlog.

Both loops draw from one deterministic mixed workload (SET / GET /
SCAN by ``read_fraction`` / ``scan_fraction``, seeded), record wall
latency per request into the obs histogram type, and tally the typed
error replies separately -- an ``-OVERLOADED`` shed is the admission
policy working, not a failure.

When the caller owns the store in-process (``repro bench-net``), pass
it as ``store`` to also capture per-shard *simulated* device seconds:
wall ops/sec on loopback is GIL-bound, while ops per max-shard-second
is the fleet-parallel throughput the sharding work is about (same
convention as ``repro baseline --shards``).
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field

from repro.net.client import NetClient, Overloaded, ServerError, Unavailable
from repro.obs.metrics import Histogram


@dataclass
class LoadConfig:
    host: str = "127.0.0.1"
    port: int = 0
    clients: int = 4
    pipeline: int = 16            # requests in flight per client (closed loop)
    ops: int = 4000               # total request budget across clients
    duration: float | None = None  # optional wall deadline (seconds)
    mode: str = "closed"          # "closed" | "open"
    rate: float = 2000.0          # open loop: aggregate target req/s
    key_space: int = 2000
    key_size: int = 16
    value_size: int = 64
    read_fraction: float = 0.5
    scan_fraction: float = 0.02
    scan_limit: int = 20
    seed: int = 0


@dataclass
class LoadReport:
    """What one load run measured."""

    ops: int = 0
    ok: int = 0
    overloaded: int = 0
    unavailable: int = 0
    errors: int = 0
    wall_seconds: float = 0.0
    latency: Histogram = field(default_factory=lambda: Histogram("latency"))
    #: per-shard simulated seconds consumed (when a store was provided)
    shard_seconds: list[float] = field(default_factory=list)

    @property
    def ops_per_sec(self) -> float:
        return self.ops / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def sim_ops_per_sec(self) -> float:
        """Ops per *parallel device second*: total ops over the busiest
        shard's simulated clock advance (fleet wall-time convention)."""
        busiest = max(self.shard_seconds, default=0.0)
        return self.ops / busiest if busiest else 0.0

    def merge(self, other: "LoadReport") -> None:
        self.ops += other.ops
        self.ok += other.ok
        self.overloaded += other.overloaded
        self.unavailable += other.unavailable
        self.errors += other.errors
        self.latency.merge(other.latency)

    def render(self) -> str:
        q = self.latency.quantiles()
        lines = [
            f"requests        {self.ops:>10,} ({self.ok:,} ok, "
            f"{self.overloaded:,} overloaded, {self.unavailable:,} "
            f"unavailable, {self.errors:,} errors)",
            f"wall            {self.wall_seconds:>10.3f} s  "
            f"({self.ops_per_sec:,.0f} req/s)",
        ]
        if self.shard_seconds:
            lines.append(
                f"device-parallel {max(self.shard_seconds):>10.3f} s  "
                f"({self.sim_ops_per_sec:,.0f} req/s over "
                f"{len(self.shard_seconds)} shard(s))")
        if self.latency.count:
            lines.append(
                f"latency         p50 {_us(q['p50'])}  p90 {_us(q['p90'])}  "
                f"p99 {_us(q['p99'])}  max {_us(self.latency.max)}")
        return "\n".join(lines)


def _us(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds * 1e6:.0f}us"


class _Workload:
    """Deterministic per-worker command stream."""

    def __init__(self, config: LoadConfig, worker: int) -> None:
        self._config = config
        self._rng = random.Random((config.seed << 8) | worker)

    def key(self, index: int) -> bytes:
        return b"%0*d" % (self._config.key_size, index)

    def next_command(self) -> list[bytes]:
        c = self._config
        roll = self._rng.random()
        index = self._rng.randrange(c.key_space)
        if roll < c.scan_fraction:
            start = self.key(index)
            return [b"SCAN", start, b"", b"%d" % c.scan_limit]
        if roll < c.scan_fraction + c.read_fraction:
            return [b"GET", self.key(index)]
        value = bytes(self._rng.getrandbits(8)
                      for _ in range(min(c.value_size, 16)))
        value = (value * (c.value_size // len(value) + 1))[:c.value_size]
        return [b"SET", self.key(index), value]


def _tally(report: LoadReport, results: list, latency: float) -> None:
    for value in results:
        report.ops += 1
        report.latency.record(latency)
        if isinstance(value, Overloaded):
            report.overloaded += 1
        elif isinstance(value, Unavailable):
            report.unavailable += 1
        elif isinstance(value, ServerError):
            report.errors += 1
        else:
            report.ok += 1


def _closed_worker(config: LoadConfig, worker: int, quota: int,
                   deadline: float | None, report: LoadReport) -> None:
    workload = _Workload(config, worker)
    client = NetClient(config.host, config.port)
    try:
        done = 0
        while done < quota:
            if deadline is not None and time.monotonic() >= deadline:
                break
            burst = min(config.pipeline, quota - done)
            commands = [workload.next_command() for _ in range(burst)]
            t0 = time.monotonic()
            results = client.execute_pipeline(commands)
            latency = time.monotonic() - t0
            # pipelined: every request in the burst saw ~the burst RTT
            _tally(report, results, latency)
            done += burst
    finally:
        client.quit()
        client.close()


def _open_worker(config: LoadConfig, worker: int, quota: int,
                 deadline: float | None, report: LoadReport) -> None:
    workload = _Workload(config, worker)
    client = NetClient(config.host, config.port)
    interval = config.clients / config.rate if config.rate > 0 else 0.0
    next_fire = time.monotonic()
    try:
        for _ in range(quota):
            now = time.monotonic()
            if deadline is not None and now >= deadline:
                break
            if interval:
                if now < next_fire:
                    time.sleep(next_fire - now)
                next_fire += interval
            command = workload.next_command()
            t0 = time.monotonic()
            results = client.execute_pipeline([command])
            _tally(report, results, time.monotonic() - t0)
    finally:
        client.quit()
        client.close()


def run_load(config: LoadConfig, store=None) -> LoadReport:
    """Run one load phase against a live server; returns the merged
    :class:`LoadReport`.  ``store`` (optional, in-process) adds the
    simulated per-shard device seconds consumed during the run."""
    shards = list(getattr(store, "shards", [])) or ([store] if store else [])
    clocks_before = [s.now for s in shards]

    worker_fn = _closed_worker if config.mode == "closed" else _open_worker
    per_worker = [LoadReport() for _ in range(config.clients)]
    quota, extra = divmod(config.ops, config.clients)
    deadline = (time.monotonic() + config.duration
                if config.duration is not None else None)
    threads = []
    t0 = time.monotonic()
    for worker in range(config.clients):
        n = quota + (1 if worker < extra else 0)
        thread = threading.Thread(
            target=worker_fn,
            args=(config, worker, n, deadline, per_worker[worker]),
            name=f"loadgen-{worker}", daemon=True)
        thread.start()
        threads.append(thread)
    for thread in threads:
        thread.join()
    wall = time.monotonic() - t0

    merged = LoadReport()
    for report in per_worker:
        merged.merge(report)
    merged.wall_seconds = wall
    merged.shard_seconds = [s.now - before
                            for s, before in zip(shards, clocks_before)]
    return merged
