"""The asyncio TCP server fronting any ``repro.open()`` store.

Layer map (one connection)::

    socket -> RespParser -> dispatch -> bounded executor -> store
                 |             |                               |
                 |        admission control            lock_for(key)
                 v             v                               v
            read pause    -OVERLOADED                 per-shard parallel
            (backpressure)                            blocking invocation

Concurrency model
-----------------
The event loop owns every connection; blocking store calls run on a
bounded ``ThreadPoolExecutor``, each wrapped in the store's
``lock_for(key)`` -- a per-shard lock on a :class:`ShardedStore`, so
pipelined requests hitting different shards execute in parallel while
one shard's engine stack stays single-threaded.

Pipelining & backpressure
-------------------------
Each connection runs a reader task (parse request -> dispatch) and a
writer task (await replies *in request order* -> write).  A
per-connection semaphore of ``max_pipeline`` slots is taken before
dispatch and released only after the reply bytes are flushed, so a
client that stops reading (or floods requests) stalls its own reader
-- TCP backpressure end to end -- without touching other connections.

Admission control
-----------------
Two global gates checked in the event loop before dispatch:
``max_inflight`` requests and ``max_inflight_bytes`` of request
payload.  A request over either limit is answered ``-OVERLOADED``
immediately (in order) instead of queueing unboundedly; PING / INFO /
QUIT always pass so health checks work under overload.

Graceful drain
--------------
``stop()`` closes the listener, wakes every connection's reader (no
new requests), lets queued in-flight requests finish and their replies
flush, then closes connections, the executor, and -- if the server
owns it -- the store.  Scans are materialized (bounded by
``max_scan_keys``) and explicitly closed inside the executor call, so
a drain never strands per-shard iterators.

Error mapping
-------------
The PR 4 degraded-mode semantics survive the wire: a quarantined range
maps to ``-UNAVAILABLE`` (typed, retryable-after-repair) while healthy
ranges keep serving; anything else unexpected maps to ``-ERR``.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.errors import KeyRangeUnavailable, ReproError, ShardUnavailable
from repro.kvstore import KVStoreBase
from repro.lsm.wal import WriteBatch
from repro.net.protocol import (
    ProtocolError,
    RespParser,
    encode_array,
    encode_bulk,
    encode_error,
    encode_int,
    encode_simple,
)
from repro.obs.bus import Observability, apply_taps
from repro.obs.events import (
    NetConnClose,
    NetConnOpen,
    NetDrain,
    NetOverload,
    NetRequest,
)

#: commands admission control always lets through
CONTROL_COMMANDS = frozenset({b"PING", b"INFO", b"QUIT"})

OK = encode_simple("OK")
PONG = encode_simple("PONG")


@dataclass
class ServerConfig:
    """Tunables for one :class:`KVServer`."""

    host: str = "127.0.0.1"
    port: int = 0                      # 0: ephemeral, read server.address
    max_pipeline: int = 128            # per-connection in-flight requests
    max_inflight: int = 512            # global in-flight requests
    max_inflight_bytes: int = 32 * 1024 * 1024  # global queued payload
    max_scan_keys: int = 1000          # hard cap per SCAN reply
    executor_workers: int | None = None  # default: shards + 2
    drain_timeout: float = 10.0        # seconds to wait for in-flight


class _Connection:
    """Per-connection state shared by the reader and writer tasks."""

    __slots__ = ("peer", "parser", "replies", "slots", "quit",
                 "requests", "reason")

    def __init__(self, peer: str, max_pipeline: int) -> None:
        self.peer = peer
        self.parser = RespParser()
        #: ordered (future-of-reply-bytes, slot_held) queue -> writer task
        self.replies: asyncio.Queue = asyncio.Queue()
        self.slots = asyncio.Semaphore(max_pipeline)
        self.quit = False
        self.requests = 0
        self.reason = "eof"


class KVServer:
    """RESP-subset server over one store (single or sharded)."""

    #: tap identity: `repro trace` / `repro metrics` collect the server
    #: like a store, so the net.* family lands in their output
    name = "net"
    quarantined_tables = 0

    def __init__(self, store: KVStoreBase,
                 config: ServerConfig | None = None, *,
                 owns_store: bool = False) -> None:
        self.store = store
        self.config = config or ServerConfig()
        self._owns_store = owns_store
        shards = len(getattr(store, "shards", ())) or 1
        self._workers = self.config.executor_workers or shards + 2
        self._executor: ThreadPoolExecutor | None = None
        self._server: asyncio.AbstractServer | None = None
        self._drained = asyncio.Event()
        self._finished = asyncio.Event()
        self._stopped = False
        self._conn_tasks: set[asyncio.Task] = set()
        self._connections: set[_Connection] = set()
        self._inflight = 0
        self._inflight_bytes = 0
        self._obs = None
        self.obs = Observability("net")
        self.obs.bind(self)
        self.obs.arm()  # INFO and `repro serve` always report counters
        m = self.obs.metrics
        m.gauge("net.connections_active", lambda: len(self._connections))
        m.gauge("net.inflight", lambda: self._inflight)
        m.gauge("net.inflight_bytes", lambda: self._inflight_bytes)
        apply_taps(self)

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns the listening address."""
        self._executor = ThreadPoolExecutor(
            max_workers=self._workers, thread_name_prefix="repro-net")
        self._server = await asyncio.start_server(
            self._handle, self.config.host, self.config.port)
        return self.address

    @property
    def address(self) -> tuple[str, int]:
        sock = self._server.sockets[0]
        return sock.getsockname()[:2]

    async def stop(self) -> None:
        """Graceful drain: stop accepting, finish in-flight, close."""
        if self._stopped:
            await self._finished.wait()
            return
        self._stopped = True
        self._server.close()
        await self._server.wait_closed()
        obs = self._obs
        if obs is not None:
            obs.emit(NetDrain(ts=time.monotonic(),
                              connections=len(self._connections),
                              inflight=self._inflight))
        for conn in self._connections:
            conn.reason = "drain"
        self._drained.set()
        if self._conn_tasks:
            done, pending = await asyncio.wait(
                self._conn_tasks, timeout=self.config.drain_timeout)
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        self._executor.shutdown(wait=True)
        if self._owns_store:
            self.store.close()
        self._finished.set()

    async def serve_forever(self) -> None:
        """Block until a :meth:`stop` (scheduled from a signal handler
        or another task) has fully drained the server."""
        await self._finished.wait()

    # -- connection handling -------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        task.add_done_callback(self._conn_tasks.discard)
        peername = writer.get_extra_info("peername")
        peer = f"{peername[0]}:{peername[1]}" if peername else "?"
        conn = _Connection(peer, self.config.max_pipeline)
        self._connections.add(conn)
        obs = self._obs
        if obs is not None:
            obs.emit(NetConnOpen(ts=time.monotonic(), peer=peer))
        writer_task = asyncio.get_running_loop().create_task(
            self._write_loop(conn, writer))
        try:
            await self._read_loop(conn, reader)
        except ProtocolError as exc:
            conn.reason = "protocol"
            await conn.replies.put(
                (_done(encode_error("ERR", f"protocol: {exc}")), False))
        except (ConnectionResetError, BrokenPipeError):
            conn.reason = "reset"
        finally:
            await conn.replies.put(None)  # writer sentinel: flush then stop
            await writer_task
            self._connections.discard(conn)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            obs = self._obs
            if obs is not None:
                obs.emit(NetConnClose(ts=time.monotonic(), peer=peer,
                                      requests=conn.requests,
                                      reason=conn.reason))

    async def _read_loop(self, conn: _Connection,
                         reader: asyncio.StreamReader) -> None:
        loop = asyncio.get_running_loop()
        while not conn.quit:
            if self._drained.is_set():
                conn.reason = "drain"
                return
            read = loop.create_task(reader.read(65536))
            drain = loop.create_task(self._drained.wait())
            done, _pending = await asyncio.wait(
                {read, drain}, return_when=asyncio.FIRST_COMPLETED)
            if read not in done:
                read.cancel()
                await asyncio.gather(read, return_exceptions=True)
                conn.reason = "drain"
                return
            drain.cancel()
            await asyncio.gather(drain, return_exceptions=True)
            data = read.result()
            if not data:
                return
            conn.parser.feed(data)
            while not conn.quit:
                request = conn.parser.next_request()
                if request is None:
                    break
                if request:  # empty inline line: ignore
                    await self._dispatch(conn, request)

    async def _write_loop(self, conn: _Connection,
                          writer: asyncio.StreamWriter) -> None:
        """Write replies in request order; slow readers block here,
        which (via the slot semaphore) pauses the connection's reads."""
        while True:
            entry = await conn.replies.get()
            if entry is None:
                break
            future, holds_slot = entry
            try:
                try:
                    payload = await future
                except asyncio.CancelledError:
                    raise
                except Exception as exc:  # a bug below the mapper: keep serving
                    payload = encode_error(
                        "ERR", f"internal {type(exc).__name__}: {exc}")
                try:
                    writer.write(payload)
                    await writer.drain()
                except (ConnectionResetError, BrokenPipeError):
                    conn.reason = "reset"
            finally:
                if holds_slot:
                    conn.slots.release()

    # -- dispatch ------------------------------------------------------------

    async def _dispatch(self, conn: _Connection, request: list[bytes]) -> None:
        conn.requests += 1
        command = bytes(request[0]).upper()
        args = request[1:]
        t0 = time.monotonic()

        # control commands: answered from the loop, never shed
        if command in CONTROL_COMMANDS:
            reply = self._control(conn, command)
            self._note(command, True, t0)
            await conn.replies.put((_done(reply), False))
            return

        nbytes = sum(len(a) for a in args)
        if (self._inflight >= self.config.max_inflight
                or self._inflight_bytes + nbytes
                > self.config.max_inflight_bytes):
            obs = self._obs
            if obs is not None:
                obs.emit(NetOverload(
                    ts=t0, command=command.decode(),
                    inflight=self._inflight,
                    inflight_bytes=self._inflight_bytes))
            self._note(command, False, t0)
            reply = encode_error(
                "OVERLOADED",
                f"{self._inflight} requests / "
                f"{self._inflight_bytes} bytes in flight")
            await conn.replies.put((_done(reply), False))
            return

        # read backpressure: no more than max_pipeline dispatched per conn
        await conn.slots.acquire()
        self._inflight += 1
        self._inflight_bytes += nbytes
        loop = asyncio.get_running_loop()
        future = loop.run_in_executor(
            self._executor, self._execute, command, args)

        def _settle(fut: asyncio.Future, nbytes=nbytes,
                    command=command, t0=t0) -> None:
            self._inflight -= 1
            self._inflight_bytes -= nbytes
            # ok at the wire level: any "-..." reply counts as an error
            ok = (not fut.cancelled() and fut.exception() is None
                  and not fut.result().startswith(b"-"))
            self._note(command, ok, t0)

        future.add_done_callback(_settle)
        await conn.replies.put((future, True))

    def _note(self, command: bytes, ok: bool, t0: float) -> None:
        obs = self._obs
        if obs is not None:
            obs.emit(NetRequest(ts=t0, command=command.decode(), ok=ok,
                                latency=time.monotonic() - t0))

    def _control(self, conn: _Connection, command: bytes) -> bytes:
        if command == b"PING":
            return PONG
        if command == b"QUIT":
            conn.quit = True
            conn.reason = "quit"
            return OK
        return encode_bulk(self.info().encode())

    # -- command execution (executor threads) --------------------------------

    def _execute(self, command: bytes, args: list[bytes]) -> bytes:
        try:
            handler = _HANDLERS.get(command)
            if handler is None:
                return encode_error(
                    "ERR", f"unknown command {command.decode(errors='replace')!r}")
            return handler(self, args)
        except _BadRequest as exc:
            return encode_error("ERR", str(exc))
        except ShardUnavailable as exc:
            return encode_error("UNAVAILABLE", f"shard: {exc}")
        except KeyRangeUnavailable as exc:
            return encode_error("UNAVAILABLE", str(exc))
        except ReproError as exc:
            return encode_error("ERR", f"{type(exc).__name__}: {exc}")

    def _cmd_get(self, args: list[bytes]) -> bytes:
        (key,) = _arity(b"GET", args, 1)
        with self.store.lock_for(key):
            return encode_bulk(self.store.get(key))

    def _cmd_set(self, args: list[bytes]) -> bytes:
        key, value = _arity(b"SET", args, 2)
        with self.store.lock_for(key):
            self.store.put(key, value)
        return OK

    def _cmd_del(self, args: list[bytes]) -> bytes:
        (key,) = _arity(b"DEL", args, 1)
        with self.store.lock_for(key):
            self.store.delete(key)
        return encode_int(1)

    def _cmd_mset(self, args: list[bytes]) -> bytes:
        if not args or len(args) % 2:
            raise _BadRequest("MSET wants key value [key value ...]")
        batch = WriteBatch()
        for i in range(0, len(args), 2):
            batch.put(args[i], args[i + 1])
        with self.store.lock_for(None):
            self.store.write_batch(batch)
        return OK

    def _cmd_scan(self, args: list[bytes]) -> bytes:
        """``SCAN [start [end [limit]]]``; empty bulk = unbounded.

        Replies ``[partial, [k1, v1, ...]]``: the sharded facade's
        partial flag (failed shards skipped mid-merge) survives the
        wire.  The scan is materialized and *closed* here, inside the
        lock, so an abandoned client never pins shard iterators.
        """
        if len(args) > 3:
            raise _BadRequest("SCAN wants [start [end [limit]]]")
        start = args[0] if len(args) > 0 and args[0] else None
        end = args[1] if len(args) > 1 and args[1] else None
        limit = self.config.max_scan_keys
        if len(args) > 2:
            try:
                limit = int(args[2])
            except ValueError:
                raise _BadRequest(f"bad SCAN limit {args[2]!r}") from None
        limit = max(0, min(limit, self.config.max_scan_keys))
        flat: list[bytes] = []
        with self.store.lock_for(None):
            scan = self.store.scan(start, end, limit)
            try:
                for key, value in scan:
                    flat.append(key)
                    flat.append(value)
            finally:
                close = getattr(scan, "close", None)
                if close is not None:
                    close()
        partial = int(bool(getattr(scan, "partial", False)))
        return encode_array([partial, flat])

    # -- INFO ----------------------------------------------------------------

    def info(self) -> str:
        """Redis-style ``key:value`` lines: store identity, shard
        health, degraded ranges, and every ``net.*`` counter/gauge."""
        store = self.store
        shards = getattr(store, "shards", None)
        health = (store.shard_health() if shards is not None
                  else ["degraded" if store.quarantined_tables
                        else "healthy"])
        lines = [
            f"store:{store.name}",
            f"shards:{len(shards) if shards is not None else 1}",
            f"shard_health:{','.join(health)}",
            f"degraded_ranges:{len(store.degraded_ranges())}",
            f"draining:{int(self._drained.is_set())}",
        ]
        m = self.obs.metrics
        for name in sorted(m.counters):
            if name.startswith("net."):
                lines.append(f"{name}:{m.counters[name].value}")
        for name in sorted(m.gauges):
            if name.startswith("net."):
                lines.append(f"{name}:{m.gauges[name].value:g}")
        hist = m.histograms.get("latency.net")
        if hist is not None and hist.count:
            q = hist.quantiles()
            lines.append(f"latency_p50_us:{q['p50'] * 1e6:.1f}")
            lines.append(f"latency_p99_us:{q['p99'] * 1e6:.1f}")
        return "\r\n".join(lines) + "\r\n"


class _BadRequest(ReproError):
    """Malformed arguments for a known command (-ERR, connection lives)."""


def _arity(command: bytes, args: list[bytes], n: int) -> list[bytes]:
    if len(args) != n:
        raise _BadRequest(
            f"{command.decode()} wants {n} argument(s), got {len(args)}")
    return args


_HANDLERS = {
    b"GET": KVServer._cmd_get,
    b"SET": KVServer._cmd_set,
    b"DEL": KVServer._cmd_del,
    b"MSET": KVServer._cmd_mset,
    b"SCAN": KVServer._cmd_scan,
}


def _done(payload: bytes) -> asyncio.Future:
    future = asyncio.get_running_loop().create_future()
    future.set_result(payload)
    return future


# -- running a server off the main thread -------------------------------------

class ServerThread:
    """Run a :class:`KVServer` on a dedicated event-loop thread.

    The blessed way for tests, the load generator, and ``repro
    bench-net`` to put a live TCP endpoint in front of an in-process
    store::

        handle = ServerThread(store).start()
        ... connect NetClient(*handle.address) ...
        handle.stop()          # graceful drain
    """

    def __init__(self, store: KVStoreBase,
                 config: ServerConfig | None = None, *,
                 owns_store: bool = False) -> None:
        self._store = store
        self._config = config or ServerConfig()
        self._owns_store = owns_store
        self.server: KVServer | None = None
        self.address: tuple[str, int] | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread = None
        self._startup: Exception | None = None

    def start(self, timeout: float = 10.0) -> "ServerThread":
        ready = threading.Event()

        def run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            try:
                self.server = KVServer(self._store, self._config,
                                       owns_store=self._owns_store)
                self.address = loop.run_until_complete(self.server.start())
            except Exception as exc:  # surface bind errors to start()
                self._startup = exc
                ready.set()
                loop.close()
                return
            ready.set()
            try:
                loop.run_forever()
            finally:
                loop.run_until_complete(loop.shutdown_asyncgens())
                loop.close()

        self._thread = threading.Thread(
            target=run, name="repro-net-server", daemon=True)
        self._thread.start()
        if not ready.wait(timeout):
            raise ReproError("server failed to start within timeout")
        if self._startup is not None:
            raise self._startup
        return self

    def stop(self, timeout: float = 30.0) -> None:
        """Graceful drain from any thread; joins the loop thread."""
        if self._loop is None or not self._loop.is_running():
            return
        future = asyncio.run_coroutine_threadsafe(
            self.server.stop(), self._loop)
        future.result(timeout)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()
