"""``repro.net`` — the serving layer: wire protocol, server, client, load.

The store becomes reachable over TCP::

    import repro
    from repro.net import ServerThread, NetClient

    store = repro.open("sealdb", shards=2)
    with ServerThread(store) as handle:
        client = NetClient(*handle.address)
        client.set(b"k", b"v")
        assert client.get(b"k") == b"v"
    store.close()

Modules: :mod:`~repro.net.protocol` (RESP-subset codec),
:mod:`~repro.net.server` (asyncio server: pipelining, backpressure,
admission control, graceful drain), :mod:`~repro.net.client` (sync +
pipelined client), :mod:`~repro.net.loadgen` (closed/open-loop load).
"""

from repro.net.client import (
    NetClient,
    NetError,
    Overloaded,
    Pipeline,
    ServerError,
    Unavailable,
)
from repro.net.loadgen import LoadConfig, LoadReport, run_load
from repro.net.protocol import ProtocolError, RespError, RespParser
from repro.net.server import KVServer, ServerConfig, ServerThread

__all__ = [
    "KVServer",
    "LoadConfig",
    "LoadReport",
    "NetClient",
    "NetError",
    "Overloaded",
    "Pipeline",
    "ProtocolError",
    "RespError",
    "RespParser",
    "ServerConfig",
    "ServerError",
    "ServerThread",
    "Unavailable",
    "run_load",
]
