"""Synchronous client for the ``repro.net`` serving layer.

Two modes over one connection:

* direct calls -- one round trip each::

      client = NetClient("127.0.0.1", 6399)
      client.set(b"k", b"v")
      assert client.get(b"k") == b"v"

* pipelining -- queue many commands, flush them in one write, read the
  replies in order (this is what makes a loopback benchmark measure
  the store instead of round-trip latency)::

      with client.pipeline() as pipe:
          for i in range(100):
              pipe.set(b"k%d" % i, b"v")
      results = pipe.results  # 100 values, request order

Error replies map back to typed exceptions mirroring the server-side
mapping: ``-OVERLOADED`` -> :class:`Overloaded` (admission control;
back off and retry), ``-UNAVAILABLE`` -> :class:`Unavailable` (the PR 4
degraded mode: that key range is quarantined, everything else serves),
anything else -> :class:`ServerError`.  Direct calls raise; pipelined
results carry the exception *instances* in-order so one shed request
does not discard its batch.
"""

from __future__ import annotations

import socket

from repro.errors import ReproError
from repro.net.protocol import (
    NULL,
    RespError,
    RespParser,
    encode_command,
)


class NetError(ReproError):
    """Client-side transport failure (connect, send, truncated reply)."""


class ServerError(NetError):
    """The server answered ``-CODE message``."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"{code} {message}".strip())
        self.code = code
        self.message = message


class Overloaded(ServerError):
    """Admission control shed the request (``-OVERLOADED``)."""


class Unavailable(ServerError):
    """The key range (or shard) is quarantined (``-UNAVAILABLE``)."""


def _to_exception(error: RespError) -> ServerError:
    cls = {"OVERLOADED": Overloaded, "UNAVAILABLE": Unavailable}.get(
        error.code, ServerError)
    return cls(error.code, error.message)


class NetClient:
    """One TCP connection speaking the RESP subset."""

    def __init__(self, host: str, port: int,
                 timeout: float | None = 30.0) -> None:
        self.host = host
        self.port = port
        try:
            self._sock = socket.create_connection((host, port),
                                                  timeout=timeout)
        except OSError as exc:
            raise NetError(f"connect {host}:{port}: {exc}") from exc
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._parser = RespParser()

    # -- plumbing ------------------------------------------------------------

    def _send(self, payload: bytes) -> None:
        try:
            self._sock.sendall(payload)
        except OSError as exc:
            raise NetError(f"send: {exc}") from exc

    def _read_reply(self):
        while True:
            value = self._parser.next_value()
            if value is not None:
                return None if value is NULL else value
            try:
                data = self._sock.recv(65536)
            except OSError as exc:
                raise NetError(f"recv: {exc}") from exc
            if not data:
                raise NetError("connection closed mid-reply")
            self._parser.feed(data)

    def execute(self, *args: bytes):
        """One command, one reply; raises on ``-...`` error replies."""
        self._send(encode_command(list(args)))
        value = self._read_reply()
        if isinstance(value, RespError):
            raise _to_exception(value)
        return value

    def execute_pipeline(self, commands: list[list[bytes]]) -> list:
        """Send every command in one write; read replies in order.
        Error replies come back as exception instances, not raised."""
        if not commands:
            return []
        self._send(b"".join(encode_command(list(c)) for c in commands))
        out = []
        for _ in commands:
            value = self._read_reply()
            out.append(_to_exception(value)
                       if isinstance(value, RespError) else value)
        return out

    # -- commands ------------------------------------------------------------

    def ping(self) -> bool:
        return self.execute(b"PING") == "PONG"

    def set(self, key: bytes, value: bytes) -> None:
        self.execute(b"SET", key, value)

    def get(self, key: bytes) -> bytes | None:
        return self.execute(b"GET", key)

    def delete(self, key: bytes) -> None:
        self.execute(b"DEL", key)

    def mset(self, pairs: list[tuple[bytes, bytes]]) -> None:
        """Applied as one ``write_batch`` (atomic per shard)."""
        args: list[bytes] = [b"MSET"]
        for key, value in pairs:
            args.append(key)
            args.append(value)
        self.execute(*args)

    def scan(self, start: bytes | None = None, end: bytes | None = None,
             limit: int | None = None
             ) -> tuple[list[tuple[bytes, bytes]], bool]:
        """Returns ``(pairs, partial)``; ``partial`` is the sharded
        facade's failed-shards-skipped flag, carried over the wire."""
        args: list[bytes] = [b"SCAN", start or b"", end or b""]
        if limit is not None:
            args.append(b"%d" % limit)
        reply = self.execute(*args)
        partial, flat = reply
        pairs = [(flat[i], flat[i + 1]) for i in range(0, len(flat), 2)]
        return pairs, bool(partial)

    def info(self) -> dict[str, str]:
        raw = self.execute(b"INFO")
        out: dict[str, str] = {}
        for line in raw.decode().splitlines():
            name, sep, value = line.partition(":")
            if sep:
                out[name] = value
        return out

    def quit(self) -> None:
        try:
            self.execute(b"QUIT")
        except NetError:
            pass

    def pipeline(self) -> "Pipeline":
        return Pipeline(self)

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "NetClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.quit()
        self.close()


class Pipeline:
    """Buffer commands; flush them as one pipelined burst on
    :meth:`execute` (or when the ``with`` block ends)."""

    def __init__(self, client: NetClient) -> None:
        self._client = client
        self._commands: list[list[bytes]] = []
        #: in-order reply values; error replies are exception instances
        self.results: list = []

    def __len__(self) -> int:
        return len(self._commands)

    def set(self, key: bytes, value: bytes) -> "Pipeline":
        self._commands.append([b"SET", key, value])
        return self

    def get(self, key: bytes) -> "Pipeline":
        self._commands.append([b"GET", key])
        return self

    def delete(self, key: bytes) -> "Pipeline":
        self._commands.append([b"DEL", key])
        return self

    def scan(self, start: bytes | None = None, end: bytes | None = None,
             limit: int | None = None) -> "Pipeline":
        args: list[bytes] = [b"SCAN", start or b"", end or b""]
        if limit is not None:
            args.append(b"%d" % limit)
        self._commands.append(args)
        return self

    def ping(self) -> "Pipeline":
        self._commands.append([b"PING"])
        return self

    def execute(self) -> list:
        self.results = self._client.execute_pipeline(self._commands)
        self._commands = []
        return self.results

    def __enter__(self) -> "Pipeline":
        return self

    def __exit__(self, exc_type, _exc, _tb) -> None:
        if exc_type is None:
            self.execute()
