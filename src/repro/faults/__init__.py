"""First-class fault injection for the SEALDB reproduction.

The storage stack carries named *failpoints* -- hooks at every spot
where a real system can lose power or tear a write: WAL appends,
manifest records, table-group placement, raw drive writes, free-space
allocation, and the flush/compaction install steps.  Tests and the
:mod:`repro.harness.crashsweep` harness arm them with deterministic
triggers and actions, crash the engine mid-operation, and verify that
:meth:`repro.lsm.db.DB.recover` restores a consistent store.

Quick use::

    from repro import faults

    faults.arm(faults.WAL_APPEND, "torn", at=3, seed=7)
    try:
        run_workload(db)
    except faults.InjectedCrash:
        pass
    faults.reset()
    recovered = DB.recover(db.storage, db.options)

See :mod:`repro.faults.registry` for the full API.
"""

from repro.errors import FailpointError, InjectedCrash
from repro.faults.actions import (
    Action,
    CorruptAction,
    CrashAction,
    DelayAction,
    Injection,
    TornWriteAction,
)
from repro.faults.registry import (
    COMPACTION_INSTALL,
    DRIVE_WRITE,
    FLUSH_INSTALL,
    FREESPACE_ALLOC,
    KNOWN_POINTS,
    MANIFEST_LOG,
    STORAGE_WRITE_FILES,
    WAL_APPEND,
    AfterN,
    EveryNth,
    Failpoint,
    OnHit,
    Trigger,
    WithProbability,
    arm,
    armed_points,
    counting,
    disarm,
    fire,
    get,
    hit_counts,
    injected,
    is_armed,
    known_points,
    register_point,
    reset,
    trip,
)

__all__ = [
    "Action",
    "AfterN",
    "COMPACTION_INSTALL",
    "CorruptAction",
    "CrashAction",
    "DRIVE_WRITE",
    "DelayAction",
    "EveryNth",
    "FLUSH_INSTALL",
    "FREESPACE_ALLOC",
    "Failpoint",
    "FailpointError",
    "InjectedCrash",
    "Injection",
    "KNOWN_POINTS",
    "MANIFEST_LOG",
    "OnHit",
    "STORAGE_WRITE_FILES",
    "TornWriteAction",
    "Trigger",
    "WAL_APPEND",
    "WithProbability",
    "arm",
    "armed_points",
    "counting",
    "disarm",
    "fire",
    "get",
    "hit_counts",
    "injected",
    "is_armed",
    "known_points",
    "register_point",
    "reset",
    "trip",
]
