"""First-class fault injection for the SEALDB reproduction.

The storage stack carries named *failpoints* -- hooks at every spot
where a real system can lose power, tear a write, or hand back bad
bytes.  Tests and the :mod:`repro.harness.crashsweep` harness arm them
with deterministic triggers and actions, crash the engine
mid-operation, and verify that :meth:`repro.lsm.db.DB.recover`
restores a consistent store.

Points (write side fires *before* the bytes land, read side fires
*after* the bytes are fetched, with ``data=`` so ``corrupt`` actions
can flip the returned payload):

===================== ====================================================
name                  site
===================== ====================================================
``wal.append``        a framed record blob entering the write-ahead log
``manifest.log``      a version edit / snapshot entering the manifest log
``storage.write_files`` a group of table files being placed
``drive.write``       any write reaching a simulated drive
``freespace.alloc``   a free-space allocation
``compaction.install`` a compaction's version edit about to install
``flush.install``     a flush's version edit about to install
``drive.read``        any read served by a simulated drive
``storage.read``      a named-file read leaving the storage layer
===================== ====================================================

For *persistent* read-side faults (latent sector errors, bit-rot that
survives retries) use the per-drive media-error map in
:mod:`repro.resilience` instead of one-shot failpoint actions.

Quick use::

    from repro import faults

    faults.arm(faults.WAL_APPEND, "torn", at=3, seed=7)
    try:
        run_workload(db)
    except faults.InjectedCrash:
        pass
    faults.reset()
    recovered = DB.recover(db.storage, db.options)

See :mod:`repro.faults.registry` for the full API.
"""

from repro.errors import FailpointError, InjectedCrash
from repro.faults.actions import (
    Action,
    CorruptAction,
    CrashAction,
    DelayAction,
    Injection,
    TornWriteAction,
)
from repro.faults.registry import (
    COMPACTION_INSTALL,
    DRIVE_READ,
    DRIVE_WRITE,
    FLUSH_INSTALL,
    FREESPACE_ALLOC,
    KNOWN_POINTS,
    MANIFEST_LOG,
    STORAGE_READ,
    STORAGE_WRITE_FILES,
    WAL_APPEND,
    AfterN,
    EveryNth,
    Failpoint,
    OnHit,
    Trigger,
    WithProbability,
    arm,
    armed_points,
    counting,
    disarm,
    fire,
    get,
    hit_counts,
    injected,
    is_armed,
    known_points,
    register_point,
    reset,
    trip,
)

__all__ = [
    "Action",
    "AfterN",
    "COMPACTION_INSTALL",
    "CorruptAction",
    "CrashAction",
    "DRIVE_READ",
    "DRIVE_WRITE",
    "DelayAction",
    "EveryNth",
    "FLUSH_INSTALL",
    "FREESPACE_ALLOC",
    "Failpoint",
    "FailpointError",
    "InjectedCrash",
    "Injection",
    "KNOWN_POINTS",
    "MANIFEST_LOG",
    "OnHit",
    "STORAGE_READ",
    "STORAGE_WRITE_FILES",
    "TornWriteAction",
    "Trigger",
    "WAL_APPEND",
    "WithProbability",
    "arm",
    "armed_points",
    "counting",
    "disarm",
    "fire",
    "get",
    "hit_counts",
    "injected",
    "is_armed",
    "known_points",
    "register_point",
    "reset",
    "trip",
]
