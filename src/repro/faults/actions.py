"""What an armed failpoint does when its trigger fires.

Actions model the distinct ways a storage stack can fail mid-operation:

* ``crash`` -- power failure *before* the operation takes effect;
* ``crash-after`` -- power failure immediately *after* the operation
  completed (e.g. a compaction edit that was persisted but whose
  follow-up cleanup never ran);
* ``torn`` -- a partial (torn) write: a seeded prefix of the payload
  reaches the medium, then the power fails;
* ``corrupt`` -- bit-flip corruption of the payload in flight
  (optionally followed by a crash);
* ``delay`` -- a stall: the simulated clock advances, nothing fails.

The call-site protocol is deliberately tiny.  ``registry.fire`` returns
``None`` on the fast path; when a failpoint triggers it either raises
:class:`~repro.errors.InjectedCrash` directly (``crash``) or returns an
:class:`Injection` the site threads through its operation::

    inj = faults.fire(faults.DRIVE_WRITE, data=data)
    if inj is not None:
        data = inj.mutate_bytes(data)   # torn / corrupt payloads
    ... perform the (possibly partial) operation ...
    if inj is not None:
        inj.finish()                    # raises for crash-after / torn
"""

from __future__ import annotations

import random

from repro.errors import FailpointError, InjectedCrash


class Injection:
    """One triggered failpoint, handed back to the call site.

    The site applies :meth:`mutate_bytes` (or :meth:`keep_units` for
    group-granularity operations) to its payload, performs the mutated
    operation, then calls :meth:`finish`, which raises
    :class:`InjectedCrash` when the action crashes after the partial
    effect is on the medium.
    """

    __slots__ = ("point", "hit", "fraction", "flips", "crash_after")

    def __init__(self, point: str, hit: int, *, fraction: float | None = None,
                 flips: list[int] | None = None,
                 crash_after: bool = False) -> None:
        self.point = point
        self.hit = hit
        self.fraction = fraction
        self.flips = flips
        self.crash_after = crash_after

    def mutate_bytes(self, data: bytes) -> bytes:
        """The payload as it reaches the medium (truncated / corrupted)."""
        if self.fraction is not None and data:
            keep = min(len(data) - 1, int(len(data) * self.fraction))
            data = data[: max(0, keep)]
        if self.flips and data:
            buf = bytearray(data)
            for position in self.flips:
                buf[position % len(buf)] ^= 0xFF
            data = bytes(buf)
        return data

    def keep_units(self, units: int) -> int:
        """How many whole units of a grouped operation land (torn group)."""
        if self.fraction is None or units <= 0:
            return units
        return min(units - 1, int(units * self.fraction))

    def finish(self) -> None:
        """Raise the deferred crash, if this action carries one."""
        if self.crash_after:
            raise InjectedCrash(
                f"injected crash after partial effect at "
                f"{self.point!r} (hit {self.hit})"
            )


class Action:
    """Base class: decides what happens when a trigger fires."""

    label = "action"

    def on_fire(self, point: str, hit: int, *, data: bytes | None,
                units: int | None, clock) -> Injection | None:
        raise NotImplementedError


class CrashAction(Action):
    """Raise :class:`InjectedCrash` before (or just after) the operation."""

    def __init__(self, after: bool = False) -> None:
        self.after = after
        self.label = "crash-after" if after else "crash"

    def on_fire(self, point, hit, *, data, units, clock):
        if self.after:
            return Injection(point, hit, crash_after=True)
        raise InjectedCrash(f"injected crash at {point!r} (hit {hit})")


class TornWriteAction(Action):
    """A prefix of the payload lands, then the power fails.

    The prefix length is a fixed ``fraction`` of the payload or, when
    None, drawn from the action's seeded RNG -- deterministic for a
    given (seed, trigger sequence).  At a site with no payload the
    action degrades to a plain crash.
    """

    label = "torn"

    def __init__(self, fraction: float | None = None, seed: int = 0) -> None:
        if fraction is not None and not 0.0 <= fraction <= 1.0:
            raise FailpointError(f"torn fraction must be in [0, 1], got {fraction}")
        self.fraction = fraction
        self._rng = random.Random(seed)

    def on_fire(self, point, hit, *, data, units, clock):
        if data is None and units is None:
            raise InjectedCrash(f"injected crash at {point!r} (hit {hit})")
        fraction = self.fraction if self.fraction is not None else self._rng.random()
        return Injection(point, hit, fraction=fraction, crash_after=True)


class CorruptAction(Action):
    """Flip ``nbytes`` seeded byte positions of the payload in flight."""

    label = "corrupt"

    def __init__(self, nbytes: int = 1, seed: int = 0, crash: bool = False) -> None:
        if nbytes <= 0:
            raise FailpointError(f"corrupt nbytes must be positive, got {nbytes}")
        self.nbytes = nbytes
        self.crash = crash
        self._rng = random.Random(seed)

    def on_fire(self, point, hit, *, data, units, clock):
        if data is None:
            if self.crash:
                raise InjectedCrash(f"injected crash at {point!r} (hit {hit})")
            return None
        flips = [self._rng.randrange(1 << 30) for _ in range(self.nbytes)]
        return Injection(point, hit, flips=flips, crash_after=self.crash)


class DelayAction(Action):
    """Advance the simulated clock: a stalled device, not a failure."""

    label = "delay"

    def __init__(self, seconds: float) -> None:
        if seconds < 0:
            raise FailpointError(f"delay must be non-negative, got {seconds}")
        self.seconds = seconds

    def on_fire(self, point, hit, *, data, units, clock):
        if clock is not None:
            clock.advance(self.seconds)
        return None
