"""Deterministic failpoint registry.

A *failpoint* is a named hook compiled into the storage stack's hot
paths (``faults.fire(name, ...)``).  Disarmed -- the default -- a fire
is one function call that checks an empty dict and returns ``None``, so
the hooks cost no behaviour change and effectively no time.  Armed, the
failpoint counts hits, consults its trigger, and executes its action:
raise :class:`~repro.errors.InjectedCrash`, tear or corrupt the payload,
or stall the simulated clock (see :mod:`repro.faults.actions`).

Triggers are deterministic so every crash point is replayable:

* ``at=N`` -- fire on exactly the N-th hit (1-based); the crash
  sweeper's workhorse;
* ``after=N`` -- fire on every hit past the first N;
* ``every=N`` -- fire on every N-th hit;
* ``probability=p, seed=s`` -- seeded Bernoulli draw per hit.

The registry is process-global (the simulator is single-threaded);
tests isolate themselves with :func:`reset` -- the test suite does this
automatically around every test.
"""

from __future__ import annotations

import random
from contextlib import contextmanager

from repro.errors import FailpointError
from repro.faults.actions import (
    Action,
    CorruptAction,
    CrashAction,
    DelayAction,
    Injection,
    TornWriteAction,
)

# -- canonical injection points ------------------------------------------

#: a framed record blob entering the write-ahead log
WAL_APPEND = "wal.append"
#: a version edit / snapshot record entering the manifest log
MANIFEST_LOG = "manifest.log"
#: a group of table files (one flush or compaction output) being placed
STORAGE_WRITE_FILES = "storage.write_files"
#: any write reaching a simulated drive (table data, WAL, manifest)
DRIVE_WRITE = "drive.write"
#: a free-space allocation (dynamic-band free list or ext4 allocator)
FREESPACE_ALLOC = "freespace.alloc"
#: the instant a compaction's version edit is about to be installed
COMPACTION_INSTALL = "compaction.install"
#: the instant a flush's version edit is about to be installed
FLUSH_INSTALL = "flush.install"
#: any read served by a simulated drive (fires *after* the media read,
#: with ``data=`` so corrupt actions can flip the returned payload)
DRIVE_READ = "drive.read"
#: a named-file read leaving the storage layer (table blocks, footers)
STORAGE_READ = "storage.read"

KNOWN_POINTS = frozenset({
    WAL_APPEND,
    MANIFEST_LOG,
    STORAGE_WRITE_FILES,
    DRIVE_WRITE,
    FREESPACE_ALLOC,
    COMPACTION_INSTALL,
    FLUSH_INSTALL,
    DRIVE_READ,
    STORAGE_READ,
})

_extra_points: set[str] = set()


def register_point(name: str) -> None:
    """Declare a new failpoint name (for future subsystems and tests)."""
    if not name:
        raise FailpointError("failpoint name must be non-empty")
    _extra_points.add(name)


def known_points() -> frozenset[str]:
    """Every name currently accepted by :func:`arm`."""
    return KNOWN_POINTS | frozenset(_extra_points)


# -- triggers ------------------------------------------------------------


class Trigger:
    """Decides, per hit (1-based), whether the action executes."""

    def should_fire(self, hit: int) -> bool:
        raise NotImplementedError


class OnHit(Trigger):
    """Fire on exactly the ``n``-th hit."""

    def __init__(self, n: int) -> None:
        if n < 1:
            raise FailpointError(f"at= must be >= 1, got {n}")
        self.n = n

    def should_fire(self, hit: int) -> bool:
        return hit == self.n


class AfterN(Trigger):
    """Fire on every hit after the first ``n``."""

    def __init__(self, n: int) -> None:
        if n < 0:
            raise FailpointError(f"after= must be >= 0, got {n}")
        self.n = n

    def should_fire(self, hit: int) -> bool:
        return hit > self.n


class EveryNth(Trigger):
    """Fire on every ``n``-th hit (hits n, 2n, 3n, ...)."""

    def __init__(self, n: int) -> None:
        if n < 1:
            raise FailpointError(f"every= must be >= 1, got {n}")
        self.n = n

    def should_fire(self, hit: int) -> bool:
        return hit % self.n == 0


class WithProbability(Trigger):
    """Seeded Bernoulli draw per hit -- deterministic for a given seed."""

    def __init__(self, p: float, seed: int = 0) -> None:
        if not 0.0 <= p <= 1.0:
            raise FailpointError(f"probability must be in [0, 1], got {p}")
        self.p = p
        self._rng = random.Random(seed)

    def should_fire(self, hit: int) -> bool:
        return self._rng.random() < self.p


# -- the registry --------------------------------------------------------


class Failpoint:
    """One armed injection point: trigger + action + hit bookkeeping."""

    __slots__ = ("name", "trigger", "action", "times", "hits", "fired")

    def __init__(self, name: str, trigger: Trigger, action: Action,
                 times: int | None = None) -> None:
        self.name = name
        self.trigger = trigger
        self.action = action
        self.times = times
        #: how often this point was reached while armed
        self.hits = 0
        #: how often the action actually executed
        self.fired = 0

    def __repr__(self) -> str:
        return (f"Failpoint({self.name!r}, action={self.action.label}, "
                f"hits={self.hits}, fired={self.fired})")


_armed: dict[str, Failpoint] = {}
_counting = False
_counts: dict[str, int] = {}


def fire(name: str, *, data: bytes | None = None, units: int | None = None,
         clock=None) -> Injection | None:
    """The hook compiled into every instrumented call site.

    Fast path (nothing armed, not counting): one dict truthiness check.
    Returns ``None`` (proceed normally) or an :class:`Injection` the
    site must thread through its operation; may raise
    :class:`~repro.errors.InjectedCrash` directly.
    """
    if not _armed and not _counting:
        return None
    if _counting:
        _counts[name] = _counts.get(name, 0) + 1
    fp = _armed.get(name)
    if fp is None:
        return None
    fp.hits += 1
    if fp.times is not None and fp.fired >= fp.times:
        return None
    if not fp.trigger.should_fire(fp.hits):
        return None
    fp.fired += 1
    return fp.action.on_fire(name, fp.hits, data=data, units=units, clock=clock)


def trip(name: str, clock=None) -> None:
    """Fire-and-finish for sites with no payload (install points)."""
    inj = fire(name, clock=clock)
    if inj is not None:
        inj.finish()


def _make_trigger(at, after, every, probability, seed) -> Trigger:
    chosen = [kw for kw, value in
              (("at", at), ("after", after), ("every", every),
               ("probability", probability)) if value is not None]
    if len(chosen) > 1:
        raise FailpointError(f"choose one trigger, got {chosen}")
    if at is not None:
        return OnHit(at)
    if every is not None:
        return EveryNth(every)
    if probability is not None:
        return WithProbability(probability, seed)
    return AfterN(after if after is not None else 0)


def _make_action(action, *, seed, fraction, flip_bytes, delay, crash) -> Action:
    if isinstance(action, Action):
        return action
    if action == "crash":
        return CrashAction(after=False)
    if action == "crash-after":
        return CrashAction(after=True)
    if action == "torn":
        return TornWriteAction(fraction=fraction, seed=seed)
    if action == "corrupt":
        return CorruptAction(nbytes=flip_bytes, seed=seed, crash=bool(crash))
    if action == "delay":
        return DelayAction(delay if delay is not None else 1e-3)
    raise FailpointError(f"unknown action {action!r}")


def arm(name: str, action: str | Action = "crash", *,
        at: int | None = None, after: int | None = None,
        every: int | None = None, probability: float | None = None,
        seed: int = 0, times: int | None = None,
        fraction: float | None = None, flip_bytes: int = 1,
        delay: float | None = None, crash: bool = False) -> Failpoint:
    """Arm ``name`` with a trigger and an action; returns the failpoint.

    Exactly one of ``at`` / ``after`` / ``every`` / ``probability``
    selects the trigger (default: fire on every hit).  ``times`` caps
    how often the action may execute.  Re-arming a name replaces the
    previous failpoint.
    """
    if name not in KNOWN_POINTS and name not in _extra_points:
        raise FailpointError(
            f"unknown failpoint {name!r}; known: {sorted(known_points())} "
            f"(use register_point() for new ones)"
        )
    trigger = _make_trigger(at, after, every, probability, seed)
    act = _make_action(action, seed=seed, fraction=fraction,
                       flip_bytes=flip_bytes, delay=delay, crash=crash)
    fp = Failpoint(name, trigger, act, times)
    _armed[name] = fp
    return fp


def disarm(name: str) -> None:
    """Disarm ``name`` (a no-op when it is not armed)."""
    _armed.pop(name, None)


def reset() -> None:
    """Disarm everything and stop counting -- restore the clean slate."""
    global _counting
    _armed.clear()
    _counting = False
    _counts.clear()


def is_armed(name: str) -> bool:
    return name in _armed


def armed_points() -> list[str]:
    return sorted(_armed)


def get(name: str) -> Failpoint | None:
    """The armed failpoint for ``name`` (to inspect hit counters)."""
    return _armed.get(name)


def hit_counts() -> dict[str, int]:
    """Snapshot of the counters gathered inside :func:`counting`."""
    return dict(_counts)


@contextmanager
def counting():
    """Count every fire per failpoint name without arming anything.

    The crash sweeper runs its workload once under this context to learn
    how many hits each failpoint receives, then sweeps hit 1..N::

        with faults.counting() as counts:
            run_workload()
        # counts == {"wal.append": 812, "drive.write": 1375, ...}
    """
    global _counting
    _counts.clear()
    _counting = True
    try:
        yield _counts
    finally:
        _counting = False


@contextmanager
def injected(name: str, action: str | Action = "crash", **kwargs):
    """Arm ``name`` for the duration of a ``with`` block, then disarm."""
    fp = arm(name, action, **kwargs)
    try:
        yield fp
    finally:
        if _armed.get(name) is fp:
            disarm(name)
