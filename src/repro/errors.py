"""Exception hierarchy shared across the SEALDB reproduction.

Every layer raises a subclass of :class:`ReproError` so callers can
distinguish simulation-model violations (bugs in a storage policy) from
ordinary KV-store conditions such as a missing key.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class DriveError(ReproError):
    """Base class for simulated-drive errors."""


class OutOfRangeError(DriveError):
    """An I/O request fell outside the drive's capacity."""

    def __init__(self, offset: int, length: int, capacity: int) -> None:
        super().__init__(
            f"request [{offset}, {offset + length}) exceeds capacity {capacity}"
        )
        self.offset = offset
        self.length = length
        self.capacity = capacity


class ShingleOverwriteError(DriveError):
    """A write to a raw HM-SMR drive would damage valid data.

    Writing tracks on an SMR drive destroys data on the subsequently
    shingled tracks.  The raw HM-SMR model raises this error whenever the
    damage zone of a write intersects an extent that still holds valid
    data -- i.e. the host violated the Caveat-Scriptor safety rule the
    dynamic-band manager is supposed to uphold (Eq. 1 in the paper).
    """

    def __init__(self, offset: int, length: int, damaged: tuple[int, int]) -> None:
        super().__init__(
            f"write [{offset}, {offset + length}) would damage valid data "
            f"extent [{damaged[0]}, {damaged[1]})"
        )
        self.offset = offset
        self.length = length
        self.damaged = damaged


class BandAlignmentError(DriveError):
    """An operation on a fixed-band SMR drive crossed a band boundary."""


class MediaError(DriveError):
    """A latent sector error: the drive could not read a byte range.

    Raised by the simulated media when a read overlaps a sector recorded
    in the drive's :class:`~repro.resilience.media.MediaErrorMap`.  This
    is the *hard* failure mode; silent bit-rot instead flips payload
    bytes and is only caught by block checksums further up the stack.
    """

    def __init__(self, offset: int, length: int) -> None:
        super().__init__(
            f"unrecoverable read error in [{offset}, {offset + length})"
        )
        self.offset = offset
        self.length = length


class AllocationError(ReproError):
    """A storage policy could not allocate space for a request."""


class StorageError(ReproError):
    """Base class for storage-layer (file abstraction) errors."""


class FileNotFoundStorageError(StorageError):
    """A named object does not exist in the storage layer."""


class CorruptionError(ReproError):
    """Persistent data failed a checksum or structural validation."""


class NotFoundError(ReproError):
    """A key does not exist in the key-value store (or was deleted)."""


class KeyRangeUnavailable(ReproError):
    """A key range is temporarily unserveable because its table (or
    shard) is quarantined after persistent media errors.

    Unlike :class:`CorruptionError` -- which reports the *detection* of
    bad bytes -- this error is the steady degraded state: the engine has
    already retried, given up, and fenced the range off so the rest of
    the store keeps serving.  ``reopen()`` + repair clears it.
    """

    def __init__(self, message: str, *,
                 smallest: bytes | None = None,
                 largest: bytes | None = None) -> None:
        super().__init__(message)
        self.smallest = smallest
        self.largest = largest


class ShardUnavailable(KeyRangeUnavailable):
    """An entire shard of a :class:`~repro.shard.store.ShardedStore` is
    failed; every key routed to it is unavailable until recovery."""


class InvariantViolation(ReproError):
    """An internal data-structure invariant was broken (indicates a bug)."""


class InjectedCrash(ReproError):
    """The simulated power failure raised by an armed failpoint.

    Everything already on the simulated drive survives; the in-flight
    operation is abandoned mid-way.  Crash tests catch this, then rebuild
    the engine with :meth:`repro.lsm.db.DB.recover` and verify the store
    came back consistent.
    """


class FailpointError(ReproError):
    """A failpoint was armed with an unknown name or a bad configuration."""
