"""SEALDB's direct-on-disk placement: dynamic bands + sets.

The paper removes the filesystem: "we add an indirection from file name
to disk location (i.e., physical block address, PBA) for KV stores
accessing SMR drives."  This storage policy is that indirection layer.

* ``write_files`` receives the output group of one compaction, asks the
  dynamic-band manager for **one** extent (append or Eq.-1 insert), and
  streams the members into it back to back -- the group becomes a *set*
  stored contiguously inside a dynamic band.
* ``delete_file`` marks a set member invalid; the extent is reclaimed
  (trim + free-list insert + coalesce) only when the whole set fades,
  implementing the paper's deferred victim reclamation.
* ``group_invalid_count`` feeds the ``invalid-set-first`` victim policy.
"""

from __future__ import annotations

from repro.core.dynamic_band import DynamicBandManager
from repro.core.sets import SetRegistry
from repro.errors import FileNotFoundStorageError, StorageError
from repro.fs.storage import Storage
from repro.obs.events import SetFade, SetRegister
from repro.smr.extent import Extent
from repro.smr.raw_hmsmr import RawHMSMRDrive
from repro.smr.stats import CATEGORY_TABLE


class DynamicBandStorage(Storage):
    """Name -> PBA indirection over a dynamic-band managed raw HM-SMR drive."""

    def __init__(self, drive: RawHMSMRDrive, *, wal_size: int, meta_size: int,
                 class_unit: int, region_gap: int | None = None) -> None:
        if region_gap is None:
            region_gap = drive.guard_size
        super().__init__(drive, wal_size=wal_size, meta_size=meta_size,
                         region_gap=region_gap)
        self.manager = DynamicBandManager(drive, self.data_start, class_unit)
        self.sets = SetRegistry()
        self._files: dict[str, Extent] = {}

    # -- placement -----------------------------------------------------------

    def write_file(self, name: str, data: bytes,
                   category: str = CATEGORY_TABLE) -> None:
        self.write_files([(name, data)], category)

    def _write_files(self, files, category: str = CATEGORY_TABLE) -> None:
        if not files:
            return
        for name, _data in files:
            if name in self._files:
                raise StorageError(f"object {name!r} already exists")
        total = sum(len(data) for _name, data in files)
        offset = self.manager.allocate(total)
        members: list[tuple[str, Extent]] = []
        cursor = offset
        try:
            for name, data in files:
                self.drive.write(cursor, data, category=category)
                extent = Extent(cursor, cursor + len(data))
                self._files[name] = extent
                members.append((name, extent))
                cursor += len(data)
        except BaseException:
            # A crash mid-set leaves no set: undo the allocation so the
            # free-space accounting matches the (empty) registration.
            for name, _extent in members:
                del self._files[name]
            self.manager.free(offset, total)
            raise
        self.sets.register(members, created_at=self.drive.now)
        obs = self._obs
        if obs is not None:
            obs.emit(SetRegister(ts=self.drive.now, members=len(members),
                                 nbytes=total))

    def _read_file(self, name: str, offset: int, length: int,
                  category: str = CATEGORY_TABLE) -> bytes:
        extent = self._entry(name)
        if offset + length > extent.length:
            raise StorageError(
                f"read past end of {name!r}: [{offset}, {offset + length}) "
                f"size {extent.length}"
            )
        return self.drive.read(extent.start + offset, length, category=category)

    def file_size(self, name: str) -> int:
        return self._entry(name).length

    def delete_file(self, name: str) -> None:
        self._entry(name)
        del self._files[name]
        faded = self.sets.mark_invalid(name)
        if faded is not None:
            obs = self._obs
            if obs is not None:
                obs.emit(SetFade(ts=self.drive.now,
                                 nbytes=faded.extent.length))
            self.manager.free(faded.extent.start, faded.extent.length)

    def file_extents(self, name: str) -> list[Extent]:
        return [self._entry(name)]

    def exists(self, name: str) -> bool:
        return name in self._files

    def list_files(self) -> list[str]:
        return list(self._files)

    def group_invalid_count(self, name: str) -> int:
        """Invalid members in the on-disk set holding ``name``."""
        return self.sets.invalid_count(name)

    # -- fragment garbage collection (the paper's future work) -----------

    def collect_fragments(self, max_fragment: int,
                          max_moves: int = 32) -> tuple[int, int]:
        """Relocate sets that pin small free regions in place.

        Section IV-C: "these small fragments are quite difficult to be
        leveraged, thus SEALDB needs alternative garbage collection
        policies as a supplement.  We leave it for our future work."

        The policy implemented here: for each fragment (a free region no
        larger than ``max_fragment``), relocate the live members of the
        set immediately downstream of it; freeing that set's extent
        coalesces with the fragment (and drops any dead members the set
        was still holding).  Relocation is transparent to the engine --
        the name -> PBA indirection absorbs the move.

        Returns ``(sets_moved, bytes_rewritten)``.  The rewrite traffic
        is charged to the drive like any other table I/O, so GC shows up
        honestly in AWA.
        """
        moves = 0
        rewritten = 0
        for fragment in self.manager.fragments(max_fragment):
            if moves >= max_moves:
                break
            victim = self.sets.set_starting_at(fragment.end)
            if victim is None:
                continue
            live = [(name, self.drive.read(self._files[name].start,
                                           self._files[name].length,
                                           category=CATEGORY_TABLE))
                    for name in victim.members if name not in victim.invalid]
            old_extent = victim.extent
            self.sets.evict(victim)
            for name, _data in live:
                del self._files[name]
            if live:
                total = sum(len(data) for _n, data in live)
                offset = self.manager.allocate(total)
                members = []
                cursor = offset
                for name, data in live:
                    self.drive.write(cursor, data, category=CATEGORY_TABLE)
                    extent = Extent(cursor, cursor + len(data))
                    self._files[name] = extent
                    members.append((name, extent))
                    cursor += len(data)
                self.sets.register(members, created_at=self.drive.now)
                rewritten += total
            self.manager.free(old_extent.start, old_extent.length)
            moves += 1
        return moves, rewritten

    def _entry(self, name: str) -> Extent:
        try:
            return self._files[name]
        except KeyError:
            raise FileNotFoundStorageError(name) from None
