"""Set bookkeeping (Section III-A/C of the paper).

A *set* here is the physical unit the paper's delete semantics operate
on: the group of SSTables one compaction wrote contiguously.  Members
become invalid one at a time -- an overlapped SSTable fades when a
compaction consumes it; a victim SSTable is "only marked as invalid and
... recycled until the set it belongs to becomes invalid".  When the
last member fades the whole extent is reclaimed at once.

The registry also answers the ``invalid-set-first`` victim-policy query
("SEALDB gives priority to compact the set with more invalid SSTables,
hence fragments can be recycled implicitly with no overhead") and feeds
the set-size statistics of Fig. 10(b).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import InvariantViolation
from repro.smr.extent import Extent


@dataclass
class SetInfo:
    """One on-disk set: a contiguously placed group of tables."""

    set_id: int
    extent: Extent
    members: dict[str, Extent]
    invalid: set[str] = field(default_factory=set)
    created_at: float = 0.0

    @property
    def size(self) -> int:
        return self.extent.length

    @property
    def num_members(self) -> int:
        return len(self.members)

    @property
    def num_invalid(self) -> int:
        return len(self.invalid)

    @property
    def faded(self) -> bool:
        return len(self.invalid) == len(self.members)

    def member_extent(self, name: str) -> Extent:
        try:
            return self.members[name]
        except KeyError:
            raise InvariantViolation(f"{name!r} is not a member of set {self.set_id}") from None


class SetRegistry:
    """Tracks every live set and its members."""

    def __init__(self) -> None:
        self._sets: dict[int, SetInfo] = {}
        self._member_to_set: dict[str, int] = {}
        self._by_start: dict[int, int] = {}
        self._next_id = 1
        #: sizes of all sets ever created (for the Fig. 10(b) statistic)
        self.set_size_history: list[int] = []
        self.set_member_history: list[int] = []

    def __len__(self) -> int:
        return len(self._sets)

    def register(self, members: list[tuple[str, Extent]],
                 created_at: float = 0.0) -> SetInfo:
        """Record a newly written group of tables as one set."""
        if not members:
            raise InvariantViolation("a set needs at least one member")
        start = min(ext.start for _n, ext in members)
        end = max(ext.end for _n, ext in members)
        info = SetInfo(self._next_id, Extent(start, end),
                       {name: ext for name, ext in members},
                       created_at=created_at)
        if len(info.members) != len(members):
            raise InvariantViolation("duplicate member names in a set")
        for name, _ext in members:
            if name in self._member_to_set:
                raise InvariantViolation(f"{name!r} already belongs to a set")
            self._member_to_set[name] = info.set_id
        self._sets[info.set_id] = info
        self._by_start[info.extent.start] = info.set_id
        self._next_id += 1
        self.set_size_history.append(info.size)
        self.set_member_history.append(info.num_members)
        return info

    def set_of(self, name: str) -> SetInfo | None:
        set_id = self._member_to_set.get(name)
        return self._sets.get(set_id) if set_id is not None else None

    def invalid_count(self, name: str) -> int:
        """Invalid members in the set containing ``name`` (0 if none)."""
        info = self.set_of(name)
        return info.num_invalid if info is not None else 0

    def mark_invalid(self, name: str) -> SetInfo | None:
        """Invalidate one member; returns the set iff it fully faded.

        A faded set is removed from the registry; its extent is the
        caller's to reclaim.
        """
        set_id = self._member_to_set.get(name)
        if set_id is None:
            raise InvariantViolation(f"{name!r} belongs to no set")
        info = self._sets[set_id]
        if name in info.invalid:
            raise InvariantViolation(f"{name!r} already invalid")
        info.invalid.add(name)
        if info.faded:
            self._drop(info)
            return info
        return None

    def _drop(self, info: SetInfo) -> None:
        for member in info.members:
            self._member_to_set.pop(member, None)
        del self._sets[info.set_id]
        del self._by_start[info.extent.start]

    def set_starting_at(self, start: int) -> SetInfo | None:
        """The live set whose extent begins exactly at ``start``."""
        set_id = self._by_start.get(start)
        return self._sets.get(set_id) if set_id is not None else None

    def evict(self, info: SetInfo) -> list[str]:
        """Remove a live set (relocation); returns its live member names."""
        live = [name for name in info.members if name not in info.invalid]
        self._drop(info)
        return live

    def live_sets(self) -> list[SetInfo]:
        return list(self._sets.values())

    def average_set_size(self) -> float:
        """Mean size of every set ever created, the paper's 27.48 MB stat."""
        if not self.set_size_history:
            return 0.0
        return sum(self.set_size_history) / len(self.set_size_history)

    def average_set_members(self) -> float:
        if not self.set_member_history:
            return 0.0
        return sum(self.set_member_history) / len(self.set_member_history)

    def dead_bytes(self) -> int:
        """Bytes held by invalid members of still-live sets (cost analysis)."""
        return sum(info.member_extent(name).length
                   for info in self._sets.values()
                   for name in info.invalid)
