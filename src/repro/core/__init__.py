"""SEALDB: the paper's contribution.

* :mod:`repro.core.freespace` -- the free-space list: a sorted array of
  size classes, each holding a doubly-linked list of free regions
  (Section III-B2 of the paper), giving ``O(log n)`` allocation.
* :mod:`repro.core.dynamic_band` -- dynamic-band management: append,
  insert under Eq. 1 (``S_free >= S_req + S_guard``), split, coalesce,
  and the derived dynamic-band / fragment layout reporting.
* :mod:`repro.core.sets` -- the set registry: groups of SSTables written
  together by one compaction, invalidated member-by-member and
  reclaimed when the whole set fades.
* :mod:`repro.core.storage` -- the direct-on-disk placement policy
  combining the two (name -> PBA indirection, contiguous set writes).
* :mod:`repro.core.sealdb` -- the user-facing :class:`SealDB` facade.
"""

from repro.core.freespace import FreeSpaceList
from repro.core.dynamic_band import DynamicBandManager
from repro.core.sets import SetInfo, SetRegistry
from repro.core.storage import DynamicBandStorage
from repro.core.sealdb import SealDB

__all__ = [
    "DynamicBandManager",
    "DynamicBandStorage",
    "FreeSpaceList",
    "SealDB",
    "SetInfo",
    "SetRegistry",
]
