"""Dynamic-band management (Section III-B/C of the paper).

The manager owns the table area ``[data_start, capacity)`` of a raw
HM-SMR drive and serves allocations for *sets* (compaction output
groups):

* **Append** -- with no suitable free region, data goes to the tail of
  the valid area (the *residual*, not-yet-banded space).  Sequential
  appends never need guard regions because the shingle damage zone
  falls into unwritten space.
* **Insert** -- a freed region can be reused when Eq. 1 holds:
  ``S_free >= S_req + S_guard``.  Data is placed at the region start;
  the remainder (which is always >= the guard size) goes back to the
  free-space list.  The last ``guard`` bytes of any free region can
  therefore never be consumed -- they are the *guard region* protecting
  the valid data downstream, materialized lazily exactly as in Fig. 7.
* **Delete/Coalesce** -- freeing a set trims the drive and merges the
  new region with free neighbours; a region reaching the valid tail is
  returned to the residual space instead.
* **Split** -- implicit in insert: a larger region is split into the
  used part and a remainder region.

*Dynamic bands* are a derived notion: maximal runs of contiguous
allocated space separated by gaps.  :meth:`bands` reconstructs them for
the Fig. 13 layout analysis; :meth:`fragments` reports the small free
regions that can no longer serve a set.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import faults
from repro.errors import AllocationError, InvariantViolation
from repro.core.freespace import FreeSpaceList
from repro.obs.events import BandAllocate, BandCoalesce, BandFree, BandSplit
from repro.smr.extent import Extent, ExtentMap
from repro.smr.raw_hmsmr import RawHMSMRDrive


@dataclass
class BandInfo:
    """One derived dynamic band: a contiguous run of allocated space."""

    start: int
    end: int
    num_allocations: int

    @property
    def length(self) -> int:
        return self.end - self.start


class DynamicBandManager:
    """Allocator implementing the paper's dynamic-band policy."""

    def __init__(self, drive: RawHMSMRDrive, data_start: int,
                 class_unit: int, guard_size: int | None = None) -> None:
        self.drive = drive
        self.data_start = data_start
        self.guard_size = drive.guard_size if guard_size is None else guard_size
        self.free_list = FreeSpaceList(class_unit)
        #: allocated (live) extents, for layout reporting and invariants
        self.allocated = ExtentMap()
        #: tail of the banded area; beyond lies the residual space
        self.tail = data_start
        # counters for the cost analysis (Section IV-C)
        self.appends = 0
        self.inserts = 0
        self.splits = 0
        self.coalesces = 0
        #: observability bus; None while no subscriber (zero-cost hooks)
        self._obs = None

    # -- allocation -------------------------------------------------------

    def allocate(self, nbytes: int) -> int:
        """Reserve ``nbytes`` of safe-to-write space; returns its offset."""
        if nbytes <= 0:
            raise ValueError("allocation size must be positive")
        faults.trip(faults.FREESPACE_ALLOC, self.drive.clock)
        obs = self._obs
        region = self.free_list.allocate(nbytes + self.guard_size)
        if region is not None:
            offset = region.start
            remainder = Extent(region.start + nbytes, region.end)
            if remainder.length > 0:
                self.free_list.insert(remainder)
                self.splits += 1
                if obs is not None:
                    obs.emit(BandSplit(ts=self.drive.now, offset=region.start,
                                       used=nbytes,
                                       remainder=remainder.length))
            self.inserts += 1
            if obs is not None:
                obs.emit(BandAllocate(ts=self.drive.now, offset=offset,
                                      nbytes=nbytes, mode="insert"))
        else:
            if self.tail + nbytes > self.drive.capacity:
                raise AllocationError(
                    f"disk full: need {nbytes} bytes at tail {self.tail}, "
                    f"capacity {self.drive.capacity}"
                )
            offset = self.tail
            self.tail += nbytes
            self.appends += 1
            if obs is not None:
                obs.emit(BandAllocate(ts=self.drive.now, offset=offset,
                                      nbytes=nbytes, mode="append"))
        self.allocated.add(offset, offset + nbytes)
        return offset

    def free(self, offset: int, nbytes: int) -> None:
        """Release ``[offset, offset+nbytes)`` and coalesce neighbours."""
        end = offset + nbytes
        if not self.allocated.contains_range(offset, end):
            raise InvariantViolation(
                f"freeing unallocated range [{offset}, {end})"
            )
        self.allocated.remove(offset, end)
        self.drive.trim(offset, nbytes)
        obs = self._obs

        start, stop = offset, end
        # merge with a free region ending exactly at our start
        left = self._free_region_ending_at(start)
        if left is not None:
            self.free_list.remove(left)
            start = left.start
            self.coalesces += 1
            if obs is not None:
                obs.emit(BandCoalesce(ts=self.drive.now, offset=left.start,
                                      nbytes=left.length, side="left"))
        # merge with a free region starting exactly at our end
        right = self.free_list.region_at(stop)
        if right is not None:
            self.free_list.remove(right)
            stop = right.end
            self.coalesces += 1
            if obs is not None:
                obs.emit(BandCoalesce(ts=self.drive.now, offset=right.start,
                                      nbytes=right.length, side="right"))
        if stop == self.tail:
            # the region reaches the banded tail: return it to the
            # residual (never-banded) space instead of the free list
            self.tail = start
            if obs is not None:
                obs.emit(BandFree(ts=self.drive.now, offset=offset,
                                  nbytes=nbytes, to_residual=True))
            return
        self.free_list.insert(Extent(start, stop))
        if obs is not None:
            obs.emit(BandFree(ts=self.drive.now, offset=offset,
                              nbytes=nbytes, to_residual=False))

    def _free_region_ending_at(self, end: int) -> Extent | None:
        # The free list indexes by start; derive the left neighbour from
        # the allocated map: the gap immediately before `end` is free if
        # tracked.  We scan the free list's start index via the gap start.
        prev = self._gap_before(end)
        if prev is None:
            return None
        region = self.free_list.region_at(prev)
        if region is not None and region.end == end:
            return region
        return None

    def _gap_before(self, end: int) -> int | None:
        """Start of the maximal unallocated run ending at ``end``."""
        if end <= self.data_start:
            return None
        best_end = self.allocated.last_end_leq(end)
        if best_end is None:
            return self.data_start
        return best_end if best_end < end else None

    # -- derived layout ----------------------------------------------------

    def bands(self) -> list[BandInfo]:
        """Dynamic bands: maximal contiguous runs of allocated space.

        Only gaps of at least the guard size separate bands -- smaller
        dead slivers inside a run (none are produced by this allocator,
        but freed-and-reused space can abut) stay within one band.
        """
        bands: list[BandInfo] = []
        current: BandInfo | None = None
        for ext in self.allocated:
            if current is not None and ext.start <= current.end:
                current = BandInfo(current.start, max(current.end, ext.end),
                                   current.num_allocations + 1)
                bands[-1] = current
            else:
                current = BandInfo(ext.start, ext.end, 1)
                bands.append(current)
        return bands

    def fragments(self, max_useful: int) -> list[Extent]:
        """Free regions smaller than ``max_useful`` bytes (Fig. 13).

        The paper counts free regions no larger than the average set
        size as fragments, "quite difficult to be leveraged".
        """
        return [region for region in self.free_list.regions()
                if region.length <= max_useful]

    def occupied_bytes(self) -> int:
        """Bytes between the data start and the banded tail."""
        return self.tail - self.data_start

    def allocated_bytes(self) -> int:
        return self.allocated.total_bytes

    def free_bytes(self) -> int:
        return self.free_list.total_bytes

    def check_invariants(self) -> None:
        """Free and allocated space never overlap; all within bounds."""
        self.allocated.check_invariants()
        for region in self.free_list.regions():
            if region.start < self.data_start or region.end > self.tail:
                raise InvariantViolation(
                    f"free region {region} outside banded area "
                    f"[{self.data_start}, {self.tail})"
                )
            if self.allocated.covered_bytes(region.start, region.end):
                raise InvariantViolation(
                    f"free region {region} overlaps allocated space"
                )
        self.free_list.check_invariants()
        if self.allocated.max_end() > self.tail:
            raise InvariantViolation("allocation beyond the banded tail")
