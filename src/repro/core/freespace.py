"""The free-space list of dynamic-band management.

Per Section III-B2: "The free space from faded sets is organized by a
sorted array of double linked list, named *free space list*, and each
array element is aligned with an SSTable size (4 MB).  Free space
regions with similar sizes are tracked on an array element by a double
linked list. ... SEALDB first searches in the free space list by binary
searching the sorted array and picking the first free space in its
linked list with the complexity of O(log n)."

Here the sorted array holds the populated size classes (class ``k``
holds regions with ``k = size // class_unit``); each class owns a
doubly-linked list of regions in insertion order.  Allocation binary-
searches for the first class that can possibly satisfy the request and
walks at most a few list nodes.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Iterator

from repro.errors import InvariantViolation
from repro.smr.extent import Extent


class _Node:
    """Doubly-linked list node holding one free region."""

    __slots__ = ("extent", "prev", "next")

    def __init__(self, extent: Extent) -> None:
        self.extent = extent
        self.prev: _Node | None = None
        self.next: _Node | None = None


class _RegionList:
    """Intrusive doubly-linked list of free regions (one size class)."""

    def __init__(self) -> None:
        self.head: _Node | None = None
        self.tail: _Node | None = None
        self.count = 0

    def push_back(self, node: _Node) -> None:
        node.prev = self.tail
        node.next = None
        if self.tail is not None:
            self.tail.next = node
        else:
            self.head = node
        self.tail = node
        self.count += 1

    def unlink(self, node: _Node) -> None:
        if node.prev is not None:
            node.prev.next = node.next
        else:
            self.head = node.next
        if node.next is not None:
            node.next.prev = node.prev
        else:
            self.tail = node.prev
        node.prev = node.next = None
        self.count -= 1

    def __iter__(self) -> Iterator[_Node]:
        node = self.head
        while node is not None:
            nxt = node.next
            yield node
            node = nxt


class FreeSpaceList:
    """Size-class-indexed collection of free regions.

    ``class_unit`` is the SSTable size of the store, per the paper.
    Regions are also indexed by start offset so the dynamic-band manager
    can find and remove exact regions during coalescing.
    """

    def __init__(self, class_unit: int) -> None:
        if class_unit <= 0:
            raise ValueError("class unit must be positive")
        self.class_unit = class_unit
        self._classes: dict[int, _RegionList] = {}
        self._sorted_keys: list[int] = []
        self._by_start: dict[int, _Node] = {}
        self._total = 0

    def __len__(self) -> int:
        return len(self._by_start)

    @property
    def total_bytes(self) -> int:
        return self._total

    def _class_of(self, size: int) -> int:
        return size // self.class_unit

    def insert(self, extent: Extent) -> None:
        """Add a free region."""
        if extent.length <= 0:
            return
        if extent.start in self._by_start:
            raise InvariantViolation(f"duplicate free region at {extent.start}")
        key = self._class_of(extent.length)
        region_list = self._classes.get(key)
        if region_list is None:
            region_list = _RegionList()
            self._classes[key] = region_list
            insort(self._sorted_keys, key)
        node = _Node(extent)
        region_list.push_back(node)
        self._by_start[extent.start] = node
        self._total += extent.length

    def remove(self, extent: Extent) -> None:
        """Remove an exact region previously inserted."""
        node = self._by_start.get(extent.start)
        if node is None or node.extent != extent:
            raise InvariantViolation(f"free region {extent} not tracked")
        self._unlink(node)

    def _unlink(self, node: _Node) -> None:
        key = self._class_of(node.extent.length)
        region_list = self._classes[key]
        region_list.unlink(node)
        if region_list.count == 0:
            del self._classes[key]
            self._sorted_keys.pop(bisect_left(self._sorted_keys, key))
        del self._by_start[node.extent.start]
        self._total -= node.extent.length

    def region_at(self, start: int) -> Extent | None:
        """The free region starting exactly at ``start``, if tracked."""
        node = self._by_start.get(start)
        return node.extent if node is not None else None

    def allocate(self, min_size: int) -> Extent | None:
        """Pop the first region of at least ``min_size`` bytes.

        Binary search locates the lowest size class that may contain a
        fit; within a class the insertion-order list is scanned (a class
        spans one ``class_unit``, so at most the head few nodes can be
        too small).
        """
        if min_size <= 0:
            raise ValueError("allocation size must be positive")
        start_key = self._class_of(min_size)
        index = bisect_left(self._sorted_keys, start_key)
        while index < len(self._sorted_keys):
            key = self._sorted_keys[index]
            for node in self._classes[key]:
                if node.extent.length >= min_size:
                    extent = node.extent
                    self._unlink(node)
                    return extent
            index += 1
        return None

    def regions(self) -> list[Extent]:
        """All free regions, sorted by start offset."""
        return sorted((node.extent for node in self._by_start.values()),
                      key=lambda e: e.start)

    def check_invariants(self) -> None:
        """Classes consistent, no overlaps, totals add up (test hook)."""
        total = 0
        seen: list[Extent] = []
        for key, region_list in self._classes.items():
            count = 0
            for node in region_list:
                count += 1
                ext = node.extent
                if self._class_of(ext.length) != key:
                    raise InvariantViolation(f"{ext} filed under class {key}")
                if self._by_start.get(ext.start) is not node:
                    raise InvariantViolation(f"{ext} missing from start index")
                total += ext.length
                seen.append(ext)
            if count != region_list.count:
                raise InvariantViolation("list count drifted")
        if total != self._total:
            raise InvariantViolation("total bytes drifted")
        if sorted(self._sorted_keys) != self._sorted_keys:
            raise InvariantViolation("class keys unsorted")
        if set(self._sorted_keys) != set(self._classes):
            raise InvariantViolation("class keys out of sync")
        seen.sort(key=lambda e: e.start)
        for a, b in zip(seen, seen[1:]):
            if a.end > b.start:
                raise InvariantViolation(f"free regions {a} and {b} overlap")
