"""The SEALDB store: sets + dynamic bands on a raw HM-SMR drive."""

from __future__ import annotations

from repro.core.storage import DynamicBandStorage
from repro.harness.profiles import DEFAULT_PROFILE, ScaleProfile
from repro.kvstore import KVStoreBase
from repro.registry import register_store
from repro.smr.raw_hmsmr import RawHMSMRDrive
from repro.smr.timing import SMR_PROFILE, SimClock


@register_store("sealdb")
class SealDB(KVStoreBase):
    """LSM-tree with set-grouped compactions over dynamic bands.

    Configuration per the paper:

    * raw HM-SMR drive (write-anywhere, damage-zone enforced);
    * compaction outputs written as contiguous sets
      (``Options.use_sets``), inputs streamed with sequential
      whole-file reads;
    * ``invalid-set-first`` victim policy so partially dead sets fade
      and their space is recycled implicitly;
    * a guard region of one SSTable size (the paper's 4 MB).
    """

    name = "SEALDB"

    def __init__(self, profile: ScaleProfile = DEFAULT_PROFILE,
                 capacity: int | None = None,
                 clock: SimClock | None = None) -> None:
        self.profile = profile
        drive = RawHMSMRDrive(
            capacity if capacity is not None else profile.capacity,
            guard_size=profile.guard_size,
            profile=SMR_PROFILE.scaled(profile.io_scale),
            clock=clock,
        )
        storage = DynamicBandStorage(
            drive,
            wal_size=profile.wal_region,
            meta_size=profile.meta_region,
            class_unit=profile.sstable_size,
        )
        # The paper's "priority to compact the set with more invalid
        # SSTables" is available as victim_policy="invalid-set-first";
        # the default stays round-robin, which keeps WA equal to
        # LevelDB's as Fig. 12(a) reports (the aggressive policy trades
        # extra WA for faster space recycling -- see the ablation bench).
        options = profile.options(use_sets=True)
        super().__init__(drive, storage, options)

    def _register_gauges(self, metrics) -> None:
        super()._register_gauges(metrics)
        manager = self.storage.manager
        metrics.gauge("band.occupied_bytes", manager.occupied_bytes)
        metrics.gauge("band.allocated_bytes", manager.allocated_bytes)
        metrics.gauge("band.free_bytes", manager.free_bytes)
        metrics.gauge("band.count", lambda: len(manager.bands()))
        metrics.gauge("band.fragment_count", lambda: len(self.fragments()))
        metrics.gauge("band.fragment_bytes",
                      lambda: sum(f.length for f in self.fragments()))
        metrics.gauge("sets.avg_bytes", self.average_set_size)
        metrics.gauge("sets.dead_bytes", lambda: self.set_registry.dead_bytes())

    # -- SEALDB-specific introspection ------------------------------------

    @property
    def band_manager(self):
        return self.storage.manager

    @property
    def set_registry(self):
        return self.storage.sets

    def average_set_size(self) -> float:
        return self.set_registry.average_set_size()

    def fragments(self, max_useful: int | None = None):
        """Small free regions, per the Fig. 13 definition."""
        if max_useful is None:
            avg = self.average_set_size()
            max_useful = int(avg) if avg > 0 else self.profile.band_size
        return self.band_manager.fragments(max_useful)

    def collect_fragments(self, max_moves: int = 32) -> tuple[int, int]:
        """Run the fragment GC the paper leaves as future work.

        Relocates the sets pinning fragments in place so the freed
        space coalesces into reusable regions; returns
        ``(sets_moved, bytes_rewritten)``.
        """
        avg = self.average_set_size()
        max_fragment = int(avg) if avg > 0 else self.profile.band_size
        return self.storage.collect_fragments(max_fragment, max_moves)
