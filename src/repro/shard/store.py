"""`ShardedStore`: N independent stores behind one `KVStoreBase` surface.

Keyspace partitioning with independent per-partition compaction is the
standard lever for scaling LSM throughput without raising write
amplification: each shard owns a full store stack (simulated drive,
storage backend, WAL, manifest, compaction state), a router assigns
every user key to exactly one shard, and the facade re-exposes the
single-store API on top.

Timeline semantics
------------------
Every shard owns an *independent* simulated clock, modelling N drives
working in parallel.  ``store.now`` is the **max** across shard clocks
(the parallel wall-clock of the fleet); :meth:`timeline` additionally
reports the per-shard clocks and their sum (aggregate device-seconds),
so experiments can quote both "how long did the parallel system take"
and "how much total drive time was consumed".

Cross-shard batch semantics
---------------------------
``write_batch`` splits a :class:`~repro.lsm.wal.WriteBatch` by router
and applies each sub-batch *atomically within its shard* (one WAL
record per shard).  There is **no cross-shard atomicity**: a crash can
persist the sub-batch on shard A but not on shard B.  Readers never
see a partially applied sub-batch, and single-key operations keep full
per-key atomicity -- the same contract sharded production stores
(e.g. partitioned column families) document.

Bulk operations (:meth:`bulk_load`, multi-shard ``write_batch``) fan
out over a ``ThreadPoolExecutor``; shards never share mutable state,
so each worker thread drives exactly one shard.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, ContextManager, Iterable, Iterator, Sequence

from repro.errors import (
    DriveError,
    InvariantViolation,
    KeyRangeUnavailable,
    ReproError,
    ShardUnavailable,
    StorageError,
)
from repro.harness.metrics import ShardTimeline
from repro.kvstore import KVStoreBase
from repro.lsm.db import CompactionRecord, DBStats
from repro.lsm.ikey import TYPE_VALUE
from repro.lsm.wal import WriteBatch
from repro.obs.bus import Observability
from repro.obs.events import ScanEvent
from repro.obs.metrics import MetricsRegistry, merge_registries
from repro.shard.merge import merge_shard_scans
from repro.shard.router import Router
from repro.smr.stats import CATEGORY_TABLE, AmplificationTracker


class FanoutObservability(Observability):
    """The sharded facade's bus: arming / subscribing propagates to every
    shard's bus, so ``store.obs.subscribe(cb)`` sees facade-level events
    (cross-shard scans) *and* every per-shard event stream."""

    def __init__(self, name: str, shards: Sequence[KVStoreBase]) -> None:
        super().__init__(name)
        self._children = [shard.obs for shard in shards]

    def arm(self) -> None:
        super().arm()
        for child in self._children:
            child.arm()

    def disarm(self) -> None:
        super().disarm()
        for child in self._children:
            child.disarm()

    def subscribe(self, callback, events=None):
        super().subscribe(callback, events)
        for child in self._children:
            child.subscribe(callback, events)
        return callback

    def unsubscribe(self, callback) -> None:
        super().unsubscribe(callback)
        for child in self._children:
            child.unsubscribe(callback)


# Shard health states.  HEALTHY and DEGRADED are derived (a shard with
# quarantined tables is degraded but still serves every other range);
# FAILED is sticky -- set when a shard raises a fatal drive/storage/
# invariant error -- and only cleared by a successful recovery in
# :meth:`ShardedStore.reopen`.
HEALTHY = "healthy"
DEGRADED = "degraded"
FAILED = "failed"


class ShardedScan:
    """A merged cross-shard scan that knows whether it is complete.

    Iterates like the plain generator it wraps; additionally exposes
    ``skipped_shards`` (indices whose shard was failed at scan start or
    failed mid-stream) and ``partial`` (true when any shard was
    skipped).  A shard failing *mid-stream* ends its contribution but
    not the scan -- surviving shards keep feeding the merge.

    :meth:`close` (or leaving the ``with`` block) releases the merge
    *and* every per-shard guarded stream deterministically -- an early
    termination (e.g. a network client disconnecting mid-SCAN) must not
    leave shard iterators suspended until garbage collection.
    """

    def __init__(self, pairs: Iterator[tuple[bytes, bytes]],
                 skipped: list[int],
                 streams: Sequence[Iterator[tuple[bytes, bytes]]] = ()
                 ) -> None:
        self._pairs = pairs
        self._streams = list(streams)
        #: shared with the stream guards, so mid-scan failures appear here
        self.skipped_shards = skipped

    @property
    def partial(self) -> bool:
        return bool(self.skipped_shards)

    def __iter__(self) -> "ShardedScan":
        return self

    def __next__(self) -> tuple[bytes, bytes]:
        return next(self._pairs)

    def close(self) -> None:
        """Release the merged stream and each per-shard source."""
        for it in (self._pairs, *self._streams):
            close = getattr(it, "close", None)
            if close is not None:
                close()

    def __enter__(self) -> "ShardedScan":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class _MultiLock:
    """Acquire several locks in a fixed order (release in reverse)."""

    __slots__ = ("_locks",)

    def __init__(self, locks: Sequence[ContextManager]) -> None:
        self._locks = list(locks)

    def __enter__(self) -> "_MultiLock":
        for lock in self._locks:
            lock.__enter__()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        for lock in reversed(self._locks):
            lock.__exit__(exc_type, exc, tb)


class ShardedSnapshot:
    """Composed point-in-time view: one engine snapshot per shard.

    ``get``/``scan`` pin each shard's sequence number at creation time;
    the composition is consistent per shard (and therefore per key),
    with the same cross-shard caveat as ``write_batch``: the per-shard
    sequence points were taken one after another, not atomically.
    """

    def __init__(self, store: "ShardedStore") -> None:
        self._store = store
        self._snapshots = [shard.snapshot() for shard in store.shards]

    @property
    def sequences(self) -> tuple[int, ...]:
        return tuple(snap.sequence for snap in self._snapshots)

    def get(self, key: bytes) -> bytes | None:
        return self._snapshots[self._store.router.shard_of(key)].get(key)

    def scan(self, start: bytes | None = None, end: bytes | None = None,
             limit: int | None = None) -> Iterator[tuple[bytes, bytes]]:
        candidates = self._store.router.shards_for_range(start, end)
        streams = [self._snapshots[i].scan(start, end, limit)
                   for i in candidates]
        return _limited(merge_shard_scans(streams), limit)

    def __enter__(self) -> "ShardedSnapshot":
        return self

    def __exit__(self, *_exc) -> None:
        return None


def _limited(pairs: Iterator[tuple[bytes, bytes]],
             limit: int | None) -> Iterator[tuple[bytes, bytes]]:
    if limit is None:
        yield from pairs
        return
    if limit <= 0:
        return
    count = 0
    for pair in pairs:
        yield pair
        count += 1
        if count >= limit:
            break


class ShardedStore(KVStoreBase):
    """Routes the `KVStoreBase` surface over N independent shards."""

    name = "sharded"

    def __init__(self, shards: Sequence[KVStoreBase], router: Router, *,
                 name: str | None = None, parallel: bool = True,
                 max_workers: int | None = None) -> None:
        if not shards:
            raise ReproError("a sharded store needs at least one shard")
        if router.num_shards != len(shards):
            raise ReproError(
                f"router expects {router.num_shards} shards, got "
                f"{len(shards)}")
        clocks = {id(shard.drive.clock) for shard in shards}
        if len(clocks) != len(shards):
            raise ReproError(
                "shards must own independent simulated clocks; a shared "
                "clock would serialize the parallel timeline")
        self.shards = list(shards)
        self.router = router
        self.name = name if name is not None else (
            f"{self.shards[0].name}x{len(self.shards)}")
        self.profile = getattr(self.shards[0], "profile", None)
        self.options = self.shards[0].options
        self._parallel = parallel
        self._max_workers = max_workers
        self._pool: ThreadPoolExecutor | None = None
        self._failed: set[int] = set()
        self._closed = False
        self._obs = None
        self.obs = FanoutObservability(self.name, self.shards)
        self._register_gauges(self.obs.metrics)
        self.obs.bind(self)

    # -- routing / fan-out helpers -----------------------------------------

    def shard_for(self, key: bytes) -> KVStoreBase:
        """The shard instance that owns ``key``."""
        return self.shards[self.router.shard_of(key)]

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self._max_workers or len(self.shards),
                thread_name_prefix=f"{self.name}-shard")
        return self._pool

    def _fanout(self, fn: Callable, jobs: Sequence[tuple]) -> list:
        """Run ``fn(*job)`` once per job, in the pool when parallel.

        Jobs touch disjoint shards (each shard's entire stack is
        single-threaded within one job), so this is safe without locks.
        """
        if self._parallel and len(jobs) > 1:
            pool = self._ensure_pool()
            futures = [pool.submit(fn, *job) for job in jobs]
            return [future.result() for future in futures]
        return [fn(*job) for job in jobs]

    # -- fault isolation -----------------------------------------------------

    def _check_available(self, index: int) -> None:
        if index in self._failed:
            raise ShardUnavailable(f"shard {index} is failed")

    def _guarded(self, index: int, fn: Callable):
        """Run one shard operation behind the fault boundary.

        A typed :class:`KeyRangeUnavailable` (quarantined table) passes
        through untouched -- the shard is degraded, not dead, and the
        caller gets the precise range error.  Anything fatal below the
        engine (drive, storage, broken invariant) marks the shard FAILED
        and surfaces as :class:`ShardUnavailable`; the sibling shards
        keep serving.
        """
        try:
            return fn()
        except ShardUnavailable:
            raise
        except KeyRangeUnavailable:
            raise
        except (DriveError, StorageError, InvariantViolation) as exc:
            self._failed.add(index)
            raise ShardUnavailable(f"shard {index} failed: {exc}") from exc

    def shard_health(self) -> list[str]:
        """Per-shard health: FAILED is sticky until recovery; a live
        shard with quarantined tables is DEGRADED."""
        return [FAILED if index in self._failed
                else DEGRADED if shard.quarantined_tables
                else HEALTHY
                for index, shard in enumerate(self.shards)]

    # -- operations ---------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> None:
        index = self.router.shard_of(key)
        self._check_available(index)
        self._guarded(index, lambda: self.shards[index].put(key, value))

    def get(self, key: bytes) -> bytes | None:
        index = self.router.shard_of(key)
        self._check_available(index)
        return self._guarded(index, lambda: self.shards[index].get(key))

    def delete(self, key: bytes) -> None:
        index = self.router.shard_of(key)
        self._check_available(index)
        self._guarded(index, lambda: self.shards[index].delete(key))

    def _guarded_stream(self, index: int, skipped: list[int],
                        start: bytes | None, end: bytes | None,
                        limit: int | None) -> Iterator[tuple[bytes, bytes]]:
        """One shard's scan stream behind the fault boundary: a fatal
        failure mid-stream marks the shard FAILED, records it in the
        scan's ``skipped_shards`` and ends this stream -- the merge
        continues over the survivors.  Range quarantines still raise."""
        try:
            yield from self.shards[index].scan(start, end, limit)
        except ShardUnavailable:
            raise
        except KeyRangeUnavailable:
            raise
        except (DriveError, StorageError, InvariantViolation):
            self._failed.add(index)
            skipped.append(index)

    def scan(self, start: bytes | None = None, end: bytes | None = None,
             limit: int | None = None) -> ShardedScan:
        """Scatter-gather scan over the live shards.

        Failed shards are skipped rather than failing the whole scan;
        the returned :class:`ShardedScan` flags the result ``partial``
        and names the ``skipped_shards``.
        """
        candidates = self.router.shards_for_range(start, end)
        skipped = [i for i in candidates if i in self._failed]
        streams = [self._guarded_stream(i, skipped, start, end, limit)
                   for i in candidates if i not in self._failed]
        merged = _limited(merge_shard_scans(streams), limit)
        if self._obs is not None:
            merged = self._observed_scan(merged)
        return ShardedScan(merged, skipped, streams)

    def _observed_scan(self, merged: Iterator[tuple[bytes, bytes]]
                       ) -> Iterator[tuple[bytes, bytes]]:
        t0 = self.now
        keys = 0
        try:
            for pair in merged:
                yield pair
                keys += 1
        finally:
            obs = self._obs
            if obs is not None:
                obs.emit(ScanEvent(ts=t0, keys=keys, latency=self.now - t0))

    def write_batch(self, batch: WriteBatch) -> None:
        """Split ``batch`` by router; apply each sub-batch atomically on
        its shard (see the module docstring for cross-shard semantics)."""
        subs: dict[int, WriteBatch] = {}
        for type_, key, value in batch.ops:
            sub = subs.setdefault(self.router.shard_of(key), WriteBatch())
            if type_ == TYPE_VALUE:
                sub.put(key, value)
            else:
                sub.delete(key)
        jobs = sorted(subs.items())
        # Refuse up front if any target shard is failed -- better no
        # sub-batch lands than a surprise subset.
        for index, _sub in jobs:
            self._check_available(index)
        self._fanout(
            lambda index, sub: self._guarded(
                index, lambda: self.shards[index].write_batch(sub)),
            jobs)

    def bulk_load(self, pairs: Iterable[tuple[bytes, bytes]],
                  batch_size: int = 256) -> ShardTimeline:
        """Partition ``pairs`` by router and load every shard in
        parallel, batching ``batch_size`` puts per WAL record.  Returns
        the resulting :class:`ShardTimeline` (per-shard, max, and total
        simulated seconds spent)."""
        per_shard: list[list[tuple[bytes, bytes]]] = [
            [] for _ in self.shards]
        for key, value in pairs:
            per_shard[self.router.shard_of(key)].append((key, value))
        starts = [shard.now for shard in self.shards]

        def load(shard: KVStoreBase, items: list[tuple[bytes, bytes]]) -> None:
            batch = WriteBatch()
            for key, value in items:
                batch.put(key, value)
                if len(batch) >= batch_size:
                    shard.write_batch(batch)
                    batch = WriteBatch()
            if len(batch):
                shard.write_batch(batch)

        for index, items in enumerate(per_shard):
            if items:
                self._check_available(index)
        self._fanout(
            lambda index, items: self._guarded(
                index, lambda: load(self.shards[index], items)),
            list(enumerate(per_shard)))
        spent = [shard.now - start
                 for shard, start in zip(self.shards, starts)]
        return ShardTimeline(per_shard=spent)

    def _live_shards(self) -> list[tuple[int, KVStoreBase]]:
        return [(index, shard) for index, shard in enumerate(self.shards)
                if index not in self._failed]

    def compact_range(self, start: bytes | None = None,
                      end: bytes | None = None) -> int:
        return sum(self._fanout(
            lambda index, shard: self._guarded(
                index, lambda: shard.compact_range(start, end)),
            self._live_shards()))

    def flush(self) -> None:
        self._fanout(
            lambda index, shard: self._guarded(index, shard.flush),
            self._live_shards())

    def close(self) -> None:
        """Close every shard and the fan-out pool.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        self._fanout(lambda shard: shard.close(),
                     [(shard,) for shard in self.shards])
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def lock_for(self, key: bytes | None = None) -> ContextManager:
        """Per-shard serialization for out-of-simulation callers: a
        keyed request locks only its owning shard (so the net server's
        executor threads drive different shards in parallel); key-less
        operations (scans, batches, flush) take every shard's lock in
        index order."""
        if key is not None:
            return self.shards[self.router.shard_of(key)].lock_for(key)
        return _MultiLock([shard.lock_for() for shard in self.shards])

    def reopen(self) -> "ShardedStore":
        """Crash-restart every shard, running per-shard recovery.

        A shard that recovers cleanly but still carries quarantined
        tables -- or that cannot recover at all -- goes through the
        repair path (rebuild the manifest from surviving tables,
        dropping the bad ones) and rejoins.  Only a shard whose repair
        itself fails stays FAILED; the facade never stops serving the
        others.
        """
        self._closed = False
        for index, shard in enumerate(self.shards):
            try:
                shard.reopen()
            except ReproError:
                self._failed.add(index)
                try:
                    shard.repair()
                except ReproError:
                    continue  # stays failed; siblings keep serving
            if shard.quarantined_tables:
                try:
                    shard.repair()
                except ReproError:
                    self._failed.add(index)
                    continue
            self._failed.discard(index)
        return self

    def snapshot(self) -> ShardedSnapshot:
        return ShardedSnapshot(self)

    # -- resilience ---------------------------------------------------------

    def scrub(self):
        """Scrub every live shard; returns one merged
        :class:`~repro.resilience.scrub.ScrubReport`."""
        from repro.resilience.scrub import ScrubReport
        merged = ScrubReport()
        for index, shard in self._live_shards():
            merged.merge(self._guarded(index, shard.scrub))
        return merged

    def repair(self) -> list:
        """Repair every shard (failed ones included -- this is the
        recovery path); shards whose repair succeeds rejoin the fleet.
        Returns the per-shard repair reports."""
        reports = []
        for index, shard in enumerate(self.shards):
            try:
                reports.append(shard.repair())
            except ReproError:
                self._failed.add(index)
                reports.append(None)
            else:
                self._failed.discard(index)
        return reports

    # -- measurements -------------------------------------------------------

    @property
    def now(self) -> float:
        """Parallel wall-clock: the furthest shard clock."""
        return max(shard.now for shard in self.shards)

    def timeline(self) -> ShardTimeline:
        """Per-shard simulated clocks plus max (parallel wall time) and
        sum (aggregate device-seconds)."""
        return ShardTimeline(per_shard=[shard.now for shard in self.shards])

    @property
    def stats(self) -> DBStats:
        """Merged operation counters across shards."""
        merged = DBStats()
        for shard in self.shards:
            s = shard.stats
            merged.puts += s.puts
            merged.gets += s.gets
            merged.deletes += s.deletes
            merged.scans += s.scans
            merged.get_hits += s.get_hits
            merged.tables_opened += s.tables_opened
            merged.read_retries += s.read_retries
            merged.media_errors += s.media_errors
            merged.quarantines += s.quarantines
        return merged

    @property
    def quarantined_tables(self) -> int:
        """Quarantined tables across all live shards."""
        return sum(shard.quarantined_tables
                   for index, shard in enumerate(self.shards)
                   if index not in self._failed)

    def degraded_ranges(self) -> list[tuple[bytes, bytes]]:
        """Unavailable user-key ranges across all live shards."""
        return [rng for index, shard in enumerate(self.shards)
                if index not in self._failed
                for rng in shard.degraded_ranges()]

    @property
    def tracker(self) -> AmplificationTracker:
        """Merged WA inputs across shards (a fresh aggregate per read)."""
        merged = AmplificationTracker()
        for shard in self.shards:
            merged.user_bytes += shard.tracker.user_bytes
            merged.lsm_bytes += shard.tracker.lsm_bytes
            merged.flush_bytes += shard.tracker.flush_bytes
            merged.compaction_bytes += shard.tracker.compaction_bytes
        return merged

    @property
    def compaction_records(self) -> list[CompactionRecord]:
        """Every shard's compactions, merged on the start timestamp."""
        records = [record for shard in self.shards
                   for record in shard.compaction_records]
        records.sort(key=lambda r: (r.start_time, r.end_time))
        return records

    def wa(self) -> float:
        return self.tracker.wa()

    def awa(self) -> float:
        """AWA over the summed device/table byte streams of all drives."""
        lsm = sum(shard.tracker.lsm_bytes for shard in self.shards)
        if lsm == 0:
            return 0.0
        device = sum(
            shard.drive.stats.bytes_written_by_category.get(CATEGORY_TABLE, 0)
            for shard in self.shards)
        return device / lsm

    def mwa(self) -> float:
        return self.wa() * self.awa()

    def level_summary(self) -> list[tuple[int, int, int]]:
        """Per level, summed across shards: ``(level, files, bytes)``."""
        levels = max(shard.options.max_levels for shard in self.shards)
        files = [0] * levels
        nbytes = [0] * levels
        for shard in self.shards:
            for level, count, total in shard.level_summary():
                files[level] += count
                nbytes[level] += total
        return [(level, files[level], nbytes[level])
                for level in range(levels)]

    def merged_metrics(self) -> MetricsRegistry:
        """One registry folding every shard's metrics plus the facade's
        own (cross-shard scans), with amplification gauges recomputed
        from the merged trackers.  Per-shard registries stay available
        at ``store.shards[i].obs.metrics``."""
        merged = merge_registries([shard.obs.metrics
                                   for shard in self.shards])
        merged.merge(self.obs.metrics)
        merged.gauge("amp.wa").set(self.wa())
        merged.gauge("amp.awa").set(self.awa())
        merged.gauge("amp.mwa").set(self.mwa())
        # Gauges merge keep-last, so resilience totals must be summed
        # here explicitly or `repro metrics` would show one shard's view.
        merged.gauge("resilience.quarantined_tables").set(
            self.quarantined_tables)
        merged.gauge("resilience.degraded_ranges").set(
            len(self.degraded_ranges()))
        merged.gauge("resilience.failed_shards").set(len(self._failed))
        health = self.shard_health()
        for state in (HEALTHY, DEGRADED, FAILED):
            merged.gauge(f"shard.{state}").set(health.count(state))
        return merged

    def describe(self) -> str:
        return (f"{self.name}: {len(self.shards)} x "
                f"[{self.shards[0].describe()}] "
                f"router={self.router.describe()}")
