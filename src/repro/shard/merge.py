"""K-way merge of per-shard scan streams.

Each shard's ``scan()`` yields ``(user_key, value)`` in ascending key
order, and the router guarantees the shards' key sets are disjoint, so
a plain heap merge by user key produces the globally sorted stream --
no MVCC arbitration is needed at this layer (each shard already
resolved versions and tombstones internally).

The merge is lazy: a source is only advanced when its head is
consumed, so ``scan(limit=10)`` over a sharded store pulls a handful
of entries per shard, not whole tables.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Iterator

Pair = tuple[bytes, bytes]


def merge_shard_scans(streams: Iterable[Iterator[Pair]]) -> Iterator[Pair]:
    """Merge sorted, key-disjoint ``(key, value)`` streams into one
    globally sorted stream.

    The stream index in the heap entries is a tie-breaker that also
    prevents Python from ever comparing values; with disjoint keys it
    never decides an ordering, but duplicate keys across streams (a
    misrouted store) still merge deterministically instead of raising.
    """
    heap: list[tuple[bytes, int, bytes, Iterator[Pair]]] = []
    for index, stream in enumerate(streams):
        stream = iter(stream)
        for key, value in stream:
            heap.append((key, index, value, stream))
            break
    heapq.heapify(heap)
    while heap:
        key, index, value, stream = heapq.heappop(heap)
        yield key, value
        for next_key, next_value in stream:
            heapq.heappush(heap, (next_key, index, next_value, stream))
            break
