"""Key routers: deterministic keyspace partitioning for the sharded store.

A router maps every user key to exactly one shard index, so the shards
hold *disjoint* key sets and a cross-shard merge never has to resolve
conflicting versions of one key.  Two partitioners are provided:

* :class:`HashRouter` -- CRC32 of the key modulo the shard count.
  Balanced for any key distribution, but a range scan must consult
  every shard.
* :class:`RangeRouter` -- explicit split keys (like a distributed
  range-partitioned table).  Range scans touch only the shards whose
  ranges intersect the scan, but balance depends on the boundaries.

Routers are pure functions of the key: no state, no randomness
(``zlib.crc32``, not Python's salted ``hash``), so a store routed today
routes identically after a process restart.
"""

from __future__ import annotations

import bisect
import zlib

from repro.errors import ReproError


class Router:
    """Maps user keys to shard indices; subclasses implement the policy."""

    def __init__(self, num_shards: int) -> None:
        if num_shards < 1:
            raise ReproError(f"need at least one shard, got {num_shards}")
        self.num_shards = num_shards

    def shard_of(self, key: bytes) -> int:
        raise NotImplementedError

    def shards_for_range(self, start: bytes | None,
                         end: bytes | None) -> tuple[int, ...]:
        """Candidate shards for a scan over ``[start, end)``.

        May over-approximate (extra shards just contribute empty
        streams); must never miss a shard that could hold a key in the
        range.
        """
        return tuple(range(self.num_shards))

    def describe(self) -> str:
        return f"{type(self).__name__}(n={self.num_shards})"


class HashRouter(Router):
    """CRC32(key) mod N: balanced, scatter-gather scans."""

    def shard_of(self, key: bytes) -> int:
        return zlib.crc32(key) % self.num_shards


class RangeRouter(Router):
    """Range partitioning over sorted split keys.

    ``boundaries`` holds ``num_shards - 1`` ascending keys; a key
    routes to the number of boundaries that are ``<= key`` (so a key
    equal to a boundary belongs to the shard *above* the split, as in
    ``bisect_right``).  Shard ``i`` therefore owns
    ``[boundaries[i-1], boundaries[i])``.
    """

    def __init__(self, boundaries: list[bytes]) -> None:
        super().__init__(len(boundaries) + 1)
        cleaned = [bytes(b) for b in boundaries]
        if sorted(set(cleaned)) != cleaned:
            raise ReproError("range boundaries must be strictly ascending")
        self.boundaries = cleaned

    @classmethod
    def uniform(cls, num_shards: int, prefix_bytes: int = 2) -> "RangeRouter":
        """Split the first ``prefix_bytes`` of the keyspace evenly.

        Balanced when key prefixes are uniform (e.g. scrambled /
        hashed keys); skewed for dense ASCII keys, which is exactly
        the trade-off real range partitioning has.
        """
        if num_shards < 1:
            raise ReproError(f"need at least one shard, got {num_shards}")
        space = 256 ** prefix_bytes
        boundaries = [
            (space * i // num_shards).to_bytes(prefix_bytes, "big")
            for i in range(1, num_shards)
        ]
        return cls(boundaries)

    def shard_of(self, key: bytes) -> int:
        return bisect.bisect_right(self.boundaries, key)

    def shards_for_range(self, start: bytes | None,
                         end: bytes | None) -> tuple[int, ...]:
        lo = self.shard_of(start) if start is not None else 0
        hi = self.shard_of(end) if end is not None else self.num_shards - 1
        return tuple(range(lo, hi + 1))

    def describe(self) -> str:
        return (f"RangeRouter(n={self.num_shards}, "
                f"boundaries={[b.hex() for b in self.boundaries]})")


def make_router(spec: "str | Router", num_shards: int,
                boundaries: list[bytes] | None = None) -> Router:
    """Resolve the ``router=`` argument of ``repro.open``.

    ``spec`` is ``"hash"``, ``"range"``, or an already-built
    :class:`Router` (whose shard count must match).
    """
    if isinstance(spec, Router):
        if spec.num_shards != num_shards:
            raise ReproError(
                f"router expects {spec.num_shards} shards, store has "
                f"{num_shards}")
        return spec
    if spec == "hash":
        return HashRouter(num_shards)
    if spec == "range":
        if boundaries is not None:
            if len(boundaries) != num_shards - 1:
                raise ReproError(
                    f"{num_shards} shards need {num_shards - 1} boundaries, "
                    f"got {len(boundaries)}")
            return RangeRouter(boundaries)
        return RangeRouter.uniform(num_shards)
    raise ReproError(f"unknown router {spec!r}; choose 'hash' or 'range'")
