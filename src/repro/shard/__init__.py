"""``repro.shard`` — keyspace-partitioned parallel shards behind the
single-store facade.

``repro.open(kind, shards=N)`` builds N independent store instances
(each with its own drive, storage backend, WAL, and compaction state),
wraps them in a :class:`ShardedStore`, and routes keys with a
:class:`HashRouter` (default) or :class:`RangeRouter`.  ``shards=1``
(the default) bypasses this package entirely.

Quick use::

    import repro

    with repro.open("sealdb", shards=4) as db:
        db.put(b"key", b"value")          # routed to one shard
        list(db.scan())                    # globally sorted merge
        print(db.timeline())               # per-shard + max + sum clocks
"""

from repro.shard.merge import merge_shard_scans
from repro.shard.router import HashRouter, RangeRouter, Router, make_router
from repro.shard.store import (
    FanoutObservability,
    ShardedSnapshot,
    ShardedStore,
)

__all__ = [
    "FanoutObservability",
    "HashRouter",
    "RangeRouter",
    "Router",
    "ShardedSnapshot",
    "ShardedStore",
    "make_router",
    "merge_shard_scans",
]
