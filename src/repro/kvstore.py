"""Common facade for the four evaluated stores.

Each store bundles a drive, a placement policy, and an engine
configuration; :class:`KVStoreBase` wires them together and exposes the
operations plus the measurements every experiment needs (WA / AWA /
MWA, compaction traces, simulated time).

Every store also owns one :class:`~repro.obs.Observability` handle at
``store.obs`` — the single instrumentation surface (typed events +
metrics registry) shared by experiments, the CLI and the crash
sweeper.  The facade works as a context manager::

    with repro.open("sealdb") as db:
        db.put(b"k", b"v")
"""

from __future__ import annotations

import threading
from typing import ContextManager, Iterator

from repro.fs.storage import Storage
from repro.lsm.db import DB, CompactionRecord, DBStats, Snapshot
from repro.lsm.options import Options
from repro.obs.bus import Observability
from repro.obs.events import DeleteEvent, GetEvent, PutEvent, ScanEvent
from repro.smr.drive import Drive
from repro.smr.stats import AmplificationTracker


class KVStoreBase:
    """A named store: drive + placement + engine."""

    name = "base"

    def __init__(self, drive: Drive, storage: Storage, options: Options) -> None:
        self.drive = drive
        self.storage = storage
        self.options = options
        self.tracker = AmplificationTracker()
        # Stats live on the facade so counters survive crash-recovery
        # (DB.recover used to build a fresh DBStats, orphaning the old
        # object anyone held); the engine mutates this same instance.
        self.stats = DBStats()
        self.db = DB(storage, options, self.tracker, stats=self.stats)
        self._op_lock = threading.RLock()
        self._closed = False
        self._obs = None
        self.obs = Observability(self.name)
        self._register_gauges(self.obs.metrics)
        self._wire_obs()

    def _wire_obs(self) -> None:
        """Bind every instrumented component to the store's bus.  Called
        again after ``reopen()`` replaces the engine."""
        components = [self, self.drive, self.storage, self.db]
        for attr in ("manager", "allocator"):
            extra = getattr(self.storage, attr, None)
            if extra is not None:
                components.append(extra)
        self.obs.bind(*components)

    def _register_gauges(self, metrics) -> None:
        """Lazy gauges evaluated on read; subclasses add layer-specific
        ones (e.g. SEALDB's fragment and set-registry gauges)."""
        metrics.gauge("amp.wa", self.wa)
        metrics.gauge("amp.awa", self.awa)
        metrics.gauge("amp.mwa", self.mwa)
        metrics.gauge("resilience.quarantined_tables",
                      lambda: self.quarantined_tables)
        metrics.gauge("resilience.degraded_ranges",
                      lambda: len(self.degraded_ranges()))

    # -- operations ---------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> None:
        obs = self._obs
        if obs is None:
            self.db.put(key, value)
            return
        t0 = self.drive.now
        self.db.put(key, value)
        obs.emit(PutEvent(ts=t0, key_len=len(key), value_len=len(value),
                          latency=self.drive.now - t0))

    def get(self, key: bytes) -> bytes | None:
        obs = self._obs
        if obs is None:
            return self.db.get(key)
        t0 = self.drive.now
        value = self.db.get(key)
        obs.emit(GetEvent(ts=t0, key_len=len(key), hit=value is not None,
                          latency=self.drive.now - t0))
        return value

    def delete(self, key: bytes) -> None:
        obs = self._obs
        if obs is None:
            self.db.delete(key)
            return
        t0 = self.drive.now
        self.db.delete(key)
        obs.emit(DeleteEvent(ts=t0, key_len=len(key),
                             latency=self.drive.now - t0))

    def scan(self, start: bytes | None = None, end: bytes | None = None,
             limit: int | None = None) -> Iterator[tuple[bytes, bytes]]:
        if self._obs is None:
            return self.db.scan(start, end, limit)
        return self._observed_scan(self.db.scan(start, end, limit))

    def _observed_scan(self, pairs: Iterator[tuple[bytes, bytes]]
                       ) -> Iterator[tuple[bytes, bytes]]:
        """Wrap a lazy scan so one ``ScanEvent`` records the keys
        actually yielded; abandoned scans still report on close."""
        t0 = self.drive.now
        keys = 0
        try:
            for pair in pairs:
                yield pair
                keys += 1
        finally:
            obs = self._obs
            if obs is not None:
                obs.emit(ScanEvent(ts=t0, keys=keys,
                                   latency=self.drive.now - t0))

    def snapshot(self) -> Snapshot:
        """A consistent point-in-time read view (context manager whose
        ``get``/``scan`` pin the engine sequence number)::

            with db.snapshot() as snap:
                old = snap.get(key)
        """
        return self.db.snapshot()

    def write_batch(self, batch) -> None:
        """Apply a :class:`~repro.lsm.wal.WriteBatch` atomically."""
        self.db.write(batch)

    def compact_range(self, start: bytes | None = None,
                      end: bytes | None = None) -> int:
        """Manually compact ``[start, end]`` down the tree."""
        return self.db.compact_range(start, end)

    def flush(self) -> None:
        self.db.flush()

    def close(self) -> None:
        """Flush and close.  Idempotent: the serving layer's graceful
        drain and a ``with`` block's ``__exit__`` may both call it."""
        if self._closed:
            return
        self._closed = True
        self.db.close()

    def reopen(self) -> "KVStoreBase":
        """Simulate a crash-restart: rebuild the engine from the
        manifest log and WAL on the (surviving) simulated drive.
        Returns ``self`` so call sites can chain operations."""
        self.db = DB.recover(self.storage, self.options, self.tracker,
                             stats=self.stats)
        self._closed = False
        self._wire_obs()
        return self

    # -- multi-threaded callers ----------------------------------------------

    def lock_for(self, key: bytes | None = None) -> ContextManager:
        """Serialization lock for out-of-simulation callers (the
        ``repro.net`` server's executor threads).  The engine stack is
        single-threaded by design; a store-wide re-entrant lock makes
        blocking invocation from a thread pool safe.  ``key`` lets a
        sharded facade hand back a narrower (per-shard) lock so
        requests for different shards run in parallel; ``None`` means
        "the whole store" (scans, batches, flush, close)."""
        return self._op_lock

    # -- resilience -----------------------------------------------------------

    def scrub(self):
        """Verify every live table block-by-block off the device,
        quarantining persistent failures.  Returns a
        :class:`~repro.resilience.scrub.ScrubReport`."""
        return self.db.scrub()

    def repair(self):
        """Rebuild the manifest from surviving tables, dropping
        unreadable ones (this clears quarantine marks -- the repaired
        store either reads a table clean or drops it).  Returns the
        :class:`~repro.lsm.repair.RepairReport`; the store keeps
        serving from the rebuilt engine."""
        from repro.lsm.repair import repair
        self.db, report = repair(self.storage, self.options, self.tracker,
                                 obs=self._obs)
        self.db.stats = self.stats
        self._wire_obs()
        return report

    @property
    def quarantined_tables(self) -> int:
        """Live tables currently fenced off after persistent read
        failures."""
        return self.db.quarantined_tables

    def degraded_ranges(self) -> list[tuple[bytes, bytes]]:
        """User-key ranges currently unavailable (quarantined tables)."""
        return self.db.degraded_ranges()

    # -- context manager ------------------------------------------------------

    def __enter__(self) -> "KVStoreBase":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- measurements ---------------------------------------------------------

    @property
    def now(self) -> float:
        return self.drive.now

    @property
    def compaction_records(self) -> list[CompactionRecord]:
        return self.db.compaction_records

    def real_compactions(self) -> list[CompactionRecord]:
        """Compactions that moved data (trivial moves excluded)."""
        return [r for r in self.compaction_records if not r.trivial_move]

    def wa(self) -> float:
        """Write amplification from the LSM-tree (Table I)."""
        return self.tracker.wa()

    def awa(self) -> float:
        """Auxiliary write amplification from the drive (Table I)."""
        return self.tracker.awa(self.drive.stats)

    def mwa(self) -> float:
        """Multiplicative overall write amplification (Table I)."""
        return self.tracker.mwa(self.drive.stats)

    def level_summary(self) -> list[tuple[int, int, int]]:
        return self.db.level_summary()

    def describe(self) -> str:
        return (f"{self.name}: drive={type(self.drive).__name__} "
                f"storage={type(self.storage).__name__} "
                f"levels={self.options.max_levels} sets={self.options.use_sets}")
