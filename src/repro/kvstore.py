"""Common facade for the four evaluated stores.

Each store bundles a drive, a placement policy, and an engine
configuration; :class:`KVStoreBase` wires them together and exposes the
operations plus the measurements every experiment needs (WA / AWA /
MWA, compaction traces, simulated time).
"""

from __future__ import annotations

from typing import Iterator

from repro.fs.storage import Storage
from repro.lsm.db import DB, CompactionRecord
from repro.lsm.options import Options
from repro.smr.drive import Drive
from repro.smr.stats import AmplificationTracker


class KVStoreBase:
    """A named store: drive + placement + engine."""

    name = "base"

    def __init__(self, drive: Drive, storage: Storage, options: Options) -> None:
        self.drive = drive
        self.storage = storage
        self.options = options
        self.tracker = AmplificationTracker()
        self.db = DB(storage, options, self.tracker)

    # -- operations ---------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> None:
        self.db.put(key, value)

    def get(self, key: bytes) -> bytes | None:
        return self.db.get(key)

    def delete(self, key: bytes) -> None:
        self.db.delete(key)

    def scan(self, start: bytes | None = None, end: bytes | None = None,
             limit: int | None = None) -> Iterator[tuple[bytes, bytes]]:
        return self.db.scan(start, end, limit)

    def write_batch(self, batch) -> None:
        """Apply a :class:`~repro.lsm.wal.WriteBatch` atomically."""
        self.db.write(batch)

    def compact_range(self, start: bytes | None = None,
                      end: bytes | None = None) -> int:
        """Manually compact ``[start, end]`` down the tree."""
        return self.db.compact_range(start, end)

    def flush(self) -> None:
        self.db.flush()

    def close(self) -> None:
        self.db.close()

    def reopen(self) -> None:
        """Simulate a crash-restart: rebuild the engine from the
        manifest log and WAL on the (surviving) simulated drive."""
        self.db = DB.recover(self.storage, self.options, self.tracker)

    # -- measurements ---------------------------------------------------------

    @property
    def now(self) -> float:
        return self.drive.now

    @property
    def compaction_records(self) -> list[CompactionRecord]:
        return self.db.compaction_records

    def real_compactions(self) -> list[CompactionRecord]:
        """Compactions that moved data (trivial moves excluded)."""
        return [r for r in self.compaction_records if not r.trivial_move]

    def wa(self) -> float:
        """Write amplification from the LSM-tree (Table I)."""
        return self.tracker.wa()

    def awa(self) -> float:
        """Auxiliary write amplification from the drive (Table I)."""
        return self.tracker.awa(self.drive.stats)

    def mwa(self) -> float:
        """Multiplicative overall write amplification (Table I)."""
        return self.tracker.mwa(self.drive.stats)

    def level_summary(self) -> list[tuple[int, int, int]]:
        return self.db.level_summary()

    def describe(self) -> str:
        return (f"{self.name}: drive={type(self.drive).__name__} "
                f"storage={type(self.storage).__name__} "
                f"levels={self.options.max_levels} sets={self.options.use_sets}")
