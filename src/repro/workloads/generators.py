"""Key and value encoding shared by all workloads.

Keys are fixed-width (the paper uses 16-byte keys): a zero-padded
decimal rendering of an integer index, so ``key(i)`` is monotonic in
``i`` (sequential loads are truly sequential).  Random-order workloads
go through :meth:`KeyValueGenerator.scrambled_key`, a bijective
multiplicative scramble (Knuth's 2654435761), so the same index always
produces the same -- but key-space-scattered -- key, as YCSB's hashed
``user###`` keys do.

Values are deterministic pseudo-random bytes derived from the index, so
reads can verify payloads without storing a reference copy.
"""

from __future__ import annotations

from repro.util.rng import hash64

_KNUTH = 2654435761
_SCRAMBLE_MASK = (1 << 32) - 1


def scramble32(index: int) -> int:
    """Bijective scatter of a 32-bit index (odd multiplier mod 2**32)."""
    return (index * _KNUTH) & _SCRAMBLE_MASK


class KeyValueGenerator:
    """Fixed-width keys and deterministic values."""

    def __init__(self, key_size: int = 16, value_size: int = 100) -> None:
        if key_size < 8:
            raise ValueError("key size must be at least 8 bytes")
        if value_size < 1:
            raise ValueError("value size must be positive")
        self.key_size = key_size
        self.value_size = value_size

    def key(self, index: int) -> bytes:
        """Monotonic fixed-width key for ``index``."""
        return b"%0*d" % (self.key_size, index)

    def scrambled_key(self, index: int) -> bytes:
        """Key-space-scattered key for ``index`` (stable mapping)."""
        return self.key(scramble32(index))

    def value(self, index: int) -> bytes:
        """Deterministic value bytes for ``index``."""
        word = hash64(index).to_bytes(8, "little")
        repeats = self.value_size // 8 + 1
        return (word * repeats)[: self.value_size]

    @property
    def entry_size(self) -> int:
        return self.key_size + self.value_size
