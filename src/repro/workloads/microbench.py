"""db_bench-style micro-benchmarks (Section IV-A / Fig. 8).

The paper's basic-performance suite:

* **fillseq** -- load N records in key order (no compaction pressure);
* **fillrandom** -- load N records in uniformly random order (the
  compaction-heavy headline workload, 3.42x in the paper);
* **readseq** -- sequentially iterate K records of the random-loaded DB;
* **readrandom** -- K uniformly random point lookups on that DB.

Throughput is operations per *simulated* second, so the comparison
captures disk behaviour, not Python speed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kvstore import KVStoreBase
from repro.util.rng import make_rng
from repro.workloads.generators import KeyValueGenerator

MICRO_WORKLOADS = ("fillseq", "fillrandom", "readseq", "readrandom")

#: additional db_bench workloads beyond the paper's four
EXTRA_WORKLOADS = ("overwrite", "readmissing", "seekrandom", "deleteseq")


@dataclass
class MicroResult:
    """Outcome of one micro-benchmark phase."""

    workload: str
    ops: int
    sim_seconds: float

    @property
    def ops_per_sec(self) -> float:
        return self.ops / self.sim_seconds if self.sim_seconds > 0 else 0.0


class MicroBenchmark:
    """Runs the four micro workloads against one store."""

    def __init__(self, kv: KeyValueGenerator, num_entries: int,
                 seed: int = 0) -> None:
        self.kv = kv
        self.num_entries = num_entries
        self.seed = seed

    def fill_seq(self, store: KVStoreBase) -> MicroResult:
        start = store.now
        for index in range(self.num_entries):
            store.put(self.kv.key(index), self.kv.value(index))
        store.flush()
        return MicroResult("fillseq", self.num_entries, store.now - start)

    def fill_random(self, store: KVStoreBase) -> MicroResult:
        """Uniformly random key order, duplicates included (db_bench)."""
        rng = make_rng(self.seed)
        indices = rng.integers(0, self.num_entries, size=self.num_entries)
        start = store.now
        for index in indices:
            index = int(index)
            store.put(self.kv.scrambled_key(index), self.kv.value(index))
        store.flush()
        return MicroResult("fillrandom", self.num_entries, store.now - start)

    def read_seq(self, store: KVStoreBase, count: int) -> MicroResult:
        start = store.now
        seen = 0
        for _key, _value in store.scan(limit=count):
            seen += 1
        return MicroResult("readseq", seen, store.now - start)

    def read_random(self, store: KVStoreBase, count: int) -> MicroResult:
        rng = make_rng(self.seed + 1)
        indices = rng.integers(0, self.num_entries, size=count)
        start = store.now
        hits = 0
        for index in indices:
            if store.get(self.kv.scrambled_key(int(index))) is not None:
                hits += 1
        result = MicroResult("readrandom", count, store.now - start)
        result.hits = hits  # type: ignore[attr-defined]
        return result

    def fill_batch(self, store: KVStoreBase, batch_size: int = 100
                   ) -> MicroResult:
        """Random load using grouped write batches (db_bench
        ``fillbatch``): one WAL record and one memtable pass per
        ``batch_size`` entries amortizes the per-write overhead."""
        from repro.lsm.wal import WriteBatch

        rng = make_rng(self.seed)
        indices = rng.integers(0, self.num_entries, size=self.num_entries)
        start = store.now
        batch = WriteBatch()
        for index in indices:
            index = int(index)
            batch.put(self.kv.scrambled_key(index), self.kv.value(index))
            if len(batch) >= batch_size:
                store.write_batch(batch)
                batch = WriteBatch()
        if len(batch):
            store.write_batch(batch)
        store.flush()
        return MicroResult("fillbatch", self.num_entries, store.now - start)

    # -- additional db_bench workloads ---------------------------------

    def overwrite(self, store: KVStoreBase, count: int | None = None
                  ) -> MicroResult:
        """Re-put random existing keys (db_bench ``overwrite``)."""
        count = count if count is not None else self.num_entries
        rng = make_rng(self.seed + 2)
        indices = rng.integers(0, self.num_entries, size=count)
        start = store.now
        for index in indices:
            index = int(index)
            store.put(self.kv.scrambled_key(index),
                      self.kv.value(index + 1))
        store.flush()
        return MicroResult("overwrite", count, store.now - start)

    def read_missing(self, store: KVStoreBase, count: int) -> MicroResult:
        """Point lookups of keys that were never written (bloom-filter
        fast path, db_bench ``readmissing``)."""
        rng = make_rng(self.seed + 3)
        indices = rng.integers(0, self.num_entries, size=count)
        start = store.now
        for index in indices:
            store.get(b"miss-" + self.kv.scrambled_key(int(index)))
        return MicroResult("readmissing", count, store.now - start)

    def seek_random(self, store: KVStoreBase, count: int,
                    scan_length: int = 10) -> MicroResult:
        """Position an iterator at a random key and step a few entries
        (db_bench ``seekrandom``)."""
        rng = make_rng(self.seed + 4)
        indices = rng.integers(0, self.num_entries, size=count)
        start = store.now
        for index in indices:
            for _kv in store.scan(start=self.kv.scrambled_key(int(index)),
                                  limit=scan_length):
                pass
        return MicroResult("seekrandom", count, store.now - start)

    def delete_seq(self, store: KVStoreBase, count: int | None = None
                   ) -> MicroResult:
        """Delete keys in sequential order (db_bench ``deleteseq``)."""
        count = count if count is not None else self.num_entries
        start = store.now
        for index in range(count):
            store.delete(self.kv.key(index))
        store.flush()
        return MicroResult("deleteseq", count, store.now - start)
