"""LinkBench-style social-graph workload.

The paper's introduction motivates KV stores with social networking via
LinkBench [18], Facebook's MySQL-replacement benchmark.  This module
implements its essential shape over the KV API:

* **nodes** (profile objects) and directed **links** (edges with a type
  and a timestamp), encoded under composite keys so that a node's
  outgoing links of one type are a contiguous key range;
* the standard operation mix (LinkBench's default read-heavy mix:
  ~69 % link reads, ~12 % link lists, ~19 % writes);
* power-law node popularity (real social graphs are heavy-tailed),
  via the zipfian generator.

Key encoding::

    n:<node id, 12 digits>                     -> node payload
    l:<src, 12 digits>:<type, 2>:<dst, 12>     -> link payload

A link *list* is then a prefix scan over ``l:<src>:<type>:``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kvstore import KVStoreBase
from repro.util.rng import make_rng
from repro.workloads.distributions import ZipfianGenerator
from repro.workloads.generators import KeyValueGenerator


def node_key(node: int) -> bytes:
    return b"n:%012d" % node

def link_key(src: int, link_type: int, dst: int) -> bytes:
    return b"l:%012d:%02d:%012d" % (src, link_type, dst)

def link_prefix(src: int, link_type: int) -> bytes:
    return b"l:%012d:%02d:" % (src, link_type)


#: LinkBench's default operation mix (proportions of its workload file)
DEFAULT_MIX = {
    "get_link": 0.525,
    "get_link_list": 0.257,
    "count_links": 0.049,
    "add_link": 0.09,
    "delete_link": 0.03,
    "update_node": 0.039,
    "get_node": 0.01,
}

LINK_TYPES = 4


@dataclass
class LinkBenchResult:
    phase: str
    ops: int
    sim_seconds: float
    per_op: dict[str, int]

    @property
    def ops_per_sec(self) -> float:
        return self.ops / self.sim_seconds if self.sim_seconds > 0 else 0.0


class LinkBenchWorkload:
    """Load a synthetic social graph, then run the operation mix."""

    def __init__(self, num_nodes: int, links_per_node: int = 5,
                 node_payload: int = 128, link_payload: int = 32,
                 mix: dict[str, float] | None = None, seed: int = 0) -> None:
        if num_nodes < 2:
            raise ValueError("need at least two nodes")
        self.num_nodes = num_nodes
        self.links_per_node = links_per_node
        self.kv = KeyValueGenerator(16, node_payload)
        self.link_kv = KeyValueGenerator(16, link_payload)
        self.mix = dict(DEFAULT_MIX if mix is None else mix)
        total = sum(self.mix.values())
        self.mix = {op: p / total for op, p in self.mix.items()}
        self.seed = seed

    # -- load phase ---------------------------------------------------------

    def load(self, store: KVStoreBase) -> LinkBenchResult:
        """Create every node and a power-law-ish set of initial links."""
        rng = make_rng(self.seed)
        popular = ZipfianGenerator(self.num_nodes, seed=self.seed)
        start = store.now
        links = 0
        for node in range(self.num_nodes):
            store.put(node_key(node), self.kv.value(node))
            for _ in range(self.links_per_node):
                dst = popular.next()
                link_type = int(rng.integers(0, LINK_TYPES))
                store.put(link_key(node, link_type, dst),
                          self.link_kv.value(dst))
                links += 1
        store.flush()
        return LinkBenchResult("load", self.num_nodes + links,
                               store.now - start,
                               {"nodes": self.num_nodes, "links": links})

    # -- run phase -----------------------------------------------------------

    def run(self, store: KVStoreBase, operations: int) -> LinkBenchResult:
        rng = make_rng(self.seed + 1)
        popular = ZipfianGenerator(self.num_nodes, seed=self.seed + 2)
        ops = list(self.mix)
        probabilities = [self.mix[o] for o in ops]
        choices = rng.choice(len(ops), size=operations, p=probabilities)
        counters = {op: 0 for op in ops}
        next_dst = self.num_nodes  # fresh ids for added links
        start = store.now
        for choice in choices:
            op = ops[int(choice)]
            counters[op] += 1
            src = popular.next()
            link_type = int(rng.integers(0, LINK_TYPES))
            if op == "get_link":
                store.get(link_key(src, link_type, popular.next()))
            elif op == "get_link_list":
                prefix = link_prefix(src, link_type)
                for _kv in store.scan(prefix, prefix + b"\xff", limit=50):
                    pass
            elif op == "count_links":
                prefix = link_prefix(src, link_type)
                sum(1 for _ in store.scan(prefix, prefix + b"\xff", limit=200))
            elif op == "add_link":
                store.put(link_key(src, link_type, next_dst),
                          self.link_kv.value(next_dst))
                next_dst += 1
            elif op == "delete_link":
                store.delete(link_key(src, link_type, popular.next()))
            elif op == "update_node":
                store.put(node_key(src), self.kv.value(src + 1))
            elif op == "get_node":
                store.get(node_key(src))
        return LinkBenchResult("run", operations, store.now - start, counters)
