"""Operation traces: record, save, load, and replay workloads.

Production KV studies (and the paper's YCSB runs) are driven by
operation streams.  This module gives the reproduction a trace layer:

* :class:`TraceRecorder` wraps any store and logs every operation;
* traces serialize to a compact line format (``P key value`` /
  ``D key`` / ``G key`` / ``S start limit``), gzip-friendly and
  diffable;
* :func:`replay` runs a trace against a store and reports throughput;
* :class:`ChurnTraceGenerator` synthesizes a trace with a configurable
  working set that drifts over time -- the update-churn pattern that
  ages LSM trees (useful for long-running fragment studies).
"""

from __future__ import annotations

import base64
import pathlib
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import ReproError
from repro.kvstore import KVStoreBase
from repro.util.rng import make_rng
from repro.workloads.generators import KeyValueGenerator

def _b64(data: bytes) -> str:
    """Base64 with a '-' sentinel so empty fields survive split()."""
    return base64.b64encode(data).decode() or "-"


def _unb64(token: str) -> bytes:
    return b"" if token == "-" else base64.b64decode(token)


OP_PUT = "P"
OP_DELETE = "D"
OP_GET = "G"
OP_SCAN = "S"


@dataclass(frozen=True)
class TraceOp:
    """One operation.  ``value`` is None except for puts; scans use
    ``key`` as the start key and ``limit``."""

    kind: str
    key: bytes
    value: bytes | None = None
    limit: int = 0

    def encode(self) -> str:
        k = _b64(self.key)
        if self.kind == OP_PUT:
            return f"P {k} {_b64(self.value or b'')}"
        if self.kind == OP_DELETE:
            return f"D {k}"
        if self.kind == OP_GET:
            return f"G {k}"
        if self.kind == OP_SCAN:
            return f"S {k} {self.limit}"
        raise ReproError(f"unknown op kind {self.kind!r}")

    @classmethod
    def decode(cls, line: str) -> "TraceOp":
        parts = line.split()
        if not parts:
            raise ReproError("empty trace line")
        kind = parts[0]
        try:
            if kind == OP_PUT:
                return cls(OP_PUT, _unb64(parts[1]), _unb64(parts[2]))
            if kind == OP_DELETE:
                return cls(OP_DELETE, _unb64(parts[1]))
            if kind == OP_GET:
                return cls(OP_GET, _unb64(parts[1]))
            if kind == OP_SCAN:
                return cls(OP_SCAN, _unb64(parts[1]), limit=int(parts[2]))
        except (IndexError, ValueError) as exc:
            raise ReproError(f"malformed trace line {line!r}") from exc
        raise ReproError(f"unknown trace op {kind!r}")


def save_trace(ops: Iterable[TraceOp], path: str | pathlib.Path) -> int:
    """Write ops to ``path``; returns the number written."""
    count = 0
    with open(path, "w") as fh:
        for op in ops:
            fh.write(op.encode() + "\n")
            count += 1
    return count


def load_trace(path: str | pathlib.Path) -> Iterator[TraceOp]:
    """Stream ops back from ``path``."""
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line and not line.startswith("#"):
                yield TraceOp.decode(line)


@dataclass
class ReplayResult:
    ops: int = 0
    puts: int = 0
    deletes: int = 0
    gets: int = 0
    get_hits: int = 0
    scans: int = 0
    sim_seconds: float = 0.0

    @property
    def ops_per_sec(self) -> float:
        return self.ops / self.sim_seconds if self.sim_seconds > 0 else 0.0


def replay(store: KVStoreBase, ops: Iterable[TraceOp]) -> ReplayResult:
    """Run a trace against ``store`` on the simulated clock."""
    result = ReplayResult()
    start = store.now
    for op in ops:
        result.ops += 1
        if op.kind == OP_PUT:
            store.put(op.key, op.value or b"")
            result.puts += 1
        elif op.kind == OP_DELETE:
            store.delete(op.key)
            result.deletes += 1
        elif op.kind == OP_GET:
            if store.get(op.key) is not None:
                result.get_hits += 1
            result.gets += 1
        elif op.kind == OP_SCAN:
            for _pair in store.scan(start=op.key, limit=op.limit or 10):
                pass
            result.scans += 1
        else:  # pragma: no cover - decode() rejects unknown kinds
            raise ReproError(f"unknown trace op {op.kind!r}")
    result.sim_seconds = store.now - start
    return result


class TraceRecorder(KVStoreBase):
    """Transparent store wrapper that records every operation.

    Construct with an existing store; use like the store; take the
    recorded ops from :attr:`trace`.
    """

    def __init__(self, inner: KVStoreBase) -> None:
        # deliberately NOT calling super().__init__: this is a proxy
        self._inner = inner
        self.trace: list[TraceOp] = []

    def __getattr__(self, attr):
        return getattr(self._inner, attr)

    @property
    def name(self) -> str:  # type: ignore[override]
        return self._inner.name

    def put(self, key: bytes, value: bytes) -> None:
        self.trace.append(TraceOp(OP_PUT, bytes(key), bytes(value)))
        self._inner.put(key, value)

    def delete(self, key: bytes) -> None:
        self.trace.append(TraceOp(OP_DELETE, bytes(key)))
        self._inner.delete(key)

    def get(self, key: bytes) -> bytes | None:
        self.trace.append(TraceOp(OP_GET, bytes(key)))
        return self._inner.get(key)

    def scan(self, start: bytes | None = None, end: bytes | None = None,
             limit: int | None = None):
        self.trace.append(TraceOp(OP_SCAN, bytes(start or b""),
                                  limit=limit or 0))
        return self._inner.scan(start, end, limit)


@dataclass
class ChurnTraceGenerator:
    """Synthesizes an update-churn trace with a drifting working set.

    At any moment the writer updates keys inside a window of
    ``working_set`` keys; the window slides forward by ``drift`` keys
    after every ``ops_per_phase`` operations, retiring old keys with
    deletes.  This produces the mixed insert/update/delete aging pattern
    that fragments on-disk layouts.
    """

    kv: KeyValueGenerator
    working_set: int = 2000
    drift: int = 500
    ops_per_phase: int = 1000
    delete_fraction: float = 0.1
    seed: int = 0

    def generate(self, total_ops: int) -> Iterator[TraceOp]:
        rng = make_rng(self.seed)
        window_start = 0
        emitted = 0
        while emitted < total_ops:
            phase_ops = min(self.ops_per_phase, total_ops - emitted)
            draws = rng.random(size=phase_ops)
            picks = rng.integers(0, self.working_set, size=phase_ops)
            for draw, pick in zip(draws, picks):
                index = window_start + int(pick)
                key = self.kv.scrambled_key(index)
                if draw < self.delete_fraction:
                    yield TraceOp(OP_DELETE, key)
                else:
                    yield TraceOp(OP_PUT, key, self.kv.value(index))
                emitted += 1
            window_start += self.drift
