"""Key-choice distributions, matching YCSB's core generators.

* :class:`UniformGenerator` -- uniform over ``[0, n)``.
* :class:`ZipfianGenerator` -- Gray et al.'s rejection-free zipfian
  algorithm ("Quickly generating billion-record synthetic databases"),
  the same algorithm YCSB's ``ZipfianGenerator`` uses, with the YCSB
  default constant 0.99.
* :class:`ScrambledZipfianGenerator` -- zipfian popularity spread over
  the key space by FNV hashing (YCSB's default for workloads A-D, F).
* :class:`LatestGenerator` -- zipfian skew towards the most recently
  inserted key (YCSB workload D).
"""

from __future__ import annotations


from repro.util.rng import hash64, make_rng


class UniformGenerator:
    """Uniformly random integers in ``[0, item_count)``."""

    def __init__(self, item_count: int, seed: int | None = 0) -> None:
        if item_count <= 0:
            raise ValueError("item count must be positive")
        self.item_count = item_count
        self._rng = make_rng(seed)

    def next(self) -> int:
        return int(self._rng.integers(0, self.item_count))


class ZipfianGenerator:
    """Zipfian-distributed integers in ``[0, item_count)``; 0 is hottest."""

    def __init__(self, item_count: int, theta: float = 0.99,
                 seed: int | None = 0) -> None:
        if item_count <= 0:
            raise ValueError("item count must be positive")
        if not 0 < theta < 1:
            raise ValueError("theta must be in (0, 1)")
        self.item_count = item_count
        self.theta = theta
        self._rng = make_rng(seed)
        self._alpha = 1.0 / (1.0 - theta)
        self._zetan = self._zeta(item_count, theta)
        self._zeta2 = self._zeta(2, theta)
        self._eta = ((1.0 - (2.0 / item_count) ** (1.0 - theta))
                     / (1.0 - self._zeta2 / self._zetan))

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        # Exact for small n; Euler-Maclaurin tail approximation keeps
        # construction O(1)-ish for large key spaces.
        cutoff = min(n, 10000)
        total = sum(1.0 / i ** theta for i in range(1, cutoff + 1))
        if n > cutoff:
            total += ((n ** (1.0 - theta) - cutoff ** (1.0 - theta))
                      / (1.0 - theta))
        return total

    def next(self) -> int:
        u = float(self._rng.random())
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        return int(self.item_count
                   * (self._eta * u - self._eta + 1.0) ** self._alpha)


class ScrambledZipfianGenerator:
    """Zipfian popularity scattered over the key space by hashing."""

    def __init__(self, item_count: int, theta: float = 0.99,
                 seed: int | None = 0) -> None:
        self.item_count = item_count
        self._zipf = ZipfianGenerator(item_count, theta, seed)

    def next(self) -> int:
        return hash64(self._zipf.next()) % self.item_count


class LatestGenerator:
    """Skewed towards the most recent insertion.

    ``max_value`` tracks the highest inserted index; samples are
    ``max_value - zipf()`` clamped to the valid range.
    """

    def __init__(self, item_count: int, theta: float = 0.99,
                 seed: int | None = 0) -> None:
        self._zipf = ZipfianGenerator(item_count, theta, seed)
        self.max_value = item_count - 1

    def advance(self, new_max: int) -> None:
        self.max_value = new_max

    def next(self) -> int:
        offset = self._zipf.next()
        value = self.max_value - offset
        return value if value >= 0 else 0
