"""Workload generation: distributions, key/value streams, the
db_bench-style micro-benchmarks, and the YCSB core workloads A-F."""

from repro.workloads.distributions import (
    LatestGenerator,
    ScrambledZipfianGenerator,
    UniformGenerator,
    ZipfianGenerator,
)
from repro.workloads.generators import KeyValueGenerator, scramble32
from repro.workloads.microbench import (
    EXTRA_WORKLOADS,
    MICRO_WORKLOADS,
    MicroBenchmark,
    MicroResult,
)
from repro.workloads.ycsb import YCSBRunner, YCSBResult, YCSBWorkload, YCSB_WORKLOADS
from repro.workloads.linkbench import LinkBenchWorkload, LinkBenchResult
from repro.workloads.trace import (
    ChurnTraceGenerator,
    TraceOp,
    TraceRecorder,
    load_trace,
    replay,
    save_trace,
)

__all__ = [
    "ChurnTraceGenerator",
    "EXTRA_WORKLOADS",
    "LinkBenchResult",
    "LinkBenchWorkload",
    "TraceOp",
    "TraceRecorder",
    "load_trace",
    "replay",
    "save_trace",
    "KeyValueGenerator",
    "LatestGenerator",
    "MICRO_WORKLOADS",
    "MicroBenchmark",
    "MicroResult",
    "ScrambledZipfianGenerator",
    "UniformGenerator",
    "YCSBResult",
    "YCSBRunner",
    "YCSBWorkload",
    "YCSB_WORKLOADS",
    "ZipfianGenerator",
    "scramble32",
]
