"""YCSB core workloads (Section IV-A / Fig. 9).

Operation mixes follow the paper's description (which matches the YCSB
core package):

=========  ==============================  ==================
workload   mix                             request distribution
=========  ==============================  ==================
A          50% read / 50% update           zipfian
B          95% read / 5% update            zipfian
C          100% read                       zipfian
D          95% read / 5% insert            latest
E          95% scan / 5% insert            latest (per the paper)
F          50% read / 50% read-modify-write zipfian
=========  ==============================  ==================

The load phase inserts ``record_count`` entries under scrambled keys
(YCSB's hashed ``user###`` keys), giving the random-order load the
paper performs before the run phase.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError
from repro.kvstore import KVStoreBase
from repro.util.rng import make_rng
from repro.workloads.distributions import (
    LatestGenerator,
    ScrambledZipfianGenerator,
    UniformGenerator,
)
from repro.workloads.generators import KeyValueGenerator

_MAX_SCAN_LENGTH = 100


@dataclass(frozen=True)
class YCSBWorkload:
    """One workload definition: operation proportions + distribution."""

    name: str
    read: float = 0.0
    update: float = 0.0
    insert: float = 0.0
    scan: float = 0.0
    rmw: float = 0.0
    distribution: str = "zipfian"

    def __post_init__(self) -> None:
        total = self.read + self.update + self.insert + self.scan + self.rmw
        if abs(total - 1.0) > 1e-9:
            raise ReproError(f"workload {self.name}: proportions sum to {total}")
        if self.distribution not in ("zipfian", "latest", "uniform"):
            raise ReproError(f"unknown distribution {self.distribution!r}")


YCSB_WORKLOADS: dict[str, YCSBWorkload] = {
    "A": YCSBWorkload("A", read=0.5, update=0.5),
    "B": YCSBWorkload("B", read=0.95, update=0.05),
    "C": YCSBWorkload("C", read=1.0),
    "D": YCSBWorkload("D", read=0.95, insert=0.05, distribution="latest"),
    "E": YCSBWorkload("E", scan=0.95, insert=0.05, distribution="latest"),
    "F": YCSBWorkload("F", read=0.5, rmw=0.5),
}


@dataclass
class YCSBResult:
    """Outcome of one run phase."""

    workload: str
    ops: int
    sim_seconds: float
    reads: int = 0
    updates: int = 0
    inserts: int = 0
    scans: int = 0
    rmws: int = 0
    read_hits: int = 0

    @property
    def ops_per_sec(self) -> float:
        return self.ops / self.sim_seconds if self.sim_seconds > 0 else 0.0


class YCSBRunner:
    """Load and run phases for one store."""

    def __init__(self, kv: KeyValueGenerator, record_count: int,
                 seed: int = 0) -> None:
        self.kv = kv
        self.record_count = record_count
        self.seed = seed

    def load(self, store: KVStoreBase) -> YCSBResult:
        """Insert ``record_count`` entries in scrambled-key order."""
        start = store.now
        for index in range(self.record_count):
            store.put(self.kv.scrambled_key(index), self.kv.value(index))
        store.flush()
        result = YCSBResult("load", self.record_count, store.now - start)
        result.inserts = self.record_count
        return result

    def run(self, store: KVStoreBase, workload: YCSBWorkload,
            operation_count: int) -> YCSBResult:
        rng = make_rng(self.seed + 17)
        chooser = self._key_chooser(workload)
        result = YCSBResult(workload.name, operation_count, 0.0)
        inserted = self.record_count
        thresholds = self._thresholds(workload)
        draws = rng.random(size=operation_count)
        scan_lengths = rng.integers(1, _MAX_SCAN_LENGTH + 1,
                                    size=operation_count)
        start = store.now
        for op in range(operation_count):
            draw = draws[op]
            if draw < thresholds[0]:
                key = self.kv.scrambled_key(chooser())
                if store.get(key) is not None:
                    result.read_hits += 1
                result.reads += 1
            elif draw < thresholds[1]:
                index = chooser()
                store.put(self.kv.scrambled_key(index), self.kv.value(index))
                result.updates += 1
            elif draw < thresholds[2]:
                store.put(self.kv.scrambled_key(inserted),
                          self.kv.value(inserted))
                inserted += 1
                if isinstance(chooser.__self__, LatestGenerator):  # type: ignore[attr-defined]
                    chooser.__self__.advance(inserted - 1)  # type: ignore[attr-defined]
                result.inserts += 1
            elif draw < thresholds[3]:
                index = chooser()
                count = 0
                for _k, _v in store.scan(start=self.kv.scrambled_key(index),
                                         limit=int(scan_lengths[op])):
                    count += 1
                result.scans += 1
            else:
                key = self.kv.scrambled_key(chooser())
                store.get(key)
                new = self.kv.value(chooser())
                store.put(key, new)
                result.rmws += 1
        result.sim_seconds = store.now - start
        return result

    def _thresholds(self, w: YCSBWorkload) -> tuple[float, float, float, float]:
        a = w.read
        b = a + w.update
        c = b + w.insert
        d = c + w.scan
        return a, b, c, d

    def _key_chooser(self, workload: YCSBWorkload):
        if workload.distribution == "zipfian":
            gen = ScrambledZipfianGenerator(self.record_count, seed=self.seed)
        elif workload.distribution == "latest":
            gen = LatestGenerator(self.record_count, seed=self.seed)
        else:
            gen = UniformGenerator(self.record_count, seed=self.seed)
        return gen.next
