"""Integer codecs used by the on-"disk" formats (WAL, blocks, SSTables).

The formats mirror LevelDB's: little-endian fixed-width integers and
LEB128-style varints.  Implementations operate on ``bytes`` /
``bytearray`` and return ``(value, new_offset)`` tuples for decoding so
parsers can stream through a buffer without slicing.
"""

from __future__ import annotations

import struct

from repro.errors import CorruptionError

_FIXED32 = struct.Struct("<I")
_FIXED64 = struct.Struct("<Q")

_MAX_VARINT64_BYTES = 10


def encode_fixed32(value: int) -> bytes:
    """Encode ``value`` as a 4-byte little-endian unsigned integer."""
    return _FIXED32.pack(value & 0xFFFFFFFF)


def decode_fixed32(buf: bytes, offset: int = 0) -> int:
    """Decode a 4-byte little-endian unsigned integer at ``offset``."""
    if offset + 4 > len(buf):
        raise CorruptionError("truncated fixed32")
    return _FIXED32.unpack_from(buf, offset)[0]


def encode_fixed64(value: int) -> bytes:
    """Encode ``value`` as an 8-byte little-endian unsigned integer."""
    return _FIXED64.pack(value & 0xFFFFFFFFFFFFFFFF)


def decode_fixed64(buf: bytes, offset: int = 0) -> int:
    """Decode an 8-byte little-endian unsigned integer at ``offset``."""
    if offset + 8 > len(buf):
        raise CorruptionError("truncated fixed64")
    return _FIXED64.unpack_from(buf, offset)[0]


def encode_varint(value: int) -> bytes:
    """Encode a non-negative integer as a LEB128 varint."""
    if value < 0:
        raise ValueError(f"varint requires a non-negative value, got {value}")
    out = bytearray()
    while value >= 0x80:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)
    return bytes(out)


def decode_varint(buf: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode a varint at ``offset``; return ``(value, next_offset)``."""
    result = 0
    shift = 0
    pos = offset
    end = min(len(buf), offset + _MAX_VARINT64_BYTES)
    while pos < end:
        byte = buf[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
    raise CorruptionError("truncated or overlong varint")


def put_length_prefixed(out: bytearray, data: bytes) -> None:
    """Append ``data`` to ``out`` prefixed with its varint length."""
    out += encode_varint(len(data))
    out += data


def get_length_prefixed(buf: bytes, offset: int = 0) -> tuple[bytes, int]:
    """Read a length-prefixed slice at ``offset``; return ``(data, next_offset)``."""
    length, pos = decode_varint(buf, offset)
    if pos + length > len(buf):
        raise CorruptionError("truncated length-prefixed slice")
    return bytes(buf[pos : pos + length]), pos + length
