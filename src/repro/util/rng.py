"""Deterministic random number helpers.

Everything in the simulation that needs randomness goes through a seeded
:class:`numpy.random.Generator` or one of the stateless hash functions
below, so experiment runs are exactly reproducible.
"""

from __future__ import annotations

import numpy as np

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = 0xFFFFFFFFFFFFFFFF


def make_rng(seed: int | None) -> np.random.Generator:
    """Create a seeded numpy Generator (PCG64)."""
    return np.random.default_rng(seed)


def fnv1a_64(data: bytes) -> int:
    """64-bit FNV-1a hash of ``data`` (used by bloom filters and YCSB)."""
    h = _FNV_OFFSET
    for byte in data:
        h ^= byte
        h = (h * _FNV_PRIME) & _MASK64
    return h


def hash64(value: int) -> int:
    """Mix an integer through FNV-1a (YCSB's ``fnvhash64`` key scrambler)."""
    h = _FNV_OFFSET
    for _ in range(8):
        octet = value & 0xFF
        value >>= 8
        h ^= octet
        h = (h * _FNV_PRIME) & _MASK64
    return h
