"""Small shared utilities: integer codecs and deterministic RNG helpers."""

from repro.util.varint import (
    decode_fixed32,
    decode_fixed64,
    decode_varint,
    encode_fixed32,
    encode_fixed64,
    encode_varint,
    put_length_prefixed,
    get_length_prefixed,
)
from repro.util.rng import make_rng, fnv1a_64, hash64

__all__ = [
    "decode_fixed32",
    "decode_fixed64",
    "decode_varint",
    "encode_fixed32",
    "encode_fixed64",
    "encode_varint",
    "put_length_prefixed",
    "get_length_prefixed",
    "make_rng",
    "fnv1a_64",
    "hash64",
]
