"""Ext4-like block-group allocator and the storage policy built on it.

The paper's motivation experiment (Fig. 2) runs LevelDB on ext4 and
observes that "SSTables of one compaction are separately stored on
disks, resulting in disperse reads and writes during compactions".  The
behaviour comes from two ext4 traits this simulation keeps:

* space is carved into **block groups**; a new file is allocated
  first-fit starting from a *goal* group (files in the same directory
  share a goal, so an empty filesystem fills roughly front-to-back);
* deleted files leave **holes** that later allocations reuse, so once
  the LSM starts churning SSTables, the outputs of one compaction land
  wherever holes happen to be -- scattered over the whole used region.

Allocation granularity is the filesystem block (4 KiB by default).  A
file that cannot be satisfied with one contiguous run is split into
multiple extents, like ext4 extent trees.
"""

from __future__ import annotations

from repro import faults
from repro.errors import AllocationError, FileNotFoundStorageError, StorageError
from repro.smr.drive import Drive
from repro.smr.extent import Extent, ExtentMap
from repro.smr.stats import CATEGORY_TABLE
from repro.fs.storage import Storage


class Ext4Allocator:
    """Block-group allocator over ``[start, capacity)`` of a drive.

    Free space is tracked as an :class:`ExtentMap` (block-aligned).  The
    goal pointer advances past each allocation so consecutive creations
    in an empty region are laid out sequentially; after deletions, the
    first-fit scan from the goal wraps and reuses holes anywhere.
    """

    def __init__(self, start: int, capacity: int, *, block_size: int = 4096,
                 group_blocks: int = 8192, clock=None) -> None:
        self.clock = clock  # optional time source for emitted events
        if start % block_size:
            start += block_size - start % block_size
        self.start = start
        self.capacity = capacity
        self.block_size = block_size
        self.group_size = block_size * group_blocks
        self.free = ExtentMap()
        end = capacity - capacity % block_size
        if end <= start:
            raise StorageError("no allocatable space")
        self.free.add(start, end)
        #: observability bus; None while no subscriber (zero-cost hooks)
        self._obs = None

    def _round_up(self, nbytes: int) -> int:
        blocks = (nbytes + self.block_size - 1) // self.block_size
        return blocks * self.block_size

    def allocate(self, nbytes: int, *, contiguous: bool = False) -> list[Extent]:
        """Allocate ``nbytes`` (block-rounded); returns the extents used.

        With ``contiguous=True`` the allocation fails unless one run can
        hold the whole request (used by the "LevelDB + sets" ablation to
        keep compaction outputs physically adjacent).
        """
        faults.trip(faults.FREESPACE_ALLOC)
        need = self._round_up(nbytes)
        run = self._find_run(need)
        if run is not None:
            self.free.remove(run.start, run.start + need)
            if self._obs is not None:
                self._emit_alloc(need, 1)
            return [Extent(run.start, run.start + need)]
        if contiguous:
            raise AllocationError(f"no contiguous run of {need} bytes")
        # Fragmented allocation: first-fit pieces front to back.
        extents: list[Extent] = []
        remaining = need
        for ext in self.free:
            take = min(ext.length, remaining)
            extents.append(Extent(ext.start, ext.start + take))
            remaining -= take
            if remaining == 0:
                break
        if remaining:
            raise AllocationError(f"out of space: short {remaining} of {need} bytes")
        for ext in extents:
            self.free.remove(ext.start, ext.end)
        if self._obs is not None:
            self._emit_alloc(need, len(extents))
        return extents

    def _emit_alloc(self, nbytes: int, num_extents: int) -> None:
        from repro.obs.events import ExtentAllocate
        ts = self.clock.now if self.clock is not None else 0.0
        self._obs.emit(ExtentAllocate(ts=ts, nbytes=nbytes,
                                      extents=num_extents))

    def _find_run(self, need: int) -> Extent | None:
        """First free run of at least ``need`` bytes, front to back.

        Scanning from the fixed goal (all SSTables share one directory,
        hence one goal group) is what makes ext4 reuse freed holes
        anywhere in the used region -- the source of the Fig. 2 scatter.
        """
        for ext in self.free:
            if ext.length >= need:
                return ext
        return None

    def allocate_at(self, offset: int, nbytes: int) -> Extent | None:
        """Claim ``nbytes`` exactly at ``offset`` if that space is free.

        Ext4's extent growth: successive writeback chunks of one file
        extend its last extent in place whenever the following blocks
        are still free, keeping files contiguous until a hole runs out.
        """
        need = self._round_up(nbytes)
        if not self.free.contains_range(offset, offset + need):
            return None
        self.free.remove(offset, offset + need)
        return Extent(offset, offset + need)

    def release(self, extents: list[Extent]) -> None:
        for ext in extents:
            self.free.add(ext.start, ext.end)

    def free_bytes(self) -> int:
        return self.free.total_bytes


class Ext4Storage(Storage):
    """Table files placed through :class:`Ext4Allocator`.

    ``write_files`` (a compaction's output group) simply writes each
    file in turn -- the stock-LevelDB behaviour.  Passing
    ``contiguous_groups=True`` turns on the "LevelDB + sets" ablation:
    each group is allocated as one contiguous run and written with a
    single sequential pass.
    """

    def __init__(self, drive: Drive, *, wal_size: int, meta_size: int,
                 block_size: int = 4096, group_blocks: int = 8192,
                 contiguous_groups: bool = False, region_gap: int = 0) -> None:
        super().__init__(drive, wal_size=wal_size, meta_size=meta_size,
                         region_gap=region_gap)
        self.allocator = Ext4Allocator(self.data_start, drive.capacity,
                                       block_size=block_size,
                                       group_blocks=group_blocks,
                                       clock=drive.clock)
        self.contiguous_groups = contiguous_groups
        self._files: dict[str, tuple[list[Extent], int]] = {}

    def write_file(self, name: str, data: bytes,
                   category: str = CATEGORY_TABLE) -> None:
        if name in self._files:
            raise StorageError(f"object {name!r} already exists")
        extents = self.allocator.allocate(len(data))
        self.drive.charge_metadata_op()  # inode + bitmap + journal
        try:
            self._write_extents(extents, data, category)
        except BaseException:
            # The journal never committed the file: its blocks go back
            # to the bitmap, as ext4 replay would leave them.
            self.allocator.release(extents)
            raise
        self._files[name] = (extents, len(data))

    # Streaming note: ext4 uses *delayed allocation* -- the page cache
    # buffers a file under construction and the allocator runs once at
    # writeback, placing the whole file contiguously when a hole fits.
    # The inherited BufferedStream (one write_file at close) models
    # exactly that; device-level interleave with compaction reads is at
    # file granularity, as with real writeback bursts.

    def _write_files(self, files, category: str = CATEGORY_TABLE) -> None:
        if not self.contiguous_groups or not files:
            super()._write_files(files, category)
            return
        total = sum(len(data) for _name, data in files)
        try:
            run = self.allocator.allocate(total, contiguous=True)
        except AllocationError:
            super()._write_files(files, category)
            return
        cursor = run[0].start
        written: list[str] = []
        try:
            for name, data in files:
                if name in self._files:
                    raise StorageError(f"object {name!r} already exists")
                self.drive.charge_metadata_op()
                self.drive.write(cursor, data, category=category)
                self._files[name] = ([Extent(cursor, cursor + len(data))],
                                     len(data))
                written.append(name)
                cursor += len(data)
        except BaseException:
            # Uncommitted journal transaction: the whole run returns to
            # the bitmap, including files already placed in it.
            for name in written:
                extents, _size = self._files.pop(name)
                self.allocator.release(extents)
            if cursor < run[0].end:
                self.allocator.release([Extent(cursor, run[0].end)])
            raise
        # Any rounding slack at the tail of the run goes back to the pool.
        if cursor < run[0].end:
            self.allocator.release([Extent(cursor, run[0].end)])

    def _write_extents(self, extents: list[Extent], data: bytes,
                       category: str) -> None:
        cursor = 0
        for ext in extents:
            chunk = data[cursor : cursor + ext.length]
            self.drive.write(ext.start, chunk, category=category)
            cursor += ext.length
            if cursor >= len(data):
                break

    def _read_file(self, name: str, offset: int, length: int,
                  category: str = CATEGORY_TABLE) -> bytes:
        extents, size = self._entry(name)
        if offset + length > size:
            raise StorageError(
                f"read past end of {name!r}: [{offset}, {offset + length}) size {size}"
            )
        out = bytearray()
        pos = 0
        for ext in extents:
            ext_end = pos + ext.length
            if ext_end > offset and pos < offset + length:
                lo = max(offset, pos)
                hi = min(offset + length, ext_end)
                out += self.drive.read(ext.start + (lo - pos), hi - lo,
                                       category=category)
            pos = ext_end
            if pos >= offset + length:
                break
        return bytes(out)

    def file_size(self, name: str) -> int:
        return self._entry(name)[1]

    def delete_file(self, name: str) -> None:
        extents, _size = self._entry(name)
        del self._files[name]
        self.drive.charge_metadata_op()
        for ext in extents:
            self.drive.trim(ext.start, ext.length)
        self.allocator.release(extents)

    def file_extents(self, name: str) -> list[Extent]:
        return list(self._entry(name)[0])

    def exists(self, name: str) -> bool:
        return name in self._files

    def list_files(self) -> list[str]:
        return list(self._files)

    def _entry(self, name: str) -> tuple[list[Extent], int]:
        try:
            return self._files[name]
        except KeyError:
            raise FileNotFoundStorageError(name) from None
