"""Storage abstraction: named byte objects placed on a simulated drive.

The LSM engine above is placement-agnostic; it writes whole SSTables,
reads ranges, appends to a write-ahead log, and checkpoints small
metadata blobs.  Every placement policy implements this interface.

Two fixed *regions* at the front of the drive serve the log and the
metadata checkpoints for **all** policies, so WAL/manifest traffic is
identical across stores and never pollutes the table-data accounting
(their drive categories are ``wal`` and ``meta``, see
:mod:`repro.smr.stats`).
"""

from __future__ import annotations

import zlib
from abc import ABC, abstractmethod
from typing import Sequence

from repro import faults
from repro.errors import (
    AllocationError,
    FileNotFoundStorageError,
    StorageError,
)
from repro.obs.events import ManifestAppend, WALAppend
from repro.smr.drive import Drive
from repro.smr.extent import Extent
from repro.smr.stats import CATEGORY_META, CATEGORY_TABLE, CATEGORY_WAL


class LogRegion:
    """An append-only region with whole-region reset.

    Appends advance a tail pointer; ``reset`` trims the region and
    rewinds.  Both patterns are sequential, hence legal on every drive
    model including raw HM-SMR (the caller leaves a guard gap after the
    region).
    """

    def __init__(self, drive: Drive, start: int, size: int, category: str) -> None:
        if start < 0 or size <= 0 or start + size > drive.capacity:
            raise StorageError(f"log region [{start}, {start + size}) does not fit drive")
        self.drive = drive
        self.start = start
        self.size = size
        self.category = category
        self.tail = start

    @property
    def used(self) -> int:
        return self.tail - self.start

    def append(self, data: bytes) -> None:
        if self.tail + len(data) > self.start + self.size:
            raise AllocationError(
                f"log region overflow: {len(data)} bytes at tail {self.tail}, "
                f"region ends at {self.start + self.size}"
            )
        self.drive.write_buffered(self.tail, data, category=self.category)
        self.tail += len(data)

    def read_all(self) -> bytes:
        """Return everything appended since the last reset."""
        if self.tail == self.start:
            return b""
        return self.drive.read(self.start, self.tail - self.start, category=self.category)

    def reset(self) -> None:
        self.drive.trim(self.start, self.size)
        self.tail = self.start


class Storage(ABC):
    """Named-object placement policy over a simulated drive.

    Concrete subclasses implement table-file placement; the WAL and the
    metadata checkpoint area are provided here.
    """

    def __init__(self, drive: Drive, *, wal_size: int, meta_size: int,
                 region_gap: int = 0) -> None:
        self.drive = drive
        self.region_gap = region_gap
        #: observability bus; None while no subscriber (zero-cost hooks)
        self._obs = None
        self.wal = LogRegion(drive, 0, wal_size, CATEGORY_WAL)
        meta_start = wal_size + region_gap
        # The manifest area is split into two half-size slots so a
        # rollover (reset + fresh snapshot) never destroys the only
        # copy: the old slot stays intact until the new one holds a
        # generation header *and* a snapshot.
        half = meta_size // 2
        if half <= 0:
            raise StorageError(f"meta region too small to slot: {meta_size}")
        self._meta_slots = [
            LogRegion(drive, meta_start, half, CATEGORY_META),
            LogRegion(drive, meta_start + half, meta_size - half, CATEGORY_META),
        ]
        self._active_meta = 0
        self._meta_generation = 1
        self._meta_damaged = False
        #: first byte available for table data
        self.data_start = meta_start + meta_size + region_gap

    # -- write-ahead log -------------------------------------------------

    def append_log(self, data: bytes) -> None:
        """Append a record blob to the write-ahead log."""
        self.wal.append(data)
        obs = self._obs
        if obs is not None:
            obs.emit(WALAppend(ts=self.drive.now, nbytes=len(data)))

    def read_log_bytes(self) -> bytes:
        """All WAL bytes since the last reset (for recovery replay)."""
        return self.wal.read_all()

    def reset_log(self) -> None:
        """Discard the WAL (after a successful memtable flush)."""
        self.wal.reset()

    # -- metadata log (manifest) -------------------------------------------

    #: meta record kinds
    META_SNAPSHOT = 1
    META_EDIT = 2
    #: slot generation header, written by :meth:`reset_meta`
    META_OPEN = 3

    @property
    def meta_region(self) -> LogRegion:
        """The active manifest slot (see the two-slot rollover scheme)."""
        return self._meta_slots[self._active_meta]

    @staticmethod
    def _meta_frame(kind: int, payload: bytes) -> bytes:
        frame = bytearray([kind])
        frame += len(payload).to_bytes(4, "little")
        frame += zlib.crc32(payload).to_bytes(4, "little")
        frame += payload
        return bytes(frame)

    def _append_meta_frame(self, slot: LogRegion, kind: int,
                           payload: bytes) -> None:
        """Frame and append one record, threading the ``manifest.log``
        failpoint (a torn action appends only a prefix of the frame)."""
        frame = self._meta_frame(kind, payload)
        if slot.tail + len(frame) > slot.start + slot.size:
            raise AllocationError(
                f"meta slot overflow: {len(frame)} bytes at tail {slot.tail}, "
                f"slot ends at {slot.start + slot.size}"
            )
        inj = faults.fire(faults.MANIFEST_LOG, data=frame)
        if inj is not None:
            frame = inj.mutate_bytes(frame)
        if frame:
            slot.append(frame)
        if inj is not None:
            inj.finish()
        obs = self._obs
        if obs is not None:
            obs.emit(ManifestAppend(ts=self.drive.now, nbytes=len(frame)))

    def append_meta_record(self, kind: int, payload: bytes) -> None:
        """Append one framed record to the metadata log.

        Raises :class:`AllocationError` when the active slot is full;
        the caller then rolls over via :meth:`reset_meta` and writes a
        fresh snapshot.
        """
        self._append_meta_frame(self.meta_region, kind, payload)

    @staticmethod
    def _parse_meta(data: bytes) -> tuple[list[tuple[int, bytes]], int, bool]:
        """Parse framed records; -> ``(records, valid_len, crc_error)``.

        Stops at a truncated tail (torn append) without raising;
        ``valid_len`` is the length of the well-formed prefix.  A
        checksum mismatch in a complete frame stops the parse and sets
        ``crc_error`` instead -- the caller decides whether that is
        fatal.
        """
        records: list[tuple[int, bytes]] = []
        pos = 0
        while pos + 9 <= len(data):
            kind = data[pos]
            length = int.from_bytes(data[pos + 1 : pos + 5], "little")
            crc = int.from_bytes(data[pos + 5 : pos + 9], "little")
            if kind == 0 and length == 0:
                break  # unwritten space, not a record
            payload = data[pos + 9 : pos + 9 + length]
            if len(payload) < length:
                break  # truncated tail
            if zlib.crc32(payload) != crc:
                return records, pos, True
            records.append((kind, bytes(payload)))
            pos += 9 + length
        return records, pos, False

    def _slot_state(self, index: int):
        """-> ``(generation, body, usable, damaged, crc_error)`` for one slot.

        ``body`` excludes the generation header.  A slot opened by
        :meth:`reset_meta` is usable only once a snapshot follows its
        header -- until then the previous slot is the manifest of
        record.  Slot 0 with no header is the initial (generation 1)
        manifest and is usable even when empty (a fresh store).
        """
        data = self._meta_slots[index].read_all()
        records, valid_len, crc_error = self._parse_meta(data)
        if records and records[0][0] == self.META_OPEN:
            generation = int.from_bytes(records[0][1][:8], "little")
            body = records[1:]
            usable = (not crc_error and bool(body)
                      and body[0][0] == self.META_SNAPSHOT)
        else:
            generation = 1
            body = records
            usable = not crc_error and index == 0
        damaged = crc_error or valid_len < len(data)
        return generation, body, usable, damaged, crc_error

    def read_meta_records(self) -> list[tuple[int, bytes]]:
        """The records of the manifest of record, in append order.

        Prefers the active slot; falls back to the other slot when a
        crash left the active one mid-rollover (generation header
        without a snapshot).  Raises :class:`StorageError` when neither
        slot holds a readable manifest.
        """
        gen, body, usable, damaged, crc_error = self._slot_state(self._active_meta)
        if usable:
            self._meta_damaged = damaged
            return body
        other = 1 - self._active_meta
        ogen, obody, ousable, odamaged, ocrc = self._slot_state(other)
        if not ousable:
            if crc_error or ocrc:
                raise StorageError("meta record crc mismatch")
            raise StorageError("no usable manifest slot")
        self._active_meta = other
        self._meta_generation = ogen
        self._meta_damaged = odamaged
        return obody

    def meta_log_damaged(self) -> bool:
        """Whether the last :meth:`read_meta_records` found a torn tail.

        Recovery must then rewrite the manifest (reset + snapshot)
        before appending: records appended after garbage would be
        unreachable to the next recovery.
        """
        return self._meta_damaged

    def reset_meta(self) -> None:
        """Start a fresh manifest in the inactive slot (atomic rollover).

        The old slot stays intact until the new slot's generation header
        is durable, and :meth:`read_meta_records` keeps preferring the
        old slot until a snapshot follows the header -- so a crash
        anywhere inside a rollover loses at most the records the caller
        had not yet written.
        """
        target = 1 - self._active_meta
        slot = self._meta_slots[target]
        slot.reset()
        generation = self._meta_generation + 1
        self._append_meta_frame(slot, self.META_OPEN,
                                generation.to_bytes(8, "little"))
        self._active_meta = target
        self._meta_generation = generation
        self._meta_damaged = False

    # -- table files -------------------------------------------------------

    def create_stream(self, name: str, chunk_size: int,
                      category: str = CATEGORY_TABLE) -> "FileStream":
        """Open a named object for incremental writing.

        Streaming matters for timing fidelity: a compaction that drains
        its output as the merge proceeds makes the disk head ping-pong
        between input reads and output writes.  The base implementation
        falls back to buffering (one ``write_file`` at close); policies
        with real incremental placement override it.
        """
        return BufferedStream(self, name, category)

    @abstractmethod
    def write_file(self, name: str, data: bytes,
                   category: str = CATEGORY_TABLE) -> None:
        """Write a complete named object."""

    def write_files(self, files: Sequence[tuple[str, bytes]],
                    category: str = CATEGORY_TABLE) -> None:
        """Write a group of objects produced together (one compaction).

        Carries the ``storage.write_files`` failpoint: a torn action
        places only a prefix of the group before the simulated power
        failure.  Placement itself is :meth:`_write_files`, which the
        base class does one file at a time; set-aware policies override
        it to place the whole group contiguously.
        """
        inj = faults.fire(faults.STORAGE_WRITE_FILES, units=len(files))
        if inj is None:
            self._write_files(files, category)
            return
        keep = inj.keep_units(len(files))
        if keep > 0:
            self._write_files(list(files)[:keep], category)
        inj.finish()

    def _write_files(self, files: Sequence[tuple[str, bytes]],
                     category: str = CATEGORY_TABLE) -> None:
        for name, data in files:
            self.write_file(name, data, category)

    def read_file(self, name: str, offset: int, length: int,
                  category: str = CATEGORY_TABLE) -> bytes:
        """Read ``length`` bytes of object ``name`` starting at ``offset``.

        Carries the ``storage.read`` failpoint, fired *after* the
        backend fetched the bytes so a ``corrupt`` action can flip the
        returned payload (a transient read glitch, distinct from the
        drive's persistent media-error map).
        """
        data = self._read_file(name, offset, length, category)
        inj = faults.fire(faults.STORAGE_READ, data=data)
        if inj is not None:
            data = inj.mutate_bytes(data)
            inj.finish()
        return data

    @abstractmethod
    def _read_file(self, name: str, offset: int, length: int,
                   category: str = CATEGORY_TABLE) -> bytes:
        """Backend-specific read semantics (no failpoint handling)."""

    @abstractmethod
    def file_size(self, name: str) -> int:
        """Size in bytes of object ``name``."""

    @abstractmethod
    def delete_file(self, name: str) -> None:
        """Delete object ``name`` and release its space."""

    def delete_files(self, names: Sequence[str]) -> None:
        """Delete a group of objects invalidated together."""
        for name in names:
            self.delete_file(name)

    @abstractmethod
    def file_extents(self, name: str) -> list[Extent]:
        """Physical extents of object ``name`` (for layout tracing)."""

    @abstractmethod
    def exists(self, name: str) -> bool:
        """Whether object ``name`` exists."""

    @abstractmethod
    def list_files(self) -> list[str]:
        """All object names, unordered."""


class FileStream(ABC):
    """Incremental writer for one named object."""

    @abstractmethod
    def append(self, data: bytes) -> None:
        """Add bytes to the object."""

    @abstractmethod
    def close(self) -> int:
        """Finish the object; returns its total size."""


class BufferedStream(FileStream):
    """Fallback stream: buffers everything, one placement at close."""

    def __init__(self, storage: Storage, name: str, category: str) -> None:
        self._storage = storage
        self._name = name
        self._category = category
        self._buf = bytearray()

    def append(self, data: bytes) -> None:
        self._buf += data

    def close(self) -> int:
        self._storage.write_file(self._name, bytes(self._buf), self._category)
        return len(self._buf)


class BandAlignedStorage(Storage):
    """SMRDB's placement: every file lives in its own dedicated band.

    Files must not exceed the band size (SMRDB sizes its SSTables to
    match the band).  Deleting a file trims its band, resetting the
    band's write frontier so the band can be sequentially reused --
    which is precisely how SMRDB avoids auxiliary write amplification.
    """

    def __init__(self, drive: Drive, band_size: int, *, wal_size: int,
                 meta_size: int, region_gap: int = 0) -> None:
        super().__init__(drive, wal_size=wal_size, meta_size=meta_size,
                         region_gap=region_gap)
        self.band_size = band_size
        first_band = (self.data_start + band_size - 1) // band_size
        last_band = drive.capacity // band_size
        self._free_bands: list[int] = list(range(first_band, last_band))
        self._files: dict[str, tuple[int, int]] = {}  # name -> (band, size)

    def write_file(self, name: str, data: bytes,
                   category: str = CATEGORY_TABLE) -> None:
        if name in self._files:
            raise StorageError(f"object {name!r} already exists")
        if len(data) > self.band_size:
            raise AllocationError(
                f"object {name!r} ({len(data)} B) exceeds band size {self.band_size}"
            )
        band = self._take_band()
        try:
            self.drive.write(band * self.band_size, data, category=category)
        except BaseException:
            # A crash mid-write leaves a half-filled band: trim it and
            # put it back so the space is not leaked.
            self.drive.trim(band * self.band_size, self.band_size)
            self._free_bands.insert(0, band)
            raise
        self._files[name] = (band, len(data))

    def _take_band(self) -> int:
        if not self._free_bands:
            raise AllocationError("no free bands left")
        return self._free_bands.pop(0)

    def create_stream(self, name: str, chunk_size: int,
                      category: str = CATEGORY_TABLE) -> FileStream:
        if name in self._files:
            raise StorageError(f"object {name!r} already exists")
        return _BandStream(self, name, chunk_size, category)

    def _read_file(self, name: str, offset: int, length: int,
                  category: str = CATEGORY_TABLE) -> bytes:
        band, size = self._entry(name)
        if offset + length > size:
            raise StorageError(
                f"read past end of {name!r}: [{offset}, {offset + length}) size {size}"
            )
        return self.drive.read(band * self.band_size + offset, length,
                               category=category)

    def file_size(self, name: str) -> int:
        return self._entry(name)[1]

    def delete_file(self, name: str) -> None:
        band, _size = self._entry(name)
        del self._files[name]
        self.drive.trim(band * self.band_size, self.band_size)
        self._free_bands.append(band)

    def file_extents(self, name: str) -> list[Extent]:
        band, size = self._entry(name)
        start = band * self.band_size
        return [Extent(start, start + size)]

    def exists(self, name: str) -> bool:
        return name in self._files

    def list_files(self) -> list[str]:
        return list(self._files)

    def _entry(self, name: str) -> tuple[int, int]:
        try:
            return self._files[name]
        except KeyError:
            raise FileNotFoundStorageError(name) from None


class _BandStream(FileStream):
    """Streams a file into its dedicated band, chunk by chunk."""

    def __init__(self, storage: BandAlignedStorage, name: str,
                 chunk_size: int, category: str) -> None:
        self._storage = storage
        self._name = name
        self._chunk = max(1, chunk_size)
        self._category = category
        self._band = storage._take_band()
        self._written = 0
        self._pending = bytearray()

    def append(self, data: bytes) -> None:
        self._pending += data
        while len(self._pending) >= self._chunk:
            self._flush(self._chunk)

    def _flush(self, nbytes: int) -> None:
        chunk = bytes(self._pending[:nbytes])
        del self._pending[:nbytes]
        offset = self._band * self._storage.band_size + self._written
        try:
            if self._written + len(chunk) > self._storage.band_size:
                raise AllocationError(
                    f"stream {self._name!r} exceeds band size "
                    f"{self._storage.band_size}"
                )
            self._storage.drive.write(offset, chunk, category=self._category)
        except BaseException:
            # Abandon the stream: reclaim the band so the partially
            # written file does not leak it.
            band_start = self._band * self._storage.band_size
            self._storage.drive.trim(band_start, self._storage.band_size)
            self._storage._free_bands.insert(0, self._band)
            raise
        self._written += len(chunk)

    def close(self) -> int:
        if self._pending:
            self._flush(len(self._pending))
        self._storage._files[self._name] = (self._band, self._written)
        return self._written
