"""Storage abstraction: named byte objects placed on a simulated drive.

The LSM engine above is placement-agnostic; it writes whole SSTables,
reads ranges, appends to a write-ahead log, and checkpoints small
metadata blobs.  Every placement policy implements this interface.

Two fixed *regions* at the front of the drive serve the log and the
metadata checkpoints for **all** policies, so WAL/manifest traffic is
identical across stores and never pollutes the table-data accounting
(their drive categories are ``wal`` and ``meta``, see
:mod:`repro.smr.stats`).
"""

from __future__ import annotations

import zlib
from abc import ABC, abstractmethod
from typing import Sequence

from repro.errors import (
    AllocationError,
    FileNotFoundStorageError,
    StorageError,
)
from repro.smr.drive import Drive
from repro.smr.extent import Extent
from repro.smr.stats import CATEGORY_META, CATEGORY_TABLE, CATEGORY_WAL


class LogRegion:
    """An append-only region with whole-region reset.

    Appends advance a tail pointer; ``reset`` trims the region and
    rewinds.  Both patterns are sequential, hence legal on every drive
    model including raw HM-SMR (the caller leaves a guard gap after the
    region).
    """

    def __init__(self, drive: Drive, start: int, size: int, category: str) -> None:
        if start < 0 or size <= 0 or start + size > drive.capacity:
            raise StorageError(f"log region [{start}, {start + size}) does not fit drive")
        self.drive = drive
        self.start = start
        self.size = size
        self.category = category
        self.tail = start

    @property
    def used(self) -> int:
        return self.tail - self.start

    def append(self, data: bytes) -> None:
        if self.tail + len(data) > self.start + self.size:
            raise AllocationError(
                f"log region overflow: {len(data)} bytes at tail {self.tail}, "
                f"region ends at {self.start + self.size}"
            )
        self.drive.write_buffered(self.tail, data, category=self.category)
        self.tail += len(data)

    def read_all(self) -> bytes:
        """Return everything appended since the last reset."""
        if self.tail == self.start:
            return b""
        return self.drive.read(self.start, self.tail - self.start, category=self.category)

    def reset(self) -> None:
        self.drive.trim(self.start, self.size)
        self.tail = self.start


class Storage(ABC):
    """Named-object placement policy over a simulated drive.

    Concrete subclasses implement table-file placement; the WAL and the
    metadata checkpoint area are provided here.
    """

    def __init__(self, drive: Drive, *, wal_size: int, meta_size: int,
                 region_gap: int = 0) -> None:
        self.drive = drive
        self.region_gap = region_gap
        self.wal = LogRegion(drive, 0, wal_size, CATEGORY_WAL)
        meta_start = wal_size + region_gap
        self.meta_region = LogRegion(drive, meta_start, meta_size, CATEGORY_META)
        #: first byte available for table data
        self.data_start = meta_start + meta_size + region_gap

    # -- write-ahead log -------------------------------------------------

    def append_log(self, data: bytes) -> None:
        """Append a record blob to the write-ahead log."""
        self.wal.append(data)

    def read_log_bytes(self) -> bytes:
        """All WAL bytes since the last reset (for recovery replay)."""
        return self.wal.read_all()

    def reset_log(self) -> None:
        """Discard the WAL (after a successful memtable flush)."""
        self.wal.reset()

    # -- metadata log (manifest) -------------------------------------------

    #: meta record kinds
    META_SNAPSHOT = 1
    META_EDIT = 2

    def append_meta_record(self, kind: int, payload: bytes) -> None:
        """Append one framed record to the metadata log.

        Raises :class:`AllocationError` when the region is full; the
        caller then writes a fresh snapshot via :meth:`reset_meta`.
        """
        frame = bytearray([kind])
        frame += len(payload).to_bytes(4, "little")
        frame += zlib.crc32(payload).to_bytes(4, "little")
        frame += payload
        self.meta_region.append(bytes(frame))

    def read_meta_records(self) -> list[tuple[int, bytes]]:
        """All records appended since the last reset, in order."""
        data = self.meta_region.read_all()
        records: list[tuple[int, bytes]] = []
        pos = 0
        while pos + 9 <= len(data):
            kind = data[pos]
            length = int.from_bytes(data[pos + 1 : pos + 5], "little")
            crc = int.from_bytes(data[pos + 5 : pos + 9], "little")
            payload = data[pos + 9 : pos + 9 + length]
            if len(payload) < length:
                break  # truncated tail
            if zlib.crc32(payload) != crc:
                raise StorageError(f"meta record crc mismatch at {pos}")
            records.append((kind, bytes(payload)))
            pos += 9 + length
        return records

    def reset_meta(self) -> None:
        """Discard the metadata log (before writing a fresh snapshot)."""
        self.meta_region.reset()

    # -- table files -------------------------------------------------------

    def create_stream(self, name: str, chunk_size: int,
                      category: str = CATEGORY_TABLE) -> "FileStream":
        """Open a named object for incremental writing.

        Streaming matters for timing fidelity: a compaction that drains
        its output as the merge proceeds makes the disk head ping-pong
        between input reads and output writes.  The base implementation
        falls back to buffering (one ``write_file`` at close); policies
        with real incremental placement override it.
        """
        return BufferedStream(self, name, category)

    @abstractmethod
    def write_file(self, name: str, data: bytes,
                   category: str = CATEGORY_TABLE) -> None:
        """Write a complete named object."""

    def write_files(self, files: Sequence[tuple[str, bytes]],
                    category: str = CATEGORY_TABLE) -> None:
        """Write a group of objects produced together (one compaction).

        The base implementation writes them one by one; set-aware
        policies override this to place the whole group contiguously.
        """
        for name, data in files:
            self.write_file(name, data, category)

    @abstractmethod
    def read_file(self, name: str, offset: int, length: int,
                  category: str = CATEGORY_TABLE) -> bytes:
        """Read ``length`` bytes of object ``name`` starting at ``offset``."""

    @abstractmethod
    def file_size(self, name: str) -> int:
        """Size in bytes of object ``name``."""

    @abstractmethod
    def delete_file(self, name: str) -> None:
        """Delete object ``name`` and release its space."""

    def delete_files(self, names: Sequence[str]) -> None:
        """Delete a group of objects invalidated together."""
        for name in names:
            self.delete_file(name)

    @abstractmethod
    def file_extents(self, name: str) -> list[Extent]:
        """Physical extents of object ``name`` (for layout tracing)."""

    @abstractmethod
    def exists(self, name: str) -> bool:
        """Whether object ``name`` exists."""

    @abstractmethod
    def list_files(self) -> list[str]:
        """All object names, unordered."""


class FileStream(ABC):
    """Incremental writer for one named object."""

    @abstractmethod
    def append(self, data: bytes) -> None:
        """Add bytes to the object."""

    @abstractmethod
    def close(self) -> int:
        """Finish the object; returns its total size."""


class BufferedStream(FileStream):
    """Fallback stream: buffers everything, one placement at close."""

    def __init__(self, storage: Storage, name: str, category: str) -> None:
        self._storage = storage
        self._name = name
        self._category = category
        self._buf = bytearray()

    def append(self, data: bytes) -> None:
        self._buf += data

    def close(self) -> int:
        self._storage.write_file(self._name, bytes(self._buf), self._category)
        return len(self._buf)


class BandAlignedStorage(Storage):
    """SMRDB's placement: every file lives in its own dedicated band.

    Files must not exceed the band size (SMRDB sizes its SSTables to
    match the band).  Deleting a file trims its band, resetting the
    band's write frontier so the band can be sequentially reused --
    which is precisely how SMRDB avoids auxiliary write amplification.
    """

    def __init__(self, drive: Drive, band_size: int, *, wal_size: int,
                 meta_size: int, region_gap: int = 0) -> None:
        super().__init__(drive, wal_size=wal_size, meta_size=meta_size,
                         region_gap=region_gap)
        self.band_size = band_size
        first_band = (self.data_start + band_size - 1) // band_size
        last_band = drive.capacity // band_size
        self._free_bands: list[int] = list(range(first_band, last_band))
        self._files: dict[str, tuple[int, int]] = {}  # name -> (band, size)

    def write_file(self, name: str, data: bytes,
                   category: str = CATEGORY_TABLE) -> None:
        if name in self._files:
            raise StorageError(f"object {name!r} already exists")
        if len(data) > self.band_size:
            raise AllocationError(
                f"object {name!r} ({len(data)} B) exceeds band size {self.band_size}"
            )
        band = self._take_band()
        self.drive.write(band * self.band_size, data, category=category)
        self._files[name] = (band, len(data))

    def _take_band(self) -> int:
        if not self._free_bands:
            raise AllocationError("no free bands left")
        return self._free_bands.pop(0)

    def create_stream(self, name: str, chunk_size: int,
                      category: str = CATEGORY_TABLE) -> FileStream:
        if name in self._files:
            raise StorageError(f"object {name!r} already exists")
        return _BandStream(self, name, chunk_size, category)

    def read_file(self, name: str, offset: int, length: int,
                  category: str = CATEGORY_TABLE) -> bytes:
        band, size = self._entry(name)
        if offset + length > size:
            raise StorageError(
                f"read past end of {name!r}: [{offset}, {offset + length}) size {size}"
            )
        return self.drive.read(band * self.band_size + offset, length,
                               category=category)

    def file_size(self, name: str) -> int:
        return self._entry(name)[1]

    def delete_file(self, name: str) -> None:
        band, _size = self._entry(name)
        del self._files[name]
        self.drive.trim(band * self.band_size, self.band_size)
        self._free_bands.append(band)

    def file_extents(self, name: str) -> list[Extent]:
        band, size = self._entry(name)
        start = band * self.band_size
        return [Extent(start, start + size)]

    def exists(self, name: str) -> bool:
        return name in self._files

    def list_files(self) -> list[str]:
        return list(self._files)

    def _entry(self, name: str) -> tuple[int, int]:
        try:
            return self._files[name]
        except KeyError:
            raise FileNotFoundStorageError(name) from None


class _BandStream(FileStream):
    """Streams a file into its dedicated band, chunk by chunk."""

    def __init__(self, storage: BandAlignedStorage, name: str,
                 chunk_size: int, category: str) -> None:
        self._storage = storage
        self._name = name
        self._chunk = max(1, chunk_size)
        self._category = category
        self._band = storage._take_band()
        self._written = 0
        self._pending = bytearray()

    def append(self, data: bytes) -> None:
        self._pending += data
        while len(self._pending) >= self._chunk:
            self._flush(self._chunk)

    def _flush(self, nbytes: int) -> None:
        chunk = bytes(self._pending[:nbytes])
        del self._pending[:nbytes]
        offset = self._band * self._storage.band_size + self._written
        if self._written + len(chunk) > self._storage.band_size:
            raise AllocationError(
                f"stream {self._name!r} exceeds band size {self._storage.band_size}"
            )
        self._storage.drive.write(offset, chunk, category=self._category)
        self._written += len(chunk)

    def close(self) -> int:
        if self._pending:
            self._flush(len(self._pending))
        self._storage._files[self._name] = (self._band, self._written)
        return self._written
