"""File-placement substrate.

KV engines address "files" by name; a :class:`~repro.fs.storage.Storage`
policy decides where those bytes land on the simulated drive.  The
policies mirror the paper's configurations:

* :class:`~repro.fs.ext4sim.Ext4Storage` -- an ext4-like block-group
  allocator.  Freed holes are reused first-fit, so the SSTables of one
  compaction scatter across the used region exactly as the paper's
  Fig. 2 shows.
* :class:`~repro.fs.storage.BandAlignedStorage` -- SMRDB's policy: each
  file occupies its own dedicated fixed-size band.
* :class:`~repro.core.storage.DynamicBandStorage` (in ``repro.core``) --
  SEALDB's direct-on-disk policy with dynamic bands.
"""

from repro.fs.storage import BandAlignedStorage, LogRegion, Storage
from repro.fs.ext4sim import Ext4Allocator, Ext4Storage

__all__ = [
    "BandAlignedStorage",
    "Ext4Allocator",
    "Ext4Storage",
    "LogRegion",
    "Storage",
]
