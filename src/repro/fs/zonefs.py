"""ZenFS-style placement on a zoned device.

The modern alternative to SEALDB's dynamic bands: run the LSM on a
standard zoned (ZBC/ZNS) device, appending files into fixed
sequential-write zones and garbage-collecting zones when free ones run
low.  This is the design point the paper argues against ("storing sets
in conventional SMR drives with fixed bands ... results in space
wastage"), implemented here so the trade-off is measurable
(``benchmarks/test_ablation_zoned.py``).

Policy:

* files append into the currently *open* zone, spilling into the next
  empty zone when full (files may span zones via extents);
* deletes only mark garbage; a fully-garbage zone is reset and becomes
  empty again for free;
* when empty zones run below a reserve, the zone with the most garbage
  is collected: its live extents are rewritten to the open zone, then
  the zone is reset -- the relocation traffic is the zoned-storage
  equivalent of AWA and is charged to the ``table`` category.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AllocationError, FileNotFoundStorageError, StorageError
from repro.fs.storage import FileStream, Storage
from repro.smr.extent import Extent
from repro.smr.stats import CATEGORY_TABLE
from repro.smr.zoned import ZonedDrive


@dataclass
class ZoneState:
    """Host-side bookkeeping for one zone."""

    index: int
    live: int = 0
    garbage: int = 0
    #: extents of live data in this zone: name -> positions in the
    #: file's extent list
    residents: dict[str, list[int]] = field(default_factory=dict)


class ZoneStorage(Storage):
    """Append-into-zones placement with greedy zone GC."""

    def __init__(self, drive: ZonedDrive, *, wal_size: int, meta_size: int,
                 gc_reserve_zones: int = 2) -> None:
        if wal_size + meta_size > 2 * drive.zone_size:
            raise StorageError("wal+meta regions must fit the journal zones")
        # zones 0 and 1 hold the WAL and manifest journals (conventional
        # zones on real hardware); data zones start at zone 2
        super().__init__(drive, wal_size=wal_size, meta_size=meta_size,
                         region_gap=drive.zone_size - wal_size)
        self.gc_reserve_zones = gc_reserve_zones
        self.first_data_zone = 2
        self.zones = {z: ZoneState(z)
                      for z in range(self.first_data_zone, drive.num_zones)}
        self._open_zone: int | None = None
        self._files: dict[str, tuple[list[Extent], int]] = {}
        self.gc_runs = 0
        self.gc_bytes_moved = 0

    # -- zone helpers -----------------------------------------------------

    def _empty_zones(self) -> list[int]:
        return [z for z, s in self.zones.items()
                if s.live == 0 and s.garbage == 0
                and self.drive.zone_remaining(z) == self.drive.zone_size
                and z != self._open_zone]

    def _ensure_open_zone(self) -> int:
        if (self._open_zone is not None
                and self.drive.zone_remaining(self._open_zone) > 0):
            return self._open_zone
        empties = self._empty_zones()
        if not empties:
            raise AllocationError("no empty zones left")
        self._open_zone = empties[0]
        return self._open_zone

    def _append_bytes(self, name: str, data: bytes,
                      category: str) -> list[Extent]:
        """Append ``data`` starting at the open zone's write pointer,
        spilling into further empty zones as needed."""
        extents: list[Extent] = []
        cursor = 0
        while cursor < len(data):
            zone = self._ensure_open_zone()
            room = self.drive.zone_remaining(zone)
            chunk = data[cursor : cursor + room]
            offset = self.drive.write_pointer(zone)
            try:
                self.drive.write(offset, chunk, category=category)
            except BaseException:
                # A crash mid-append: turn the already-placed pieces
                # (and any torn prefix of this chunk) into garbage so
                # zone GC can reclaim them.
                torn = self.drive.write_pointer(zone) - offset
                if torn > 0:
                    self.zones[zone].garbage += torn
                for ext in extents:
                    state = self.zones[self.drive.zone_of(ext.start)]
                    state.live -= ext.length
                    state.garbage += ext.length
                raise
            extents.append(Extent(offset, offset + len(chunk)))
            state = self.zones[zone]
            state.live += len(chunk)
            cursor += len(chunk)
        return extents

    def _register(self, name: str, extents: list[Extent], size: int) -> None:
        self._files[name] = (extents, size)
        for position, ext in enumerate(extents):
            zone = self.drive.zone_of(ext.start)
            self.zones[zone].residents.setdefault(name, []).append(position)

    # -- garbage collection -------------------------------------------------

    def _maybe_collect(self) -> None:
        while len(self._empty_zones()) < self.gc_reserve_zones:
            if not self._collect_one():
                break

    def _collect_one(self) -> bool:
        """Reset the fullest-of-garbage zone, relocating its live data."""
        candidates = [s for z, s in self.zones.items()
                      if z != self._open_zone and s.garbage > 0]
        if not candidates:
            return False
        victim = max(candidates, key=lambda s: s.garbage)
        self.gc_runs += 1
        moved_before = self.gc_bytes_moved
        # relocate live resident extents; descending positions so the
        # splices never shift a not-yet-processed index
        for name, positions in list(victim.residents.items()):
            extents, _size = self._files[name]
            for position in sorted(positions, reverse=True):
                old = extents[position]
                payload = self.drive.read(old.start, old.length,
                                          category=CATEGORY_TABLE)
                new_pieces = self._append_bytes(name, payload, CATEGORY_TABLE)
                self.gc_bytes_moved += old.length
                extents[position : position + 1] = new_pieces
            self._reindex_residents(name)
        victim.residents.clear()
        victim.live = 0
        victim.garbage = 0
        self.drive.reset_zone(victim.index)
        obs = self._obs
        if obs is not None:
            from repro.obs.events import ZoneGC
            obs.emit(ZoneGC(ts=self.drive.now, zone=victim.index,
                            moved_bytes=self.gc_bytes_moved - moved_before))
        return True

    def _reindex_residents(self, name: str) -> None:
        """Rebuild zone->positions for one file after a splice."""
        extents, _size = self._files[name]
        for state in self.zones.values():
            state.residents.pop(name, None)
        for position, ext in enumerate(extents):
            zone = self.drive.zone_of(ext.start)
            self.zones[zone].residents.setdefault(name, []).append(position)

    # -- Storage interface ---------------------------------------------------

    def write_file(self, name: str, data: bytes,
                   category: str = CATEGORY_TABLE) -> None:
        if name in self._files:
            raise StorageError(f"object {name!r} already exists")
        self._maybe_collect()
        extents = self._append_bytes(name, bytes(data), category)
        self._register(name, extents, len(data))

    def create_stream(self, name: str, chunk_size: int,
                      category: str = CATEGORY_TABLE) -> FileStream:
        if name in self._files:
            raise StorageError(f"object {name!r} already exists")
        self._maybe_collect()
        return _ZoneStream(self, name, chunk_size, category)

    def _read_file(self, name: str, offset: int, length: int,
                  category: str = CATEGORY_TABLE) -> bytes:
        extents, size = self._entry(name)
        if offset + length > size:
            raise StorageError(
                f"read past end of {name!r}: [{offset}, {offset + length}) "
                f"size {size}"
            )
        out = bytearray()
        pos = 0
        for ext in extents:
            ext_end = pos + ext.length
            if ext_end > offset and pos < offset + length:
                lo, hi = max(offset, pos), min(offset + length, ext_end)
                out += self.drive.read(ext.start + (lo - pos), hi - lo,
                                       category=category)
            pos = ext_end
            if pos >= offset + length:
                break
        return bytes(out)

    def file_size(self, name: str) -> int:
        return self._entry(name)[1]

    def delete_file(self, name: str) -> None:
        extents, _size = self._entry(name)
        del self._files[name]
        for ext in extents:
            zone = self.drive.zone_of(ext.start)
            state = self.zones[zone]
            state.live -= ext.length
            state.garbage += ext.length
            state.residents.pop(name, None)
        for zone, state in self.zones.items():
            if state.live == 0 and state.garbage > 0 and zone != self._open_zone:
                self.drive.reset_zone(zone)
                state.garbage = 0
                state.residents.clear()

    def file_extents(self, name: str) -> list[Extent]:
        return list(self._entry(name)[0])

    def exists(self, name: str) -> bool:
        return name in self._files

    def list_files(self) -> list[str]:
        return list(self._files)

    def _entry(self, name: str) -> tuple[list[Extent], int]:
        try:
            return self._files[name]
        except KeyError:
            raise FileNotFoundStorageError(name) from None

    # -- introspection ----------------------------------------------------

    def garbage_bytes(self) -> int:
        return sum(s.garbage for s in self.zones.values())

    def live_bytes(self) -> int:
        return sum(s.live for s in self.zones.values())


class _ZoneStream(FileStream):
    """Streams a file into zones chunk by chunk."""

    def __init__(self, storage: ZoneStorage, name: str, chunk_size: int,
                 category: str) -> None:
        self._storage = storage
        self._name = name
        self._chunk = max(1, chunk_size)
        self._category = category
        self._extents: list[Extent] = []
        self._size = 0
        self._pending = bytearray()

    def append(self, data: bytes) -> None:
        self._pending += data
        while len(self._pending) >= self._chunk:
            self._flush(self._chunk)

    def _flush(self, nbytes: int) -> None:
        chunk = bytes(self._pending[:nbytes])
        del self._pending[:nbytes]
        pieces = self._storage._append_bytes(self._name, chunk, self._category)
        # merge physically consecutive pieces
        for piece in pieces:
            if self._extents and self._extents[-1].end == piece.start:
                self._extents[-1] = Extent(self._extents[-1].start, piece.end)
            else:
                self._extents.append(piece)
        self._size += len(chunk)

    def close(self) -> int:
        if self._pending:
            self._flush(len(self._pending))
        if not self._extents:
            # zero-length objects still need an identity
            self._storage._files[self._name] = ([], 0)
            return 0
        self._storage._register(self._name, self._extents, self._size)
        return self._size
