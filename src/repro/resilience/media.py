"""Persistent per-drive media faults: latent sector errors and bit-rot.

A :class:`MediaErrorMap` models the two dominant field failure modes of
high-density (SMR) media:

* **latent sector errors** -- the drive cannot read a byte range at
  all; every read overlapping it raises
  :class:`~repro.errors.MediaError`.  Deliberately *hard*: retries do
  not help, only rewriting the sectors does.
* **silent bit-rot** -- the drive returns success but some bytes come
  back flipped.  The map XORs a deterministic per-offset mask into the
  returned payload on *every* read, so the fault is persistent and
  replayable; only block checksums further up the stack catch it.

Both heal on overwrite (:meth:`MediaErrorMap.note_write`): writing a
sector remaps/refreshes it, as on real drives.  Masks are derived from
the map's seed and the absolute byte offset, so a given (seed, offset)
always rots the same way -- crash sweeps and fuzz tests replay
identically.

The map is attached lazily (``drive.inject_media_errors(seed=...)``);
drives default to ``_media = None`` and pay one ``is None`` check per
read, keeping fault-free simulations bit-identical.
"""

from __future__ import annotations

import zlib

from repro.errors import MediaError


def _rot_mask(seed: int, offset: int) -> int:
    """Deterministic non-zero XOR mask for the byte at ``offset``."""
    mask = zlib.crc32(offset.to_bytes(8, "little"), seed & 0xFFFFFFFF) & 0xFF
    return mask or 0xA5


class MediaErrorMap:
    """Seeded, persistent map of injected media faults on one drive."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        #: unreadable ranges as half-open (start, end) intervals
        self._latent: list[tuple[int, int]] = []
        #: absolute offset -> XOR mask applied on every read
        self._rot: dict[int, int] = {}
        #: reads that hit a latent error (for drive stats / scrub)
        self.read_errors = 0

    # -- injection -------------------------------------------------------

    def add_latent_error(self, offset: int, length: int = 1) -> None:
        """Mark ``[offset, offset + length)`` unreadable."""
        if length <= 0:
            raise ValueError(f"latent error length must be > 0, got {length}")
        self._latent.append((offset, offset + length))

    def add_rot(self, offset: int, nbytes: int = 1) -> None:
        """Silently flip ``nbytes`` bytes starting at ``offset``."""
        for pos in range(offset, offset + nbytes):
            self._rot[pos] = _rot_mask(self.seed, pos)

    # -- the read/write hooks -------------------------------------------

    def check_read(self, offset: int, length: int) -> None:
        """Raise :class:`MediaError` if the read hits a latent error."""
        end = offset + length
        for start, stop in self._latent:
            if start < end and offset < stop:
                self.read_errors += 1
                raise MediaError(max(start, offset),
                                 min(stop, end) - max(start, offset))

    def corrupt(self, offset: int, data: bytes) -> bytes:
        """Apply rot masks to a payload read from ``offset``."""
        if not self._rot:
            return data
        end = offset + len(data)
        out = None
        for pos, mask in self._rot.items():
            if offset <= pos < end:
                if out is None:
                    out = bytearray(data)
                out[pos - offset] ^= mask
        return bytes(out) if out is not None else data

    def note_write(self, offset: int, length: int) -> None:
        """Writing heals: drop faults overlapping the written range."""
        end = offset + length
        if self._latent:
            self._latent = [(s, e) for s, e in self._latent
                            if not (s < end and offset < e)]
        if self._rot:
            for pos in [p for p in self._rot if offset <= p < end]:
                del self._rot[pos]

    # -- introspection ---------------------------------------------------

    @property
    def latent_ranges(self) -> list[tuple[int, int]]:
        return list(self._latent)

    @property
    def rot_offsets(self) -> list[int]:
        return sorted(self._rot)

    def __bool__(self) -> bool:
        return bool(self._latent or self._rot)

    def __repr__(self) -> str:
        return (f"MediaErrorMap(latent={len(self._latent)}, "
                f"rot={len(self._rot)}, read_errors={self.read_errors})")
