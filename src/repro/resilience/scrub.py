"""Background scrubber: find media rot before a foreground read does.

Latent sector errors are *latent* because nobody reads the sector; on
real fleets the window between rot landing and rot being noticed is
what turns one bad sector into data loss (the redundant copy rotted
too).  The scrubber closes that window for the simulation: it walks
every live table block-by-block straight off the device -- bypassing
the block cache, whose healthy copies would mask on-media damage --
and cross-checks each file's physical extents against the placement
ledger (the dynamic-band free-space map or the raw drive's valid-data
extent map).

Tables that fail persistently (the reader's bounded retries are
exhausted) are quarantined through the engine's normal state machine,
so a scrub-detected fault and a read-detected fault leave the store in
exactly the same degraded-but-serving state.

Entry points: :meth:`repro.kvstore.KVStoreBase.scrub`, the engine's
idle path (``Options.scrub_interval_flushes``), and the ``repro
scrub`` CLI.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CorruptionError, MediaError
from repro.obs.events import ScrubEvent


@dataclass
class ScrubReport:
    """Outcome of one scrub pass over a single engine."""

    tables_checked: int = 0
    blocks_checked: int = 0
    #: tables that failed verification, as ``(name, reason)``
    errors: list[tuple[str, str]] = field(default_factory=list)
    #: tables newly quarantined by this pass
    quarantined: list[str] = field(default_factory=list)
    #: extent/placement problems found by the free-space cross-check
    placement_problems: list[str] = field(default_factory=list)
    duration: float = 0.0

    @property
    def clean(self) -> bool:
        return not self.errors and not self.placement_problems

    def merge(self, other: "ScrubReport") -> None:
        self.tables_checked += other.tables_checked
        self.blocks_checked += other.blocks_checked
        self.errors += other.errors
        self.quarantined += other.quarantined
        self.placement_problems += other.placement_problems
        self.duration += other.duration

    def render(self) -> str:
        status = "CLEAN" if self.clean else (
            f"{len(self.errors)} BAD TABLE(S), "
            f"{len(self.placement_problems)} PLACEMENT PROBLEM(S)")
        lines = [f"scrub: {status} -- {self.tables_checked} tables, "
                 f"{self.blocks_checked:,} blocks"]
        lines += [f"  - {name}: {reason}" for name, reason in self.errors]
        lines += [f"  - quarantined {name}" for name in self.quarantined]
        lines += [f"  - {p}" for p in self.placement_problems]
        return "\n".join(lines)


def scrub(db) -> ScrubReport:
    """One full scrub pass over ``db`` (a :class:`repro.lsm.db.DB`).

    Reads are real timed device I/O on the simulated clock -- a scrub
    costs what it would cost on hardware, which is why the engine only
    runs it on its idle path.  Already-quarantined tables are skipped
    (known bad; re-reading them is wasted head time).
    """
    start = db.now
    report = ScrubReport()
    version = db.versions.current
    for level in range(version.num_levels):
        for meta in list(version.files[level]):
            if meta.quarantined:
                continue
            report.tables_checked += 1
            try:
                report.blocks_checked += db._table(meta).verify_blocks()
            except (CorruptionError, MediaError) as exc:
                reason = str(exc) or type(exc).__name__
                report.errors.append((meta.name, reason))
                db._quarantine(level, meta, reason)
                report.quarantined.append(meta.name)
    _check_placement(db, report)
    report.duration = db.now - start
    obs = db._obs
    if obs is not None:
        obs.emit(ScrubEvent(ts=db.now, tables=report.tables_checked,
                            blocks=report.blocks_checked,
                            errors=len(report.errors),
                            quarantined=len(report.quarantined),
                            duration=report.duration))
    return report


def _check_placement(db, report: ScrubReport) -> None:
    """Cross-check live file extents against the space ledgers.

    Two independent books must agree about every live byte: the storage
    policy's allocation map (dynamic-band ``manager.allocated``) and,
    on raw HM-SMR drives, the device's own valid-data extent map.  A
    live extent missing from either means a trim/free raced ahead of
    the manifest -- exactly the class of bug that silently hands a
    table's bytes to the next writer.
    """
    storage = db.storage
    manager = getattr(storage, "manager", None)
    allocated = getattr(manager, "allocated", None)
    drive_valid = getattr(storage.drive, "valid", None)
    live = {meta.name
            for level in db.versions.current.files
            for meta in level}
    for name in sorted(live):
        if not storage.exists(name):
            report.placement_problems.append(
                f"{name}: referenced by manifest but missing from storage")
            continue
        for ext in storage.file_extents(name):
            if allocated is not None and not allocated.contains_range(
                    ext.start, ext.end):
                report.placement_problems.append(
                    f"{name}: extent [{ext.start}, {ext.end}) outside "
                    f"allocated space")
            if drive_valid is not None and not drive_valid.contains_range(
                    ext.start, ext.end):
                report.placement_problems.append(
                    f"{name}: extent [{ext.start}, {ext.end}) not valid "
                    f"on the drive")
