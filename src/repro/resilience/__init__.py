"""Media-fault resilience: error injection, scrubbing, quarantine.

Real SMR deployments are dominated by *latent sector errors* (a read
simply fails) and *silent bit-rot* (the drive returns flipped bytes and
no error).  This package gives the simulation both failure modes and
the machinery that keeps a store serving through them:

* :class:`~repro.resilience.media.MediaErrorMap` -- a persistent,
  seeded per-drive map of bad sectors and rotted bytes, attached with
  :meth:`repro.smr.drive.Drive.inject_media_errors`.  Unlike one-shot
  failpoint actions, these faults survive retries and reopens -- the
  difference between a transient glitch and a dying platter.
* :func:`~repro.resilience.scrub.scrub` -- the background scrubber:
  walks every live table block-by-block (and the extent map against
  the free-space ledger), finds rot *before* a foreground read does,
  and quarantines tables that fail persistently.
* quarantine itself lives in :mod:`repro.lsm.db` (the manifest marks
  the table ``QUARANTINED``; reads over its key range raise
  :class:`~repro.errors.KeyRangeUnavailable` while every other range
  keeps serving); shard-level health states live in
  :mod:`repro.shard.store`.

Zero-cost discipline: with no map attached and no failpoints armed,
the read path does one ``is None`` check per drive read -- simulated
timings and figure outputs are bit-identical to a tree without this
package.
"""

from repro.errors import KeyRangeUnavailable, MediaError, ShardUnavailable
from repro.resilience.media import MediaErrorMap
from repro.resilience.scrub import ScrubReport, scrub

__all__ = [
    "KeyRangeUnavailable",
    "MediaError",
    "MediaErrorMap",
    "ScrubReport",
    "ShardUnavailable",
    "scrub",
]
