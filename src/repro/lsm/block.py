"""SSTable block format: prefix-compressed entries with restart points.

The layout is LevelDB's::

    entry*   : varint shared | varint non_shared | varint value_len
               | key_delta (non_shared bytes) | value
    restarts : fixed32 offset per restart point
    trailer  : fixed32 num_restarts | fixed32 crc32(payload)

Keys are serialized internal keys (user key + 8-byte trailer).  Every
``restart_interval``-th entry stores its full key (``shared = 0``) so a
reader can binary-search the restart array and then scan at most one
interval.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Iterator

from repro.errors import CorruptionError
from repro.lsm.ikey import InternalKey, decode_internal_key
from repro.util.varint import (
    decode_fixed32,
    decode_varint,
    encode_fixed32,
    encode_varint,
)


@dataclass(frozen=True)
class BlockHandle:
    """Location of a block inside its table file."""

    offset: int
    size: int

    def encode(self) -> bytes:
        return encode_varint(self.offset) + encode_varint(self.size)

    @classmethod
    def decode(cls, data: bytes, pos: int = 0) -> tuple["BlockHandle", int]:
        offset, pos = decode_varint(data, pos)
        size, pos = decode_varint(data, pos)
        return cls(offset, size), pos


def _shared_prefix_len(a: bytes, b: bytes) -> int:
    n = min(len(a), len(b))
    i = 0
    while i < n and a[i] == b[i]:
        i += 1
    return i


class BlockBuilder:
    """Accumulates sorted ``(encoded_key, value)`` pairs into one block."""

    def __init__(self, restart_interval: int = 16) -> None:
        if restart_interval < 1:
            raise ValueError("restart interval must be >= 1")
        self._restart_interval = restart_interval
        self._buf = bytearray()
        self._restarts: list[int] = [0]
        self._counter = 0
        self._last_key = b""
        self._num_entries = 0

    @property
    def num_entries(self) -> int:
        return self._num_entries

    @property
    def empty(self) -> bool:
        return self._num_entries == 0

    def size_estimate(self) -> int:
        """Bytes the finished block will occupy (excluding the crc)."""
        return len(self._buf) + 4 * (len(self._restarts) + 1)

    def add(self, key: bytes, value: bytes) -> None:
        shared = 0
        if self._counter < self._restart_interval:
            shared = _shared_prefix_len(self._last_key, key)
        else:
            self._restarts.append(len(self._buf))
            self._counter = 0
        self._buf += encode_varint(shared)
        self._buf += encode_varint(len(key) - shared)
        self._buf += encode_varint(len(value))
        self._buf += key[shared:]
        self._buf += value
        self._last_key = key
        self._counter += 1
        self._num_entries += 1

    def finish(self) -> bytes:
        payload = bytearray(self._buf)
        for offset in self._restarts:
            payload += encode_fixed32(offset)
        payload += encode_fixed32(len(self._restarts))
        payload += encode_fixed32(zlib.crc32(payload))
        return bytes(payload)


class Block:
    """A parsed, immutable block supporting iteration and seek."""

    def __init__(self, data: bytes, verify: bool = True) -> None:
        if len(data) < 12:
            raise CorruptionError(f"block too small: {len(data)} bytes")
        payload = data[:-4]
        if verify:
            stored_crc = decode_fixed32(data, len(data) - 4)
            if zlib.crc32(payload) != stored_crc:
                raise CorruptionError("block crc mismatch")
        num_restarts = decode_fixed32(payload, len(payload) - 4)
        restart_end = len(payload) - 4
        restart_start = restart_end - 4 * num_restarts
        if restart_start < 0:
            raise CorruptionError("block restart array overruns block")
        self._data = payload[:restart_start]
        self._restarts = [
            decode_fixed32(payload, restart_start + 4 * i) for i in range(num_restarts)
        ]
        self.size = len(data)

    def _parse_entry(self, pos: int, prev_key: bytes) -> tuple[bytes, bytes, int]:
        shared, pos = decode_varint(self._data, pos)
        non_shared, pos = decode_varint(self._data, pos)
        value_len, pos = decode_varint(self._data, pos)
        if shared > len(prev_key):
            raise CorruptionError("corrupt shared-prefix length")
        key = prev_key[:shared] + self._data[pos : pos + non_shared]
        pos += non_shared
        value = self._data[pos : pos + value_len]
        pos += value_len
        return key, value, pos

    def _entries_from_restart(self, restart_index: int) -> Iterator[tuple[bytes, bytes]]:
        pos = self._restarts[restart_index]
        end = (
            self._restarts[restart_index + 1]
            if restart_index + 1 < len(self._restarts)
            else len(self._data)
        )
        key = b""
        while pos < end:
            key, value, pos = self._parse_entry(pos, key)
            yield key, value

    def __iter__(self) -> Iterator[tuple[InternalKey, bytes]]:
        for index in range(len(self._restarts)):
            for key, value in self._entries_from_restart(index):
                yield decode_internal_key(key), value

    def _restart_key(self, index: int) -> InternalKey:
        pos = self._restarts[index]
        key, _value, _pos = self._parse_entry(pos, b"")
        return decode_internal_key(key)

    def seek(self, target: InternalKey) -> Iterator[tuple[InternalKey, bytes]]:
        """Iterate entries with internal key >= ``target``."""
        if not self._restarts or not self._data:
            return
        # Binary search for the last restart whose key is < target.
        lo, hi = 0, len(self._restarts) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self._restart_key(mid) < target:
                lo = mid
            else:
                hi = mid - 1
        target_sort = target.sort_key
        started = False
        for index in range(lo, len(self._restarts)):
            for key, value in self._entries_from_restart(index):
                ikey = decode_internal_key(key)
                if not started and ikey.sort_key < target_sort:
                    continue
                started = True
                yield ikey, value
            started = True  # later restarts are all >= target
