"""Engine tunables.

Every size knob that the paper fixes at hardware scale (4 MB SSTables,
40 MB bands, 100 GB databases) is a field here so the scaled simulation
profiles in :mod:`repro.harness.profiles` can dial everything down
proportionally.
"""

from __future__ import annotations

from dataclasses import dataclass

KiB = 1024
MiB = 1024 * 1024


@dataclass
class Options:
    """Configuration for :class:`repro.lsm.db.DB`.

    The defaults describe a scaled-down LevelDB: a 64 KiB write buffer
    and 64 KiB SSTables stand in for the paper's 4 MB, with every ratio
    (amplification factor, L0 trigger, block size relative to table
    size) preserved.
    """

    #: memtable budget; a flush is triggered when it is exceeded
    write_buffer_size: int = 64 * KiB
    #: target size of one SSTable
    sstable_size: int = 64 * KiB
    #: data-block payload size inside an SSTable
    block_size: int = 4 * KiB
    #: restart-point interval for prefix compression
    block_restart_interval: int = 16
    #: bloom-filter bits per key (0 disables the filter)
    bloom_bits_per_key: int = 10
    #: number of L0 files that triggers an L0 compaction
    l0_compaction_trigger: int = 4
    #: number of levels (LevelDB default 7; SMRDB uses 2)
    max_levels: int = 7
    #: byte limit of L1; level ``i`` allows ``base * af**(i-1)``
    base_level_bytes: int = 4 * 64 * KiB
    #: growth factor between adjacent levels (the paper's AF)
    amplification_factor: int = 10
    #: LRU block-cache capacity in bytes (0 disables caching)
    block_cache_bytes: int = 2 * MiB
    #: WAL framing block size (LevelDB uses 32 KiB)
    wal_block_size: int = 32 * KiB
    #: blocks fetched per device read while *iterating* a table (models
    #: OS readahead; point lookups always read single blocks)
    readahead_blocks: int = 8
    #: readahead block budget *shared* by all input streams of one
    #: non-prefetching compaction: a k-way merge gets ~budget/k blocks
    #: of runway per source, so many-input merges (SMRDB's giant
    #: compactions) degrade towards block-granular seeking, as observed
    #: on real systems when readahead thrashes
    compaction_readahead_budget: int = 24
    #: CPU cost of merging/checksumming one byte during flushes and
    #: compactions (seconds/byte).  Profiles scale this with io_scale so
    #: the simulated CPU:disk ratio matches hardware scale; 0 disables.
    compaction_cpu_per_byte: float = 0.0
    #: fixed CPU cost of one read operation (memtable probe, binary
    #: searches, cache lookups); keeps all-cache-hit workloads from
    #: reporting infinite throughput
    read_cpu_seconds: float = 2e-5

    # -- media-fault resilience (repro.resilience) -----------------------

    #: verify block checksums on every read (LevelDB's paranoid mode,
    #: on by default here: SMR media rots).  Turning it off skips CRC
    #: work but lets silent bit-rot through to callers.
    paranoid_checks: bool = True
    #: device re-reads attempted when a block fails its checksum or the
    #: drive reports a media error, before the table is quarantined
    read_retries: int = 2
    #: simulated backoff charged between read retries (seconds); doubles
    #: per attempt
    read_retry_backoff_s: float = 1e-3
    #: run the background scrubber every N memtable flushes on the
    #: engine's idle path (0 disables -- the default, so fault-free
    #: simulations are byte-for-byte unchanged)
    scrub_interval_flushes: int = 0

    # -- set-awareness (the paper's contribution) ------------------------

    #: group compaction outputs into sets and write them contiguously
    use_sets: bool = False
    #: prefetch whole input tables sequentially during compactions
    #: (None => follow ``use_sets``)
    prefetch_compaction_inputs: bool | None = None
    #: "pointer" = LevelDB round-robin; "invalid-set-first" = prefer the
    #: victim whose on-disk set has the most invalidated members
    victim_policy: str = "pointer"

    #: "leveled" = LevelDB's structure; "two-tier" = SMRDB's 2-level
    #: design where the last level permits overlapping key ranges
    style: str = "leveled"
    #: two-tier only: number of last-level tables that triggers a full
    #: last-level merge (SMRDB's rare, enormous compactions)
    tier_merge_trigger: int = 8

    #: deterministic seed for the skiplist's level generator
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_levels < 2:
            raise ValueError("need at least 2 levels (L0 and one sorted level)")
        if self.victim_policy not in ("pointer", "invalid-set-first"):
            raise ValueError(f"unknown victim policy {self.victim_policy!r}")
        if self.style not in ("leveled", "two-tier"):
            raise ValueError(f"unknown compaction style {self.style!r}")
        if self.style == "two-tier" and self.max_levels != 2:
            raise ValueError("two-tier style requires exactly 2 levels")
        if self.tier_merge_trigger < 2:
            raise ValueError("tier merge trigger must be >= 2")
        if self.amplification_factor < 2:
            raise ValueError("amplification factor must be >= 2")

    @property
    def do_prefetch(self) -> bool:
        if self.prefetch_compaction_inputs is None:
            return self.use_sets
        return self.prefetch_compaction_inputs

    def level_bytes_limit(self, level: int) -> float:
        """Maximum total bytes allowed at ``level`` (L1 and deeper)."""
        if level < 1:
            raise ValueError("L0 is limited by file count, not bytes")
        return self.base_level_bytes * self.amplification_factor ** (level - 1)
