"""Write-ahead log with LevelDB's block/record framing, plus WriteBatch.

Log format: the log is a sequence of 32 KiB blocks; each record carries
a 7-byte header ``crc32(4) | length(2) | type(1)`` and is fragmented
across blocks with FULL/FIRST/MIDDLE/LAST types.  A block tail shorter
than a header is zero-padded.

Record payloads are serialized :class:`WriteBatch` es::

    fixed64 sequence | fixed32 count | count * entry
    entry = type(1) | varint key_len | key [| varint value_len | value]

Recovery replays batches in order, re-inserting them into a fresh
memtable (see :meth:`repro.lsm.db.DB.reopen`).
"""

from __future__ import annotations

import zlib
from typing import Iterator

from repro import faults
from repro.errors import CorruptionError
from repro.lsm.ikey import TYPE_DELETION, TYPE_VALUE
from repro.util.varint import (
    decode_fixed32,
    decode_fixed64,
    encode_fixed32,
    encode_fixed64,
    get_length_prefixed,
    put_length_prefixed,
)

HEADER_SIZE = 7

_FULL = 1
_FIRST = 2
_MIDDLE = 3
_LAST = 4


class WriteBatch:
    """An atomic group of updates sharing consecutive sequence numbers."""

    def __init__(self) -> None:
        self._ops: list[tuple[int, bytes, bytes]] = []

    def __len__(self) -> int:
        return len(self._ops)

    def put(self, key: bytes, value: bytes) -> "WriteBatch":
        self._ops.append((TYPE_VALUE, bytes(key), bytes(value)))
        return self

    def delete(self, key: bytes) -> "WriteBatch":
        self._ops.append((TYPE_DELETION, bytes(key), b""))
        return self

    @property
    def ops(self) -> list[tuple[int, bytes, bytes]]:
        return self._ops

    def byte_size(self) -> int:
        """User-payload bytes (keys + values), for WA accounting."""
        return sum(len(k) + len(v) for _t, k, v in self._ops)

    def serialize(self, sequence: int) -> bytes:
        out = bytearray()
        out += encode_fixed64(sequence)
        out += encode_fixed32(len(self._ops))
        for type_, key, value in self._ops:
            out.append(type_)
            put_length_prefixed(out, key)
            if type_ == TYPE_VALUE:
                put_length_prefixed(out, value)
        return bytes(out)

    @classmethod
    def deserialize(cls, data: bytes) -> tuple[int, "WriteBatch"]:
        if len(data) < 12:
            raise CorruptionError("write batch too short")
        sequence = decode_fixed64(data, 0)
        count = decode_fixed32(data, 8)
        batch = cls()
        pos = 12
        for _ in range(count):
            if pos >= len(data):
                raise CorruptionError("write batch truncated")
            type_ = data[pos]
            pos += 1
            key, pos = get_length_prefixed(data, pos)
            if type_ == TYPE_VALUE:
                value, pos = get_length_prefixed(data, pos)
                batch.put(key, value)
            elif type_ == TYPE_DELETION:
                batch.delete(key)
            else:
                raise CorruptionError(f"bad batch entry type {type_}")
        return sequence, batch


class LogWriter:
    """Frames record payloads into blocks and appends them to a sink.

    ``sink`` is any callable accepting bytes
    (:meth:`repro.fs.storage.Storage.append_log`).
    """

    def __init__(self, sink, block_size: int = 32 * 1024) -> None:
        if block_size <= HEADER_SIZE:
            raise ValueError("block size must exceed the record header")
        self._sink = sink
        self._block_size = block_size
        self._block_offset = 0

    def add_record(self, payload: bytes) -> None:
        out = bytearray()
        pos = 0
        first = True
        while True:
            leftover = self._block_size - self._block_offset
            if leftover < HEADER_SIZE:
                out += b"\x00" * leftover
                self._block_offset = 0
                leftover = self._block_size
            avail = leftover - HEADER_SIZE
            fragment = payload[pos : pos + avail]
            pos += len(fragment)
            end = pos >= len(payload)
            if first and end:
                type_ = _FULL
            elif first:
                type_ = _FIRST
            elif end:
                type_ = _LAST
            else:
                type_ = _MIDDLE
            out += encode_fixed32(zlib.crc32(bytes([type_]) + fragment))
            out += len(fragment).to_bytes(2, "little")
            out.append(type_)
            out += fragment
            self._block_offset += HEADER_SIZE + len(fragment)
            first = False
            if end:
                break
        blob = bytes(out)
        inj = faults.fire(faults.WAL_APPEND, data=blob)
        if inj is not None:
            blob = inj.mutate_bytes(blob)
        if blob:
            self._sink(blob)
        if inj is not None:
            inj.finish()

    def reset(self) -> None:
        self._block_offset = 0


def scan_log(data: bytes, block_size: int = 32 * 1024) -> tuple[list[bytes], int]:
    """Salvage the valid prefix of a possibly torn log.

    Returns ``(payloads, valid_len)``: every complete record whose
    frames all checksum, and the byte length of the log prefix those
    records occupy.  Parsing stops -- without raising -- at the first
    torn, corrupt, or incomplete frame, so a crash that tore the tail of
    the log (or corrupted it in flight) costs only records at or after
    the damage.  ``valid_len < len(data)`` tells the caller the tail is
    garbage and the log must be rewritten before further appends, else a
    later recovery would stop at the damage and lose the new records.
    """
    payloads: list[bytes] = []
    valid_len = 0
    pos = 0
    fragments: list[bytes] = []
    while pos < len(data):
        block_remaining = block_size - pos % block_size
        if block_remaining < HEADER_SIZE:
            pos += block_remaining
            continue
        if pos + HEADER_SIZE > len(data):
            break
        crc = decode_fixed32(data, pos)
        length = int.from_bytes(data[pos + 4 : pos + 6], "little")
        type_ = data[pos + 6]
        if type_ == 0 and length == 0:
            pos += block_remaining
            continue
        start = pos + HEADER_SIZE
        if start + length > len(data):
            break
        fragment = data[start : start + length]
        if zlib.crc32(bytes([type_]) + fragment) != crc:
            break
        pos = start + length
        if type_ == _FULL and not fragments:
            payloads.append(fragment)
            valid_len = pos
        elif type_ == _FIRST and not fragments:
            fragments = [fragment]
        elif type_ == _MIDDLE and fragments:
            fragments.append(fragment)
        elif type_ == _LAST and fragments:
            fragments.append(fragment)
            payloads.append(b"".join(fragments))
            fragments = []
            valid_len = pos
        else:
            break
    return payloads, valid_len


def read_log_records(data: bytes, block_size: int = 32 * 1024) -> Iterator[bytes]:
    """Parse framed bytes back into record payloads.

    Truncated trailing data (an interrupted write) is tolerated and
    ignored, like LevelDB's recovery mode; corrupt checksums raise.
    """
    pos = 0
    fragments: list[bytes] = []
    while pos < len(data):
        block_remaining = block_size - pos % block_size
        if block_remaining < HEADER_SIZE:
            pos += block_remaining
            continue
        if pos + HEADER_SIZE > len(data):
            break
        crc = decode_fixed32(data, pos)
        length = int.from_bytes(data[pos + 4 : pos + 6], "little")
        type_ = data[pos + 6]
        if type_ == 0 and length == 0:
            # zero padding inside a block tail
            pos += block_remaining
            continue
        start = pos + HEADER_SIZE
        if start + length > len(data):
            break  # truncated tail
        fragment = data[start : start + length]
        if zlib.crc32(bytes([type_]) + fragment) != crc:
            raise CorruptionError(f"wal record crc mismatch at offset {pos}")
        pos = start + length
        if type_ == _FULL:
            if fragments:
                raise CorruptionError("FULL record inside fragmented record")
            yield fragment
        elif type_ == _FIRST:
            if fragments:
                raise CorruptionError("FIRST record inside fragmented record")
            fragments = [fragment]
        elif type_ == _MIDDLE:
            if not fragments:
                raise CorruptionError("MIDDLE record without FIRST")
            fragments.append(fragment)
        elif type_ == _LAST:
            if not fragments:
                raise CorruptionError("LAST record without FIRST")
            fragments.append(fragment)
            yield b"".join(fragments)
            fragments = []
        else:
            raise CorruptionError(f"bad wal record type {type_}")
