"""Write-ahead log with LevelDB's block/record framing, plus WriteBatch.

Log format: the log is a sequence of 32 KiB blocks; each record carries
a 7-byte header ``crc32(4) | length(2) | type(1)`` and is fragmented
across blocks with FULL/FIRST/MIDDLE/LAST types.  A block tail shorter
than a header is zero-padded.

Record payloads are serialized :class:`WriteBatch` es::

    fixed64 sequence | fixed32 count | count * entry
    entry = type(1) | varint key_len | key [| varint value_len | value]

Recovery replays batches in order, re-inserting them into a fresh
memtable (see :meth:`repro.lsm.db.DB.reopen`).

Damage policy (one rule, two presentations).  A WAL is damaged the
moment *any* frame fails -- a torn tail (truncated header or payload),
a checksum mismatch, or impossible fragment sequencing.  All three are
treated identically: **the log ends at the damage**; every complete
record before it is good, everything at or after it is garbage.  The
two parsers present that same rule differently:

* :func:`scan_log` -- the *salvage* view used by recovery: returns the
  good prefix and its length, never raises.  ``DB.recover`` then
  rewrites the salvaged records as a fresh log so later appends are
  reachable.
* :func:`read_log_records` -- the same salvage by default; with
  ``strict=True`` (the fsck/audit view) any damage -- torn tails
  included -- raises :class:`~repro.errors.CorruptionError` naming the
  offset, so ``verify`` can report it.

Both are thin consumers of one shared frame walker (:func:`_frames`),
so the policies cannot drift apart again.
"""

from __future__ import annotations

import zlib
from typing import Iterator

from repro import faults
from repro.errors import CorruptionError
from repro.lsm.ikey import TYPE_DELETION, TYPE_VALUE
from repro.util.varint import (
    decode_fixed32,
    decode_fixed64,
    encode_fixed32,
    encode_fixed64,
    get_length_prefixed,
    put_length_prefixed,
)

HEADER_SIZE = 7

_FULL = 1
_FIRST = 2
_MIDDLE = 3
_LAST = 4


class WriteBatch:
    """An atomic group of updates sharing consecutive sequence numbers."""

    def __init__(self) -> None:
        self._ops: list[tuple[int, bytes, bytes]] = []

    def __len__(self) -> int:
        return len(self._ops)

    def put(self, key: bytes, value: bytes) -> "WriteBatch":
        self._ops.append((TYPE_VALUE, bytes(key), bytes(value)))
        return self

    def delete(self, key: bytes) -> "WriteBatch":
        self._ops.append((TYPE_DELETION, bytes(key), b""))
        return self

    @property
    def ops(self) -> list[tuple[int, bytes, bytes]]:
        return self._ops

    def byte_size(self) -> int:
        """User-payload bytes (keys + values), for WA accounting."""
        return sum(len(k) + len(v) for _t, k, v in self._ops)

    def serialize(self, sequence: int) -> bytes:
        out = bytearray()
        out += encode_fixed64(sequence)
        out += encode_fixed32(len(self._ops))
        for type_, key, value in self._ops:
            out.append(type_)
            put_length_prefixed(out, key)
            if type_ == TYPE_VALUE:
                put_length_prefixed(out, value)
        return bytes(out)

    @classmethod
    def deserialize(cls, data: bytes) -> tuple[int, "WriteBatch"]:
        if len(data) < 12:
            raise CorruptionError("write batch too short")
        sequence = decode_fixed64(data, 0)
        count = decode_fixed32(data, 8)
        batch = cls()
        pos = 12
        for _ in range(count):
            if pos >= len(data):
                raise CorruptionError("write batch truncated")
            type_ = data[pos]
            pos += 1
            key, pos = get_length_prefixed(data, pos)
            if type_ == TYPE_VALUE:
                value, pos = get_length_prefixed(data, pos)
                batch.put(key, value)
            elif type_ == TYPE_DELETION:
                batch.delete(key)
            else:
                raise CorruptionError(f"bad batch entry type {type_}")
        return sequence, batch


class LogWriter:
    """Frames record payloads into blocks and appends them to a sink.

    ``sink`` is any callable accepting bytes
    (:meth:`repro.fs.storage.Storage.append_log`).
    """

    def __init__(self, sink, block_size: int = 32 * 1024) -> None:
        if block_size <= HEADER_SIZE:
            raise ValueError("block size must exceed the record header")
        self._sink = sink
        self._block_size = block_size
        self._block_offset = 0

    def add_record(self, payload: bytes) -> None:
        out = bytearray()
        pos = 0
        first = True
        while True:
            leftover = self._block_size - self._block_offset
            if leftover < HEADER_SIZE:
                out += b"\x00" * leftover
                self._block_offset = 0
                leftover = self._block_size
            avail = leftover - HEADER_SIZE
            fragment = payload[pos : pos + avail]
            pos += len(fragment)
            end = pos >= len(payload)
            if first and end:
                type_ = _FULL
            elif first:
                type_ = _FIRST
            elif end:
                type_ = _LAST
            else:
                type_ = _MIDDLE
            out += encode_fixed32(zlib.crc32(bytes([type_]) + fragment))
            out += len(fragment).to_bytes(2, "little")
            out.append(type_)
            out += fragment
            self._block_offset += HEADER_SIZE + len(fragment)
            first = False
            if end:
                break
        blob = bytes(out)
        inj = faults.fire(faults.WAL_APPEND, data=blob)
        if inj is not None:
            blob = inj.mutate_bytes(blob)
        if blob:
            self._sink(blob)
        if inj is not None:
            inj.finish()

    def reset(self) -> None:
        self._block_offset = 0


def _frames(data: bytes, block_size: int
            ) -> Iterator[tuple[int, int, bytes, str | None]]:
    """Walk the log's frames: yields ``(offset, type, fragment, damage)``.

    The single source of truth for frame-level damage.  ``damage`` is
    ``None`` for a healthy frame; otherwise it names what is wrong
    (``"torn header"``, ``"torn payload"``, ``"crc mismatch"``) and the
    walk ends after that yield -- nothing past damage is trustworthy.
    Zero padding and block-tail slack are skipped silently.
    """
    pos = 0
    while pos < len(data):
        block_remaining = block_size - pos % block_size
        if block_remaining < HEADER_SIZE:
            pos += block_remaining
            continue
        if pos + HEADER_SIZE > len(data):
            yield pos, 0, b"", "torn header"
            return
        crc = decode_fixed32(data, pos)
        length = int.from_bytes(data[pos + 4 : pos + 6], "little")
        type_ = data[pos + 6]
        if type_ == 0 and length == 0:
            pos += block_remaining
            continue
        start = pos + HEADER_SIZE
        if start + length > len(data):
            yield pos, type_, b"", "torn payload"
            return
        fragment = data[start : start + length]
        if zlib.crc32(bytes([type_]) + fragment) != crc:
            yield pos, type_, fragment, "crc mismatch"
            return
        yield pos, type_, fragment, None
        pos = start + length


def scan_log(data: bytes, block_size: int = 32 * 1024) -> tuple[list[bytes], int]:
    """Salvage the valid prefix of a possibly damaged log.

    Returns ``(payloads, valid_len)``: every complete record whose
    frames all checksum, and the byte length of the log prefix those
    records occupy.  Parsing stops -- without raising -- at the first
    damaged frame, whether the damage is a torn tail, a mid-log
    checksum mismatch, or broken fragment sequencing (the module's one
    damage policy), so any damage costs only records at or after it.
    ``valid_len < len(data)`` tells the caller the tail is garbage and
    the log must be rewritten before further appends, else a later
    recovery would stop at the damage and lose the new records.
    """
    payloads: list[bytes] = []
    valid_len = 0
    fragments: list[bytes] = []
    for pos, type_, fragment, damage in _frames(data, block_size):
        if damage is not None:
            break
        end = pos + HEADER_SIZE + len(fragment)
        if type_ == _FULL and not fragments:
            payloads.append(fragment)
            valid_len = end
        elif type_ == _FIRST and not fragments:
            fragments = [fragment]
        elif type_ == _MIDDLE and fragments:
            fragments.append(fragment)
        elif type_ == _LAST and fragments:
            fragments.append(fragment)
            payloads.append(b"".join(fragments))
            fragments = []
            valid_len = end
        else:
            break  # impossible sequencing: same damage policy
    return payloads, valid_len


def read_log_records(data: bytes, block_size: int = 32 * 1024,
                     strict: bool = False) -> Iterator[bytes]:
    """Parse framed bytes back into record payloads.

    Default mode is the module's salvage policy -- identical to
    :func:`scan_log`: stop silently at the first damage of any kind.
    ``strict=True`` is the fsck/audit mode: every damage -- torn tails
    included -- raises :class:`CorruptionError` naming the offset, so
    integrity checkers can report exactly what is wrong rather than
    quietly serving a shortened log.
    """
    fragments: list[bytes] = []
    for pos, type_, fragment, damage in _frames(data, block_size):
        if damage is not None:
            if strict:
                raise CorruptionError(f"wal {damage} at offset {pos}")
            return
        if type_ == _FULL:
            if fragments:
                if strict:
                    raise CorruptionError(
                        f"wal FULL record inside fragmented record at offset {pos}")
                return
            yield fragment
        elif type_ == _FIRST:
            if fragments:
                if strict:
                    raise CorruptionError(
                        f"wal FIRST record inside fragmented record at offset {pos}")
                return
            fragments = [fragment]
        elif type_ == _MIDDLE:
            if not fragments:
                if strict:
                    raise CorruptionError(
                        f"wal MIDDLE record without FIRST at offset {pos}")
                return
            fragments.append(fragment)
        elif type_ == _LAST:
            if not fragments:
                if strict:
                    raise CorruptionError(
                        f"wal LAST record without FIRST at offset {pos}")
                return
            fragments.append(fragment)
            yield b"".join(fragments)
            fragments = []
        else:
            if strict:
                raise CorruptionError(
                    f"bad wal record type {type_} at offset {pos}")
            return
    if fragments and strict:
        raise CorruptionError("wal ends inside a fragmented record")
