"""LRU cache, used for data blocks and open-table handles.

A plain ordered-dict LRU with byte-budget eviction; hit/miss counters
feed the experiment harness (block-cache behaviour matters for the read
benchmarks of Fig. 8).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Hashable


class LRUCache:
    """Byte-budgeted LRU mapping.

    ``charge_fn`` extracts the byte charge from a cached value
    (defaults to ``value.size`` then ``len(value)``).
    """

    def __init__(self, capacity_bytes: int,
                 charge_fn: Callable[[Any], int] | None = None) -> None:
        self.capacity = capacity_bytes
        self._charge_fn = charge_fn or _default_charge
        self._entries: OrderedDict[Hashable, tuple[Any, int]] = OrderedDict()
        self._used = 0
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def used_bytes(self) -> int:
        return self._used

    def get(self, key: Hashable) -> Any:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry[0]

    def put(self, key: Hashable, value: Any) -> None:
        charge = self._charge_fn(value)
        if key in self._entries:
            self._used -= self._entries.pop(key)[1]
        self._entries[key] = (value, charge)
        self._used += charge
        while self._used > self.capacity and len(self._entries) > 1:
            _old_key, (_old_val, old_charge) = self._entries.popitem(last=False)
            self._used -= old_charge

    def evict(self, key: Hashable) -> None:
        entry = self._entries.pop(key, None)
        if entry is not None:
            self._used -= entry[1]

    def evict_prefix(self, prefix: tuple) -> None:
        """Evict all keys that are tuples starting with ``prefix``."""
        doomed = [k for k in self._entries
                  if isinstance(k, tuple) and k[: len(prefix)] == prefix]
        for key in doomed:
            self.evict(key)

    def clear(self) -> None:
        self._entries.clear()
        self._used = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def _default_charge(value: Any) -> int:
    size = getattr(value, "size", None)
    if size is not None:
        return int(size)
    try:
        return len(value)
    except TypeError:
        return 1
