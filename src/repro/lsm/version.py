"""Level metadata: file manifests, versions, and the version set.

A :class:`Version` is an immutable snapshot of which table files live at
which level.  Applying a :class:`VersionEdit` (files added and removed
by a flush or compaction) produces the next version.  The
:class:`VersionSet` owns the current version, the file-number and
sequence counters, and the per-level compaction pointers, and it can
serialize the whole state into a manifest blob for crash recovery.

Invariants (checked by ``Version.check_invariants``):

* within L1+ files are sorted by smallest key and their user-key ranges
  are disjoint (unless the engine runs with ``overlap allowed`` levels,
  which only SMRDB's 2-level mode uses for L0);
* a file number appears at exactly one level.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

from repro.errors import CorruptionError, InvariantViolation
from repro.lsm.ikey import InternalKey, decode_internal_key
from repro.util.varint import (
    decode_fixed32,
    decode_fixed64,
    encode_fixed32,
    encode_fixed64,
    get_length_prefixed,
    put_length_prefixed,
)


#: high bit of the serialized ``run`` word carrying the quarantine
#: state, so marking a table QUARANTINED never changes a manifest
#: record's size (file numbers stay far below 2**62)
_QUARANTINE_BIT = 1 << 62


@dataclass(frozen=True)
class FileMetaData:
    """Manifest entry for one table file.

    ``run`` groups the outputs of one compaction into a sorted run;
    tiered levels count distinct runs (not tables) for their merge
    trigger and treat each run as one overlapping unit.

    ``quarantined`` is the media-fault state machine: a table whose
    blocks persistently fail their checksums (or whose sectors raise
    :class:`~repro.errors.MediaError`) is fenced off -- it stays in the
    manifest so its key range is *known* to be degraded, but reads over
    it raise :class:`~repro.errors.KeyRangeUnavailable` and compactions
    refuse to consume it.  Only ``repair()`` clears the state.
    """

    number: int
    size: int
    smallest: InternalKey
    largest: InternalKey
    entries: int = 0
    run: int = 0
    quarantined: bool = False

    @property
    def name(self) -> str:
        return f"{self.number:06d}.sst"

    def overlaps_user_range(self, begin: bytes | None, end: bytes | None) -> bool:
        """Whether the file's user-key range intersects ``[begin, end]``.

        ``None`` bounds are infinite.
        """
        if begin is not None and self.largest.user_key < begin:
            return False
        if end is not None and self.smallest.user_key > end:
            return False
        return True


@dataclass
class VersionEdit:
    """Files added and deleted by one flush or compaction.

    Edits also carry the counters they advanced, so replaying the
    manifest log restores the version set exactly (LevelDB's manifest
    records do the same).
    """

    added: list[tuple[int, FileMetaData]] = field(default_factory=list)
    deleted: list[tuple[int, int]] = field(default_factory=list)  # (level, number)
    next_file_number: int | None = None
    last_sequence: int | None = None

    def add_file(self, level: int, meta: FileMetaData) -> None:
        self.added.append((level, meta))

    def delete_file(self, level: int, number: int) -> None:
        self.deleted.append((level, number))

    def serialize(self) -> bytes:
        out = bytearray()
        out += encode_fixed64(self.next_file_number or 0)
        out += encode_fixed64(self.last_sequence or 0)
        out += encode_fixed32(len(self.added))
        for level, meta in self.added:
            out += encode_fixed32(level)
            out += encode_fixed64(meta.number)
            out += encode_fixed64(meta.size)
            out += encode_fixed64(meta.entries)
            out += encode_fixed64(meta.run
                                  | (_QUARANTINE_BIT if meta.quarantined else 0))
            put_length_prefixed(out, meta.smallest.encode())
            put_length_prefixed(out, meta.largest.encode())
        out += encode_fixed32(len(self.deleted))
        for level, number in self.deleted:
            out += encode_fixed32(level)
            out += encode_fixed64(number)
        return bytes(out)

    @classmethod
    def deserialize(cls, data: bytes) -> "VersionEdit":
        if len(data) < 20:
            raise CorruptionError("version edit too short")
        edit = cls()
        nfn = decode_fixed64(data, 0)
        seq = decode_fixed64(data, 8)
        edit.next_file_number = nfn or None
        edit.last_sequence = seq or None
        num_added = decode_fixed32(data, 16)
        pos = 20
        for _ in range(num_added):
            level = decode_fixed32(data, pos)
            number = decode_fixed64(data, pos + 4)
            size = decode_fixed64(data, pos + 12)
            entries = decode_fixed64(data, pos + 20)
            run = decode_fixed64(data, pos + 28)
            pos += 36
            smallest_raw, pos = get_length_prefixed(data, pos)
            largest_raw, pos = get_length_prefixed(data, pos)
            edit.add_file(level, FileMetaData(
                number, size,
                decode_internal_key(smallest_raw),
                decode_internal_key(largest_raw),
                entries, run & ~_QUARANTINE_BIT,
                quarantined=bool(run & _QUARANTINE_BIT),
            ))
        num_deleted = decode_fixed32(data, pos)
        pos += 4
        for _ in range(num_deleted):
            level = decode_fixed32(data, pos)
            number = decode_fixed64(data, pos + 4)
            pos += 12
            edit.delete_file(level, number)
        return edit


class Version:
    """Immutable per-level file lists.

    ``tiered`` marks a two-level store whose last level permits
    overlapping key ranges (SMRDB's design); that level is then scanned
    like L0 -- newest file first -- instead of binary-searched.
    """

    def __init__(self, num_levels: int,
                 files: list[list[FileMetaData]] | None = None,
                 tiered: bool = False) -> None:
        self.num_levels = num_levels
        self.tiered = tiered
        if files is None:
            files = [[] for _ in range(num_levels)]
        self.files = files
        self._num_quarantined: int | None = None

    def level_is_tiered(self, level: int) -> bool:
        return level == 0 or (self.tiered and level == self.num_levels - 1)

    def level_files(self, level: int) -> list[FileMetaData]:
        return self.files[level]

    def level_bytes(self, level: int) -> int:
        return sum(f.size for f in self.files[level])

    def num_files(self) -> int:
        return sum(len(level) for level in self.files)

    def quarantined_files(self) -> list[tuple[int, FileMetaData]]:
        """Every fenced-off table, as ``(level, meta)`` pairs."""
        return [(level, f) for level in range(self.num_levels)
                for f in self.files[level] if f.quarantined]

    @property
    def num_quarantined(self) -> int:
        """Count of quarantined tables (cached; versions are immutable)."""
        cached = self._num_quarantined
        if cached is None:
            cached = sum(1 for level in self.files
                         for f in level if f.quarantined)
            self._num_quarantined = cached
        return cached

    def total_bytes(self) -> int:
        return sum(self.level_bytes(level) for level in range(self.num_levels))

    def overlapping_files(self, level: int, begin: bytes | None,
                          end: bytes | None) -> list[FileMetaData]:
        """Files at ``level`` whose user-key range intersects ``[begin, end]``.

        L0 files may overlap each other so they are scanned linearly;
        sorted levels use binary search on the smallest keys.
        """
        files = self.files[level]
        if self.level_is_tiered(level):
            return [f for f in files if f.overlaps_user_range(begin, end)]
        if not files:
            return []
        smallests = [f.smallest.user_key for f in files]
        lo = 0
        if begin is not None:
            # First file whose largest >= begin; since ranges are sorted
            # and disjoint, start from the file before the insertion
            # point of `begin` among the smallest keys.
            lo = bisect_right(smallests, begin) - 1
            if lo < 0:
                lo = 0
        hi = len(files)
        if end is not None:
            hi = bisect_right(smallests, end)
        return [f for f in files[lo:hi] if f.overlaps_user_range(begin, end)]

    def files_for_get(self, user_key: bytes) -> list[tuple[int, FileMetaData]]:
        """Files that might hold ``user_key``, in lookup order.

        L0 newest-first (by file number), then one candidate per deeper
        level.
        """
        out: list[tuple[int, FileMetaData]] = []
        for level in range(self.num_levels):
            hits = self.overlapping_files(level, user_key, user_key)
            if self.level_is_tiered(level):
                hits = sorted(hits, key=lambda f: f.number, reverse=True)
            out.extend((level, f) for f in hits)
        return out

    def apply(self, edit: VersionEdit) -> "Version":
        """Produce the successor version."""
        doomed = {(level, number) for level, number in edit.deleted}
        new_files: list[list[FileMetaData]] = []
        for level in range(self.num_levels):
            keep = [f for f in self.files[level] if (level, f.number) not in doomed]
            new_files.append(keep)
        for level, meta in edit.added:
            new_files[level].append(meta)
        for level in range(self.num_levels):
            if self.level_is_tiered(level):
                new_files[level].sort(key=lambda f: f.number)
            else:
                new_files[level].sort(key=lambda f: f.smallest.sort_key)
        return Version(self.num_levels, new_files, self.tiered)

    def check_invariants(self, allow_overlap: bool = False) -> None:
        seen: set[int] = set()
        for level in range(self.num_levels):
            for f in self.files[level]:
                if f.number in seen:
                    raise InvariantViolation(f"file {f.number} at two levels")
                seen.add(f.number)
                if f.largest.sort_key < f.smallest.sort_key:
                    raise InvariantViolation(f"file {f.number} key range inverted")
        if allow_overlap:
            return
        for level in range(1, self.num_levels):
            if self.level_is_tiered(level):
                continue
            prev: FileMetaData | None = None
            for f in self.files[level]:
                if prev is not None and f.smallest.user_key <= prev.largest.user_key:
                    raise InvariantViolation(
                        f"L{level} files {prev.number} and {f.number} overlap"
                    )
                prev = f


class VersionSet:
    """Owns the current version and the counters behind it."""

    def __init__(self, num_levels: int, tiered: bool = False) -> None:
        self.num_levels = num_levels
        self.tiered = tiered
        self.current = Version(num_levels, tiered=tiered)
        self.next_file_number = 1
        self.last_sequence = 0
        #: per-level largest-key pointer for round-robin victim choice
        self.compact_pointer: list[bytes | None] = [None] * num_levels

    def new_file_number(self) -> int:
        number = self.next_file_number
        self.next_file_number += 1
        return number

    def log_and_apply(self, edit: VersionEdit) -> Version:
        self.current = self.current.apply(edit)
        return self.current

    # -- manifest serialization -----------------------------------------

    def serialize(self) -> bytes:
        out = bytearray()
        out += encode_fixed64(self.next_file_number)
        out += encode_fixed64(self.last_sequence)
        out += encode_fixed32(self.num_levels)
        for level in range(self.num_levels):
            pointer = self.compact_pointer[level]
            put_length_prefixed(out, pointer if pointer is not None else b"")
            files = self.current.files[level]
            out += encode_fixed32(len(files))
            for f in files:
                out += encode_fixed64(f.number)
                out += encode_fixed64(f.size)
                out += encode_fixed64(f.entries)
                out += encode_fixed64(f.run
                                      | (_QUARANTINE_BIT if f.quarantined else 0))
                put_length_prefixed(out, f.smallest.encode())
                put_length_prefixed(out, f.largest.encode())
        return bytes(out)

    @classmethod
    def deserialize(cls, data: bytes, tiered: bool = False) -> "VersionSet":
        if len(data) < 20:
            raise CorruptionError("manifest too short")
        next_file = decode_fixed64(data, 0)
        last_seq = decode_fixed64(data, 8)
        num_levels = decode_fixed32(data, 16)
        vs = cls(num_levels, tiered=tiered)
        vs.next_file_number = next_file
        vs.last_sequence = last_seq
        pos = 20
        files: list[list[FileMetaData]] = []
        for level in range(num_levels):
            pointer, pos = get_length_prefixed(data, pos)
            vs.compact_pointer[level] = pointer if pointer else None
            count = decode_fixed32(data, pos)
            pos += 4
            level_files = []
            for _ in range(count):
                number = decode_fixed64(data, pos)
                size = decode_fixed64(data, pos + 8)
                entries = decode_fixed64(data, pos + 16)
                run = decode_fixed64(data, pos + 24)
                pos += 32
                smallest_raw, pos = get_length_prefixed(data, pos)
                largest_raw, pos = get_length_prefixed(data, pos)
                level_files.append(FileMetaData(
                    number, size,
                    decode_internal_key(smallest_raw),
                    decode_internal_key(largest_raw),
                    entries, run & ~_QUARANTINE_BIT,
                    quarantined=bool(run & _QUARANTINE_BIT),
                ))
            files.append(level_files)
        vs.current = Version(num_levels, files, tiered)
        return vs
