"""Bloom filter with double hashing, LevelDB-style.

One filter covers a whole SSTable's user keys (RocksDB's whole-table
policy, simpler than LevelDB's per-2KB slices and equivalent for the
paper's workloads).  ``k`` probes are derived from a single 64-bit FNV
hash by repeated rotation, LevelDB's trick to avoid hashing ``k`` times.

The structural guarantee -- **no false negatives** -- is what the
property tests pin down; the false-positive rate for 10 bits/key is
about 1 %.
"""

from __future__ import annotations

from repro.errors import CorruptionError
from repro.util.rng import fnv1a_64

_MASK64 = 0xFFFFFFFFFFFFFFFF


def _probes_for(bits_per_key: int) -> int:
    k = int(bits_per_key * 0.69)  # bits/key * ln(2)
    return max(1, min(30, k))


class BloomFilter:
    """Immutable bloom filter over a set of byte keys."""

    def __init__(self, bitmap: bytes, num_probes: int) -> None:
        if not bitmap:
            raise CorruptionError("empty bloom bitmap")
        self._bitmap = bitmap
        self._bits = len(bitmap) * 8
        self._probes = num_probes

    @classmethod
    def build(cls, keys: list[bytes], bits_per_key: int) -> "BloomFilter":
        num_probes = _probes_for(bits_per_key)
        bits = max(64, len(keys) * bits_per_key)
        nbytes = (bits + 7) // 8
        bits = nbytes * 8
        bitmap = bytearray(nbytes)
        for key in keys:
            h = fnv1a_64(key)
            delta = ((h >> 17) | (h << 47)) & _MASK64
            for _ in range(num_probes):
                pos = h % bits
                bitmap[pos >> 3] |= 1 << (pos & 7)
                h = (h + delta) & _MASK64
        return cls(bytes(bitmap), num_probes)

    def may_contain(self, key: bytes) -> bool:
        """False means definitely absent; True means probably present."""
        h = fnv1a_64(key)
        delta = ((h >> 17) | (h << 47)) & _MASK64
        for _ in range(self._probes):
            pos = h % self._bits
            if not self._bitmap[pos >> 3] & (1 << (pos & 7)):
                return False
            h = (h + delta) & _MASK64
        return True

    def encode(self) -> bytes:
        """Serialize as ``probes(1B) + bitmap``."""
        return bytes([self._probes]) + self._bitmap

    @classmethod
    def decode(cls, data: bytes) -> "BloomFilter":
        if len(data) < 2:
            raise CorruptionError("bloom filter block too short")
        return cls(data[1:], data[0])

    @property
    def size_bytes(self) -> int:
        return len(self._bitmap) + 1
