"""Database repair: rebuild the manifest from surviving table files.

``leveldbutil repair`` for the simulated store: when the manifest log
is lost or corrupt, the table files still carry everything needed to
serve reads.  The repairer scans the storage for ``*.sst`` objects,
reads each one's key range and entry count, and constructs a fresh
version with **every table in level 0** -- L0 permits overlapping key
ranges, so this placement is always correct; it is merely uncompacted.
Sequence numbers inside the tables are preserved, so newest-version-wins
semantics survive.  The next compactions re-form the leveled shape.

The WAL, if readable, is replayed on top as usual by ``DB.recover``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.fs.storage import Storage
from repro.lsm.db import DB
from repro.lsm.options import Options
from repro.lsm.sstable import SSTableReader
from repro.lsm.version import FileMetaData, VersionEdit, VersionSet
from repro.obs.events import RepairDrop
from repro.smr.stats import AmplificationTracker


@dataclass
class RepairReport:
    """What the repairer found and rebuilt."""

    tables_recovered: int = 0
    tables_dropped: int = 0
    entries_recovered: int = 0
    #: every discarded table as ``(name, reason)`` -- no silent drops
    dropped: list[tuple[str, str]] = field(default_factory=list)

    @property
    def dropped_names(self) -> list[str]:
        return [name for name, _reason in self.dropped]

    def render(self) -> str:
        lines = [f"repair: {self.tables_recovered} tables recovered "
                 f"({self.entries_recovered:,} entries), "
                 f"{self.tables_dropped} dropped"]
        lines += [f"  - dropped {name}: {reason}"
                  for name, reason in self.dropped]
        return "\n".join(lines)


def repair(storage: Storage, options: Options | None = None,
           tracker: AmplificationTracker | None = None,
           obs=None) -> tuple[DB, RepairReport]:
    """Rebuild a usable DB from whatever tables survive on ``storage``.

    Unreadable tables are dropped (their data is lost) -- each drop is
    recorded with its reason in the report and, when ``obs`` is given,
    emitted as a :class:`~repro.obs.events.RepairDrop` event.  The
    rebuilt manifest replaces the old meta log (which also clears any
    quarantine marks -- a table either reads clean end to end here or
    it is dropped); the WAL is replayed if intact, discarded if not.
    """
    options = options if options is not None else Options()
    report = RepairReport()
    recovered: list[FileMetaData] = []
    max_number = 0
    max_sequence = 0

    def drop(name: str, reason: str) -> None:
        report.dropped.append((name, reason))
        report.tables_dropped += 1
        if obs is not None:
            obs.emit(RepairDrop(ts=storage.drive.now, name=name,
                                reason=reason))

    for name in sorted(storage.list_files()):
        if not name.endswith(".sst"):
            continue
        try:
            number = int(name.split(".")[0])
        except ValueError:
            drop(name, "unparseable file number")
            continue
        try:
            meta, entries, top_seq = _inspect_table(storage, name, number)
        except ReproError as exc:
            drop(name, str(exc) or type(exc).__name__)
            storage.delete_file(name)
            continue
        recovered.append(meta)
        report.tables_recovered += 1
        report.entries_recovered += entries
        max_number = max(max_number, number)
        max_sequence = max(max_sequence, top_seq)

    versions = VersionSet(options.max_levels,
                          tiered=options.style == "two-tier")
    edit = VersionEdit()
    for meta in recovered:
        edit.add_file(0, meta)
    versions.log_and_apply(edit)
    versions.next_file_number = max_number + 1
    versions.last_sequence = max_sequence

    # replace the meta log with a fresh snapshot of the rebuilt state
    storage.reset_meta()
    storage.append_meta_record(Storage.META_SNAPSHOT, versions.serialize())

    # WAL: replay if parseable, else discard
    try:
        db = DB.recover(storage, options, tracker)
    except ReproError:
        storage.reset_log()
        db = DB.recover(storage, options, tracker)
    return db, report


def _inspect_table(storage: Storage, name: str,
                   number: int) -> tuple[FileMetaData, int, int]:
    """Read one table end to end; returns (meta, entries, max sequence)."""
    size = storage.file_size(name)
    reader = SSTableReader(storage, name, size)
    smallest = largest = None
    count = 0
    top_seq = 0
    previous = None
    for ikey, _value in reader:
        if previous is not None and not previous < ikey:
            raise ReproError(f"{name}: keys out of order")
        previous = ikey
        if smallest is None:
            smallest = ikey
        largest = ikey
        top_seq = max(top_seq, ikey.sequence)
        count += 1
    if smallest is None or largest is None:
        raise ReproError(f"{name}: empty table")
    meta = FileMetaData(number, size, smallest, largest, count, run=number)
    return meta, count, top_seq
