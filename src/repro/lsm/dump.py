"""Debug dump tools: ``sst_dump`` / manifest-history equivalents.

LevelDB ships ``sst_dump`` and ``leveldbutil`` for poking at on-disk
state; these are their counterparts for the simulated store.  All of
them return strings (the CLI and tests both consume them).
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.fs.storage import Storage
from repro.lsm.db import DB
from repro.lsm.sstable import SSTableReader
from repro.lsm.version import VersionEdit, VersionSet
from repro.lsm.wal import WriteBatch, read_log_records


def dump_table(storage: Storage, name: str, *, limit: int | None = 20,
               verify_order: bool = True) -> str:
    """Human-readable listing of one table file's entries."""
    if not storage.exists(name):
        raise ReproError(f"no such table {name!r}")
    size = storage.file_size(name)
    reader = SSTableReader(storage, name, size)
    lines = [f"{name}: {size} bytes"]
    previous = None
    count = 0
    for ikey, value in reader:
        if verify_order and previous is not None and not previous < ikey:
            lines.append(f"  !! ORDER VIOLATION at entry {count}")
        previous = ikey
        if limit is None or count < limit:
            kind = "put" if ikey.type == 1 else "del"
            shown = value[:24]
            suffix = "..." if len(value) > 24 else ""
            lines.append(f"  {ikey.user_key!r} @ {ikey.sequence} {kind} "
                         f"-> {shown!r}{suffix}")
        count += 1
    if limit is not None and count > limit:
        lines.append(f"  ... {count - limit} more")
    lines.append(f"  total {count} entries")
    return "\n".join(lines)


def dump_manifest(storage: Storage) -> str:
    """The manifest log, record by record."""
    lines = ["manifest log:"]
    for index, (kind, payload) in enumerate(storage.read_meta_records()):
        if kind == Storage.META_SNAPSHOT:
            vs = VersionSet.deserialize(payload)
            lines.append(
                f"  [{index}] SNAPSHOT: {vs.current.num_files()} files, "
                f"next_file={vs.next_file_number}, seq={vs.last_sequence}")
        elif kind == Storage.META_EDIT:
            edit = VersionEdit.deserialize(payload)
            adds = ", ".join(f"L{lvl}:{m.name}" for lvl, m in edit.added)
            dels = ", ".join(f"L{lvl}:#{num}" for lvl, num in edit.deleted)
            lines.append(f"  [{index}] EDIT: +[{adds or '-'}] -[{dels or '-'}] "
                         f"seq={edit.last_sequence}")
        else:
            lines.append(f"  [{index}] UNKNOWN kind {kind}")
    return "\n".join(lines)


def dump_wal(storage: Storage, wal_block_size: int = 32 * 1024,
             limit: int = 50) -> str:
    """Pending WAL batches (not yet flushed to a table)."""
    data = storage.read_log_bytes()
    lines = [f"write-ahead log: {len(data)} bytes"]
    shown = 0
    for payload in read_log_records(data, wal_block_size):
        sequence, batch = WriteBatch.deserialize(payload)
        lines.append(f"  batch @ seq {sequence}: {len(batch)} op(s)")
        for type_, key, value in batch.ops:
            if shown >= limit:
                lines.append("  ...")
                return "\n".join(lines)
            op = "put" if type_ == 1 else "del"
            lines.append(f"    {op} {key!r}")
            shown += 1
    return "\n".join(lines)


def dump_levels(db: DB) -> str:
    """Tree shape: per level, every file with its key range."""
    version = db.versions.current
    lines = ["level layout:"]
    for level in range(version.num_levels):
        files = version.files[level]
        tier = " (tiered)" if version.level_is_tiered(level) and level else ""
        lines.append(f"  L{level}{tier}: {len(files)} file(s), "
                     f"{version.level_bytes(level)} bytes")
        for meta in files:
            lines.append(
                f"    {meta.name} [{meta.smallest.user_key!r} .. "
                f"{meta.largest.user_key!r}] {meta.size}B "
                f"{meta.entries}e run={meta.run}")
    return "\n".join(lines)
