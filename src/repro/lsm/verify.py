"""Offline integrity verification (``fsck`` for the store).

Walks everything the manifest references and validates:

* every table file opens, its footer magic and block CRCs hold, and its
  entries are in strict internal-key order;
* the manifest's per-file key ranges and entry counts match the table
  contents;
* sorted levels are ordered and disjoint; a tiered last level is
  tolerated per the engine style;
* the WAL parses end to end in strict mode (torn tails and checksum
  mismatches are problems here, even though recovery would salvage
  around them) and every record deserializes as a write batch;
* both manifest slots parse; damage to the slot of record is a problem,
  stale damage in the inactive slot is reported as such;
* (dynamic-band storage) every live file's extent lies inside allocated
  space and no two files overlap.

``verify_db(db, scrub=True)`` additionally runs the media scrubber
(:mod:`repro.resilience.scrub`) and folds its findings in -- this is
what ``repro verify --scrub`` invokes.

Returns a :class:`VerifyReport`; ``ok`` is False with per-problem
messages rather than raising, so operators can inspect damage.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CorruptionError, ReproError
from repro.lsm.db import DB
from repro.lsm.sstable import SSTableReader
from repro.lsm.wal import WriteBatch, read_log_records


@dataclass
class VerifyReport:
    """Outcome of one verification pass."""

    tables_checked: int = 0
    entries_checked: int = 0
    problems: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def add(self, message: str) -> None:
        self.problems.append(message)

    def render(self) -> str:
        status = "OK" if self.ok else f"{len(self.problems)} PROBLEM(S)"
        lines = [f"verify: {status} -- {self.tables_checked} tables, "
                 f"{self.entries_checked:,} entries"]
        lines += [f"  - {p}" for p in self.problems]
        return "\n".join(lines)


def verify_db(db: DB, scrub: bool = False) -> VerifyReport:
    """Validate the full on-disk state of ``db``.

    With ``scrub=True`` also run the media scrubber, which re-reads
    every live block off the device (bypassing caches) and quarantines
    tables that fail persistently; its findings join the report.
    """
    report = VerifyReport()
    version = db.versions.current

    for level in range(version.num_levels):
        files = version.files[level]
        for meta in files:
            if meta.quarantined:
                report.add(f"L{level}: {meta.name} quarantined "
                           f"(range fenced off after media errors)")
                continue
            _verify_table(db, level, meta, report)
        if level >= 1 and not version.level_is_tiered(level):
            for a, b in zip(files, files[1:]):
                if b.smallest.user_key <= a.largest.user_key:
                    report.add(
                        f"L{level}: files {a.number} and {b.number} overlap")

    _verify_wal(db, report)
    _verify_manifest(db, report)
    _verify_placement(db, report)
    if scrub:
        scrub_report = db.scrub()
        for name, reason in scrub_report.errors:
            report.add(f"scrub: {name} failed verification: {reason}")
        for problem in scrub_report.placement_problems:
            report.add(f"scrub: {problem}")
    return report


def _verify_wal(db: DB, report: VerifyReport) -> None:
    """Strict-parse the WAL: recovery would salvage around damage, but
    an fsck must name it."""
    data = db.storage.read_log_bytes()
    records = 0
    try:
        for payload in read_log_records(data, db.options.wal_block_size,
                                        strict=True):
            WriteBatch.deserialize(payload)
            records += 1
    except CorruptionError as exc:
        report.add(f"wal: {exc} (after {records} good records)")


def _verify_manifest(db: DB, report: VerifyReport) -> None:
    """Walk both manifest slots (the two-slot rollover scheme).

    Damage in the slot of record is a real problem; damage in the
    inactive slot is stale by construction (``reset_meta`` wipes it on
    rollover) but still worth naming.
    """
    slot_state = getattr(db.storage, "_slot_state", None)
    if slot_state is None:
        return
    active = db.storage._active_meta
    for index in (0, 1):
        try:
            _gen, body, usable, damaged, crc_error = slot_state(index)
        except ReproError as exc:
            report.add(f"manifest slot {index}: unreadable: {exc}")
            continue
        role = "active" if index == active else "inactive"
        if index == active:
            if not usable:
                report.add(f"manifest slot {index} (active): not usable "
                           f"({'crc mismatch' if crc_error else 'no snapshot'})")
            elif crc_error:
                report.add(f"manifest slot {index} (active): crc mismatch")
            elif damaged:
                report.add(f"manifest slot {index} (active): torn tail")
        elif crc_error and body:
            report.add(f"manifest slot {index} ({role}): stale crc damage")


def _verify_table(db: DB, level: int, meta, report: VerifyReport) -> None:
    name = meta.name
    if not db.storage.exists(name):
        report.add(f"L{level}: {name} referenced by manifest but missing")
        return
    size = db.storage.file_size(name)
    if size != meta.size:
        report.add(f"L{level}: {name} size {size} != manifest {meta.size}")
        return
    try:
        reader = SSTableReader(db.storage, name, size)
        previous = None
        count = 0
        smallest = largest = None
        for ikey, _value in reader:
            if previous is not None and not previous < ikey:
                report.add(f"L{level}: {name} keys out of order at #{count}")
                return
            if smallest is None:
                smallest = ikey
            largest = ikey
            previous = ikey
            count += 1
        report.tables_checked += 1
        report.entries_checked += count
    except ReproError as exc:
        report.add(f"L{level}: {name} unreadable: {exc}")
        return
    if count != meta.entries:
        report.add(f"L{level}: {name} has {count} entries, "
                   f"manifest says {meta.entries}")
    if smallest is not None and smallest.user_key != meta.smallest.user_key:
        report.add(f"L{level}: {name} smallest key mismatch")
    if largest is not None and largest.user_key != meta.largest.user_key:
        report.add(f"L{level}: {name} largest key mismatch")


def _verify_placement(db: DB, report: VerifyReport) -> None:
    """Dynamic-band placement checks (no-op for other storages)."""
    manager = getattr(db.storage, "manager", None)
    if manager is None:
        return
    try:
        manager.check_invariants()
    except ReproError as exc:
        report.add(f"band manager invariants: {exc}")
    extents = []
    for name in db.storage.list_files():
        for ext in db.storage.file_extents(name):
            if not manager.allocated.contains_range(ext.start, ext.end):
                report.add(f"{name}: extent {ext} outside allocated space")
            extents.append((ext.start, ext.end, name))
    extents.sort()
    for (s1, e1, n1), (s2, e2, n2) in zip(extents, extents[1:]):
        if s2 < e1:
            report.add(f"files {n1} and {n2} overlap on disk")
