"""SSTable builder and reader.

File layout (all offsets within the file)::

    [data block 0] ... [data block N-1]
    [filter block]                      bloom filter over user keys
    [index block]                       last key of each data block -> handle
    [footer: 40 bytes]                  fixed64 x 4 handles + fixed64 magic

Data and index blocks use :mod:`repro.lsm.block`.  Readers fetch blocks
through the :class:`~repro.fs.storage.Storage` abstraction, so every
block read is a (timed) device I/O unless it hits the block cache or
the whole file has been prefetched -- the mechanism behind the paper's
compaction-efficiency argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import CorruptionError, MediaError
from repro.lsm.block import Block, BlockBuilder, BlockHandle
from repro.lsm.bloom import BloomFilter
from repro.lsm.cache import LRUCache
from repro.lsm.ikey import InternalKey, TYPE_DELETION, lookup_key
from repro.lsm.options import Options
from repro.util.varint import decode_fixed64, encode_fixed64

FOOTER_SIZE = 40
_MAGIC = 0x5EA1DB0F00DBF00D


@dataclass
class TableProperties:
    """Facts about a finished table, recorded in the manifest."""

    num_entries: int
    smallest: InternalKey
    largest: InternalKey
    file_size: int


class SSTableBuilder:
    """Serializes sorted entries into the table format."""

    def __init__(self, options: Options) -> None:
        self._options = options
        self._buf = bytearray()
        self._drained = 0
        self._block = BlockBuilder(options.block_restart_interval)
        self._index_entries: list[tuple[bytes, BlockHandle]] = []
        self._user_keys: list[bytes] = []
        self._num_entries = 0
        self._smallest: InternalKey | None = None
        self._largest: InternalKey | None = None
        self._last_key: InternalKey | None = None

    @property
    def num_entries(self) -> int:
        return self._num_entries

    def estimated_size(self) -> int:
        return len(self._buf) + self._block.size_estimate()

    @property
    def pending_bytes(self) -> int:
        """Completed bytes not yet handed out by :meth:`drain`."""
        return len(self._buf) - self._drained

    def drain(self) -> bytes:
        """Take the completed-but-undrained bytes (streaming output).

        A compaction that streams its output file calls ``drain`` as
        blocks complete and appends the pieces to a file stream; the
        device then sees writes interleaved with the merge's reads, as
        on a real drive.  Callers that never drain get the whole file
        from :meth:`finish`.
        """
        out = bytes(self._buf[self._drained:])
        self._drained = len(self._buf)
        return out

    def add(self, ikey: InternalKey, value: bytes) -> None:
        if self._last_key is not None and not self._last_key < ikey:
            raise CorruptionError(
                f"keys added out of order: {self._last_key} then {ikey}"
            )
        self._last_key = ikey
        if self._smallest is None:
            self._smallest = ikey
        self._largest = ikey
        encoded = ikey.encode()
        self._block.add(encoded, value)
        self._user_keys.append(ikey.user_key)
        self._num_entries += 1
        if self._block.size_estimate() >= self._options.block_size:
            self._flush_block(encoded)

    def _flush_block(self, last_encoded_key: bytes) -> None:
        data = self._block.finish()
        handle = BlockHandle(len(self._buf), len(data))
        self._buf += data
        self._index_entries.append((last_encoded_key, handle))
        self._block = BlockBuilder(self._options.block_restart_interval)

    def finish(self) -> tuple[bytes, TableProperties]:
        """Complete the table; returns ``(remaining_bytes, properties)``.

        Without prior :meth:`drain` calls the returned bytes are the
        whole file; with streaming, they are the tail (last block,
        filter, index, footer) and ``properties.file_size`` is still the
        total size.
        """
        if self._num_entries == 0:
            raise CorruptionError("cannot finish an empty SSTable")
        if not self._block.empty:
            assert self._last_key is not None
            self._flush_block(self._last_key.encode())

        if self._options.bloom_bits_per_key > 0:
            bloom = BloomFilter.build(self._user_keys,
                                      self._options.bloom_bits_per_key)
            filter_data = bloom.encode()
        else:
            filter_data = b""
        filter_handle = BlockHandle(len(self._buf), len(filter_data))
        self._buf += filter_data

        index = BlockBuilder(restart_interval=1)
        for key, handle in self._index_entries:
            index.add(key, handle.encode())
        index_data = index.finish()
        index_handle = BlockHandle(len(self._buf), len(index_data))
        self._buf += index_data

        self._buf += encode_fixed64(index_handle.offset)
        self._buf += encode_fixed64(index_handle.size)
        self._buf += encode_fixed64(filter_handle.offset)
        self._buf += encode_fixed64(filter_handle.size)
        self._buf += encode_fixed64(_MAGIC)

        assert self._smallest is not None and self._largest is not None
        props = TableProperties(self._num_entries, self._smallest,
                                self._largest, len(self._buf))
        return self.drain(), props


class SSTableReader:
    """Random and sequential access to one table file.

    The index and filter are loaded eagerly (two reads) and kept in
    memory, as a table cache would.  Data blocks are read on demand
    through the shared block cache; :meth:`prefetch` instead pulls the
    whole file with a single sequential read -- SEALDB's set-oriented
    compaction path.

    Media-fault hardening: every device fetch (footer, index, filter,
    data blocks) is wrapped in a bounded retry loop.  A failed checksum
    or a :class:`~repro.errors.MediaError` triggers up to
    ``read_retries`` re-reads with exponential simulated backoff, so
    *transient* glitches (a one-shot ``storage.read`` failpoint) clear
    while *persistent* faults (the drive's media-error map) exhaust the
    retries and propagate -- at which point the engine quarantines the
    table.  ``stats`` (a :class:`~repro.lsm.db.DBStats`) counts retries
    and media errors when provided.
    """

    def __init__(self, storage, name: str, file_size: int,
                 block_cache: LRUCache | None = None,
                 readahead_blocks: int = 1,
                 paranoid_checks: bool = True,
                 read_retries: int = 0,
                 read_retry_backoff_s: float = 1e-3,
                 stats=None) -> None:
        self._storage = storage
        self.name = name
        self.file_size = file_size
        self._cache = block_cache
        self._buffer: bytes | None = None
        self._readahead_blocks = max(1, readahead_blocks)
        self._paranoid = paranoid_checks
        self._retries = max(0, read_retries)
        self._backoff = read_retry_backoff_s
        self._stats = stats

        def load_footer() -> bytes:
            footer = storage.read_file(name, file_size - FOOTER_SIZE,
                                       FOOTER_SIZE)
            if decode_fixed64(footer, 32) != _MAGIC:
                raise CorruptionError(f"bad magic in table {name!r}")
            return footer

        footer = self._retrying(load_footer)
        index_handle = BlockHandle(decode_fixed64(footer, 0), decode_fixed64(footer, 8))
        filter_handle = BlockHandle(decode_fixed64(footer, 16), decode_fixed64(footer, 24))

        index_block = self._retrying(lambda: Block(
            storage.read_file(name, index_handle.offset, index_handle.size)))
        self._index: list[tuple[InternalKey, BlockHandle]] = []
        for ikey, value in index_block:
            handle, _pos = BlockHandle.decode(value)
            self._index.append((ikey, handle))

        self._bloom: BloomFilter | None = None
        if filter_handle.size > 0:
            self._bloom = BloomFilter.decode(self._retrying(
                lambda: storage.read_file(name, filter_handle.offset,
                                          filter_handle.size)))

    def _retrying(self, fetch):
        """Run ``fetch`` with bounded re-reads and simulated backoff."""
        attempt = 0
        while True:
            try:
                return fetch()
            except (CorruptionError, MediaError) as exc:
                if self._stats is not None and isinstance(exc, MediaError):
                    self._stats.media_errors += 1
                if attempt >= self._retries:
                    raise
                attempt += 1
                if self._stats is not None:
                    self._stats.read_retries += 1
                backoff = self._backoff * (2 ** (attempt - 1))
                if backoff > 0:
                    self._storage.drive.clock.advance(backoff)

    def prefetch(self) -> None:
        """Read the entire file sequentially; later block reads are free."""
        if self._buffer is None:
            self._buffer = self._retrying(
                lambda: self._storage.read_file(self.name, 0, self.file_size))

    def release(self) -> None:
        """Drop the prefetched buffer."""
        self._buffer = None

    def _read_block(self, handle: BlockHandle) -> Block:
        if self._buffer is not None:
            try:
                return Block(self._buffer[handle.offset : handle.offset + handle.size],
                             verify=self._paranoid)
            except CorruptionError:
                # A rotted block inside the prefetched image: drop the
                # buffer and fall through to the per-block device path,
                # whose retries can clear a transient fault.
                self.release()
        if self._cache is not None:
            key = (self.name, handle.offset)
            block = self._cache.get(key)
            if block is not None:
                return block
        block = self._fetch_block(handle)
        if self._cache is not None:
            self._cache.put((self.name, handle.offset), block)
        return block

    def _fetch_block(self, handle: BlockHandle, verify: bool | None = None) -> Block:
        """Fetch one block from the device (no cache) with retries."""
        check = self._paranoid if verify is None else verify
        return self._retrying(lambda: Block(
            self._storage.read_file(self.name, handle.offset, handle.size),
            verify=check))

    def verify_blocks(self) -> int:
        """Checksum every data block straight off the device.

        The scrubber's table walk: bypasses the block cache and any
        prefetched buffer (a cached copy can mask on-media rot), always
        verifies CRCs regardless of ``paranoid_checks``, and raises the
        first persistent :class:`~repro.errors.CorruptionError` /
        :class:`~repro.errors.MediaError` after the usual retries.
        Returns the number of blocks checked.
        """
        checked = 0
        for _key, handle in self._index:
            self._fetch_block(handle, verify=True)
            checked += 1
        return checked

    def _find_block_index(self, target: InternalKey) -> int:
        """First block whose largest key is >= ``target`` (len == miss)."""
        target_sort = target.sort_key
        lo, hi = 0, len(self._index)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._index[mid][0].sort_key < target_sort:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def get(self, user_key: bytes, snapshot_sequence: int) -> tuple[bool, bytes | None]:
        """Point lookup; same contract as :meth:`Memtable.get`."""
        if self._bloom is not None and not self._bloom.may_contain(user_key):
            return False, None
        target = lookup_key(user_key, snapshot_sequence)
        index = self._find_block_index(target)
        if index == len(self._index):
            return False, None
        block = self._read_block(self._index[index][1])
        for ikey, value in block.seek(target):
            if ikey.user_key != user_key:
                break
            if ikey.type == TYPE_DELETION:
                return True, None
            return True, value
        return False, None

    def __iter__(self) -> Iterator[tuple[InternalKey, bytes]]:
        yield from self._iterate_blocks(0, None)

    def iterate(self, readahead_blocks: int | None = None
                ) -> Iterator[tuple[InternalKey, bytes]]:
        """Full iteration with an explicit readahead override."""
        yield from self._iterate_blocks(0, None, readahead_blocks)

    def iterate_from(self, target: InternalKey,
                     readahead_blocks: int | None = None
                     ) -> Iterator[tuple[InternalKey, bytes]]:
        """Entries with internal key >= ``target``."""
        start = self._find_block_index(target)
        yield from self._iterate_blocks(start, target, readahead_blocks)

    def _iterate_blocks(self, start_index: int, target: InternalKey | None,
                        readahead_blocks: int | None = None
                        ) -> Iterator[tuple[InternalKey, bytes]]:
        """Stream blocks with readahead: consecutive blocks are fetched
        in chunks of ``readahead_blocks`` with one device read each,
        modelling OS readahead during sequential iteration."""
        readahead = (self._readahead_blocks if readahead_blocks is None
                     else max(1, readahead_blocks))
        index = start_index
        while index < len(self._index):
            chunk_end = min(index + readahead, len(self._index))
            blocks = self._read_block_range(index, chunk_end)
            for offset, block in enumerate(blocks):
                if target is not None and index + offset == start_index:
                    yield from block.seek(target)
                else:
                    yield from block
            index = chunk_end

    def _read_block_range(self, start_index: int, end_index: int) -> list[Block]:
        handles = [handle for _key, handle in self._index[start_index:end_index]]
        if len(handles) == 1:
            return [self._read_block(handles[0])]
        first = handles[0].offset
        last = handles[-1].offset + handles[-1].size
        if self._buffer is not None:
            data = self._buffer[first:last]
            try:
                return [Block(data[h.offset - first : h.offset - first + h.size],
                              verify=self._paranoid)
                        for h in handles]
            except CorruptionError:
                self.release()  # rotted prefetch image: re-read the range

        def fetch() -> list[Block]:
            data = self._storage.read_file(self.name, first, last - first)
            return [Block(data[h.offset - first : h.offset - first + h.size],
                          verify=self._paranoid)
                    for h in handles]

        return self._retrying(fetch)
