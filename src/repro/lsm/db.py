"""The key-value store engine: LevelDB's write/read/compaction paths.

One :class:`DB` instance drives one :class:`~repro.fs.storage.Storage`
(and through it one simulated drive).  Compactions run synchronously on
the simulated clock -- there is no concurrency to model because the
paper's evaluation is throughput of a single foreground load against a
single disk arm.

Set-awareness (``Options.use_sets``) changes exactly two things, as in
the paper:

* compaction **inputs** are prefetched with one whole-file sequential
  read per table (the tables of a set are physically contiguous, so the
  whole compaction unit streams off the disk), instead of on-demand
  block reads interleaved across input files;
* compaction **outputs** are buffered and handed to the storage as one
  group (``write_files``), which a set-aware placement policy lays out
  contiguously.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator

from repro import faults
from repro.errors import (
    CorruptionError,
    InvariantViolation,
    KeyRangeUnavailable,
    MediaError,
)
from repro.fs.storage import Storage
from repro.lsm.cache import LRUCache
from repro.lsm.compaction import Compaction, CompactionPicker, compact_entries
from repro.lsm.ikey import InternalKey, lookup_key
from repro.lsm.iterator import DBIterator, merge_iterators, take_range
from repro.lsm.memtable import Memtable
from repro.lsm.options import Options
from repro.lsm.sstable import SSTableBuilder, SSTableReader
from repro.lsm.version import FileMetaData, VersionEdit, VersionSet
from repro.lsm.wal import LogWriter, WriteBatch, scan_log
from repro.obs.events import (
    CompactionEnd,
    CompactionStart,
    FlushEnd,
    FlushStart,
    QuarantineEvent,
)
from repro.smr.extent import Extent
from repro.smr.stats import AmplificationTracker


@dataclass
class CompactionRecord:
    """Everything the experiments need to know about one compaction."""

    index: int
    level: int
    output_level: int
    start_time: float
    end_time: float
    input_names: list[str]
    output_names: list[str]
    input_extents: list[list[Extent]]
    output_extents: list[list[Extent]]
    input_bytes: int
    output_bytes: int
    trivial_move: bool = False

    @property
    def latency(self) -> float:
        return self.end_time - self.start_time

    @property
    def num_input_files(self) -> int:
        return len(self.input_names)

    @property
    def num_output_files(self) -> int:
        return len(self.output_names)


def _compaction_end_event(record: CompactionRecord) -> CompactionEnd:
    return CompactionEnd(
        ts=record.end_time, index=record.index, level=record.level,
        output_level=record.output_level,
        num_inputs=record.num_input_files,
        num_outputs=record.num_output_files,
        input_bytes=record.input_bytes, output_bytes=record.output_bytes,
        duration=record.latency, trivial_move=record.trivial_move)


@dataclass
class FlushRecord:
    """One memtable flush."""

    start_time: float
    end_time: float
    name: str
    nbytes: int


@dataclass
class DBStats:
    """Operation counters (separate from drive-level stats)."""

    puts: int = 0
    gets: int = 0
    deletes: int = 0
    scans: int = 0
    get_hits: int = 0
    tables_opened: int = 0
    #: device re-reads after a checksum/media failure (resilience)
    read_retries: int = 0
    #: reads that hit a latent sector error
    media_errors: int = 0
    #: tables fenced off after persistent read failures (cumulative)
    quarantines: int = 0


class DB:
    """An LSM-tree key-value store over a placement policy."""

    def __init__(self, storage: Storage, options: Options | None = None,
                 tracker: AmplificationTracker | None = None,
                 stats: DBStats | None = None) -> None:
        self.storage = storage
        self.options = options if options is not None else Options()
        self.tracker = tracker if tracker is not None else AmplificationTracker()
        self._obs = None
        self.versions = VersionSet(self.options.max_levels,
                                   tiered=self.options.style == "two-tier")
        self.picker = CompactionPicker(self.options, self.versions)
        self.memtable = Memtable(seed=self.options.seed)
        self.log = LogWriter(storage.append_log, self.options.wal_block_size)
        self.block_cache = (LRUCache(self.options.block_cache_bytes)
                            if self.options.block_cache_bytes > 0 else None)
        self._tables: dict[str, SSTableReader] = {}
        self.compaction_records: list[CompactionRecord] = []
        self.flush_records: list[FlushRecord] = []
        # Callers (the store facade) may pass a long-lived DBStats so
        # operation counters survive crash-recovery.
        self.stats = stats if stats is not None else DBStats()
        self._mem_seed = self.options.seed
        self._flushes_since_scrub = 0

    # -- convenience ------------------------------------------------------

    @property
    def drive(self):
        return self.storage.drive

    @property
    def now(self) -> float:
        return self.drive.now

    @property
    def last_sequence(self) -> int:
        return self.versions.last_sequence

    # -- write path -------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> None:
        self.stats.puts += 1
        self.write(WriteBatch().put(key, value))

    def delete(self, key: bytes) -> None:
        self.stats.deletes += 1
        self.write(WriteBatch().delete(key))

    def write(self, batch: WriteBatch) -> None:
        """Apply an atomic batch: WAL first, then the memtable."""
        if len(batch) == 0:
            return
        sequence = self.versions.last_sequence + 1
        self.log.add_record(batch.serialize(sequence))
        for offset, (type_, key, value) in enumerate(batch.ops):
            self.memtable.add(sequence + offset, type_, key, value)
        self.versions.last_sequence += len(batch)
        self.tracker.add_user_write(batch.byte_size())
        if self.memtable.approximate_size >= self.options.write_buffer_size:
            self.flush()

    def flush(self) -> None:
        """Dump the memtable to an L0 table and run due compactions."""
        if len(self.memtable) == 0:
            return
        start = self.now
        obs = self._obs
        if obs is not None:
            obs.emit(FlushStart(ts=start, entries=len(self.memtable),
                                nbytes=self.memtable.approximate_size))
        builder = SSTableBuilder(self.options)
        for ikey, value in self.memtable.entries():
            builder.add(ikey, value)
        data, props = builder.finish()
        number = self.versions.new_file_number()
        meta = FileMetaData(number, props.file_size, props.smallest,
                            props.largest, props.num_entries, run=number)
        self.storage.write_files([(meta.name, data)])
        self.tracker.add_lsm_write(props.file_size, is_flush=True)
        if self.options.compaction_cpu_per_byte > 0:
            self.drive.clock.advance(
                self.options.compaction_cpu_per_byte * props.file_size)

        faults.trip(faults.FLUSH_INSTALL, self.drive.clock)
        edit = VersionEdit()
        edit.add_file(0, meta)
        self.versions.log_and_apply(edit)
        self._persist_manifest(edit)
        self.storage.reset_log()
        self.log.reset()
        self._mem_seed += 1
        self.memtable = Memtable(seed=self._mem_seed)
        self.flush_records.append(FlushRecord(start, self.now, meta.name,
                                              props.file_size))
        if obs is not None:
            obs.emit(FlushEnd(ts=self.now, name=meta.name,
                              nbytes=props.file_size,
                              duration=self.now - start))
        self.maybe_compact()
        # Idle-path scrubbing: the engine just finished a flush (and any
        # due compactions), which is the closest thing the synchronous
        # simulation has to idle time.  Off by default (interval 0).
        if self.options.scrub_interval_flushes > 0:
            self._flushes_since_scrub += 1
            if self._flushes_since_scrub >= self.options.scrub_interval_flushes:
                self._flushes_since_scrub = 0
                self.scrub()

    def scrub(self):
        """Run one scrub pass over every live table (see
        :mod:`repro.resilience.scrub`)."""
        from repro.resilience.scrub import scrub
        return scrub(self)

    # -- read path ----------------------------------------------------------

    def get(self, key: bytes, snapshot: int | None = None) -> bytes | None:
        """Newest value for ``key`` visible at ``snapshot`` (None = latest)."""
        self.stats.gets += 1
        if self.options.read_cpu_seconds > 0:
            self.drive.clock.advance(self.options.read_cpu_seconds)
        sequence = self.versions.last_sequence if snapshot is None else snapshot
        found, value = self.memtable.get(key, sequence)
        if found:
            if value is not None:
                self.stats.get_hits += 1
            return value
        for level, meta in self.versions.current.files_for_get(key):
            if meta.quarantined:
                # Every newer table already missed, so the answer may
                # live behind the fence: refuse rather than guess.
                raise KeyRangeUnavailable(
                    f"key range of quarantined table {meta.name} "
                    f"(L{level}) is unavailable",
                    smallest=meta.smallest.user_key,
                    largest=meta.largest.user_key)
            try:
                reader = self._table(meta)
                found, value = reader.get(key, sequence)
            except (CorruptionError, MediaError) as exc:
                self._quarantine(level, meta, repr(exc))
                raise KeyRangeUnavailable(
                    f"table {meta.name} (L{level}) quarantined mid-read: {exc}",
                    smallest=meta.smallest.user_key,
                    largest=meta.largest.user_key) from exc
            if found:
                if value is not None:
                    self.stats.get_hits += 1
                return value
        return None

    def scan(self, start: bytes | None = None, end: bytes | None = None,
             limit: int | None = None,
             snapshot: int | None = None) -> Iterator[tuple[bytes, bytes]]:
        """Ordered iteration of live pairs in ``[start, end)``."""
        self.stats.scans += 1
        if self.options.read_cpu_seconds > 0:
            self.drive.clock.advance(self.options.read_cpu_seconds)
        sequence = self.versions.last_sequence if snapshot is None else snapshot
        target = lookup_key(start, sequence) if start is not None else None
        sources: list[Iterator[tuple[InternalKey, bytes]]] = []
        if target is not None:
            sources.append(self.memtable.entries_from(target))
        else:
            sources.append(self.memtable.entries())
        version = self.versions.current
        if version.num_quarantined:
            # A scan cannot skip a fenced table and stay correct: it
            # might hold the newest version of any key in its range.
            self._check_scan_range(version, start, end)
        # Set-granular reads (the paper changes the get/put unit from
        # SSTables to sets) pay off for long scans; a short limited scan
        # touches a fraction of a table, so it keeps block reads.
        prefetch = self.options.use_sets and (limit is None or limit >= 500)
        for meta in version.files[0]:
            if end is not None and meta.smallest.user_key >= end:
                continue
            sources.append(self._table_scan_source(0, meta, target, prefetch))
        for level in range(1, version.num_levels):
            files = version.overlapping_files(level, start, None)
            if end is not None:
                files = [f for f in files if f.smallest.user_key < end]
            if not files:
                continue
            if version.level_is_tiered(level):
                # Overlapping runs cannot be concatenated: one source each.
                for meta in files:
                    sources.append(self._table_scan_source(level, meta,
                                                           target, prefetch))
            else:
                sources.append(self._level_iterator(level, files, target,
                                                    prefetch))
        merged = merge_iterators(sources)
        yield from take_range(DBIterator(merged, sequence), start, end, limit)

    def _check_scan_range(self, version, start: bytes | None,
                          end: bytes | None) -> None:
        """Refuse a scan whose range touches a quarantined table."""
        for level, meta in version.quarantined_files():
            if end is not None and meta.smallest.user_key >= end:
                continue
            if start is not None and meta.largest.user_key < start:
                continue
            raise KeyRangeUnavailable(
                f"scan range intersects quarantined table {meta.name} "
                f"(L{level})",
                smallest=meta.smallest.user_key,
                largest=meta.largest.user_key)

    def _table_scan_source(self, level: int, meta: FileMetaData,
                           target: InternalKey | None,
                           prefetch: bool
                           ) -> Iterator[tuple[InternalKey, bytes]]:
        """One table as a scan source.

        With ``prefetch`` the whole table is streamed with one
        sequential read the moment the scan first touches it (set
        granularity), and the buffer is dropped once the scan moves
        past.  A persistent read failure mid-scan quarantines the table
        and surfaces as :class:`~repro.errors.KeyRangeUnavailable` to
        the consumer of the iterator.
        """
        try:
            reader = self._table(meta)
            prefetched = False
            if prefetch and reader._buffer is None:
                reader.prefetch()
                prefetched = True
            try:
                if target is not None:
                    yield from reader.iterate_from(target)
                else:
                    yield from reader
            finally:
                if prefetched:
                    reader.release()
        except (CorruptionError, MediaError) as exc:
            self._quarantine(level, meta, repr(exc))
            raise KeyRangeUnavailable(
                f"table {meta.name} (L{level}) quarantined mid-scan: {exc}",
                smallest=meta.smallest.user_key,
                largest=meta.largest.user_key) from exc

    def _level_iterator(self, level: int, files: list[FileMetaData],
                        target: InternalKey | None,
                        prefetch: bool
                        ) -> Iterator[tuple[InternalKey, bytes]]:
        for index, meta in enumerate(files):
            yield from self._table_scan_source(
                level, meta, target if index == 0 else None, prefetch)

    # -- compaction ----------------------------------------------------------

    def maybe_compact(self) -> None:
        """Run compactions until every level is within budget.

        While a level holds a quarantined table the tree may stay over
        budget: a compaction that would have to *read* fenced-off bytes
        is deferred rather than crashed, and the store serves degraded
        until ``repair()``.  A compaction that hits fresh corruption
        mid-merge scrubs its inputs, quarantines the sick ones, and
        likewise defers.
        """
        while True:
            compaction = self.picker.pick(self._invalid_count_fn())
            if compaction is None:
                return
            if any(m.quarantined for m in compaction.all_files):
                return
            try:
                self.run_compaction(compaction)
            except (CorruptionError, MediaError):
                if not self._quarantine_sick_inputs(compaction):
                    raise  # transient after all -- surface it
                self._remove_orphan_files()  # partial outputs, if any
                return

    def _quarantine_sick_inputs(self, compaction: Compaction) -> int:
        """Verify each input of a failed compaction; quarantine the
        tables that fail persistently.  Returns how many were fenced."""
        fenced = 0
        pairs = ([(compaction.level, m) for m in compaction.inputs]
                 + [(compaction.output_level, m) for m in compaction.overlaps])
        for level, meta in pairs:
            try:
                self._table(meta).verify_blocks()
            except (CorruptionError, MediaError) as exc:
                self._quarantine(level, meta, repr(exc))
                fenced += 1
        return fenced

    def compact_range(self, start: bytes | None = None,
                      end: bytes | None = None) -> int:
        """Manually push every key in ``[start, end]`` to deeper levels.

        LevelDB's ``CompactRange``: flushes the memtable, then walks the
        tree top-down compacting each level's overlapping files into the
        next.  Returns the number of compactions executed.  Useful for
        space-reclaim after bulk deletes (tombstones only die at the
        bottom level).
        """
        self.flush()
        executed = 0
        for level in range(self.options.max_levels - 1):
            while True:
                files = self.versions.current.overlapping_files(
                    level, start, end)
                if not files:
                    break
                sick = next((f for f in files if f.quarantined), None)
                if sick is not None:
                    raise KeyRangeUnavailable(
                        f"cannot compact range over quarantined table "
                        f"{sick.name} (L{level}); repair() first",
                        smallest=sick.smallest.user_key,
                        largest=sick.largest.user_key)
                if level == 0:
                    compaction = self.picker._pick_l0(self.versions.current)
                else:
                    victim = files[0]
                    overlaps = self.versions.current.overlapping_files(
                        level + 1, victim.smallest.user_key,
                        victim.largest.user_key)
                    compaction = Compaction(level, [victim], overlaps)
                self.run_compaction(compaction)
                executed += 1
        self.maybe_compact()
        return executed

    def _invalid_count_fn(self):
        if self.options.victim_policy != "invalid-set-first":
            return None
        counter = getattr(self.storage, "group_invalid_count", None)
        return counter

    def run_compaction(self, compaction: Compaction) -> None:
        start = self.now
        version = self.versions.current
        obs = self._obs
        if obs is not None:
            obs.emit(CompactionStart(
                ts=start, level=compaction.level,
                output_level=compaction.output_level,
                num_inputs=len(compaction.all_files),
                input_bytes=compaction.input_bytes,
                trivial_move=compaction.is_trivial_move()))

        if compaction.is_trivial_move():
            meta = compaction.inputs[0]
            faults.trip(faults.COMPACTION_INSTALL, self.drive.clock)
            edit = VersionEdit()
            edit.delete_file(compaction.level, meta.number)
            edit.add_file(compaction.output_level, meta)
            self.versions.log_and_apply(edit)
            self.versions.compact_pointer[compaction.level] = meta.largest.user_key
            self._persist_manifest(edit)
            extents = self.storage.file_extents(meta.name)
            record = CompactionRecord(
                len(self.compaction_records), compaction.level,
                compaction.output_level, start, self.now,
                [meta.name], [meta.name], [extents], [extents],
                meta.size, meta.size, trivial_move=True,
            )
            self.compaction_records.append(record)
            if obs is not None:
                obs.emit(_compaction_end_event(record))
            return

        readers = [self._table(meta) for meta in compaction.all_files]
        if self.options.do_prefetch:
            # Stream each input file with one sequential read.  Reading
            # in physical-address order keeps a contiguous set fully
            # sequential on the platter.
            for reader in sorted(readers,
                                 key=lambda r: self._first_offset(r.name)):
                reader.prefetch()
            sources = [iter(reader) for reader in readers]
        else:
            # k-way merges share one readahead budget: the more input
            # streams, the less runway each one gets before the head
            # must service another stream.
            per_source = max(1, self.options.compaction_readahead_budget
                             // max(1, len(readers)))
            sources = [reader.iterate(per_source) for reader in readers]

        merged = merge_iterators(sources)
        input_numbers = {meta.number for meta in compaction.all_files}
        entries = compact_entries(
            merged,
            self._base_level_checker(version, compaction.output_level,
                                     input_numbers),
        )

        outputs: list[tuple[str, bytes]] = []
        output_meta: list[FileMetaData] = []
        builder: SSTableBuilder | None = None
        stream = None
        current_number: int | None = None
        run_id = self.versions.next_file_number  # all outputs share a run
        if self.options.do_prefetch:
            chunk = self.options.readahead_blocks * self.options.block_size
        else:
            # Output writeback shares the same degraded granularity as
            # the merge's reads: a giant k-way merge thrashes its
            # buffers on both sides.
            per_source = max(1, self.options.compaction_readahead_budget
                             // max(1, len(compaction.all_files)))
            chunk = per_source * self.options.block_size

        def start_builder() -> None:
            nonlocal builder, stream, current_number
            builder = SSTableBuilder(self.options)
            current_number = self.versions.new_file_number()
            if not self.options.use_sets:
                # Stream the output so its writes interleave with the
                # merge's reads on the device -- stock LevelDB behaviour.
                stream = self.storage.create_stream(
                    f"{current_number:06d}.sst", chunk)

        def finish_builder() -> None:
            nonlocal builder, stream, current_number
            assert builder is not None and current_number is not None
            tail, props = builder.finish()
            meta = FileMetaData(current_number, props.file_size,
                                props.smallest, props.largest,
                                props.num_entries, run_id)
            output_meta.append(meta)
            if self.options.use_sets:
                outputs.append((meta.name, tail))
            else:
                assert stream is not None
                stream.append(tail)
                stream.close()
            builder = None
            stream = None
            current_number = None

        for ikey, value in entries:
            if builder is None:
                start_builder()
            builder.add(ikey, value)
            if stream is not None and builder.pending_bytes >= chunk:
                stream.append(builder.drain())
            if builder.estimated_size() >= self.options.sstable_size:
                finish_builder()
        if builder is not None and builder.num_entries > 0:
            finish_builder()

        if self.options.use_sets and outputs:
            self.storage.write_files(outputs)

        for reader in readers:
            reader.release()

        output_total = sum(m.size for m in output_meta)
        if self.options.compaction_cpu_per_byte > 0:
            self.drive.clock.advance(
                self.options.compaction_cpu_per_byte
                * (compaction.input_bytes + output_total))

        input_extents = [self.storage.file_extents(m.name)
                         for m in compaction.all_files]
        output_extents = [self.storage.file_extents(m.name)
                          for m in output_meta]

        faults.trip(faults.COMPACTION_INSTALL, self.drive.clock)
        edit = VersionEdit()
        for meta in compaction.inputs:
            edit.delete_file(compaction.level, meta.number)
        for meta in compaction.overlaps:
            edit.delete_file(compaction.output_level, meta.number)
        for meta in output_meta:
            edit.add_file(compaction.output_level, meta)
        self.versions.log_and_apply(edit)
        self.versions.compact_pointer[compaction.level] = max(
            m.largest.user_key for m in compaction.inputs
        )
        self._persist_manifest(edit)

        doomed = [m.name for m in compaction.all_files]
        self.storage.delete_files(doomed)
        for name in doomed:
            self._tables.pop(name, None)
            if self.block_cache is not None:
                self.block_cache.evict_prefix((name,))

        output_bytes = output_total
        self.tracker.add_lsm_write(output_bytes)
        record = CompactionRecord(
            len(self.compaction_records), compaction.level,
            compaction.output_level, start, self.now,
            [m.name for m in compaction.all_files],
            [m.name for m in output_meta],
            input_extents, output_extents,
            compaction.input_bytes, output_bytes,
        )
        self.compaction_records.append(record)
        if obs is not None:
            obs.emit(_compaction_end_event(record))

    def _first_offset(self, name: str) -> int:
        extents = self.storage.file_extents(name)
        return extents[0].start if extents else 0

    def _base_level_checker(self, version, output_level: int,
                            input_numbers: set[int]):
        """A tombstone may be dropped iff no table *outside the
        compaction inputs* at the output level or deeper can hold an
        older version of the key (tiered levels keep peer runs at the
        output level itself, so they must be checked too)."""
        def is_base_level_for(user_key: bytes) -> bool:
            for level in range(output_level, version.num_levels):
                for f in version.overlapping_files(level, user_key, user_key):
                    if f.number not in input_numbers:
                        return False
            return True
        return is_base_level_for

    # -- tables / manifest / recovery -------------------------------------

    def _table(self, meta: FileMetaData) -> SSTableReader:
        reader = self._tables.get(meta.name)
        if reader is None:
            reader = SSTableReader(self.storage, meta.name, meta.size,
                                   self.block_cache,
                                   readahead_blocks=self.options.readahead_blocks,
                                   paranoid_checks=self.options.paranoid_checks,
                                   read_retries=self.options.read_retries,
                                   read_retry_backoff_s=self.options.read_retry_backoff_s,
                                   stats=self.stats)
            self._tables[meta.name] = reader
            self.stats.tables_opened += 1
        return reader

    # -- quarantine (media-fault state machine) ---------------------------

    def _quarantine(self, level: int, meta: FileMetaData, reason: str) -> None:
        """Fence off ``meta``: mark it QUARANTINED in the manifest, drop
        its reader and cached blocks, and record the degraded range.

        The table file itself stays on disk -- ``repair()`` may still
        salvage other tables around it, and keeping the entry in the
        manifest is what lets every read over the range fail *typed*
        instead of silently missing data.
        """
        if meta.quarantined:
            return
        edit = VersionEdit()
        edit.delete_file(level, meta.number)
        edit.add_file(level, replace(meta, quarantined=True))
        self.versions.log_and_apply(edit)
        self._persist_manifest(edit)
        self._tables.pop(meta.name, None)
        if self.block_cache is not None:
            self.block_cache.evict_prefix((meta.name,))
        self.stats.quarantines += 1
        obs = self._obs
        if obs is not None:
            obs.emit(QuarantineEvent(ts=self.now, name=meta.name,
                                     level=level, reason=reason))

    @property
    def quarantined_tables(self) -> int:
        """How many tables are currently fenced off."""
        return self.versions.current.num_quarantined

    def degraded_ranges(self) -> list[tuple[bytes, bytes]]:
        """User-key ranges currently unserveable, one per quarantined
        table (the ``DBStats``-level view of degradation)."""
        return [(meta.smallest.user_key, meta.largest.user_key)
                for _level, meta in self.versions.current.quarantined_files()]

    def _persist_manifest(self, edit: VersionEdit) -> None:
        """Append the edit to the manifest log; on overflow, restart the
        log with a full snapshot (LevelDB's manifest rollover)."""
        from repro.errors import AllocationError

        edit.next_file_number = self.versions.next_file_number
        edit.last_sequence = self.versions.last_sequence
        try:
            self.storage.append_meta_record(Storage.META_EDIT,
                                            edit.serialize())
        except AllocationError:
            self.storage.reset_meta()
            try:
                self.storage.append_meta_record(Storage.META_SNAPSHOT,
                                                self.versions.serialize())
            except AllocationError as exc:
                raise InvariantViolation(
                    "meta region too small to hold one manifest snapshot; "
                    "increase the profile's meta_region"
                ) from exc

    @classmethod
    def recover(cls, storage: Storage, options: Options | None = None,
                tracker: AmplificationTracker | None = None,
                stats: DBStats | None = None) -> "DB":
        """Reconstruct a DB from its manifest and WAL after a 'crash'."""
        db = cls(storage, options, tracker, stats=stats)
        tiered = db.options.style == "two-tier"
        for kind, payload in storage.read_meta_records():
            if kind == Storage.META_SNAPSHOT:
                db.versions = VersionSet.deserialize(payload, tiered=tiered)
                if db.versions.num_levels != db.options.max_levels:
                    raise InvariantViolation(
                        "manifest level count does not match options"
                    )
            elif kind == Storage.META_EDIT:
                edit = VersionEdit.deserialize(payload)
                db.versions.log_and_apply(edit)
                if edit.next_file_number:
                    db.versions.next_file_number = edit.next_file_number
                if edit.last_sequence:
                    db.versions.last_sequence = edit.last_sequence
            else:
                raise InvariantViolation(f"unknown meta record kind {kind}")
        db.picker = CompactionPicker(db.options, db.versions)
        wal_bytes = storage.read_log_bytes()
        payloads, valid_len = scan_log(wal_bytes, db.options.wal_block_size)
        max_seq = db.versions.last_sequence
        for payload in payloads:
            sequence, batch = WriteBatch.deserialize(payload)
            for offset, (type_, key, value) in enumerate(batch.ops):
                db.memtable.add(sequence + offset, type_, key, value)
            max_seq = max(max_seq, sequence + len(batch) - 1)
        db.versions.last_sequence = max_seq
        db.log = LogWriter(storage.append_log, db.options.wal_block_size)
        if valid_len < len(wal_bytes):
            # Torn tail: rewrite the salvaged records as a fresh log.
            # Appending after the garbage instead would make every
            # later record unreachable to the next recovery (it stops
            # at the damage) -- acked writes would vanish on the second
            # crash.
            storage.reset_log()
            for payload in payloads:
                db.log.add_record(payload)
        else:
            db.log._block_offset = valid_len % db.options.wal_block_size
        if storage.meta_log_damaged():
            # Same reasoning for the manifest: restart it from a clean
            # snapshot of the recovered state before anything appends.
            storage.reset_meta()
            storage.append_meta_record(Storage.META_SNAPSHOT,
                                       db.versions.serialize())
        db._remove_orphan_files()
        return db

    def _remove_orphan_files(self) -> None:
        """Delete table files the manifest does not reference.

        A crash between writing compaction outputs and logging the
        version edit leaves orphans on disk; LevelDB garbage-collects
        them during recovery by scanning the directory, and so do we.
        """
        live = {meta.name
                for level in self.versions.current.files
                for meta in level}
        for name in list(self.storage.list_files()):
            if name.endswith(".sst") and name not in live:
                self.storage.delete_file(name)

    def close(self) -> None:
        """Flush buffered writes so all state is on 'disk'."""
        self.flush()

    def delete_range(self, start: bytes, end: bytes,
                     batch_size: int = 256) -> int:
        """Delete every live key in ``[start, end)``; returns the count.

        Implemented as scan + batched tombstones (LevelDB has no range
        tombstones).  Follow with :meth:`compact_range` to reclaim the
        space immediately.
        """
        doomed: list[bytes] = []
        for key, _value in self.scan(start, end):
            doomed.append(key)
        deleted = 0
        batch = WriteBatch()
        for key in doomed:
            batch.delete(key)
            deleted += 1
            if len(batch) >= batch_size:
                self.write(batch)
                batch = WriteBatch()
        if len(batch):
            self.write(batch)
        return deleted

    # -- snapshots ---------------------------------------------------------

    def snapshot(self) -> "Snapshot":
        """A consistent point-in-time view (LevelDB ``GetSnapshot``).

        Reads through the handle ignore every write issued after its
        creation.  Works as a context manager::

            with db.snapshot() as snap:
                old = snap.get(key)
        """
        return Snapshot(self, self.versions.last_sequence)

    # -- introspection ---------------------------------------------------

    def approximate_size(self, start: bytes | None = None,
                         end: bytes | None = None) -> int:
        """Approximate on-disk bytes holding keys in ``[start, end]``.

        LevelDB's ``GetApproximateSizes``: files fully inside the range
        count whole; boundary files count by the fraction of their key
        range inside (assuming uniform density).  The memtable is not
        included, matching LevelDB.
        """
        version = self.versions.current
        total = 0.0
        for level in range(version.num_levels):
            for meta in version.overlapping_files(level, start, end):
                total += meta.size * _range_overlap_fraction(meta, start, end)
        return int(total)

    def level_summary(self) -> list[tuple[int, int, int]]:
        """Per level: ``(level, file_count, total_bytes)``."""
        version = self.versions.current
        return [(level, len(version.files[level]), version.level_bytes(level))
                for level in range(version.num_levels)]

    def check_invariants(self) -> None:
        self.versions.current.check_invariants()


class Snapshot:
    """A sequence-number-pinned read view of one DB.

    Note the simulation's caveat: compactions drop versions older than
    the newest per key, so a snapshot taken *before* heavy overwrites
    and read *after* compactions may see the newer value.  Snapshots are
    intended for consistent multi-read sequences between writes (the
    paper's workloads never hold one across compactions).
    """

    def __init__(self, db: DB, sequence: int) -> None:
        self._db = db
        self.sequence = sequence

    def get(self, key: bytes) -> bytes | None:
        return self._db.get(key, snapshot=self.sequence)

    def scan(self, start: bytes | None = None, end: bytes | None = None,
             limit: int | None = None):
        return self._db.scan(start, end, limit, snapshot=self.sequence)

    def __enter__(self) -> "Snapshot":
        return self

    def __exit__(self, *_exc) -> None:
        return None


def _range_overlap_fraction(meta: FileMetaData, start: bytes | None,
                            end: bytes | None) -> float:
    """Rough fraction of ``meta``'s key range inside ``[start, end]``.

    Keys are compared via their first 8 bytes interpreted as integers --
    crude, but only the *approximation* quality depends on it.
    """
    lo = _key_to_float(meta.smallest.user_key)
    hi = _key_to_float(meta.largest.user_key)
    if hi <= lo:
        return 1.0
    clip_lo = max(lo, _key_to_float(start)) if start is not None else lo
    clip_hi = min(hi, _key_to_float(end)) if end is not None else hi
    if clip_hi <= clip_lo:
        return 0.0
    return (clip_hi - clip_lo) / (hi - lo)


def _key_to_float(key: bytes) -> float:
    padded = key[:8].ljust(8, b"\x00")
    return float(int.from_bytes(padded, "big"))
