"""Memtable: the in-memory write buffer backed by a skiplist.

Entries are keyed by the internal-key sort tuple
``(user_key, -sequence, -type)`` so iteration yields LevelDB's internal
ordering directly.  ``approximate_size`` tracks the payload bytes plus a
small per-entry overhead, mirroring LevelDB's arena accounting, and is
what the DB compares against ``Options.write_buffer_size``.
"""

from __future__ import annotations

from typing import Iterator

from repro.lsm.ikey import InternalKey, TYPE_DELETION, TYPE_VALUE
from repro.lsm.skiplist import SkipList

#: bookkeeping bytes charged per entry (trailer + node overhead stand-in)
_ENTRY_OVERHEAD = 16


class Memtable:
    """Sorted in-memory buffer of the most recent writes."""

    def __init__(self, seed: int = 0) -> None:
        self._table = SkipList(seed=seed)
        self._size = 0

    def __len__(self) -> int:
        return len(self._table)

    @property
    def approximate_size(self) -> int:
        return self._size

    def add(self, sequence: int, type_: int, user_key: bytes, value: bytes) -> None:
        """Insert one entry (``value`` is ignored for deletions)."""
        key = InternalKey(user_key, sequence, type_)
        self._table.insert(key.sort_key, value if type_ == TYPE_VALUE else b"")
        self._size += len(user_key) + len(value) + _ENTRY_OVERHEAD

    def get(self, user_key: bytes, snapshot_sequence: int) -> tuple[bool, bytes | None]:
        """Look up ``user_key`` at ``snapshot_sequence``.

        Returns ``(found, value)``: ``(True, bytes)`` for a live value,
        ``(True, None)`` for a tombstone, ``(False, None)`` when this
        memtable holds nothing visible for the key.
        """
        seek_key = (user_key, -snapshot_sequence, -TYPE_VALUE)
        for (ukey, neg_seq, neg_type), value in self._table.seek(seek_key):
            if ukey != user_key:
                break
            # seek() already skipped entries newer than the snapshot
            if -neg_type == TYPE_DELETION:
                return True, None
            return True, value
        return False, None

    def entries(self) -> Iterator[tuple[InternalKey, bytes]]:
        """All entries in internal-key order (for flush and scans)."""
        for (ukey, neg_seq, neg_type), value in self._table:
            yield InternalKey(ukey, -neg_seq, -neg_type), value

    def entries_from(self, seek: InternalKey) -> Iterator[tuple[InternalKey, bytes]]:
        """Entries starting at the first internal key >= ``seek``."""
        for (ukey, neg_seq, neg_type), value in self._table.seek(seek.sort_key):
            yield InternalKey(ukey, -neg_seq, -neg_type), value
