"""A LevelDB-like LSM-tree engine, written from scratch.

This is the substrate the paper's three stores share: a skiplist
memtable, a write-ahead log with LevelDB's block/record framing,
SSTables with prefix-compressed blocks, restart points, a per-table
bloom filter, a leveled version set with size-scored compaction picking,
and merging iterators for reads and compactions.

The engine is placement-agnostic (it talks to a
:class:`~repro.fs.storage.Storage`) and exposes two hooks the paper's
contribution plugs into:

* ``Options.use_sets`` -- compaction outputs are handed to the storage
  as one group (a *set*) and compaction inputs are prefetched with whole
  -file sequential reads instead of interleaved block reads;
* ``Options.victim_policy`` -- set-aware victim selection that prefers
  compacting the set with the most invalidated members.
"""

from repro.lsm.options import Options
from repro.lsm.db import DB, CompactionRecord
from repro.lsm.ikey import InternalKey, TYPE_DELETION, TYPE_VALUE
from repro.lsm.verify import VerifyReport, verify_db
from repro.lsm.wal import WriteBatch

__all__ = [
    "DB",
    "CompactionRecord",
    "InternalKey",
    "Options",
    "TYPE_DELETION",
    "TYPE_VALUE",
    "VerifyReport",
    "WriteBatch",
    "verify_db",
]
