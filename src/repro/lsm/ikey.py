"""Internal keys.

Like LevelDB, every entry the engine stores is keyed by an *internal
key*: the user key plus a monotonically increasing sequence number and a
value/deletion type tag.  Ordering is user key ascending, then sequence
number **descending** (newest first), then type descending, so a scan
positioned at ``(key, seq=snapshot)`` sees the newest visible version
first.

The serialized form appends an 8-byte little-endian trailer
``(seq << 8) | type`` to the user key, again following LevelDB.
Comparisons always happen on the decoded tuple -- byte order of the
trailer is not meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CorruptionError
from repro.util.varint import decode_fixed64, encode_fixed64

TYPE_DELETION = 0
TYPE_VALUE = 1

#: the largest sequence number the trailer can carry
MAX_SEQUENCE = (1 << 56) - 1


@dataclass(frozen=True)
class InternalKey:
    """A decoded internal key."""

    user_key: bytes
    sequence: int
    type: int

    def __post_init__(self) -> None:
        if not 0 <= self.sequence <= MAX_SEQUENCE:
            raise ValueError(f"sequence {self.sequence} out of range")
        if self.type not in (TYPE_DELETION, TYPE_VALUE):
            raise ValueError(f"bad type {self.type}")

    def encode(self) -> bytes:
        return self.user_key + encode_fixed64((self.sequence << 8) | self.type)

    @property
    def sort_key(self) -> tuple[bytes, int, int]:
        """Tuple whose natural ordering is the internal-key ordering."""
        return (self.user_key, -self.sequence, -self.type)

    def __lt__(self, other: "InternalKey") -> bool:
        return self.sort_key < other.sort_key

    def __le__(self, other: "InternalKey") -> bool:
        return self.sort_key <= other.sort_key


def decode_internal_key(data: bytes) -> InternalKey:
    """Parse the serialized ``user_key + trailer`` form."""
    if len(data) < 8:
        raise CorruptionError(f"internal key too short: {len(data)} bytes")
    trailer = decode_fixed64(data, len(data) - 8)
    return InternalKey(bytes(data[:-8]), trailer >> 8, trailer & 0xFF)


def lookup_key(user_key: bytes, snapshot_sequence: int) -> InternalKey:
    """The internal key a ``get`` at ``snapshot_sequence`` seeks to.

    TYPE_VALUE is the largest type tag, so this key sorts before every
    entry for ``user_key`` with sequence <= snapshot.
    """
    return InternalKey(user_key, snapshot_sequence, TYPE_VALUE)
