"""A probabilistic skiplist, the memtable's ordered index.

Keys are arbitrary comparable Python objects (the memtable stores
internal-key sort tuples).  Insertion and search are ``O(log n)``
expected; iteration is in key order.  Duplicate keys are rejected --
the memtable never produces them because every entry carries a unique
sequence number.

The level generator is seeded so a run is exactly reproducible.
"""

from __future__ import annotations

import random
from typing import Any, Iterator

from repro.errors import InvariantViolation

_MAX_HEIGHT = 12
_BRANCHING = 4


class _Node:
    __slots__ = ("key", "value", "next")

    def __init__(self, key: Any, value: Any, height: int) -> None:
        self.key = key
        self.value = value
        self.next: list[_Node | None] = [None] * height


class SkipList:
    """Sorted map with ``O(log n)`` expected insert and lookup."""

    def __init__(self, seed: int = 0) -> None:
        self._head = _Node(None, None, _MAX_HEIGHT)
        self._height = 1
        self._rng = random.Random(seed)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def _random_height(self) -> int:
        height = 1
        while height < _MAX_HEIGHT and self._rng.randrange(_BRANCHING) == 0:
            height += 1
        return height

    def _find_greater_or_equal(self, key: Any,
                               prev: list[_Node] | None = None) -> _Node | None:
        node = self._head
        level = self._height - 1
        while True:
            nxt = node.next[level]
            if nxt is not None and nxt.key < key:
                node = nxt
            else:
                if prev is not None:
                    prev[level] = node
                if level == 0:
                    return nxt
                level -= 1

    def insert(self, key: Any, value: Any) -> None:
        """Insert ``key`` -> ``value``; raises on duplicate keys."""
        prev: list[_Node] = [self._head] * _MAX_HEIGHT
        node = self._find_greater_or_equal(key, prev)
        if node is not None and node.key == key:
            raise InvariantViolation(f"duplicate skiplist key {key!r}")
        height = self._random_height()
        if height > self._height:
            for level in range(self._height, height):
                prev[level] = self._head
            self._height = height
        new = _Node(key, value, height)
        for level in range(height):
            new.next[level] = prev[level].next[level]
            prev[level].next[level] = new
        self._size += 1

    def get(self, key: Any) -> Any:
        """Value for ``key``, or ``None`` when absent."""
        node = self._find_greater_or_equal(key)
        if node is not None and node.key == key:
            return node.value
        return None

    def seek(self, key: Any) -> Iterator[tuple[Any, Any]]:
        """Iterate ``(key, value)`` pairs starting at the first key >= ``key``."""
        node = self._find_greater_or_equal(key)
        while node is not None:
            yield node.key, node.value
            node = node.next[0]

    def __iter__(self) -> Iterator[tuple[Any, Any]]:
        node = self._head.next[0]
        while node is not None:
            yield node.key, node.value
            node = node.next[0]

    def check_invariants(self) -> None:
        """Verify ordering on every level (test hook)."""
        for level in range(self._height):
            node = self._head.next[level]
            prev_key = None
            while node is not None:
                if prev_key is not None and not prev_key < node.key:
                    raise InvariantViolation(
                        f"level {level} out of order: {prev_key!r} !< {node.key!r}"
                    )
                prev_key = node.key
                node = node.next[level]
