"""Merging iterators and the user-facing DB iterator.

:func:`merge_iterators` performs a k-way merge of sources that each
yield ``(InternalKey, value)`` in internal-key order -- the workhorse of
both compactions and scans.

:class:`DBIterator` layers MVCC visibility on a merged stream: entries
newer than the snapshot are skipped, only the newest visible version of
each user key is surfaced, and tombstones suppress the key entirely.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Iterator

from repro.lsm.ikey import InternalKey, TYPE_DELETION


def merge_iterators(
    sources: list[Iterator[tuple[InternalKey, bytes]]],
) -> Iterator[tuple[InternalKey, bytes]]:
    """K-way merge by internal-key order.

    Internal keys are globally unique (unique sequence numbers), so no
    tie-breaking between sources is ever required; the source index in
    the heap entries only prevents Python from comparing values.
    """
    heap: list[tuple[tuple, int, InternalKey, bytes, Iterator]] = []
    for idx, src in enumerate(sources):
        for ikey, value in src:
            heap.append((ikey.sort_key, idx, ikey, value, src))
            break
    heapq.heapify(heap)
    while heap:
        _sort_key, idx, ikey, value, src = heapq.heappop(heap)
        yield ikey, value
        for next_ikey, next_value in src:
            heapq.heappush(heap, (next_ikey.sort_key, idx, next_ikey, next_value, src))
            break


class DBIterator:
    """Iterates live ``(user_key, value)`` pairs visible at a snapshot."""

    def __init__(self, merged: Iterator[tuple[InternalKey, bytes]],
                 snapshot_sequence: int) -> None:
        self._merged = merged
        self._snapshot = snapshot_sequence

    def __iter__(self) -> Iterator[tuple[bytes, bytes]]:
        current_user_key: bytes | None = None
        for ikey, value in self._merged:
            if ikey.sequence > self._snapshot:
                continue
            if ikey.user_key == current_user_key:
                continue  # an older version of a key already emitted/suppressed
            current_user_key = ikey.user_key
            if ikey.type == TYPE_DELETION:
                continue
            yield ikey.user_key, value


def take_range(pairs: Iterable[tuple[bytes, bytes]], start: bytes | None,
               end: bytes | None, limit: int | None = None
               ) -> Iterator[tuple[bytes, bytes]]:
    """Clip a sorted ``(key, value)`` stream to ``[start, end)`` and ``limit``."""
    if limit is not None and limit <= 0:
        return
    count = 0
    for key, value in pairs:
        if start is not None and key < start:
            continue
        if end is not None and key >= end:
            break
        yield key, value
        count += 1
        if limit is not None and count >= limit:
            break
