"""Compaction picking and the merge/dedup logic.

Picking follows LevelDB: L0 is scored by file count against the
trigger, deeper levels by total bytes against the level's budget; the
level with the highest score >= 1 compacts.  Victim choice at sorted
levels is round-robin via a per-level key pointer, or -- the paper's
set-aware policy -- "gives priority to compact the set with more
invalid SSTables" so partially dead on-disk sets fade (and their space
is reclaimed) sooner.

The victim file plus its overlapping files at the next level make up
the paper's *compaction unit* (victim + set).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.lsm.ikey import InternalKey, TYPE_DELETION
from repro.lsm.options import Options
from repro.lsm.version import FileMetaData, Version, VersionSet


@dataclass
class Compaction:
    """One unit of compaction work: ``level`` -> ``output_level``.

    ``output_level`` defaults to ``level + 1``; SMRDB's last-level
    self-merges use ``output_level == level``.
    """

    level: int
    inputs: list[FileMetaData]
    overlaps: list[FileMetaData] = field(default_factory=list)
    output_level: int = -1

    def __post_init__(self) -> None:
        if self.output_level < 0:
            self.output_level = self.level + 1

    @property
    def all_files(self) -> list[FileMetaData]:
        return self.inputs + self.overlaps

    @property
    def input_bytes(self) -> int:
        return sum(f.size for f in self.all_files)

    def is_trivial_move(self) -> bool:
        """A single input with nothing to merge can simply change levels."""
        return (len(self.inputs) == 1 and not self.overlaps
                and self.output_level != self.level)

    def user_range(self) -> tuple[bytes, bytes]:
        smallest = min(f.smallest.user_key for f in self.inputs)
        largest = max(f.largest.user_key for f in self.inputs)
        return smallest, largest


class CompactionPicker:
    """Chooses what to compact next, if anything."""

    def __init__(self, options: Options, versions: VersionSet) -> None:
        self.options = options
        self.versions = versions

    def compaction_score(self, version: Version, level: int) -> float:
        """Pressure at ``level``; >= 1.0 means compaction is due."""
        if level == 0:
            return len(version.files[0]) / self.options.l0_compaction_trigger
        return version.level_bytes(level) / self.options.level_bytes_limit(level)

    def pick(self, invalid_count_fn: Callable[[str], int] | None = None
             ) -> Compaction | None:
        """The most pressing compaction, or ``None`` when balanced.

        ``invalid_count_fn`` maps a file name to the number of invalid
        members in its on-disk set (used by the ``invalid-set-first``
        victim policy; pass ``None`` otherwise).
        """
        version = self.versions.current
        if self.options.style == "two-tier":
            return self._pick_two_tier(version)
        best_level, best_score = -1, 0.0
        # the last level never compacts downward; ties go to the
        # shallower level (L0 pressure stalls writes first)
        for level in range(self.options.max_levels - 1):
            score = self.compaction_score(version, level)
            if score > best_score:
                best_level, best_score = level, score
        if best_level < 0 or best_score < 1.0:
            return None
        if best_level == 0:
            return self._pick_l0(version)
        return self._pick_level(version, best_level, invalid_count_fn)

    def _pick_two_tier(self, version: Version) -> Compaction | None:
        """SMRDB's schedule: dump L0 runs into L1 when the trigger
        fires; merge all of L1 when it accumulates too many runs."""
        l0, l1 = version.files[0], version.files[1]
        runs = {f.run for f in l1}
        if len(runs) >= self.options.tier_merge_trigger and len(l1) >= 2:
            # The rare, enormous whole-level merge (Fig. 10).
            return Compaction(1, list(l1), [], output_level=1)
        if len(l0) >= self.options.l0_compaction_trigger:
            ordered = sorted(l0, key=lambda f: f.number)
            if _mutually_disjoint(ordered):
                # Sequential load: promote runs one by one without I/O.
                return Compaction(0, [ordered[0]], [], output_level=1)
            # All L0 runs merge into one new (overlapping-allowed) L1 run.
            return Compaction(0, list(l0), [], output_level=1)
        return None

    def _pick_l0(self, version: Version) -> Compaction:
        """All mutually overlapping L0 files plus their L1 overlap."""
        l0 = list(version.files[0])
        seed = min(l0, key=lambda f: f.number)
        begin, end = seed.smallest.user_key, seed.largest.user_key
        chosen = [seed]
        changed = True
        while changed:
            changed = False
            for f in l0:
                if f in chosen:
                    continue
                if f.overlaps_user_range(begin, end):
                    chosen.append(f)
                    begin = min(begin, f.smallest.user_key)
                    end = max(end, f.largest.user_key)
                    changed = True
        overlaps = version.overlapping_files(1, begin, end)
        chosen.sort(key=lambda f: f.number)
        return Compaction(0, chosen, overlaps)

    def _pick_level(self, version: Version, level: int,
                    invalid_count_fn: Callable[[str], int] | None) -> Compaction:
        files = version.files[level]
        victim = None
        if (self.options.victim_policy == "invalid-set-first"
                and invalid_count_fn is not None):
            scored = [(invalid_count_fn(f.name), f) for f in files]
            best_invalid = max(score for score, _f in scored)
            if best_invalid > 0:
                victim = max(scored, key=lambda pair: pair[0])[1]
        if victim is None:
            pointer = self.versions.compact_pointer[level]
            if pointer is not None:
                for f in files:
                    if f.largest.user_key > pointer:
                        victim = f
                        break
            if victim is None:
                victim = files[0]
        overlaps = version.overlapping_files(
            level + 1, victim.smallest.user_key, victim.largest.user_key
        )
        return Compaction(level, [victim], overlaps)


def _mutually_disjoint(files: list[FileMetaData]) -> bool:
    ordered = sorted(files, key=lambda f: f.smallest.user_key)
    return all(a.largest.user_key < b.smallest.user_key
               for a, b in zip(ordered, ordered[1:]))


def compact_entries(
    merged: Iterator[tuple[InternalKey, bytes]],
    is_base_level_for: Callable[[bytes], bool],
) -> Iterator[tuple[InternalKey, bytes]]:
    """Drop shadowed versions and dead tombstones from a merged stream.

    Only the newest version of each user key survives.  A surviving
    tombstone is emitted unless no deeper level can contain the key, in
    which case it has nothing left to shadow and is dropped.

    Assumes no snapshot pins old versions during compaction (the
    simulated DB takes snapshots only between operations).
    """
    last_user_key: bytes | None = None
    for ikey, value in merged:
        if ikey.user_key == last_user_key:
            continue  # older, shadowed version
        last_user_key = ikey.user_key
        if ikey.type == TYPE_DELETION and is_base_level_for(ikey.user_key):
            continue
        yield ikey, value
