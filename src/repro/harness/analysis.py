"""Introspection and analysis of a running store.

LevelDB exposes ``GetProperty("leveldb.stats")``; this module provides
the equivalent for any :class:`~repro.kvstore.KVStoreBase` -- per-level
structure, per-level compaction traffic, drive-side counters -- plus
helpers the experiments use for deeper digging.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.harness.report import render_table
from repro.kvstore import KVStoreBase

MiB = 1024 * 1024


@dataclass
class LevelStats:
    """Structure and traffic of one LSM level."""

    level: int
    files: int = 0
    bytes: int = 0
    compactions_from: int = 0
    bytes_compacted_from: int = 0
    trivial_moves_from: int = 0


@dataclass
class StoreAnalysis:
    """Full snapshot of a store's structural state."""

    store: str
    levels: list[LevelStats] = field(default_factory=list)
    total_files: int = 0
    total_bytes: int = 0
    flushes: int = 0
    flush_bytes: int = 0
    wa: float = 0.0
    awa: float = 0.0
    mwa: float = 0.0
    device_reads: int = 0
    device_writes: int = 0
    seeks: int = 0
    busy_time: float = 0.0
    block_cache_hit_rate: float = 0.0


def analyze(store: KVStoreBase) -> StoreAnalysis:
    """Collect the full structural/traffic snapshot for ``store``."""
    version = store.db.versions.current
    per_level: dict[int, LevelStats] = {
        level: LevelStats(level,
                          files=len(version.files[level]),
                          bytes=version.level_bytes(level))
        for level in range(version.num_levels)
    }
    for record in store.compaction_records:
        stats = per_level[record.level]
        if record.trivial_move:
            stats.trivial_moves_from += 1
        else:
            stats.compactions_from += 1
            stats.bytes_compacted_from += record.input_bytes

    drive_stats = store.drive.stats
    cache = store.db.block_cache
    return StoreAnalysis(
        store=store.name,
        levels=[per_level[level] for level in sorted(per_level)],
        total_files=version.num_files(),
        total_bytes=version.total_bytes(),
        flushes=len(store.db.flush_records),
        flush_bytes=store.tracker.flush_bytes,
        wa=store.wa(),
        awa=store.awa(),
        mwa=store.mwa(),
        device_reads=drive_stats.bytes_read,
        device_writes=drive_stats.bytes_written,
        seeks=drive_stats.seeks,
        busy_time=drive_stats.busy_time,
        block_cache_hit_rate=cache.hit_rate if cache is not None else 0.0,
    )


def stats_string(store: KVStoreBase) -> str:
    """A ``leveldb.stats``-style report for humans."""
    a = analyze(store)
    rows = [[s.level, s.files, s.bytes / MiB, s.compactions_from,
             s.trivial_moves_from, s.bytes_compacted_from / MiB]
            for s in a.levels]
    table = render_table(
        f"{a.store} level structure",
        ["level", "files", "MiB", "compactions", "moves", "compacted MiB"],
        rows,
    )
    footer = (
        f"totals: {a.total_files} files, {a.total_bytes / MiB:.2f} MiB live, "
        f"{a.flushes} flushes\n"
        f"amplification: WA={a.wa:.2f}x AWA={a.awa:.2f}x MWA={a.mwa:.2f}x\n"
        f"device: read {a.device_reads / MiB:.1f} MiB, "
        f"wrote {a.device_writes / MiB:.1f} MiB, {a.seeks:,} seeks, "
        f"busy {a.busy_time:.1f}s\n"
        f"block cache hit rate: {a.block_cache_hit_rate:.1%}"
    )
    return table + "\n" + footer


def compaction_histogram(store: KVStoreBase,
                         bucket_seconds: float = 1.0) -> dict[float, int]:
    """Latency histogram of real compactions (Fig. 10a's distribution)."""
    histogram: dict[float, int] = defaultdict(int)
    for record in store.real_compactions():
        bucket = int(record.latency / bucket_seconds) * bucket_seconds
        histogram[bucket] += 1
    return dict(sorted(histogram.items()))


def bytes_by_level_flow(store: KVStoreBase) -> dict[tuple[int, int], int]:
    """Bytes moved between level pairs ``(from, to)`` by compactions."""
    flow: dict[tuple[int, int], int] = defaultdict(int)
    for record in store.real_compactions():
        flow[(record.level, record.output_level)] += record.output_bytes
    return dict(sorted(flow.items()))
