"""Measurement helpers: compaction summaries, band counting, layouts."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.kvstore import KVStoreBase
from repro.lsm.db import CompactionRecord
from repro.smr.fixed_band import FixedBandSMRDrive


@dataclass
class WorkloadResult:
    """Generic outcome of one workload phase against one store."""

    store: str
    workload: str
    ops: int
    sim_seconds: float

    @property
    def ops_per_sec(self) -> float:
        return self.ops / self.sim_seconds if self.sim_seconds > 0 else 0.0


@dataclass
class ShardTimeline:
    """Simulated seconds spent per shard over one phase (or since
    construction), with the two aggregates a sharded run reports:
    ``max_seconds`` — the parallel wall-clock (slowest shard) — and
    ``total_seconds`` — aggregate device-seconds across all drives."""

    per_shard: list[float] = field(default_factory=list)

    @property
    def max_seconds(self) -> float:
        return max(self.per_shard) if self.per_shard else 0.0

    @property
    def total_seconds(self) -> float:
        return sum(self.per_shard)

    @property
    def balance(self) -> float:
        """Mean/max shard time: 1.0 = perfectly balanced load."""
        if not self.per_shard or self.max_seconds == 0.0:
            return 1.0
        return (self.total_seconds / len(self.per_shard)) / self.max_seconds

    def render(self) -> str:
        cells = " ".join(f"{s:.3f}" for s in self.per_shard)
        return (f"shards=[{cells}] max={self.max_seconds:.3f}s "
                f"total={self.total_seconds:.3f}s balance={self.balance:.2f}")


@dataclass
class CompactionSummary:
    """Aggregate compaction behaviour of one run (Fig. 10)."""

    count: int = 0
    total_latency: float = 0.0
    total_input_bytes: int = 0
    total_output_bytes: int = 0
    total_input_files: int = 0
    total_output_files: int = 0
    latencies: list[float] = field(default_factory=list)

    @property
    def avg_latency(self) -> float:
        return self.total_latency / self.count if self.count else 0.0

    @property
    def avg_input_bytes(self) -> float:
        return self.total_input_bytes / self.count if self.count else 0.0

    @property
    def avg_input_files(self) -> float:
        return self.total_input_files / self.count if self.count else 0.0

    @property
    def avg_output_files(self) -> float:
        return self.total_output_files / self.count if self.count else 0.0


def summarize_compactions(records: list[CompactionRecord]) -> CompactionSummary:
    """Aggregate non-trivial compactions."""
    summary = CompactionSummary()
    for record in records:
        if record.trivial_move:
            continue
        summary.count += 1
        summary.total_latency += record.latency
        summary.total_input_bytes += record.input_bytes
        summary.total_output_bytes += record.output_bytes
        summary.total_input_files += record.num_input_files
        summary.total_output_files += record.num_output_files
        summary.latencies.append(record.latency)
    return summary


class CompactionEventLog:
    """Bus subscriber that rebuilds the Fig. 10 aggregates from
    ``compaction.end`` events instead of reading store internals.

    Attach before the workload::

        log = CompactionEventLog()
        store.obs.subscribe(log, events=CompactionEventLog.EVENTS)

    then read :meth:`summary` (non-trivial compactions only).
    """

    EVENTS = frozenset({"compaction.end"})

    def __init__(self) -> None:
        self.events: list = []

    def __call__(self, event) -> None:
        self.events.append(event)

    @property
    def real_events(self) -> list:
        return [e for e in self.events if not e.trivial_move]

    def summary(self) -> CompactionSummary:
        summary = CompactionSummary()
        for e in self.real_events:
            summary.count += 1
            summary.total_latency += e.duration
            summary.total_input_bytes += e.input_bytes
            summary.total_output_bytes += e.output_bytes
            summary.total_input_files += e.num_inputs
            summary.total_output_files += e.num_outputs
            summary.latencies.append(e.duration)
        return summary


def bands_written_per_compaction(store: KVStoreBase) -> list[int]:
    """For each real compaction, the number of distinct SMR bands its
    output SSTables were written into (Fig. 3a)."""
    drive = store.drive
    if not isinstance(drive, FixedBandSMRDrive):
        raise TypeError("band counting requires a fixed-band SMR drive")
    counts: list[int] = []
    for record in store.real_compactions():
        bands: set[int] = set()
        for extents in record.output_extents:
            for ext in extents:
                first = drive.band_of(ext.start)
                last = drive.band_of(ext.end - 1) if ext.length else first
                bands.update(range(first, last + 1))
        counts.append(len(bands))
    return counts


def output_offsets_per_compaction(store: KVStoreBase) -> list[list[int]]:
    """Physical start offsets of each compaction's output SSTables
    (the scatter data of Fig. 2 and Fig. 11)."""
    offsets: list[list[int]] = []
    for record in store.real_compactions():
        row = [ext.start for extents in record.output_extents for ext in extents]
        offsets.append(row)
    return offsets


def compaction_span(record: CompactionRecord) -> int:
    """Distance covered by one compaction's I/O (scatter width)."""
    positions = [ext.start for extents in record.input_extents + record.output_extents
                 for ext in extents]
    if not positions:
        return 0
    return max(positions) - min(positions)


def contiguous_output_fraction(store: KVStoreBase) -> float:
    """Fraction of real compactions whose outputs form one contiguous run."""
    records = store.real_compactions()
    if not records:
        return 1.0
    contiguous = 0
    for record in records:
        extents = sorted(
            (ext for extents in record.output_extents for ext in extents),
            key=lambda e: e.start,
        )
        ok = all(a.end == b.start for a, b in zip(extents, extents[1:]))
        if ok:
            contiguous += 1
    return contiguous / len(records)
