"""Text plots and CSV export for the experiment figures.

The paper's figures are scatter plots (Figs. 2, 10a, 11), bar charts
(Figs. 8, 9, 12, 14), and line series (Fig. 3).  For a dependency-free
repository the renderers here draw them as ASCII; the CSV writers dump
the underlying series so any external plotting tool can regenerate the
actual figures.
"""

from __future__ import annotations

import csv
import io
import pathlib
from typing import Iterable, Mapping, Sequence


def ascii_scatter(points: Iterable[tuple[float, float]], *,
                  width: int = 72, height: int = 20,
                  title: str = "", xlabel: str = "", ylabel: str = "",
                  marker: str = "*") -> str:
    """Scatter plot of ``(x, y)`` points on a character grid."""
    pts = list(points)
    if not pts:
        return f"{title}\n(no data)"
    xs = [p[0] for p in pts]
    ys = [p[1] for p in pts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in pts:
        col = int((x - x_lo) / x_span * (width - 1))
        row = int((y - y_lo) / y_span * (height - 1))
        grid[height - 1 - row][col] = marker
    lines = []
    if title:
        lines.append(title)
    top_label = f"{y_hi:g}"
    bottom_label = f"{y_lo:g}"
    pad = max(len(top_label), len(bottom_label), len(ylabel))
    for i, row in enumerate(grid):
        if i == 0:
            label = top_label
        elif i == height - 1:
            label = bottom_label
        elif i == height // 2 and ylabel:
            label = ylabel
        else:
            label = ""
        lines.append(f"{label:>{pad}} |" + "".join(row))
    lines.append(" " * pad + " +" + "-" * width)
    x_axis = f"{x_lo:g}".ljust(width - 10) + f"{x_hi:g}"
    lines.append(" " * pad + "  " + x_axis)
    if xlabel:
        lines.append(" " * pad + "  " + xlabel.center(width))
    return "\n".join(lines)


def ascii_series(series: Mapping[str, Sequence[float]], *,
                 width: int = 72, height: int = 16,
                 title: str = "") -> str:
    """Overlay several named y-series (x = index) with distinct markers."""
    markers = "*o+x#@%&"
    blocks = [title] if title else []
    all_points = []
    for index, (name, values) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        blocks.append(f"  {marker} = {name}")
        all_points.append((marker, values))
    if not all_points or all(not v for _m, v in all_points):
        blocks.append("(no data)")
        return "\n".join(blocks)
    y_lo = min(min(v) for _m, v in all_points if v)
    y_hi = max(max(v) for _m, v in all_points if v)
    y_span = (y_hi - y_lo) or 1.0
    n = max(len(v) for _m, v in all_points)
    grid = [[" "] * width for _ in range(height)]
    for marker, values in all_points:
        for i, y in enumerate(values):
            col = int(i / max(1, n - 1) * (width - 1))
            row = int((y - y_lo) / y_span * (height - 1))
            grid[height - 1 - row][col] = marker
    pad = max(len(f"{y_hi:g}"), len(f"{y_lo:g}"))
    for i, row in enumerate(grid):
        label = (f"{y_hi:g}" if i == 0
                 else f"{y_lo:g}" if i == height - 1 else "")
        blocks.append(f"{label:>{pad}} |" + "".join(row))
    blocks.append(" " * pad + " +" + "-" * width)
    return "\n".join(blocks)


def disk_layout_map(extents: Iterable[tuple[int, int, str]], capacity: int,
                    *, width: int = 96, title: str = "") -> str:
    """One-line-per-state map of the disk: which regions hold what.

    ``extents`` are ``(start, end, tag)`` with single-character tags
    (e.g. ``#`` data, ``.`` free, ``g`` guard).  Later extents overwrite
    earlier ones on the map.
    """
    cells = [" "] * width
    for start, end, tag in extents:
        lo = int(start / capacity * width)
        hi = max(lo + 1, int(end / capacity * width))
        for i in range(lo, min(hi, width)):
            cells[i] = tag[0]
    body = "".join(cells)
    return (f"{title}\n|{body}|" if title else f"|{body}|")


def to_csv(headers: Sequence[str], rows: Iterable[Sequence[object]],
           path: str | pathlib.Path | None = None) -> str:
    """Render rows as CSV text; optionally write them to ``path``."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(headers)
    for row in rows:
        writer.writerow(row)
    text = buf.getvalue()
    if path is not None:
        pathlib.Path(path).write_text(text)
    return text
