"""Experiment harness: scale profiles, runners, metrics, and reporting."""

from repro.harness.profiles import ScaleProfile, DEFAULT_PROFILE, SMALL_PROFILE
from repro.harness.metrics import (
    CompactionSummary,
    WorkloadResult,
    bands_written_per_compaction,
    compaction_span,
    contiguous_output_fraction,
    output_offsets_per_compaction,
    summarize_compactions,
)
from repro.harness.runner import ExperimentRunner, STORE_KINDS, make_store
from repro.harness.report import render_table, normalize
from repro.harness.compare import ComparisonResult, SampleStats, compare
from repro.harness.analysis import analyze, stats_string

__all__ = [
    "CompactionSummary",
    "ComparisonResult",
    "SampleStats",
    "analyze",
    "compare",
    "stats_string",
    "DEFAULT_PROFILE",
    "ExperimentRunner",
    "STORE_KINDS",
    "ScaleProfile",
    "SMALL_PROFILE",
    "WorkloadResult",
    "bands_written_per_compaction",
    "compaction_span",
    "contiguous_output_fraction",
    "make_store",
    "normalize",
    "output_offsets_per_compaction",
    "render_table",
    "summarize_compactions",
]
