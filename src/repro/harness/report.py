"""Fixed-width table rendering for benchmark output.

Benchmarks print paper-style tables (rows = stores, columns = metrics)
so EXPERIMENTS.md can record paper-vs-measured side by side.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def render_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned text table with a title rule."""
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [title, "=" * len(title)]
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value >= 1000:
            return f"{value:,.0f}"
        return f"{value:.2f}"
    return str(value)


def normalize(values: Mapping[str, float], base: str) -> dict[str, float]:
    """Scale every value so ``values[base] == 1.0`` (the paper's
    "normalized to LevelDB" presentation)."""
    denom = values[base]
    if denom == 0:
        raise ZeroDivisionError(f"baseline {base!r} measured zero")
    return {key: value / denom for key, value in values.items()}
