"""Scale profiles: the paper's hardware-scale parameters mapped down.

The paper runs 100 GB loads with 4 KB values, 4 MB SSTables, and
20-60 MB bands on a 1 TB drive.  A pure-Python simulation keeps every
*ratio* that drives the results and shrinks the absolute bytes:

==========================  ============  ==================
parameter                   paper         profile default
==========================  ============  ==================
SSTable size                4 MB          64 KiB
band size (10 x SSTable)    40 MB         640 KiB
guard region (= SSTable)    4 MB          64 KiB
value size                  4 KB          100 B
key size                    16 B          16 B
amplification factor        10            10
L0 trigger                  4             4
database : SSTable ratio    25600 : 1     scaled per run
==========================  ============  ==================

Experiments name the profile they use, so the scaling is explicit in
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.lsm.options import Options

KiB = 1024
MiB = 1024 * 1024


@dataclass(frozen=True)
class ScaleProfile:
    """A coherent set of scaled sizes for one experiment."""

    name: str
    capacity: int = 256 * MiB
    sstable_size: int = 64 * KiB
    band_size: int = 640 * KiB
    guard_size: int = 64 * KiB
    block_size: int = 4 * KiB
    key_size: int = 16
    value_size: int = 100
    wal_region: int = 640 * KiB
    meta_region: int = 640 * KiB
    l0_compaction_trigger: int = 4
    amplification_factor: int = 10
    level_base_tables: int = 4
    max_levels: int = 7
    block_cache_bytes: int = 2 * MiB
    bloom_bits_per_key: int = 10

    #: the paper's SSTable size; io_scale derives from it
    PAPER_SSTABLE_SIZE = 4 * MiB

    @property
    def write_buffer_size(self) -> int:
        return self.sstable_size

    @property
    def io_scale(self) -> float:
        """How much smaller this profile is than the paper's hardware.

        Drive transfer rates are divided by this factor (see
        :meth:`repro.smr.timing.DriveProfile.scaled`) so that moving a
        scaled band/SSTable costs the same simulated time as moving the
        paper-scale object on the real drive.
        """
        return self.PAPER_SSTABLE_SIZE / self.sstable_size

    @property
    def entry_size(self) -> int:
        return self.key_size + self.value_size

    def entries_for_bytes(self, nbytes: int) -> int:
        """Number of key-value pairs that amount to ``nbytes`` of payload."""
        return max(1, nbytes // self.entry_size)

    #: CPU merge/checksum speed assumed during compactions (~140 MB/s
    #: per core); the per-byte cost is multiplied by io_scale so the
    #: simulated CPU:disk time ratio matches hardware scale
    CPU_SECONDS_PER_BYTE = 7e-9

    def options(self, **overrides) -> Options:
        """Engine options derived from this profile."""
        base = Options(
            write_buffer_size=self.write_buffer_size,
            sstable_size=self.sstable_size,
            block_size=self.block_size,
            bloom_bits_per_key=self.bloom_bits_per_key,
            l0_compaction_trigger=self.l0_compaction_trigger,
            max_levels=self.max_levels,
            base_level_bytes=self.level_base_tables * self.sstable_size,
            amplification_factor=self.amplification_factor,
            block_cache_bytes=self.block_cache_bytes,
            compaction_cpu_per_byte=self.CPU_SECONDS_PER_BYTE * self.io_scale,
        )
        if overrides:
            base = replace(base, **overrides)
        return base

    def scaled(self, **changes) -> "ScaleProfile":
        """A copy with some fields replaced."""
        return replace(self, **changes)


#: default scale for benchmarks (multi-level trees, minutes of runtime);
#: calibrated so the Fig. 8 / Fig. 12 shapes match the paper at 8-32 MiB
#: database sizes (paper scale / 128)
DEFAULT_PROFILE = ScaleProfile(
    name="default",
    capacity=192 * MiB,
    sstable_size=32 * KiB,
    band_size=320 * KiB,
    guard_size=32 * KiB,
    block_size=2 * KiB,
    value_size=100,
    wal_region=640 * KiB,
    meta_region=640 * KiB,
    block_cache_bytes=1 * MiB,
)

#: small scale for unit/integration tests (seconds of runtime)
SMALL_PROFILE = ScaleProfile(
    name="small",
    capacity=32 * MiB,
    sstable_size=8 * KiB,
    band_size=80 * KiB,
    guard_size=8 * KiB,
    block_size=1 * KiB,
    value_size=64,
    wal_region=80 * KiB,
    meta_region=80 * KiB,
    block_cache_bytes=256 * KiB,
)
