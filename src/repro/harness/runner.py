"""Store factory and the cross-store experiment runner."""

from __future__ import annotations

import warnings
from typing import Callable

from repro.harness.metrics import WorkloadResult
from repro.harness.profiles import DEFAULT_PROFILE, ScaleProfile
from repro.kvstore import KVStoreBase
from repro.registry import open_store
from repro.workloads.generators import KeyValueGenerator
from repro.workloads.microbench import MicroBenchmark

#: the paper's four configurations plus the ZoneKV (ZBC/ZNS) extension
STORE_KINDS = ("leveldb", "smrdb", "leveldb+sets", "sealdb", "zonekv")


def make_store(kind: str, profile: ScaleProfile = DEFAULT_PROFILE,
               **kwargs) -> KVStoreBase:
    """Deprecated alias for :func:`repro.open` (the store registry).

    Kept for backward compatibility; new code should call
    ``repro.open(kind, profile=..., **overrides)``.
    """
    warnings.warn("make_store() is deprecated; use repro.open()",
                  DeprecationWarning, stacklevel=2)
    from repro.registry import open_store
    return open_store(kind, profile=profile, **kwargs)


class ExperimentRunner:
    """Runs the micro suite (or custom phases) across several stores.

    Every store gets a *fresh* instance per phase sequence, mirroring
    the paper's methodology (each basic-performance bar is measured on
    its own database).
    """

    def __init__(self, profile: ScaleProfile = DEFAULT_PROFILE,
                 store_kinds: tuple[str, ...] = ("leveldb", "smrdb", "sealdb"),
                 seed: int = 0, shards: int = 1, router: str = "hash") -> None:
        self.profile = profile
        self.store_kinds = store_kinds
        self.seed = seed
        self.shards = shards
        self.router = router
        self.stores: dict[str, KVStoreBase] = {}

    def open(self, kind: str) -> KVStoreBase:
        """One fresh store (sharded when the runner is configured so)."""
        return open_store(kind, profile=self.profile, shards=self.shards,
                          router=self.router)

    def kv(self) -> KeyValueGenerator:
        return KeyValueGenerator(self.profile.key_size, self.profile.value_size)

    def run_micro_suite(self, db_bytes: int, read_ops: int
                        ) -> dict[str, dict[str, WorkloadResult]]:
        """Fig. 8: the four basic workloads for every store.

        Returns ``results[workload][store_name]``.  Reads run against
        the random-loaded database, as in the paper.
        """
        num_entries = self.profile.entries_for_bytes(db_bytes)
        bench = MicroBenchmark(self.kv(), num_entries, seed=self.seed)
        results: dict[str, dict[str, WorkloadResult]] = {
            w: {} for w in ("fillseq", "fillrandom", "readseq", "readrandom")
        }
        for kind in self.store_kinds:
            seq_store = self.open(kind)
            r = bench.fill_seq(seq_store)
            results["fillseq"][seq_store.name] = WorkloadResult(
                seq_store.name, r.workload, r.ops, r.sim_seconds)

            rand_store = self.open(kind)
            r = bench.fill_random(rand_store)
            results["fillrandom"][rand_store.name] = WorkloadResult(
                rand_store.name, r.workload, r.ops, r.sim_seconds)
            self.stores[rand_store.name] = rand_store

            r = bench.read_seq(rand_store, read_ops)
            results["readseq"][rand_store.name] = WorkloadResult(
                rand_store.name, r.workload, r.ops, r.sim_seconds)

            r = bench.read_random(rand_store, read_ops)
            results["readrandom"][rand_store.name] = WorkloadResult(
                rand_store.name, r.workload, r.ops, r.sim_seconds)
        return results

    def run_custom(self, kind: str,
                   phase: Callable[[KVStoreBase], WorkloadResult]
                   ) -> WorkloadResult:
        store = self.open(kind)
        self.stores[store.name] = store
        return phase(store)
