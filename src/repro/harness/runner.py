"""Store factory and the cross-store experiment runner."""

from __future__ import annotations

from typing import Callable

from repro.errors import ReproError
from repro.harness.metrics import WorkloadResult
from repro.harness.profiles import DEFAULT_PROFILE, ScaleProfile
from repro.kvstore import KVStoreBase
from repro.workloads.generators import KeyValueGenerator
from repro.workloads.microbench import MicroBenchmark

#: the paper's four configurations plus the ZoneKV (ZBC/ZNS) extension
STORE_KINDS = ("leveldb", "smrdb", "leveldb+sets", "sealdb", "zonekv")


def make_store(kind: str, profile: ScaleProfile = DEFAULT_PROFILE,
               **kwargs) -> KVStoreBase:
    """Instantiate a store by name: the paper's four configurations
    ("leveldb", "smrdb", "leveldb+sets", "sealdb") or the zoned-device
    extension ("zonekv")."""
    # Imported here: the store modules import harness.profiles, so a
    # top-level import would be circular.
    from repro.baselines.leveldb import LevelDBStore
    from repro.baselines.leveldb_sets import LevelDBWithSets
    from repro.baselines.smrdb import SMRDBStore
    from repro.baselines.zonekv import ZoneKVStore
    from repro.core.sealdb import SealDB

    kind = kind.lower()
    if kind == "leveldb":
        return LevelDBStore(profile, **kwargs)
    if kind == "smrdb":
        return SMRDBStore(profile, **kwargs)
    if kind == "leveldb+sets":
        return LevelDBWithSets(profile, **kwargs)
    if kind == "sealdb":
        return SealDB(profile, **kwargs)
    if kind == "zonekv":
        return ZoneKVStore(profile, **kwargs)
    raise ReproError(f"unknown store kind {kind!r}; choose from {STORE_KINDS}")


class ExperimentRunner:
    """Runs the micro suite (or custom phases) across several stores.

    Every store gets a *fresh* instance per phase sequence, mirroring
    the paper's methodology (each basic-performance bar is measured on
    its own database).
    """

    def __init__(self, profile: ScaleProfile = DEFAULT_PROFILE,
                 store_kinds: tuple[str, ...] = ("leveldb", "smrdb", "sealdb"),
                 seed: int = 0) -> None:
        self.profile = profile
        self.store_kinds = store_kinds
        self.seed = seed
        self.stores: dict[str, KVStoreBase] = {}

    def kv(self) -> KeyValueGenerator:
        return KeyValueGenerator(self.profile.key_size, self.profile.value_size)

    def run_micro_suite(self, db_bytes: int, read_ops: int
                        ) -> dict[str, dict[str, WorkloadResult]]:
        """Fig. 8: the four basic workloads for every store.

        Returns ``results[workload][store_name]``.  Reads run against
        the random-loaded database, as in the paper.
        """
        num_entries = self.profile.entries_for_bytes(db_bytes)
        bench = MicroBenchmark(self.kv(), num_entries, seed=self.seed)
        results: dict[str, dict[str, WorkloadResult]] = {
            w: {} for w in ("fillseq", "fillrandom", "readseq", "readrandom")
        }
        for kind in self.store_kinds:
            seq_store = make_store(kind, self.profile)
            r = bench.fill_seq(seq_store)
            results["fillseq"][seq_store.name] = WorkloadResult(
                seq_store.name, r.workload, r.ops, r.sim_seconds)

            rand_store = make_store(kind, self.profile)
            r = bench.fill_random(rand_store)
            results["fillrandom"][rand_store.name] = WorkloadResult(
                rand_store.name, r.workload, r.ops, r.sim_seconds)
            self.stores[rand_store.name] = rand_store

            r = bench.read_seq(rand_store, read_ops)
            results["readseq"][rand_store.name] = WorkloadResult(
                rand_store.name, r.workload, r.ops, r.sim_seconds)

            r = bench.read_random(rand_store, read_ops)
            results["readrandom"][rand_store.name] = WorkloadResult(
                rand_store.name, r.workload, r.ops, r.sim_seconds)
        return results

    def run_custom(self, kind: str,
                   phase: Callable[[KVStoreBase], WorkloadResult]
                   ) -> WorkloadResult:
        store = make_store(kind, self.profile)
        self.stores[store.name] = store
        return phase(store)
