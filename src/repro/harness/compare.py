"""Multi-seed A/B comparison harness.

Single-run ratios can be lucky.  :func:`compare` repeats a workload on
two store configurations across several seeds and reports mean, spread,
and a conservative verdict -- the tool behind the stability claims in
EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

from repro.harness.profiles import DEFAULT_PROFILE, ScaleProfile
from repro.harness.report import render_table
from repro.registry import open_store
from repro.kvstore import KVStoreBase


@dataclass
class SampleStats:
    """Mean/spread of one configuration's measurements."""

    values: list[float] = field(default_factory=list)

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values) if self.values else 0.0

    @property
    def stdev(self) -> float:
        if len(self.values) < 2:
            return 0.0
        m = self.mean
        return math.sqrt(sum((v - m) ** 2 for v in self.values)
                         / (len(self.values) - 1))

    @property
    def cv(self) -> float:
        """Coefficient of variation (stdev / mean)."""
        return self.stdev / self.mean if self.mean else 0.0


@dataclass
class ComparisonResult:
    """Outcome of an A/B comparison."""

    metric: str
    a_name: str
    b_name: str
    a: SampleStats
    b: SampleStats
    seeds: list[int]

    @property
    def ratio(self) -> float:
        """Mean(B) / mean(A) -- how much faster/bigger B is."""
        return self.b.mean / self.a.mean if self.a.mean else 0.0

    @property
    def ratio_range(self) -> tuple[float, float]:
        """Per-seed min and max of the B/A ratio."""
        ratios = [b / a for a, b in zip(self.a.values, self.b.values) if a]
        return (min(ratios), max(ratios)) if ratios else (0.0, 0.0)

    @property
    def separated(self) -> bool:
        """True when the per-seed ratio never crosses 1.0."""
        lo, hi = self.ratio_range
        return lo > 1.0 or hi < 1.0

    def render(self) -> str:
        lo, hi = self.ratio_range
        rows = [
            [self.a_name, self.a.mean, self.a.stdev, f"{self.a.cv:.1%}"],
            [self.b_name, self.b.mean, self.b.stdev, f"{self.b.cv:.1%}"],
        ]
        table = render_table(
            f"A/B comparison: {self.metric} over seeds {self.seeds}",
            ["configuration", "mean", "stdev", "cv"], rows)
        verdict = ("stable" if self.separated
                   else "NOT separated (ratio range crosses 1.0)")
        return (f"{table}\n{self.b_name} / {self.a_name}: "
                f"{self.ratio:.2f}x (range {lo:.2f}-{hi:.2f}) -- {verdict}")


def compare(a_kind: str, b_kind: str,
            measure: Callable[[KVStoreBase, int], float], *,
            metric: str = "ops/s",
            seeds: tuple[int, ...] = (0, 1, 2),
            profile: ScaleProfile = DEFAULT_PROFILE) -> ComparisonResult:
    """Measure two store kinds over several seeds.

    ``measure(store, seed)`` runs a workload on a *fresh* store and
    returns one number (e.g. throughput).
    """
    a_stats, b_stats = SampleStats(), SampleStats()
    for seed in seeds:
        a_stats.values.append(measure(open_store(a_kind, profile=profile), seed))
        b_stats.values.append(measure(open_store(b_kind, profile=profile), seed))
    a_name = open_store(a_kind, profile=profile).name
    b_name = open_store(b_kind, profile=profile).name
    return ComparisonResult(metric, a_name, b_name, a_stats, b_stats,
                            list(seeds))
