"""Systematic crash sweeping: every failpoint, every hit, recover, verify.

The sweeper replays one deterministic seeded workload against a fresh
store over and over.  Each run arms exactly one failpoint at one hit
count (``faults.arm(point, action, at=k, times=1)``), lets the injected
power failure abort the engine mid-operation, rebuilds it with
:meth:`repro.lsm.db.DB.recover`, and checks the recovery invariants:

* every acknowledged write is readable and no deleted key resurrects
  (the operation in flight at the crash may legitimately land either
  way -- its WAL record may or may not have become durable);
* the manifest references exactly the table files that exist -- no
  orphans survive recovery's garbage collection;
* free-space accounting matches the live extents (dynamic-band
  occupied = allocated + free; ext4 free + file extents = allocatable);
* the set/band layout invariants of the dynamic-band manager hold.

Each run then writes more data, recovers a second time, and re-checks
-- this second cycle is what catches torn-tail bugs, where the first
recovery salvages the log but leaves garbage that eats later appends.

Hit counts per failpoint are learned by running the workload once under
:func:`repro.faults.counting`; the sweep then strides through hit
1..N so the whole lifetime of the store is covered without running
thousands of repeats.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro import faults
from repro.core.storage import DynamicBandStorage
from repro.fs.ext4sim import Ext4Storage
from repro.lsm.db import DB
from repro.lsm.options import Options
from repro.smr.drive import ConventionalDrive
from repro.smr.raw_hmsmr import RawHMSMRDrive

KiB = 1024
MiB = 1024 * 1024

#: storage kinds the sweeper knows how to build
KINDS = ("dynamic", "ext4", "ext4-sets")

#: failpoints swept by default (every named point in the registry)
DEFAULT_POINTS = (
    faults.WAL_APPEND,
    faults.MANIFEST_LOG,
    faults.STORAGE_WRITE_FILES,
    faults.DRIVE_WRITE,
    faults.FREESPACE_ALLOC,
    faults.COMPACTION_INSTALL,
    faults.FLUSH_INSTALL,
)

#: read-side failpoints: crash mid-read (compaction input streams, block
#: fetches).  Swept separately -- ``torn`` makes no sense on a read (a
#: short read is a detection problem, not a durability one), so the
#: read-fault matrix uses the crash actions only.
READ_POINTS = (faults.DRIVE_READ, faults.STORAGE_READ)

DEFAULT_ACTIONS = ("crash", "crash-after", "torn")
READ_ACTIONS = ("crash", "crash-after")


@dataclass
class CrashSweepConfig:
    """One sweep: a workload, a store kind, and the points to crash."""

    kind: str = "dynamic"
    ops: int = 1200
    keyspace: int = 500
    seed: int = 0
    max_hits_per_point: int = 12
    points: tuple = DEFAULT_POINTS
    actions: tuple = DEFAULT_ACTIONS
    #: keys written after the first recovery (second crash/recover cycle)
    post_ops: int = 60
    #: sampling stride for full-model read-back checks
    check_stride: int = 5


@dataclass
class RunOutcome:
    """One crash/recover run of the sweep."""

    point: str
    action: str
    hit: int
    crashed: bool
    violations: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.crashed and not self.violations


@dataclass
class SweepReport:
    kind: str
    hit_counts: dict
    outcomes: list

    @property
    def runs(self) -> int:
        return len(self.outcomes)

    @property
    def crash_points(self) -> int:
        """Distinct (point, action, hit) combinations that crashed."""
        return sum(1 for o in self.outcomes if o.crashed)

    @property
    def points_exercised(self) -> list:
        return sorted({o.point for o in self.outcomes if o.crashed})

    @property
    def violations(self) -> list:
        return [o for o in self.outcomes if o.crashed and o.violations]

    @property
    def missed(self) -> list:
        """Runs whose armed failpoint never fired (workload too short)."""
        return [o for o in self.outcomes if not o.crashed]

    @property
    def ok(self) -> bool:
        return not self.violations

    def render(self) -> str:
        lines = [f"crash sweep: kind={self.kind}",
                 f"  {self.runs} runs, {self.crash_points} crash points, "
                 f"{len(self.points_exercised)} failpoints exercised, "
                 f"{len(self.violations)} violating, {len(self.missed)} missed"]
        per: dict[tuple, list[RunOutcome]] = {}
        for o in self.outcomes:
            per.setdefault((o.point, o.action), []).append(o)
        for (point, action), outs in sorted(per.items()):
            crashed = sum(1 for o in outs if o.crashed)
            bad = sum(1 for o in outs if o.crashed and o.violations)
            mark = "FAIL" if bad else "ok"
            lines.append(f"  {point:22s} {action:12s} "
                         f"{crashed:4d}/{len(outs):<4d} crashed  {mark}")
        for o in self.violations:
            lines.append(f"  VIOLATION {o.point} {o.action} hit={o.hit}:")
            for v in o.violations:
                lines.append(f"    - {v}")
        return "\n".join(lines)


# -- store construction ---------------------------------------------------


def _options(kind: str, seed: int) -> Options:
    use_sets = kind in ("dynamic", "ext4-sets")
    return Options(write_buffer_size=4 * KiB, sstable_size=4 * KiB,
                   block_size=512, base_level_bytes=8 * KiB,
                   block_cache_bytes=64 * KiB, use_sets=use_sets, seed=seed)


def build_store(kind: str, seed: int = 0) -> DB:
    """A fresh small store of the given kind, empty and failpoint-free."""
    if kind == "dynamic":
        drive = RawHMSMRDrive(16 * MiB, guard_size=4 * KiB)
        storage = DynamicBandStorage(drive, wal_size=64 * KiB,
                                     meta_size=64 * KiB, class_unit=4 * KiB)
    elif kind == "ext4":
        drive = ConventionalDrive(16 * MiB)
        storage = Ext4Storage(drive, wal_size=64 * KiB, meta_size=64 * KiB,
                              block_size=512)
    elif kind == "ext4-sets":
        drive = ConventionalDrive(16 * MiB)
        storage = Ext4Storage(drive, wal_size=64 * KiB, meta_size=64 * KiB,
                              block_size=512, contiguous_groups=True)
    else:
        raise ValueError(f"unknown store kind {kind!r}; pick from {KINDS}")
    return DB(storage, _options(kind, seed))


# -- the deterministic workload -------------------------------------------


def make_ops(config: CrashSweepConfig) -> list:
    """A seeded put/overwrite/delete trace; identical for every run."""
    rng = random.Random(config.seed)
    ops: list[tuple] = []
    for i in range(config.ops):
        k = rng.randrange(config.keyspace)
        key = b"key%06d" % k
        if i > 40 and rng.random() < 0.15:
            ops.append(("del", key, None))
        else:
            value = (b"value-%06d-%04d-" % (k, i)) * (1 + rng.randrange(4))
            ops.append(("put", key, value))
    return ops


def _apply(db: DB, op: tuple) -> None:
    verb, key, value = op
    if verb == "put":
        db.put(key, value)
    else:
        db.delete(key)


def count_hits(config: CrashSweepConfig) -> dict:
    """Run the workload once, uninjected, counting failpoint hits."""
    ops = make_ops(config)
    db = build_store(config.kind, config.seed)
    with faults.counting() as counts:
        for op in ops:
            _apply(db, op)
        db.flush()
        snapshot = dict(counts)
    faults.reset()
    return snapshot


# -- invariant checking ----------------------------------------------------


def _check_model(db: DB, model: dict, deleted: set, inflight: tuple | None,
                 stride: int, label: str) -> list:
    """Acked writes readable, deletes stay dead; in-flight key free."""
    violations = []
    skip = inflight[1] if inflight is not None else None
    items = sorted(model.items())
    for key, value in items[::max(1, stride)]:
        if key == skip:
            continue
        got = db.get(key)
        if got != value:
            violations.append(
                f"{label}: acked write lost: {key!r} -> "
                f"{got!r} (expected {value!r})")
    for key in sorted(deleted):
        if key == skip:
            continue
        got = db.get(key)
        if got is not None:
            violations.append(
                f"{label}: deleted key resurrected: {key!r} -> {got!r}")
    if inflight is not None:
        verb, key, value = inflight
        got = db.get(key)
        before = model.get(key)
        acceptable = {before, value if verb == "put" else None}
        if got not in acceptable:
            violations.append(
                f"{label}: in-flight {verb} of {key!r} -> {got!r}, "
                f"expected one of {acceptable!r}")
    return violations


def _check_layout(db: DB, label: str) -> list:
    """Manifest vs directory, free-space accounting, band layout."""
    violations = []
    storage = db.storage
    live = {meta.name for level in db.versions.current.files for meta in level}
    on_disk = {name for name in storage.list_files() if name.endswith(".sst")}
    for name in sorted(live - on_disk):
        violations.append(f"{label}: manifest references missing file {name}")
    for name in sorted(on_disk - live):
        violations.append(f"{label}: orphan table file survived GC: {name}")

    if isinstance(storage, DynamicBandStorage):
        try:
            storage.manager.check_invariants()
        except Exception as exc:  # InvariantViolation and friends
            violations.append(f"{label}: band manager invariants: {exc}")
        occupied = storage.manager.occupied_bytes()
        allocated = storage.manager.allocated_bytes()
        free = storage.manager.free_bytes()
        if occupied != allocated + free:
            violations.append(
                f"{label}: space accounting drifted: occupied {occupied} "
                f"!= allocated {allocated} + free {free}")
        for name in sorted(on_disk):
            ext = storage.file_extents(name)[0]
            if not storage.manager.allocated.contains_range(ext.start, ext.end):
                violations.append(
                    f"{label}: file {name} extent {ext} not allocated")
    elif isinstance(storage, Ext4Storage):
        used = sum(ext.length for name in storage.list_files()
                   for ext in storage.file_extents(name))
        free = storage.allocator.free_bytes()
        total = _ext4_allocatable(storage)
        if used + free != total:
            violations.append(
                f"{label}: ext4 accounting drifted: used {used} + free "
                f"{free} != allocatable {total}")
    return violations


def _ext4_allocatable(storage: Ext4Storage) -> int:
    alloc = storage.allocator
    end = alloc.capacity - alloc.capacity % alloc.block_size
    return end - alloc.start


def _check_recovered(db: DB, model: dict, deleted: set,
                     inflight: tuple | None, stride: int,
                     label: str) -> list:
    violations = []
    try:
        db.check_invariants()
    except Exception as exc:
        violations.append(f"{label}: version invariants: {exc}")
    violations += _check_model(db, model, deleted, inflight, stride, label)
    violations += _check_layout(db, label)
    return violations


# -- one crash/recover run -------------------------------------------------


def run_one(config: CrashSweepConfig, point: str, action: str,
            hit: int) -> RunOutcome:
    """Crash at the ``hit``-th arrival at ``point``, recover, verify."""
    ops = make_ops(config)
    db = build_store(config.kind, config.seed)
    model: dict[bytes, bytes] = {}
    deleted: set[bytes] = set()
    inflight = None
    crashed = False

    faults.reset()
    faults.arm(point, action, at=hit, times=1, seed=config.seed)
    try:
        for op in ops:
            inflight = op
            _apply(db, op)
            verb, key, value = op
            if verb == "put":
                model[key] = value
                deleted.discard(key)
            else:
                model.pop(key, None)
                deleted.add(key)
            inflight = None
        # mirror the counting run exactly, so every counted hit of the
        # final flush's failpoints is reachable when armed
        db.flush()
    except faults.InjectedCrash:
        crashed = True
    finally:
        faults.reset()

    if not crashed:
        return RunOutcome(point, action, hit, crashed=False)

    # Power is back: rebuild from what reached the medium.
    recovered = DB.recover(db.storage, db.options)
    violations = _check_recovered(recovered, model, deleted, inflight,
                                  config.check_stride, "first recovery")

    # Keep living: new writes must stick across a second crash/recover
    # cycle (this is what flushes out torn-tail salvage bugs).
    post = {}
    for i in range(config.post_ops):
        key = b"post%06d" % i
        value = b"post-value-%06d" % i
        recovered.put(key, value)
        post[key] = value
    model.update(post)
    if inflight is not None and inflight[1] in post:
        inflight = None
    again = DB.recover(recovered.storage, recovered.options)
    violations += _check_recovered(again, model, deleted, inflight,
                                   config.check_stride, "second recovery")
    for key, value in sorted(post.items()):
        got = again.get(key)
        if got != value:
            violations.append(
                f"second recovery: post-crash write lost: {key!r} -> {got!r}")
            break

    return RunOutcome(point, action, hit, crashed=True,
                      violations=violations)


# -- the sweep -------------------------------------------------------------


def _hit_schedule(total: int, max_hits: int) -> list:
    """Up to ``max_hits`` hit counts striding 1..total, always incl. both."""
    if total <= 0 or max_hits <= 0:
        return []
    if total <= max_hits:
        return list(range(1, total + 1))
    step = total / max_hits
    hits = {1, total}
    for i in range(max_hits):
        hits.add(1 + int(i * step))
    return sorted(hits)[:max_hits]


def sweep(config: CrashSweepConfig, progress=None) -> SweepReport:
    """Crash at every scheduled hit of every point; verify every time."""
    counts = count_hits(config)
    outcomes = []
    for point in config.points:
        total = counts.get(point, 0)
        for action in config.actions:
            for hit in _hit_schedule(total, config.max_hits_per_point):
                outcome = run_one(config, point, action, hit)
                outcomes.append(outcome)
                if progress is not None:
                    progress(outcome)
    return SweepReport(config.kind, counts, outcomes)
