"""Extension: serving-layer throughput over loopback, by shard count.

Boots a real TCP server (``repro.net``) per shard count, preloads a
database, drives it with the pipelined closed-loop generator, and
probes ``INFO`` over the wire.  Two throughput numbers per row, the
``fig08_sharded`` convention: *wall* req/s (one Python process, the
GIL serializes execution) and *device-parallel* req/s (requests / max
per-shard simulated-clock advance -- what independent drives would
sustain).  The shape claim: device-parallel throughput scales with
shard count while every request gets a correct, in-order reply and a
clean graceful drain.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import MiB, kv_for, scaled_bytes
from repro.harness.profiles import DEFAULT_PROFILE, ScaleProfile
from repro.lsm.wal import WriteBatch
from repro.net.client import NetClient
from repro.net.loadgen import LoadConfig, LoadReport, run_load
from repro.net.server import ServerConfig, ServerThread
from repro.registry import open_store

DEFAULT_DB_BYTES = 1 * MiB
DEFAULT_SHARD_COUNTS = (1, 2, 4)
DEFAULT_REQUESTS = 4000


@dataclass
class NetworkResult:
    db_bytes: int
    requests: int
    clients: int
    pipeline: int
    reports: dict[int, LoadReport]
    shard_health: dict[int, str]

    def speedup(self, count: int) -> float:
        base = self.reports[min(self.reports)].sim_ops_per_sec
        return self.reports[count].sim_ops_per_sec / base if base else 0.0


def _preload(store, entries: int, kv) -> None:
    batch = WriteBatch()
    for i in range(entries):
        batch.put(kv.key(i), kv.value(i))
        if len(batch) >= 256:
            store.write_batch(batch)
            batch = WriteBatch()
    if len(batch):
        store.write_batch(batch)
    store.flush()


def run(db_bytes: int | None = None,
        shard_counts: tuple[int, ...] = DEFAULT_SHARD_COUNTS,
        profile: ScaleProfile = DEFAULT_PROFILE, seed: int = 0,
        kind: str = "sealdb", clients: int = 4, pipeline: int = 16,
        requests: int = DEFAULT_REQUESTS) -> NetworkResult:
    if db_bytes is None:
        db_bytes = scaled_bytes(DEFAULT_DB_BYTES)
    kv = kv_for(profile)
    entries = profile.entries_for_bytes(db_bytes)
    reports: dict[int, LoadReport] = {}
    health: dict[int, str] = {}
    for count in shard_counts:
        store = open_store(kind, profile=profile, shards=count)
        _preload(store, entries, kv)
        handle = ServerThread(store, ServerConfig(port=0)).start()
        host, port = handle.address
        reports[count] = run_load(
            LoadConfig(host=host, port=port, clients=clients,
                       pipeline=pipeline, ops=requests,
                       key_space=entries, value_size=profile.value_size,
                       seed=seed),
            store=store)
        with NetClient(host, port) as probe:
            health[count] = probe.info().get("shard_health", "?")
        handle.stop()
        store.close()
    return NetworkResult(db_bytes=db_bytes, requests=requests,
                         clients=clients, pipeline=pipeline,
                         reports=reports, shard_health=health)


def render(result: NetworkResult) -> str:
    lines = [
        f"Serving layer over loopback (closed loop, "
        f"{result.clients} clients x pipeline {result.pipeline}, "
        f"{result.requests} requests, {result.db_bytes // MiB} MiB "
        f"preload)",
        f"{'shards':>6s} {'wall req/s':>12s} {'device req/s':>13s} "
        f"{'p50':>9s} {'p99':>9s} {'overload':>9s} {'speedup':>8s}  health",
    ]
    for count, report in sorted(result.reports.items()):
        q = report.latency.quantiles()
        lines.append(
            f"{count:>6d} {report.ops_per_sec:>12,.0f} "
            f"{report.sim_ops_per_sec:>13,.0f} "
            f"{q['p50'] * 1e3:>7.2f}ms {q['p99'] * 1e3:>7.2f}ms "
            f"{report.overloaded:>9,} {result.speedup(count):>7.2f}x"
            f"  {result.shard_health[count]}")
    return "\n".join(lines)


def main() -> None:  # pragma: no cover
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
