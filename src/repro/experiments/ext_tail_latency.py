"""Extension: user-visible put-latency tails.

Fig. 10 shows per-compaction latencies; what an application feels is
the *put* latency distribution -- most puts cost a WAL append, but the
put that triggers a flush absorbs the whole flush + compaction cascade.
SEALDB's shorter compactions should therefore shrink the latency tail,
and SMRDB's enormous merges should produce catastrophic outliers even
though its average throughput looks fine.

This experiment times every put during a random load and reports
p50/p90/p99/p99.9/max per store.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import MiB, kv_for, scaled_bytes
from repro.harness.profiles import DEFAULT_PROFILE, ScaleProfile
from repro.harness.report import render_table
from repro.harness.runner import make_store
from repro.util.rng import make_rng

DEFAULT_DB_BYTES = 8 * MiB

PERCENTILES = (50.0, 90.0, 99.0, 99.9)


@dataclass
class LatencyProfile:
    store: str
    percentiles: dict[float, float]
    max_latency: float
    mean: float
    stalls_over_1s: int


@dataclass
class TailLatencyResult:
    db_bytes: int
    profiles: dict[str, LatencyProfile]


def run(db_bytes: int | None = None,
        profile: ScaleProfile = DEFAULT_PROFILE, seed: int = 0,
        store_kinds: tuple[str, ...] = ("leveldb", "smrdb", "sealdb"),
        ) -> TailLatencyResult:
    if db_bytes is None:
        db_bytes = scaled_bytes(DEFAULT_DB_BYTES)
    kv = kv_for(profile)
    entries = profile.entries_for_bytes(db_bytes)
    profiles: dict[str, LatencyProfile] = {}
    for kind in store_kinds:
        store = make_store(kind, profile)
        rng = make_rng(seed)
        indices = rng.integers(0, entries, size=entries)
        latencies = np.empty(entries)
        for position, index in enumerate(indices):
            index = int(index)
            before = store.now
            store.put(kv.scrambled_key(index), kv.value(index))
            latencies[position] = store.now - before
        values = np.percentile(latencies, PERCENTILES)
        profiles[store.name] = LatencyProfile(
            store=store.name,
            percentiles=dict(zip(PERCENTILES, map(float, values))),
            max_latency=float(latencies.max()),
            mean=float(latencies.mean()),
            stalls_over_1s=int((latencies > 1.0).sum()),
        )
    return TailLatencyResult(db_bytes, profiles)


def render(result: TailLatencyResult) -> str:
    rows = []
    for name, p in result.profiles.items():
        rows.append([
            name,
            p.mean * 1000,
            p.percentiles[50.0] * 1000,
            p.percentiles[90.0] * 1000,
            p.percentiles[99.0] * 1000,
            p.percentiles[99.9] * 1000,
            p.max_latency,
            p.stalls_over_1s,
        ])
    return render_table(
        "Extension: put latency during random load (ms; max in s)",
        ["store", "mean", "p50", "p90", "p99", "p99.9", "max (s)",
         ">1s stalls"],
        rows,
    )


def main() -> None:  # pragma: no cover
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
