"""Fig. 11 -- data layout of sets in each compaction (SEALDB).

The mirror image of Fig. 2: the same random load on SEALDB, tracing the
physical address of every output SSTable of every compaction.  The
paper observes ~600 compactions whose outputs each occupy one
contiguous address range (a set), gradually filling only the first
2.7 GB of disk for a 10 GB database -- 6.3 GB less than LevelDB uses
(space efficiency of dynamic-band management).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import MiB, random_load, scaled_bytes
from repro.harness.metrics import (
    contiguous_output_fraction,
    output_offsets_per_compaction,
)
from repro.harness.profiles import DEFAULT_PROFILE, ScaleProfile
from repro.harness.report import render_table

DEFAULT_DB_BYTES = 8 * MiB


@dataclass
class SetLayoutResult:
    db_bytes: int
    num_compactions: int
    offsets: list[list[int]]
    contiguous_fraction: float       # 1.0 = every compaction is one run
    footprint: int                   # SEALDB disk usage (banded area)
    leveldb_footprint: int           # same load on LevelDB, for Fig. 2 contrast
    space_saved: int


def run(db_bytes: int | None = None,
        profile: ScaleProfile = DEFAULT_PROFILE, seed: int = 0
        ) -> SetLayoutResult:
    if db_bytes is None:
        db_bytes = scaled_bytes(DEFAULT_DB_BYTES)

    sealdb, _t = random_load("sealdb", db_bytes, profile, seed)
    offsets = output_offsets_per_compaction(sealdb)
    footprint = sealdb.band_manager.occupied_bytes()

    leveldb, _t = random_load("leveldb", db_bytes, profile, seed)
    lvl_offsets = [off for row in output_offsets_per_compaction(leveldb)
                   for off in row]
    lvl_footprint = (max(lvl_offsets) - leveldb.storage.data_start
                     if lvl_offsets else 0)

    return SetLayoutResult(
        db_bytes=db_bytes,
        num_compactions=len(sealdb.real_compactions()),
        offsets=offsets,
        contiguous_fraction=contiguous_output_fraction(sealdb),
        footprint=footprint,
        leveldb_footprint=lvl_footprint,
        space_saved=max(0, lvl_footprint - footprint),
    )


def render(result: SetLayoutResult) -> str:
    from repro.harness.plotting import ascii_scatter

    rows = [
        ["database bytes", result.db_bytes],
        ["compactions observed", result.num_compactions],
        ["contiguous-output compactions", f"{result.contiguous_fraction:.0%}"],
        ["SEALDB footprint (MiB)", result.footprint / MiB],
        ["LevelDB footprint (MiB)", result.leveldb_footprint / MiB],
        ["space saved (MiB)", result.space_saved / MiB],
    ]
    table = render_table(
        "Fig. 11: SEALDB set layout (every compaction one contiguous run)",
        ["metric", "value"], rows,
    )
    points = [(index, offset / MiB)
              for index, row in enumerate(result.offsets)
              for offset in row]
    plot = ascii_scatter(points, width=72, height=18,
                         title="set addresses per compaction "
                               "(compare Fig. 2's scatter)",
                         xlabel="compaction #", ylabel="MiB")
    return table + "\n\n" + plot


def save_csv(result: SetLayoutResult, path) -> None:
    from repro.harness.plotting import to_csv

    to_csv(["compaction", "offset_bytes"],
           [(index, offset)
            for index, row in enumerate(result.offsets)
            for offset in row],
           path=path)


def main() -> None:  # pragma: no cover
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
