"""Extension: throughput over time during a random load.

Averages hide the rhythm of an LSM store: bursts of fast puts punctuated
by compaction stalls -- the classic sawtooth.  This experiment samples
instantaneous throughput in fixed windows of operations during a random
load and renders the timelines, making visible *why* SEALDB's average is
higher (same number of dips as LevelDB, but each dip is far shorter)
and what SMRDB's rare giant merges look like (cliffs).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import MiB, kv_for, scaled_bytes
from repro.harness.profiles import DEFAULT_PROFILE, ScaleProfile
from repro.harness.report import render_table
from repro.registry import open_store
from repro.util.rng import make_rng

DEFAULT_DB_BYTES = 8 * MiB
DEFAULT_WINDOWS = 60


@dataclass
class Timeline:
    store: str
    window_ops: int
    #: ops/simulated-second per window
    series: list[float]

    @property
    def mean(self) -> float:
        return sum(self.series) / len(self.series) if self.series else 0.0

    @property
    def worst_window(self) -> float:
        return min(self.series) if self.series else 0.0

    @property
    def best_window(self) -> float:
        return max(self.series) if self.series else 0.0


@dataclass
class TimelineResult:
    db_bytes: int
    timelines: dict[str, Timeline]


def run(db_bytes: int | None = None, windows: int = DEFAULT_WINDOWS,
        profile: ScaleProfile = DEFAULT_PROFILE, seed: int = 0,
        store_kinds: tuple[str, ...] = ("leveldb", "smrdb", "sealdb"),
        ) -> TimelineResult:
    if db_bytes is None:
        db_bytes = scaled_bytes(DEFAULT_DB_BYTES)
    kv = kv_for(profile)
    entries = profile.entries_for_bytes(db_bytes)
    window_ops = max(1, entries // windows)
    timelines: dict[str, Timeline] = {}
    for kind in store_kinds:
        store = open_store(kind, profile=profile)
        rng = make_rng(seed)
        indices = rng.integers(0, entries, size=entries)
        series: list[float] = []
        window_start_time = store.now
        for position, index in enumerate(indices):
            index = int(index)
            store.put(kv.scrambled_key(index), kv.value(index))
            if (position + 1) % window_ops == 0:
                elapsed = store.now - window_start_time
                series.append(window_ops / elapsed if elapsed > 0 else 0.0)
                window_start_time = store.now
        timelines[store.name] = Timeline(store.name, window_ops, series)
    return TimelineResult(db_bytes, timelines)


def render(result: TimelineResult) -> str:
    from repro.harness.plotting import ascii_series

    rows = [[t.store, t.mean, t.worst_window, t.best_window,
             t.best_window / t.worst_window if t.worst_window else 0.0]
            for t in result.timelines.values()]
    table = render_table(
        "Extension: load throughput over time (ops/s per window)",
        ["store", "mean", "worst window", "best window", "spread"],
        rows,
    )
    plot = ascii_series(
        {name: t.series for name, t in result.timelines.items()},
        title="throughput timeline (windows of equal op counts)",
        height=14,
    )
    return table + "\n\n" + plot


def main() -> None:  # pragma: no cover
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
