"""Shared plumbing for the experiment modules."""

from __future__ import annotations

import os

from repro.harness.profiles import DEFAULT_PROFILE, ScaleProfile
from repro.kvstore import KVStoreBase
from repro.registry import open_store
from repro.workloads.generators import KeyValueGenerator
from repro.workloads.microbench import MicroBenchmark

MiB = 1024 * 1024

#: multiplies every experiment's default database size (env knob for
#: closer-to-paper runs: REPRO_SCALE=4 pytest benchmarks/ ...)
SCALE = float(os.environ.get("REPRO_SCALE", "1"))


def scaled_bytes(default_bytes: int) -> int:
    return int(default_bytes * SCALE)


def kv_for(profile: ScaleProfile) -> KeyValueGenerator:
    return KeyValueGenerator(profile.key_size, profile.value_size)


def random_load(kind: str, db_bytes: int,
                profile: ScaleProfile = DEFAULT_PROFILE,
                seed: int = 0, subscriber=None,
                events=None) -> tuple[KVStoreBase, float]:
    """Random-load a fresh store; returns ``(store, sim_seconds)``.

    ``subscriber`` (with an optional ``events`` filter) is attached to
    the store's observability bus *before* the load, so experiments can
    consume the event stream instead of reading store internals.
    """
    store = open_store(kind, profile=profile)
    if subscriber is not None:
        store.obs.subscribe(subscriber, events)
    bench = MicroBenchmark(kv_for(profile), profile.entries_for_bytes(db_bytes),
                           seed=seed)
    result = bench.fill_random(store)
    return store, result.sim_seconds


def sequential_load(kind: str, db_bytes: int,
                    profile: ScaleProfile = DEFAULT_PROFILE,
                    seed: int = 0, subscriber=None,
                    events=None) -> tuple[KVStoreBase, float]:
    """Sequentially load a fresh store; returns ``(store, sim_seconds)``."""
    store = open_store(kind, profile=profile)
    if subscriber is not None:
        store.obs.subscribe(subscriber, events)
    bench = MicroBenchmark(kv_for(profile), profile.entries_for_bytes(db_bytes),
                           seed=seed)
    result = bench.fill_seq(store)
    return store, result.sim_seconds
