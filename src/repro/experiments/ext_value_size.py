"""Extension: sensitivity of the SEALDB speedup to value size.

The paper evaluates only 4 KB values.  Real deployments span two
orders of magnitude, and value size shifts where time goes: small
values make compactions entry-count-bound (CPU, WAL framing), large
values make them byte-bound (transfers, RMW).  This sweep random-loads
LevelDB and SEALDB at several value sizes and reports the speedup, to
show the headline result is not an artifact of one point.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import MiB, scaled_bytes
from repro.harness.profiles import DEFAULT_PROFILE, ScaleProfile
from repro.harness.report import render_table
from repro.harness.runner import make_store
from repro.workloads.generators import KeyValueGenerator
from repro.workloads.microbench import MicroBenchmark

DEFAULT_DB_BYTES = 5 * MiB
DEFAULT_VALUE_SIZES = (32, 100, 400, 1024)


@dataclass
class ValueSizePoint:
    value_size: int
    leveldb_ops: float
    sealdb_ops: float

    @property
    def speedup(self) -> float:
        return self.sealdb_ops / self.leveldb_ops if self.leveldb_ops else 0.0


@dataclass
class ValueSizeResult:
    db_bytes: int
    points: list[ValueSizePoint]


def run(db_bytes: int | None = None,
        value_sizes: tuple[int, ...] = DEFAULT_VALUE_SIZES,
        profile: ScaleProfile = DEFAULT_PROFILE, seed: int = 0
        ) -> ValueSizeResult:
    if db_bytes is None:
        db_bytes = scaled_bytes(DEFAULT_DB_BYTES)
    points: list[ValueSizePoint] = []
    for value_size in value_sizes:
        sized = profile.scaled(value_size=value_size)
        kv = KeyValueGenerator(sized.key_size, value_size)
        entries = sized.entries_for_bytes(db_bytes)
        ops = {}
        for kind in ("leveldb", "sealdb"):
            store = make_store(kind, sized)
            bench = MicroBenchmark(kv, entries, seed=seed)
            ops[kind] = bench.fill_random(store).ops_per_sec
        points.append(ValueSizePoint(value_size, ops["leveldb"],
                                     ops["sealdb"]))
    return ValueSizeResult(db_bytes, points)


def render(result: ValueSizeResult) -> str:
    rows = [[f"{p.value_size} B", p.leveldb_ops, p.sealdb_ops,
             f"{p.speedup:.2f}x"] for p in result.points]
    return render_table(
        "Extension: SEALDB random-write speedup vs value size",
        ["value", "LevelDB ops/s", "SEALDB ops/s", "speedup"],
        rows,
    )


def main() -> None:  # pragma: no cover
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
