"""Extension: how the number of LSM levels trades WA against compaction size.

SMRDB's 2-level design lowers write amplification ("it avoids KV items
from constantly compacting from level 0 to level 6", Fig. 12
discussion) at the price of enormous compactions; Skip-tree (related
work [31]) skips levels for the same reason.  This sweep runs the
set-aware engine on dynamic bands with 2..7 levels and measures WA,
average/maximum compaction size, and load throughput -- mapping the
trade-off space the paper's baselines sit in.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.storage import DynamicBandStorage
from repro.experiments.common import MiB, kv_for, scaled_bytes
from repro.harness.metrics import summarize_compactions
from repro.harness.profiles import DEFAULT_PROFILE, ScaleProfile
from repro.harness.report import render_table
from repro.kvstore import KVStoreBase
from repro.smr.raw_hmsmr import RawHMSMRDrive
from repro.smr.timing import SMR_PROFILE
from repro.workloads.microbench import MicroBenchmark

DEFAULT_DB_BYTES = 8 * MiB
DEFAULT_LEVELS = (2, 3, 4, 5, 7)


@dataclass
class LevelPoint:
    levels: int
    wa: float
    ops_per_sec: float
    compactions: int
    avg_compaction_bytes: float
    max_compaction_bytes: int


@dataclass
class LevelCountResult:
    db_bytes: int
    points: list[LevelPoint]


def _store_with_levels(profile: ScaleProfile, levels: int) -> KVStoreBase:
    drive = RawHMSMRDrive(profile.capacity, guard_size=profile.guard_size,
                          profile=SMR_PROFILE.scaled(profile.io_scale))
    storage = DynamicBandStorage(drive, wal_size=profile.wal_region,
                                 meta_size=profile.meta_region,
                                 class_unit=profile.sstable_size)
    options = profile.options(use_sets=True, max_levels=levels)
    store = KVStoreBase(drive, storage, options)
    store.name = f"L{levels}"
    return store


def run(db_bytes: int | None = None,
        levels: tuple[int, ...] = DEFAULT_LEVELS,
        profile: ScaleProfile = DEFAULT_PROFILE, seed: int = 0
        ) -> LevelCountResult:
    if db_bytes is None:
        db_bytes = scaled_bytes(DEFAULT_DB_BYTES)
    kv = kv_for(profile)
    entries = profile.entries_for_bytes(db_bytes)
    points: list[LevelPoint] = []
    for num_levels in levels:
        store = _store_with_levels(profile, num_levels)
        bench = MicroBenchmark(kv, entries, seed=seed)
        result = bench.fill_random(store)
        summary = summarize_compactions(store.real_compactions())
        max_bytes = max((r.input_bytes for r in store.real_compactions()),
                        default=0)
        points.append(LevelPoint(
            levels=num_levels,
            wa=store.wa(),
            ops_per_sec=result.ops_per_sec,
            compactions=summary.count,
            avg_compaction_bytes=summary.avg_input_bytes,
            max_compaction_bytes=max_bytes,
        ))
    return LevelCountResult(db_bytes, points)


def render(result: LevelCountResult) -> str:
    rows = [[p.levels, p.wa, p.ops_per_sec, p.compactions,
             p.avg_compaction_bytes / 1024, p.max_compaction_bytes / 1024]
            for p in result.points]
    return render_table(
        "Extension: level count vs WA and compaction size "
        "(set-aware engine on dynamic bands)",
        ["levels", "WA", "ops/s", "compactions", "avg comp KiB",
         "max comp KiB"],
        rows,
    )


def main() -> None:  # pragma: no cover
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
