"""One module per table/figure of the paper's evaluation.

Every module exposes ``run(...) -> <Result dataclass>`` and
``render(result) -> str`` (a paper-style text table), plus a ``main()``
so it can be executed directly::

    python -m repro.experiments.fig08_microbench

Database sizes default to the scaled equivalents used by the benchmark
suite; pass larger ``db_bytes`` for closer-to-paper runs.  See
EXPERIMENTS.md for the paper-vs-measured record.
"""

from repro.experiments import (  # noqa: F401
    ext_aging,
    ext_level_count,
    ext_multitenant,
    ext_network,
    ext_tail_latency,
    ext_timeline,
    ext_value_size,
    fig02_sstable_scatter,
    fig03_band_amplification,
    table02_drive_params,
    fig08_microbench,
    fig09_ycsb,
    fig10_compaction_detail,
    fig11_set_layout,
    fig12_write_amplification,
    fig13_fragments,
    fig14_ablation,
)

__all__ = [
    "ext_aging",
    "ext_level_count",
    "ext_multitenant",
    "ext_network",
    "ext_tail_latency",
    "ext_timeline",
    "ext_value_size",
    "fig02_sstable_scatter",
    "fig03_band_amplification",
    "table02_drive_params",
    "fig08_microbench",
    "fig09_ycsb",
    "fig10_compaction_detail",
    "fig11_set_layout",
    "fig12_write_amplification",
    "fig13_fragments",
    "fig14_ablation",
]
