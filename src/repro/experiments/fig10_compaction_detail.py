"""Fig. 10 -- compaction detail: latency trace and average size.

The paper records every compaction while randomly loading "the first
40 GB": (a) the latency of each compaction in arrival order; (b) the
average data size per compaction.  Findings:

* SEALDB and LevelDB perform a similar number of compactions, but
  SEALDB's total compaction latency is 4.30x lower;
* SMRDB runs far fewer compactions, but each averages ~900 MB and
  701.3 s, for 1.89x the total latency of SEALDB;
* SEALDB's average compaction size (27.48 MB) equals its average set
  size -- a set is exactly one compaction's data.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import MiB, random_load, scaled_bytes
from repro.harness.metrics import CompactionEventLog, CompactionSummary
from repro.harness.profiles import DEFAULT_PROFILE, ScaleProfile
from repro.harness.report import render_table

DEFAULT_DB_BYTES = 12 * MiB


@dataclass
class StoreCompactionDetail:
    store: str
    summary: CompactionSummary
    latencies: list[float]          # Fig. 10(a) series
    avg_set_size: float | None      # SEALDB only: average set size


@dataclass
class CompactionDetailResult:
    db_bytes: int
    details: dict[str, StoreCompactionDetail]


def run(db_bytes: int | None = None,
        profile: ScaleProfile = DEFAULT_PROFILE, seed: int = 0,
        store_kinds: tuple[str, ...] = ("leveldb", "smrdb", "sealdb"),
        ) -> CompactionDetailResult:
    if db_bytes is None:
        db_bytes = scaled_bytes(DEFAULT_DB_BYTES)
    details: dict[str, StoreCompactionDetail] = {}
    for kind in store_kinds:
        # Compaction data arrives through the observability bus: the
        # event log subscribes before the load and rebuilds the Fig. 10
        # aggregates from `compaction.end` events.
        log = CompactionEventLog()
        store, _elapsed = random_load(kind, db_bytes, profile, seed,
                                      subscriber=log,
                                      events=CompactionEventLog.EVENTS)
        summary = log.summary()
        avg_set = None
        if "sets.avg_bytes" in store.obs.metrics.gauges:
            avg_set = store.obs.metrics.value("sets.avg_bytes")
        details[store.name] = StoreCompactionDetail(
            store.name, summary, summary.latencies, avg_set)
    return CompactionDetailResult(db_bytes, details)


def render(result: CompactionDetailResult) -> str:
    from repro.harness.plotting import ascii_series

    rows = []
    for name, d in result.details.items():
        rows.append([
            name,
            d.summary.count,
            d.summary.avg_latency,
            d.summary.total_latency,
            d.summary.avg_input_bytes / MiB,
            d.summary.avg_input_files,
            (d.avg_set_size / MiB) if d.avg_set_size else "-",
        ])
    table = render_table(
        "Fig. 10: compaction detail during random load",
        ["store", "compactions", "avg lat (s)", "total lat (s)",
         "avg size (MiB)", "avg files", "avg set (MiB)"],
        rows,
    )
    plot = ascii_series(
        {name: _downsample(d.latencies, 72)
         for name, d in result.details.items()},
        title="Fig. 10(a): per-compaction latency (s), arrival order",
        height=14,
    )
    return table + "\n\n" + plot


def _downsample(values: list[float], target: int) -> list[float]:
    """Max-pool a series down to ``target`` points (spikes preserved)."""
    if len(values) <= target:
        return values
    step = len(values) / target
    return [max(values[int(i * step): max(int(i * step) + 1,
                                          int((i + 1) * step))])
            for i in range(target)]


def main() -> None:  # pragma: no cover
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
