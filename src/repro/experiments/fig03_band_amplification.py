"""Fig. 3 -- SSTable distribution over SMR bands and the resulting
write amplification, as a function of band size.

The paper repeats the Fig. 2 load on five emulated fixed-band SMR
drives (band sizes 20-60 MB) and reports, per band size:

* (a) the average number of SSTables written per compaction (~9.83) and
  the average number of bands those writes touch (6.22 at 40 MB);
* (b) the LSM write amplification WA (~9.83, band-independent) and the
  multiplicative MWA (52.85 at 40 MB), i.e. AWA grows with band size.

Band sizes here are the paper's divided by the profile scale; the
paper's 4 MB SSTable maps to ``profile.sstable_size``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import MiB, scaled_bytes
from repro.harness.metrics import (
    bands_written_per_compaction,
    summarize_compactions,
)
from repro.harness.profiles import DEFAULT_PROFILE, ScaleProfile
from repro.harness.report import render_table

DEFAULT_DB_BYTES = 6 * MiB

#: paper band sizes in units of the SSTable size (20..60 MB over 4 MB)
BAND_SSTABLE_RATIOS = (5, 7.5, 10, 12.5, 15)


@dataclass
class BandPoint:
    """Measurements for one band size."""

    band_size: int
    avg_sstables_per_compaction: float
    avg_bands_per_compaction: float
    wa: float
    awa: float
    mwa: float


@dataclass
class BandSweepResult:
    db_bytes: int
    points: list[BandPoint]
    profile_name: str


def run(db_bytes: int | None = None,
        profile: ScaleProfile = DEFAULT_PROFILE, seed: int = 0,
        ratios: tuple[float, ...] = BAND_SSTABLE_RATIOS) -> BandSweepResult:
    from repro.baselines.leveldb import LevelDBStore
    from repro.workloads.microbench import MicroBenchmark
    from repro.experiments.common import kv_for

    if db_bytes is None:
        db_bytes = scaled_bytes(DEFAULT_DB_BYTES)
    points: list[BandPoint] = []
    for ratio in ratios:
        band = int(profile.sstable_size * ratio)
        store = LevelDBStore(profile, band_size=band)
        bench = MicroBenchmark(kv_for(profile),
                               profile.entries_for_bytes(db_bytes), seed=seed)
        bench.fill_random(store)
        summary = summarize_compactions(store.real_compactions())
        bands = bands_written_per_compaction(store)
        avg_bands = sum(bands) / len(bands) if bands else 0.0
        points.append(BandPoint(
            band_size=band,
            avg_sstables_per_compaction=summary.avg_output_files,
            avg_bands_per_compaction=avg_bands,
            wa=store.wa(),
            awa=store.awa(),
            mwa=store.mwa(),
        ))
    return BandSweepResult(db_bytes, points, profile.name)


def render(result: BandSweepResult) -> str:
    from repro.harness.plotting import ascii_series

    rows = []
    for p in result.points:
        rows.append([
            f"{p.band_size // 1024} KiB",
            p.avg_sstables_per_compaction,
            p.avg_bands_per_compaction,
            p.wa,
            p.awa,
            p.mwa,
        ])
    table = render_table(
        "Fig. 3: SSTables/bands per compaction and WA/MWA vs band size "
        "(LevelDB on fixed-band SMR)",
        ["band", "sstables/comp", "bands/comp", "WA", "AWA", "MWA"],
        rows,
    )
    plot = ascii_series(
        {"WA": [p.wa for p in result.points],
         "MWA": [p.mwa for p in result.points]},
        title="Fig. 3(b): WA flat, MWA grows with band size "
              "(x = band sweep, small to large)",
        height=10, width=40,
    )
    return table + "\n\n" + plot


def save_csv(result: BandSweepResult, path) -> None:
    from repro.harness.plotting import to_csv

    to_csv(["band_size", "sstables_per_comp", "bands_per_comp",
            "wa", "awa", "mwa"],
           [[p.band_size, p.avg_sstables_per_compaction,
             p.avg_bands_per_compaction, p.wa, p.awa, p.mwa]
            for p in result.points],
           path=path)


def main() -> None:  # pragma: no cover
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
