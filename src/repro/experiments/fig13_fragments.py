"""Fig. 13 -- data layout of dynamic bands and fragments.

The paper random-loads 40 GB into SEALDB and inspects the dynamic-band
layout: free regions no larger than the average set size (27.48 MB) are
*fragments* -- "quite difficult to be leveraged".  The measured
fragments total 1.7 GB, 9.32 % of the occupied space; the paper leaves
a garbage-collection supplement for future work (implemented here as
``DynamicBandStorage``-level relocation, benchmarked separately).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import MiB, random_load, scaled_bytes
from repro.harness.profiles import DEFAULT_PROFILE, ScaleProfile
from repro.harness.report import render_table

DEFAULT_DB_BYTES = 12 * MiB

PAPER_FRAGMENT_SHARE = 0.0932


@dataclass
class FragmentsResult:
    db_bytes: int
    occupied_bytes: int           # banded area (start .. tail)
    allocated_bytes: int          # live data
    num_bands: int
    band_sizes: list[int]
    fragment_bytes: int
    fragment_count: int
    fragment_share: float         # fragments / occupied
    avg_set_size: float
    dead_bytes: int               # invalid members of live sets


def run(db_bytes: int | None = None,
        profile: ScaleProfile = DEFAULT_PROFILE, seed: int = 0
        ) -> FragmentsResult:
    if db_bytes is None:
        db_bytes = scaled_bytes(DEFAULT_DB_BYTES)
    store, _t = random_load("sealdb", db_bytes, profile, seed)
    # Scalar layout metrics come from SEALDB's registered gauges — the
    # same registry `repro metrics` renders; only the per-band size
    # distribution still needs the manager's band list.
    m = store.obs.metrics
    occupied = int(m.value("band.occupied_bytes"))
    band_sizes = [b.length for b in store.band_manager.bands()]
    return FragmentsResult(
        db_bytes=db_bytes,
        occupied_bytes=occupied,
        allocated_bytes=int(m.value("band.allocated_bytes")),
        num_bands=int(m.value("band.count")),
        band_sizes=band_sizes,
        fragment_bytes=int(m.value("band.fragment_bytes")),
        fragment_count=int(m.value("band.fragment_count")),
        fragment_share=(m.value("band.fragment_bytes") / occupied
                        if occupied else 0.0),
        avg_set_size=m.value("sets.avg_bytes"),
        dead_bytes=int(m.value("sets.dead_bytes")),
    )


def render(result: FragmentsResult) -> str:
    rows = [
        ["database bytes (MiB)", result.db_bytes / MiB],
        ["occupied banded space (MiB)", result.occupied_bytes / MiB],
        ["live data (MiB)", result.allocated_bytes / MiB],
        ["dynamic bands", result.num_bands],
        ["average set size (KiB)", result.avg_set_size / 1024],
        ["fragments", result.fragment_count],
        ["fragment bytes (MiB)", result.fragment_bytes / MiB],
        ["fragment share of occupied", f"{result.fragment_share:.2%}"],
        ["paper fragment share", f"{PAPER_FRAGMENT_SHARE:.2%}"],
        ["dead bytes in live sets (MiB)", result.dead_bytes / MiB],
    ]
    return render_table(
        "Fig. 13: dynamic-band layout and fragments after random load",
        ["metric", "value"], rows,
    )


def main() -> None:  # pragma: no cover
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
