"""Fig. 12 -- write amplification: WA, AWA, MWA per store.

The paper random-loads 100 GB into each store and reports the three
Table I amplification factors:

* (a) WA: SEALDB equals LevelDB (~9.8x; sets do not change what is
  compacted, only how it is laid out); SMRDB's 2-level structure has a
  lower WA.  AWA: 1.0 for SMRDB and SEALDB; > 1 for LevelDB.
* (b) MWA: SEALDB 6.70x lower than LevelDB.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import MiB, random_load, scaled_bytes
from repro.harness.profiles import DEFAULT_PROFILE, ScaleProfile
from repro.harness.report import render_table

DEFAULT_DB_BYTES = 12 * MiB

PAPER = {
    "LevelDB": {"wa": 9.83, "awa": 5.37, "mwa": 52.85},
    "SMRDB": {"wa": 6.0, "awa": 1.0, "mwa": 6.0},
    "SEALDB": {"wa": 9.83, "awa": 1.0, "mwa": 9.83},
}


@dataclass
class AmplificationResult:
    db_bytes: int
    #: per store: (wa, awa, mwa)
    factors: dict[str, tuple[float, float, float]]

    def mwa_reduction_vs_leveldb(self, store: str = "SEALDB") -> float:
        return self.factors["LevelDB"][2] / self.factors[store][2]


def run(db_bytes: int | None = None,
        profile: ScaleProfile = DEFAULT_PROFILE, seed: int = 0,
        store_kinds: tuple[str, ...] = ("leveldb", "smrdb", "sealdb"),
        ) -> AmplificationResult:
    if db_bytes is None:
        db_bytes = scaled_bytes(DEFAULT_DB_BYTES)
    factors: dict[str, tuple[float, float, float]] = {}
    for kind in store_kinds:
        store, _t = random_load(kind, db_bytes, profile, seed)
        # Amplification factors are read through the store's metrics
        # registry (lazy gauges over the tracker) — the same numbers
        # `repro metrics` reports.
        m = store.obs.metrics
        factors[store.name] = (m.value("amp.wa"), m.value("amp.awa"),
                               m.value("amp.mwa"))
    return AmplificationResult(db_bytes, factors)


def render(result: AmplificationResult) -> str:
    rows = []
    for name, (wa, awa, mwa) in result.factors.items():
        paper = PAPER.get(name, {})
        rows.append([name, wa, awa, mwa,
                     paper.get("wa", "-"), paper.get("awa", "-"),
                     paper.get("mwa", "-")])
    table = render_table(
        "Fig. 12: write amplification (measured | paper)",
        ["store", "WA", "AWA", "MWA", "WA(p)", "AWA(p)", "MWA(p)"],
        rows,
    )
    reduction = result.mwa_reduction_vs_leveldb()
    return table + f"\nSEALDB MWA reduction vs LevelDB: {reduction:.2f}x (paper: 6.70x)"


def main() -> None:  # pragma: no cover
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
