"""Table II -- performance comparison of the HDD and SMR drive models.

The paper tabulates the raw characteristics of its two drives
(ST1000DM003 HDD vs ST5000AS0011 SMR): sequential read/write bandwidth
and random 4 KB IOPS.  This experiment runs the same micro-measurements
against the *unscaled* timing models and reports measured vs paper.

The SMR random-write row is the interesting one: the paper reports
"5-140" because random writes on the drive-managed device sometimes hit
the persistent cache and sometimes trigger band work.  Here the
fixed-band emulation produces the same spread -- appends are fast, band
read-modify-writes are slow -- so the row reports the measured range.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.harness.report import render_table
from repro.smr.drive import ConventionalDrive
from repro.smr.fixed_band import FixedBandSMRDrive
from repro.smr.timing import HDD_PROFILE, SMR_PROFILE

MiB = 1024 * 1024
GiB = 1024 * MiB

PAPER = {
    "hdd": {"seq_read": 169.0, "seq_write": 155.0,
            "rand_read": 64.0, "rand_write": 143.0},
    "smr": {"seq_read": 165.0, "seq_write": 148.0,
            "rand_read": 70.0, "rand_write": (5.0, 140.0)},
}


@dataclass
class DriveParams:
    name: str
    seq_read_mbps: float
    seq_write_mbps: float
    rand_read_iops: float
    rand_write_iops_min: float
    rand_write_iops_max: float


@dataclass
class Table02Result:
    hdd: DriveParams
    smr: DriveParams


def _sequential_rate(drive, *, write: bool, total=256 * MiB,
                     chunk=8 * MiB) -> float:
    start = drive.now
    for offset in range(0, total, chunk):
        if write:
            drive.write(offset, b"\0" * chunk)
        else:
            drive.read(offset, chunk)
    return total / (drive.now - start) / MiB


def _random_iops(drive, *, write: bool, samples=1500, seed=3) -> list[float]:
    rng = np.random.default_rng(seed)
    offsets = rng.integers(0, drive.capacity - 4096, size=samples)
    latencies = []
    payload = b"\x5a" * 4096
    for offset in offsets:
        before = drive.now
        if write:
            drive.write(int(offset), payload)
        else:
            drive.read(int(offset), 4096)
        latencies.append(drive.now - before)
    return latencies


def _measure_hdd(capacity=4 * GiB) -> DriveParams:
    seq_r = _sequential_rate(ConventionalDrive(capacity, HDD_PROFILE), write=False)
    seq_w = _sequential_rate(ConventionalDrive(capacity, HDD_PROFILE), write=True)
    reads = _random_iops(ConventionalDrive(capacity, HDD_PROFILE), write=False)
    writes = _random_iops(ConventionalDrive(capacity, HDD_PROFILE), write=True)
    w_iops = 1.0 / (sum(writes) / len(writes))
    return DriveParams("HDD", seq_r, seq_w,
                       1.0 / (sum(reads) / len(reads)), w_iops, w_iops)


def _measure_smr(capacity=4 * GiB, band=40 * MiB) -> DriveParams:
    seq_r = _sequential_rate(FixedBandSMRDrive(capacity, band, SMR_PROFILE),
                             write=False)
    seq_w = _sequential_rate(FixedBandSMRDrive(capacity, band, SMR_PROFILE),
                             write=True)
    reads = _random_iops(FixedBandSMRDrive(capacity, band, SMR_PROFILE),
                         write=False)
    # random writes on a *pre-filled* SMR drive: mixture of appends into
    # empty bands (fast) and read-modify-writes (slow)
    drive = FixedBandSMRDrive(capacity, band, SMR_PROFILE)
    rng = np.random.default_rng(9)
    for band_i in rng.choice(capacity // band, size=capacity // band // 2,
                             replace=False):
        drive.write(int(band_i) * band, b"\0" * (band // 2))
    writes = _random_iops(drive, write=True, samples=400)
    fast = sorted(writes)[: len(writes) // 10]
    slow = sorted(writes)[-len(writes) // 10:]
    return DriveParams(
        "SMR", seq_r, seq_w, 1.0 / (sum(reads) / len(reads)),
        1.0 / (sum(slow) / len(slow)),
        1.0 / (sum(fast) / len(fast)),
    )


def run() -> Table02Result:
    return Table02Result(hdd=_measure_hdd(), smr=_measure_smr())


def render(result: Table02Result) -> str:
    rows = [
        ["Sequential read (MB/s)", result.hdd.seq_read_mbps,
         PAPER["hdd"]["seq_read"], result.smr.seq_read_mbps,
         PAPER["smr"]["seq_read"]],
        ["Sequential write (MB/s)", result.hdd.seq_write_mbps,
         PAPER["hdd"]["seq_write"], result.smr.seq_write_mbps,
         PAPER["smr"]["seq_write"]],
        ["Random read 4KB (IOPS)", result.hdd.rand_read_iops,
         PAPER["hdd"]["rand_read"], result.smr.rand_read_iops,
         PAPER["smr"]["rand_read"]],
        ["Random write 4KB (IOPS)", result.hdd.rand_write_iops_max,
         PAPER["hdd"]["rand_write"],
         f"{result.smr.rand_write_iops_min:.0f}-"
         f"{result.smr.rand_write_iops_max:.0f}",
         "5-140"],
    ]
    return render_table(
        "Table II: drive model vs paper (measured | paper)",
        ["metric", "HDD meas", "HDD paper", "SMR meas", "SMR paper"],
        rows,
    )


def main() -> None:  # pragma: no cover
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
