"""Extension: consolidation — several stores sharing one drive.

The paper's motivation: consolidation packs many KV stores onto one
dense SMR drive.  This experiment partitions a single raw HM-SMR drive
among N SEALDB tenants and interleaves their random loads, measuring
the per-tenant throughput against the same tenant running alone — the
*consolidation tax*, which on a disk is mostly head contention (every
tenant's compaction drags the arm away from the others' layouts).

AWA stays at 1.0 for every tenant: dynamic-band safety is enforced
globally on the shared shingled surface, guard gaps separating the
partitions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.storage import DynamicBandStorage
from repro.experiments.common import MiB, kv_for, scaled_bytes
from repro.harness.profiles import DEFAULT_PROFILE, ScaleProfile
from repro.harness.report import render_table
from repro.kvstore import KVStoreBase
from repro.smr.partition import partition_drive
from repro.smr.raw_hmsmr import RawHMSMRDrive
from repro.smr.timing import SMR_PROFILE
from repro.util.rng import make_rng

DEFAULT_DB_BYTES = 3 * MiB        # per tenant
DEFAULT_TENANTS = (1, 2, 4)


@dataclass
class TenantPoint:
    tenants: int
    per_tenant_ops: float          # aggregate wall view: ops/s per tenant
    aggregate_ops: float
    awa: float
    consolidation_tax: float       # 1 - per_tenant/solo


@dataclass
class MultiTenantResult:
    db_bytes_per_tenant: int
    points: list[TenantPoint]


def _tenant_store(partition, profile: ScaleProfile) -> KVStoreBase:
    storage = DynamicBandStorage(partition, wal_size=profile.wal_region,
                                 meta_size=profile.meta_region,
                                 class_unit=profile.sstable_size)
    options = profile.options(use_sets=True)
    return KVStoreBase(partition, storage, options)


def run(db_bytes: int | None = None,
        tenant_counts: tuple[int, ...] = DEFAULT_TENANTS,
        profile: ScaleProfile = DEFAULT_PROFILE, seed: int = 0
        ) -> MultiTenantResult:
    if db_bytes is None:
        db_bytes = scaled_bytes(DEFAULT_DB_BYTES)
    kv = kv_for(profile)
    entries = profile.entries_for_bytes(db_bytes)

    points: list[TenantPoint] = []
    solo_rate: float | None = None
    for tenants in tenant_counts:
        drive = RawHMSMRDrive(profile.capacity, guard_size=profile.guard_size,
                              profile=SMR_PROFILE.scaled(profile.io_scale))
        stores = [_tenant_store(p, profile)
                  for p in partition_drive(drive, tenants)]
        rng = make_rng(seed)
        streams = [rng.integers(0, entries, size=entries) for _ in stores]
        start = drive.now
        # interleave the tenants' loads put by put (round robin), the
        # way concurrent workloads multiplex onto one arm
        for position in range(entries):
            for store, stream in zip(stores, streams):
                index = int(stream[position])
                store.put(kv.scrambled_key(index), kv.value(index))
        for store in stores:
            store.flush()
        elapsed = drive.now - start
        per_tenant = entries / elapsed if elapsed else 0.0
        if solo_rate is None:
            solo_rate = per_tenant
        points.append(TenantPoint(
            tenants=tenants,
            per_tenant_ops=per_tenant,
            aggregate_ops=per_tenant * tenants,
            awa=max(store.awa() for store in stores),
            consolidation_tax=1.0 - per_tenant / solo_rate,
        ))
    return MultiTenantResult(db_bytes, points)


def render(result: MultiTenantResult) -> str:
    rows = [[p.tenants, p.per_tenant_ops, p.aggregate_ops, p.awa,
             f"{p.consolidation_tax:.0%}"] for p in result.points]
    return render_table(
        "Extension: SEALDB tenants consolidated on one HM-SMR drive",
        ["tenants", "per-tenant ops/s", "aggregate ops/s", "AWA", "tax"],
        rows,
    )


def main() -> None:  # pragma: no cover
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
