"""Fig. 8 -- basic performance on the micro-benchmarks.

The paper loads 25 M records (100 GB) sequentially and randomly, then
reads 100 K records sequentially and randomly from the random-loaded
database, for LevelDB, SMRDB, and SEALDB, reporting throughput
normalized to LevelDB.  Headline numbers:

* random write: SEALDB 3.42x LevelDB, 1.67x SMRDB;
* sequential write: SEALDB ~ SMRDB, both above LevelDB;
* sequential read: SEALDB 3.96x LevelDB, SMRDB slightly lower;
* random read: SEALDB ~1.8x, SMRDB ~ LevelDB.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.common import MiB, scaled_bytes
from repro.harness.metrics import WorkloadResult
from repro.harness.profiles import DEFAULT_PROFILE, ScaleProfile
from repro.harness.report import normalize, render_table
from repro.harness.runner import ExperimentRunner

DEFAULT_DB_BYTES = 12 * MiB
DEFAULT_READ_OPS = 3000

PAPER_NORMALIZED = {
    "fillseq": {"LevelDB": 1.0, "SMRDB": 1.4, "SEALDB": 1.4},
    "fillrandom": {"LevelDB": 1.0, "SMRDB": 2.05, "SEALDB": 3.42},
    "readseq": {"LevelDB": 1.0, "SMRDB": 3.5, "SEALDB": 3.96},
    "readrandom": {"LevelDB": 1.0, "SMRDB": 1.0, "SEALDB": 1.8},
}


@dataclass
class MicroSuiteResult:
    db_bytes: int
    read_ops: int
    results: dict[str, dict[str, WorkloadResult]]
    normalized: dict[str, dict[str, float]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.normalized:
            self.normalized = {
                workload: normalize(
                    {name: r.ops_per_sec for name, r in by_store.items()},
                    "LevelDB",
                )
                for workload, by_store in self.results.items()
            }


def run(db_bytes: int | None = None, read_ops: int = DEFAULT_READ_OPS,
        profile: ScaleProfile = DEFAULT_PROFILE, seed: int = 0,
        store_kinds: tuple[str, ...] = ("leveldb", "smrdb", "sealdb"),
        ) -> MicroSuiteResult:
    if db_bytes is None:
        db_bytes = scaled_bytes(DEFAULT_DB_BYTES)
    runner = ExperimentRunner(profile, store_kinds, seed=seed)
    results = runner.run_micro_suite(db_bytes, read_ops)
    return MicroSuiteResult(db_bytes, read_ops, results)


def render(result: MicroSuiteResult) -> str:
    stores = list(next(iter(result.results.values())).keys())
    rows = []
    for workload, by_store in result.results.items():
        row = [workload]
        for store in stores:
            r = by_store[store]
            norm = result.normalized[workload][store]
            row.append(f"{r.ops_per_sec:,.0f} ({norm:.2f}x)")
        paper = PAPER_NORMALIZED.get(workload, {})
        row.append(" / ".join(f"{paper.get(s, float('nan')):.2f}x"
                              for s in stores))
        rows.append(row)
    return render_table(
        "Fig. 8: micro-benchmark ops/s, normalized to LevelDB "
        "(paper normalization right column)",
        ["workload", *stores, "paper"],
        rows,
    )


def main() -> None:  # pragma: no cover
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
