"""Fig. 8 -- basic performance on the micro-benchmarks.

The paper loads 25 M records (100 GB) sequentially and randomly, then
reads 100 K records sequentially and randomly from the random-loaded
database, for LevelDB, SMRDB, and SEALDB, reporting throughput
normalized to LevelDB.  Headline numbers:

* random write: SEALDB 3.42x LevelDB, 1.67x SMRDB;
* sequential write: SEALDB ~ SMRDB, both above LevelDB;
* sequential read: SEALDB 3.96x LevelDB, SMRDB slightly lower;
* random read: SEALDB ~1.8x, SMRDB ~ LevelDB.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.common import MiB, scaled_bytes
from repro.harness.metrics import WorkloadResult
from repro.harness.profiles import DEFAULT_PROFILE, ScaleProfile
from repro.harness.report import normalize, render_table
from repro.harness.runner import ExperimentRunner

DEFAULT_DB_BYTES = 12 * MiB
DEFAULT_READ_OPS = 3000

PAPER_NORMALIZED = {
    "fillseq": {"LevelDB": 1.0, "SMRDB": 1.4, "SEALDB": 1.4},
    "fillrandom": {"LevelDB": 1.0, "SMRDB": 2.05, "SEALDB": 3.42},
    "readseq": {"LevelDB": 1.0, "SMRDB": 3.5, "SEALDB": 3.96},
    "readrandom": {"LevelDB": 1.0, "SMRDB": 1.0, "SEALDB": 1.8},
}


@dataclass
class MicroSuiteResult:
    db_bytes: int
    read_ops: int
    results: dict[str, dict[str, WorkloadResult]]
    normalized: dict[str, dict[str, float]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.normalized:
            self.normalized = {
                workload: normalize(
                    {name: r.ops_per_sec for name, r in by_store.items()},
                    "LevelDB",
                )
                for workload, by_store in self.results.items()
            }


def run(db_bytes: int | None = None, read_ops: int = DEFAULT_READ_OPS,
        profile: ScaleProfile = DEFAULT_PROFILE, seed: int = 0,
        store_kinds: tuple[str, ...] = ("leveldb", "smrdb", "sealdb"),
        ) -> MicroSuiteResult:
    if db_bytes is None:
        db_bytes = scaled_bytes(DEFAULT_DB_BYTES)
    runner = ExperimentRunner(profile, store_kinds, seed=seed)
    results = runner.run_micro_suite(db_bytes, read_ops)
    return MicroSuiteResult(db_bytes, read_ops, results)


@dataclass
class ShardScalingResult:
    """Sharded extension of Fig. 8: the micro suite per shard count.

    ``results[n][workload]`` is the :class:`WorkloadResult` of the
    ``n``-shard store; sim-seconds use the max-timeline (parallel
    wall-clock) convention of :class:`repro.shard.ShardedStore`, and
    ``timelines[n]`` keeps the per-shard clocks after the suite.
    """

    db_bytes: int
    read_ops: int
    kind: str
    shard_counts: tuple[int, ...]
    results: dict[int, dict[str, WorkloadResult]]
    timelines: dict[int, list[float]]

    def speedup(self, workload: str, shards: int) -> float:
        base = self.results[self.shard_counts[0]][workload].ops_per_sec
        if base == 0:
            return 0.0
        return self.results[shards][workload].ops_per_sec / base


def run_sharded(db_bytes: int | None = None, read_ops: int = DEFAULT_READ_OPS,
                profile: ScaleProfile = DEFAULT_PROFILE, seed: int = 0,
                kind: str = "sealdb",
                shard_counts: tuple[int, ...] = (1, 2, 4),
                router: str = "hash") -> ShardScalingResult:
    """The Fig. 8 suite for one store kind at several shard counts —
    the throughput-scaling curve of the sharded frontend."""
    if db_bytes is None:
        db_bytes = scaled_bytes(DEFAULT_DB_BYTES)
    results: dict[int, dict[str, WorkloadResult]] = {}
    timelines: dict[int, list[float]] = {}
    for shards in shard_counts:
        runner = ExperimentRunner(profile, (kind,), seed=seed,
                                  shards=shards, router=router)
        suite = runner.run_micro_suite(db_bytes, read_ops)
        results[shards] = {workload: next(iter(by_store.values()))
                           for workload, by_store in suite.items()}
        store = next(iter(runner.stores.values()))
        timelines[shards] = ([shard.now for shard in store.shards]
                             if hasattr(store, "shards") else [store.now])
    return ShardScalingResult(db_bytes, read_ops, kind,
                              tuple(shard_counts), results, timelines)


def render_sharded(result: ShardScalingResult) -> str:
    workloads = ("fillseq", "fillrandom", "readseq", "readrandom")
    rows = []
    for shards in result.shard_counts:
        row = [str(shards)]
        for workload in workloads:
            r = result.results[shards][workload]
            row.append(f"{r.ops_per_sec:,.0f} "
                       f"({result.speedup(workload, shards):.2f}x)")
        clocks = result.timelines[shards]
        row.append(f"{max(clocks):.1f}s / {sum(clocks):.1f}s")
        rows.append(row)
    return render_table(
        f"Fig. 8 (sharded): {result.kind} micro-benchmark ops/s by shard "
        "count (speedup vs 1 shard; right column: max / total shard-seconds "
        "after the random-load database's reads)",
        ["shards", *workloads, "wall/total"],
        rows,
    )


def render(result: MicroSuiteResult) -> str:
    stores = list(next(iter(result.results.values())).keys())
    rows = []
    for workload, by_store in result.results.items():
        row = [workload]
        for store in stores:
            r = by_store[store]
            norm = result.normalized[workload][store]
            row.append(f"{r.ops_per_sec:,.0f} ({norm:.2f}x)")
        paper = PAPER_NORMALIZED.get(workload, {})
        row.append(" / ".join(f"{paper.get(s, float('nan')):.2f}x"
                              for s in stores))
        rows.append(row)
    return render_table(
        "Fig. 8: micro-benchmark ops/s, normalized to LevelDB "
        "(paper normalization right column)",
        ["workload", *stores, "paper"],
        rows,
    )


def main() -> None:  # pragma: no cover
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
