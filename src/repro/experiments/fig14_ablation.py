"""Fig. 14 -- contribution analysis of set and dynamic band.

The paper runs the four micro workloads on LevelDB, LevelDB + sets, and
SEALDB (sets + dynamic bands).  Findings:

* sets alone contribute ~41 % of the random-write gain and ~50 % of the
  read gains;
* sequential-write improvement comes only from dynamic bands (no
  compactions happen, so sets cannot help);
* dynamic band helps every workload via the sequential-dominant layout.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.common import MiB, scaled_bytes
from repro.harness.metrics import WorkloadResult
from repro.harness.profiles import DEFAULT_PROFILE, ScaleProfile
from repro.harness.report import normalize, render_table
from repro.harness.runner import ExperimentRunner

DEFAULT_DB_BYTES = 12 * MiB
DEFAULT_READ_OPS = 3000


@dataclass
class AblationResult:
    db_bytes: int
    results: dict[str, dict[str, WorkloadResult]]
    normalized: dict[str, dict[str, float]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.normalized:
            self.normalized = {
                workload: normalize(
                    {s: r.ops_per_sec for s, r in by_store.items()}, "LevelDB")
                for workload, by_store in self.results.items()
            }

    def sets_contribution(self, workload: str) -> float:
        """Share of SEALDB's gain over LevelDB attributable to sets."""
        base = self.normalized[workload]["LevelDB"]
        with_sets = self.normalized[workload]["LevelDB+sets"]
        full = self.normalized[workload]["SEALDB"]
        if full <= base:
            return 0.0
        return max(0.0, (with_sets - base) / (full - base))


def run(db_bytes: int | None = None, read_ops: int = DEFAULT_READ_OPS,
        profile: ScaleProfile = DEFAULT_PROFILE, seed: int = 0
        ) -> AblationResult:
    if db_bytes is None:
        db_bytes = scaled_bytes(DEFAULT_DB_BYTES)
    runner = ExperimentRunner(profile,
                              ("leveldb", "leveldb+sets", "sealdb"),
                              seed=seed)
    results = runner.run_micro_suite(db_bytes, read_ops)
    return AblationResult(db_bytes, results)


def render(result: AblationResult) -> str:
    stores = ["LevelDB", "LevelDB+sets", "SEALDB"]
    rows = []
    for workload, by_store in result.results.items():
        row = [workload]
        for store in stores:
            row.append(f"{by_store[store].ops_per_sec:,.0f} "
                       f"({result.normalized[workload][store]:.2f}x)")
        row.append(f"{result.sets_contribution(workload):.0%}")
        rows.append(row)
    return render_table(
        "Fig. 14: set vs dynamic-band contribution "
        "(sets' share of the SEALDB gain in the last column)",
        ["workload", *stores, "sets share"],
        rows,
    )


def main() -> None:  # pragma: no cover
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
