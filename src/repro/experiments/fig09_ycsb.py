"""Fig. 9 -- YCSB macro-benchmark performance.

The paper loads 25 M entries per store and runs 100 K operations of
each YCSB workload (A-F).  Findings: "SEALDB enjoys a larger
performance improvement in random load/write dominated workloads" and
the per-store behaviour matches the micro-benchmarks; skewed (zipfian)
requests give SEALDB and SMRDB a larger edge than uniform ones.

The load:run ratio here mirrors the paper's 25 M : 100 K (250:1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.common import MiB, kv_for, scaled_bytes
from repro.harness.profiles import DEFAULT_PROFILE, ScaleProfile
from repro.harness.report import normalize, render_table
from repro.harness.runner import make_store
from repro.workloads.ycsb import YCSB_WORKLOADS, YCSBResult, YCSBRunner

DEFAULT_DB_BYTES = 8 * MiB
#: run ops per loaded record -- heavier than the paper's 250:1 so the
#: scaled run phase still triggers flushes/compactions (signal, not noise)
DEFAULT_OPS_RATIO = 40


@dataclass
class YCSBSuiteResult:
    db_bytes: int
    operation_count: int
    #: results[workload][store] -> YCSBResult ("load" is a pseudo-workload)
    results: dict[str, dict[str, YCSBResult]]
    normalized: dict[str, dict[str, float]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.normalized:
            self.normalized = {
                workload: normalize(
                    {s: r.ops_per_sec for s, r in by_store.items()}, "LevelDB")
                for workload, by_store in self.results.items()
            }


def run(db_bytes: int | None = None, operation_count: int | None = None,
        profile: ScaleProfile = DEFAULT_PROFILE, seed: int = 0,
        store_kinds: tuple[str, ...] = ("leveldb", "smrdb", "sealdb"),
        workloads: tuple[str, ...] = ("A", "B", "C", "D", "E", "F"),
        ) -> YCSBSuiteResult:
    if db_bytes is None:
        db_bytes = scaled_bytes(DEFAULT_DB_BYTES)
    record_count = profile.entries_for_bytes(db_bytes)
    if operation_count is None:
        operation_count = max(200, record_count // DEFAULT_OPS_RATIO)

    results: dict[str, dict[str, YCSBResult]] = {"load": {}}
    results.update({w: {} for w in workloads})
    for kind in store_kinds:
        store = make_store(kind, profile)
        runner = YCSBRunner(kv_for(profile), record_count, seed=seed)
        results["load"][store.name] = runner.load(store)
        for name in workloads:
            results[name][store.name] = runner.run(
                store, YCSB_WORKLOADS[name], operation_count)
    return YCSBSuiteResult(db_bytes, operation_count, results)


def render(result: YCSBSuiteResult) -> str:
    stores = list(result.results["load"].keys())
    rows = []
    for workload, by_store in result.results.items():
        row = [workload]
        for store in stores:
            r = by_store[store]
            row.append(f"{r.ops_per_sec:,.0f} "
                       f"({result.normalized[workload][store]:.2f}x)")
        rows.append(row)
    return render_table(
        "Fig. 9: YCSB throughput (ops/s, normalized to LevelDB)",
        ["workload", *stores],
        rows,
    )


def main() -> None:  # pragma: no cover
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
