"""Extension: fragment aging under sustained update churn.

Fig. 13 snapshots the fragment share after one bulk load.  Long-lived
stores age differently: a drifting update/delete working set keeps
invalidating parts of sets, so fragments and dead-in-set bytes
accumulate.  This experiment drives SEALDB with the churn trace
generator and samples the layout every phase -- once without the
fragment GC and once running :meth:`SealDB.collect_fragments` between
phases -- quantifying how much the paper's future-work GC matters over
time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.sealdb import SealDB
from repro.experiments.common import MiB, kv_for, scaled_bytes
from repro.harness.profiles import DEFAULT_PROFILE, ScaleProfile
from repro.harness.report import render_table
from repro.workloads.trace import ChurnTraceGenerator, replay

DEFAULT_DB_BYTES = 4 * MiB
DEFAULT_PHASES = 6


@dataclass
class AgingSample:
    """Layout snapshot after one churn phase."""

    phase: int
    fragment_share: float
    dead_bytes: int
    occupied: int
    live: int


@dataclass
class AgingResult:
    db_bytes: int
    phases: int
    without_gc: list[AgingSample] = field(default_factory=list)
    with_gc: list[AgingSample] = field(default_factory=list)
    gc_moves: int = 0
    gc_bytes: int = 0

    def final_fragment_shares(self) -> tuple[float, float]:
        return (self.without_gc[-1].fragment_share,
                self.with_gc[-1].fragment_share)


def _sample(store: SealDB, phase: int) -> AgingSample:
    manager = store.band_manager
    occupied = manager.occupied_bytes()
    fragments = sum(f.length for f in store.fragments())
    return AgingSample(
        phase=phase,
        fragment_share=fragments / occupied if occupied else 0.0,
        dead_bytes=store.set_registry.dead_bytes(),
        occupied=occupied,
        live=manager.allocated_bytes(),
    )


def run(db_bytes: int | None = None, phases: int = DEFAULT_PHASES,
        profile: ScaleProfile = DEFAULT_PROFILE, seed: int = 0
        ) -> AgingResult:
    if db_bytes is None:
        db_bytes = scaled_bytes(DEFAULT_DB_BYTES)
    kv = kv_for(profile)
    entries = profile.entries_for_bytes(db_bytes)
    ops_per_phase = max(500, entries // 2)

    result = AgingResult(db_bytes, phases)
    for use_gc in (False, True):
        store = SealDB(profile)
        churn = ChurnTraceGenerator(
            kv, working_set=max(200, entries // 4),
            drift=max(50, entries // 16),
            ops_per_phase=ops_per_phase, seed=seed)
        trace = churn.generate(ops_per_phase * phases)
        for phase in range(phases):
            batch = [next(trace) for _ in range(ops_per_phase)]
            replay(store, batch)
            store.flush()
            if use_gc:
                moves, moved_bytes = store.collect_fragments(max_moves=32)
                result.gc_moves += moves
                result.gc_bytes += moved_bytes
            samples = result.with_gc if use_gc else result.without_gc
            samples.append(_sample(store, phase))
    return result


def render(result: AgingResult) -> str:
    rows = []
    for no_gc, gc in zip(result.without_gc, result.with_gc):
        rows.append([
            no_gc.phase,
            f"{no_gc.fragment_share:.1%}",
            no_gc.dead_bytes / 1024,
            f"{gc.fragment_share:.1%}",
            gc.dead_bytes / 1024,
        ])
    table = render_table(
        "Extension: fragment aging under churn (no GC vs GC per phase)",
        ["phase", "frag share", "dead KiB", "frag share+GC", "dead KiB+GC"],
        rows,
    )
    return (table +
            f"\nGC total: {result.gc_moves} sets relocated, "
            f"{result.gc_bytes / 1024:.0f} KiB rewritten")


def main() -> None:  # pragma: no cover
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
