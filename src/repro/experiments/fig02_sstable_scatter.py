"""Fig. 2 -- SSTables' distribution for each compaction (LevelDB/ext4/HDD).

The paper randomly loads a 10 GB database on LevelDB over ext4 on a
plain HDD and records the physical address of every SSTable written by
every compaction: "for each compaction, SSTables are separately written
to different locations, almost scattered around the first 10 GB disk
space" (~600 compactions observed).

This experiment reproduces the trace: per compaction, the physical
start offsets of its output SSTables, plus summary statistics -- the
mean *span* a single compaction's I/O covers, and the fraction of the
used disk region it covers.  Compare with Fig. 11 (SEALDB), where every
compaction is one contiguous run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.common import MiB, scaled_bytes
from repro.harness.metrics import compaction_span, output_offsets_per_compaction
from repro.harness.profiles import DEFAULT_PROFILE, ScaleProfile
from repro.harness.report import render_table

#: the paper's 10 GB, divided by the profile scale (128) and again by 10
#: to keep the default benchmark quick; REPRO_SCALE raises it
DEFAULT_DB_BYTES = 8 * MiB


@dataclass
class ScatterResult:
    """Per-compaction layout trace of a random load."""

    db_bytes: int
    num_compactions: int
    offsets: list[list[int]]       # per compaction: output SSTable offsets
    mean_span: float               # avg distance covered by one compaction
    max_offset: int                # disk footprint of the database
    mean_coverage: float           # mean_span / used region
    sim_seconds: float
    profile_name: str = "default"
    series: dict = field(default_factory=dict)


def run(db_bytes: int | None = None,
        profile: ScaleProfile = DEFAULT_PROFILE, seed: int = 0,
        kind: str = "leveldb", drive_kind: str = "hdd") -> ScatterResult:
    from repro.harness.runner import make_store
    from repro.workloads.microbench import MicroBenchmark
    from repro.experiments.common import kv_for

    if db_bytes is None:
        db_bytes = scaled_bytes(DEFAULT_DB_BYTES)
    store = make_store(kind, profile, drive_kind=drive_kind) \
        if kind == "leveldb" else make_store(kind, profile)
    bench = MicroBenchmark(kv_for(profile),
                           profile.entries_for_bytes(db_bytes), seed=seed)
    fill = bench.fill_random(store)

    records = store.real_compactions()
    offsets = output_offsets_per_compaction(store)
    spans = [compaction_span(r) for r in records]
    max_offset = max((off for row in offsets for off in row), default=0)
    used = max(1, max_offset - store.storage.data_start)
    mean_span = sum(spans) / len(spans) if spans else 0.0
    return ScatterResult(
        db_bytes=db_bytes,
        num_compactions=len(records),
        offsets=offsets,
        mean_span=mean_span,
        max_offset=max_offset,
        mean_coverage=mean_span / used,
        sim_seconds=fill.sim_seconds,
        profile_name=profile.name,
    )


def scatter_points(result: ScatterResult) -> list[tuple[float, float]]:
    """The figure's raw series: (compaction index, output offset MiB)."""
    return [(index, offset / MiB)
            for index, row in enumerate(result.offsets)
            for offset in row]


def render(result: ScatterResult) -> str:
    from repro.harness.plotting import ascii_scatter

    rows = [
        ["database bytes", result.db_bytes],
        ["compactions observed", result.num_compactions],
        ["mean span of one compaction (MiB)", result.mean_span / MiB],
        ["disk footprint (MiB)", result.max_offset / MiB],
        ["footprint / database size", result.max_offset / result.db_bytes],
        ["span / used region", result.mean_coverage],
    ]
    table = render_table(
        "Fig. 2: LevelDB compaction output scatter (ext4 on HDD)",
        ["metric", "value"], rows,
    )
    plot = ascii_scatter(scatter_points(result), width=72, height=18,
                         title="output SSTable addresses per compaction",
                         xlabel="compaction #", ylabel="MiB")
    return table + "\n\n" + plot


def save_csv(result: ScatterResult, path) -> None:
    """Dump the scatter series for external plotting."""
    from repro.harness.plotting import to_csv

    to_csv(["compaction", "offset_bytes"],
           [(index, offset)
            for index, row in enumerate(result.offsets)
            for offset in row],
           path=path)


def main() -> None:  # pragma: no cover - CLI convenience
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
