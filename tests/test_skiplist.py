"""Tests for the skiplist."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import InvariantViolation
from repro.lsm.skiplist import SkipList


class TestSkipList:
    def test_empty(self):
        s = SkipList()
        assert len(s) == 0
        assert s.get(b"x") is None
        assert list(s) == []

    def test_insert_get(self):
        s = SkipList()
        s.insert(b"b", 2)
        s.insert(b"a", 1)
        s.insert(b"c", 3)
        assert s.get(b"a") == 1
        assert s.get(b"b") == 2
        assert s.get(b"c") == 3
        assert s.get(b"d") is None

    def test_iteration_sorted(self):
        s = SkipList()
        for k in [b"m", b"a", b"z", b"f", b"q"]:
            s.insert(k, k)
        assert [k for k, _v in s] == [b"a", b"f", b"m", b"q", b"z"]

    def test_duplicate_rejected(self):
        s = SkipList()
        s.insert(b"a", 1)
        with pytest.raises(InvariantViolation):
            s.insert(b"a", 2)

    def test_seek(self):
        s = SkipList()
        for i in range(0, 20, 2):
            s.insert(b"k%02d" % i, i)
        assert [k for k, _ in s.seek(b"k05")][0] == b"k06"
        assert [k for k, _ in s.seek(b"k06")][0] == b"k06"
        assert list(s.seek(b"k99")) == []
        assert [k for k, _ in s.seek(b"")][0] == b"k00"

    def test_deterministic_with_seed(self):
        a, b = SkipList(seed=42), SkipList(seed=42)
        for i in range(200):
            a.insert(i, i)
            b.insert(i, i)
        assert a._height == b._height

    def test_tuple_keys(self):
        s = SkipList()
        s.insert((b"k", -5), "v5")
        s.insert((b"k", -9), "v9")
        assert [v for _k, v in s] == ["v9", "v5"]

    @given(st.sets(st.integers(0, 10_000), max_size=300))
    def test_matches_sorted_dict(self, keys):
        s = SkipList(seed=1)
        for k in keys:
            s.insert(k, k * 2)
        assert [k for k, _v in s] == sorted(keys)
        assert len(s) == len(keys)
        s.check_invariants()
        for probe in list(keys)[:20]:
            assert s.get(probe) == probe * 2
