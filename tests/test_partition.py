"""Tests for drive partitions and consolidated tenants."""

import pytest

from repro.errors import OutOfRangeError, ReproError, ShingleOverwriteError
from repro.smr.partition import DrivePartition, partition_drive
from repro.smr.raw_hmsmr import RawHMSMRDrive

KiB = 1024
MiB = 1024 * 1024


class TestDrivePartition:
    def _parent(self):
        return RawHMSMRDrive(1 * MiB, guard_size=4 * KiB)

    def test_offset_translation(self):
        parent = self._parent()
        part = DrivePartition(parent, 256 * KiB, 128 * KiB)
        part.write(0, b"hello")
        assert parent.peek(256 * KiB, 5) == b"hello"
        assert part.read(0, 5) == b"hello"
        assert part.peek(0, 5) == b"hello"

    def test_bounds_enforced(self):
        part = DrivePartition(self._parent(), 0, 64 * KiB)
        with pytest.raises(OutOfRangeError):
            part.write(64 * KiB - 2, b"xxx")
        with pytest.raises(OutOfRangeError):
            part.read(70 * KiB, 1)

    def test_bad_geometry_rejected(self):
        parent = self._parent()
        with pytest.raises(ReproError):
            DrivePartition(parent, 0, 2 * MiB)
        with pytest.raises(ReproError):
            DrivePartition(parent, -1, KiB)

    def test_per_partition_stats(self):
        parent = self._parent()
        a = DrivePartition(parent, 0, 256 * KiB)
        b = DrivePartition(parent, 512 * KiB, 256 * KiB)
        a.write(0, b"x" * 100)
        b.write(0, b"y" * 300)
        assert a.stats.bytes_written == 100
        assert b.stats.bytes_written == 300
        assert parent.stats.bytes_written == 400

    def test_shared_clock_and_head(self):
        parent = self._parent()
        a = DrivePartition(parent, 0, 256 * KiB)
        b = DrivePartition(parent, 512 * KiB, 256 * KiB)
        t0 = parent.now
        a.write(0, b"x" * 4 * KiB)
        t1 = parent.now
        assert t1 > t0
        b.write(0, b"y" * 4 * KiB)   # head must travel: extra seek time
        assert parent.now > t1

    def test_smr_safety_enforced_across_partition(self):
        parent = self._parent()
        part = DrivePartition(parent, 0, 512 * KiB)
        part.write(10 * KiB, b"a" * KiB)
        with pytest.raises(ShingleOverwriteError):
            part.write(8 * KiB, b"b" * KiB)  # damage zone hits the data

    def test_trim_forwards(self):
        parent = self._parent()
        part = DrivePartition(parent, 64 * KiB, 128 * KiB)
        part.write(0, b"z" * KiB)
        part.trim(0, KiB)
        part.write(0, b"w" * KiB)    # legal again after trim
        assert part.read(0, 1) == b"w"


class TestPartitionDrive:
    def test_equal_partitions_with_gaps(self):
        parent = RawHMSMRDrive(1 * MiB, guard_size=4 * KiB)
        parts = partition_drive(parent, 4)
        assert len(parts) == 4
        sizes = {p.capacity for p in parts}
        assert len(sizes) == 1
        # gaps: consecutive partitions do not touch
        for a, b in zip(parts, parts[1:]):
            assert a.start + a.capacity + parent.guard_size <= b.start

    def test_tenants_writing_full_partitions_never_collide(self):
        parent = RawHMSMRDrive(1 * MiB, guard_size=4 * KiB)
        parts = partition_drive(parent, 3)
        for index, part in enumerate(parts):
            payload = bytes([index + 1]) * (part.capacity // 2)
            part.write(0, payload)
        for index, part in enumerate(parts):
            assert part.read(0, 1) == bytes([index + 1])

    def test_validation(self):
        parent = RawHMSMRDrive(64 * KiB, guard_size=4 * KiB)
        with pytest.raises(ReproError):
            partition_drive(parent, 0)
        with pytest.raises(ReproError):
            partition_drive(parent, 1000)
