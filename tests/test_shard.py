"""Tests for the sharded frontend: routers, merge, and store equivalence.

The core property: a sharded store and a single store fed the same
operation sequence must return identical ``get``/``scan`` results, for
both routers, including deletes and range scans spanning shard
boundaries.
"""

from __future__ import annotations

import pytest

import repro
from repro.errors import ReproError
from repro.lsm.wal import WriteBatch
from repro.shard import (
    HashRouter,
    RangeRouter,
    ShardedStore,
    make_router,
    merge_shard_scans,
)
from repro.util.rng import make_rng

from tests.conftest import TEST_PROFILE

pytestmark = pytest.mark.shards


def key(i: int) -> bytes:
    return b"%08d" % i


# -- routers ------------------------------------------------------------------

class TestRouters:
    def test_hash_router_is_deterministic_and_in_range(self):
        router = HashRouter(4)
        for i in range(500):
            shard = router.shard_of(key(i))
            assert 0 <= shard < 4
            assert shard == router.shard_of(key(i))

    def test_hash_router_spreads_keys(self):
        router = HashRouter(4)
        counts = [0] * 4
        for i in range(2000):
            counts[router.shard_of(key(i))] += 1
        assert min(counts) > 0.15 * 2000 / 4 * 4 / 4  # no empty shard
        assert max(counts) < 0.5 * 2000

    def test_hash_scan_consults_every_shard(self):
        assert HashRouter(3).shards_for_range(b"a", b"b") == (0, 1, 2)

    def test_range_router_boundaries(self):
        router = RangeRouter([b"b", b"d"])
        assert router.num_shards == 3
        assert router.shard_of(b"a") == 0
        assert router.shard_of(b"b") == 1  # boundary goes up
        assert router.shard_of(b"c") == 1
        assert router.shard_of(b"d") == 2
        assert router.shard_of(b"zzz") == 2

    def test_range_router_scan_subset(self):
        router = RangeRouter([b"b", b"d"])
        assert router.shards_for_range(b"a", b"aa") == (0,)
        assert router.shards_for_range(b"b", b"c") == (1,)
        assert router.shards_for_range(b"a", b"e") == (0, 1, 2)
        assert router.shards_for_range(None, None) == (0, 1, 2)

    def test_range_router_rejects_unsorted_boundaries(self):
        with pytest.raises(ReproError):
            RangeRouter([b"d", b"b"])
        with pytest.raises(ReproError):
            RangeRouter([b"b", b"b"])

    def test_uniform_split_covers_space(self):
        router = RangeRouter.uniform(4)
        seen = {router.shard_of(bytes([b, 0, 7])) for b in range(256)}
        assert seen == {0, 1, 2, 3}

    def test_make_router(self):
        assert isinstance(make_router("hash", 2), HashRouter)
        assert isinstance(make_router("range", 3), RangeRouter)
        custom = RangeRouter([b"m"])
        assert make_router(custom, 2) is custom
        with pytest.raises(ReproError):
            make_router(custom, 3)  # shard-count mismatch
        with pytest.raises(ReproError):
            make_router("bogus", 2)
        with pytest.raises(ReproError):
            make_router("range", 3, boundaries=[b"a"])  # needs 2


# -- merge iterator -----------------------------------------------------------

class TestMerge:
    def test_merges_disjoint_sorted_streams(self):
        a = [(key(i), b"a") for i in range(0, 30, 3)]
        b = [(key(i), b"b") for i in range(1, 30, 3)]
        c = [(key(i), b"c") for i in range(2, 30, 3)]
        merged = list(merge_shard_scans([iter(a), iter(b), iter(c)]))
        assert [k for k, _v in merged] == [key(i) for i in range(30)]

    def test_empty_streams(self):
        assert list(merge_shard_scans([])) == []
        assert list(merge_shard_scans([iter([]), iter([(b"k", b"v")])])) == \
            [(b"k", b"v")]

    def test_lazy_consumption(self):
        """Taking a few heads must not drain the sources."""
        pulled = []

        def source(tag, n):
            for i in range(n):
                pulled.append(tag)
                yield (b"%s%04d" % (tag, i), b"v")

        merged = merge_shard_scans([source(b"a", 1000), source(b"b", 1000)])
        for _ in range(5):
            next(merged)
        assert len(pulled) < 20


# -- single vs sharded equivalence --------------------------------------------

def apply_ops(store, ops):
    for op in ops:
        if op[0] == "put":
            store.put(op[1], op[2])
        elif op[0] == "delete":
            store.delete(op[1])
        else:
            batch = WriteBatch()
            for kind, k, v in op[1]:
                batch.put(k, v) if kind == "put" else batch.delete(k)
            store.write_batch(batch)


def random_ops(seed: int, count: int, universe: int = 400):
    """A deterministic mixed workload: puts, overwrites, deletes, and
    multi-key batches that straddle shard boundaries."""
    rng = make_rng(seed)
    ops = []
    for step in range(count):
        roll = int(rng.integers(0, 10))
        i = int(rng.integers(0, universe))
        if roll < 6:
            ops.append(("put", key(i), b"v%d-%d" % (step, i)))
        elif roll < 8:
            ops.append(("delete", key(i)))
        else:
            entries = []
            for _ in range(int(rng.integers(2, 6))):
                j = int(rng.integers(0, universe))
                if int(rng.integers(0, 4)) == 0:
                    entries.append(("delete", key(j), b""))
                else:
                    entries.append(("put", key(j), b"b%d-%d" % (step, j)))
            ops.append(("batch", entries))
    return ops


@pytest.mark.parametrize("router", ["hash", "range"])
@pytest.mark.parametrize("shards", [2, 3])
def test_sharded_equals_single(router, shards):
    ops = random_ops(seed=7, count=600)
    single = repro.open("sealdb", profile=TEST_PROFILE, shards=1)
    boundaries = None
    if router == "range":
        # split inside the dense ASCII key region so every shard is hit
        step = 400 // shards
        boundaries = [key(step * i) for i in range(1, shards)]
    sharded = repro.open("sealdb", profile=TEST_PROFILE, shards=shards,
                         router=router, router_boundaries=boundaries)
    assert isinstance(sharded, ShardedStore)

    apply_ops(single, ops)
    apply_ops(sharded, ops)

    for i in range(400):
        assert sharded.get(key(i)) == single.get(key(i)), key(i)
    assert sharded.get(b"missing") is None

    assert list(sharded.scan()) == list(single.scan())
    # range scans spanning shard boundaries, plus limits
    ranges = [(key(0), key(50)), (key(95), key(210)), (key(130), key(131)),
              (None, key(260)), (key(390), None), (key(210), key(210))]
    for start, end in ranges:
        assert list(sharded.scan(start, end)) == list(single.scan(start, end))
        assert list(sharded.scan(start, end, limit=17)) == \
            list(single.scan(start, end, limit=17))
    assert list(sharded.scan(limit=0)) == []

    single.close()
    sharded.close()


def test_equivalence_survives_reopen():
    ops = random_ops(seed=11, count=300)
    single = repro.open("sealdb", profile=TEST_PROFILE, shards=1)
    sharded = repro.open("sealdb", profile=TEST_PROFILE, shards=3)
    apply_ops(single, ops)
    apply_ops(sharded, ops)
    single.reopen()
    sharded.reopen()
    assert list(sharded.scan()) == list(single.scan())


def test_serial_and_parallel_fanout_agree():
    ops = random_ops(seed=3, count=250)
    serial = repro.open("sealdb", profile=TEST_PROFILE, shards=2,
                        shard_parallel=False)
    parallel = repro.open("sealdb", profile=TEST_PROFILE, shards=2,
                          shard_parallel=True)
    apply_ops(serial, ops)
    apply_ops(parallel, ops)
    assert list(serial.scan()) == list(parallel.scan())
    assert serial.now == parallel.now  # simulated clocks are identical
    serial.close()
    parallel.close()


# -- sharded store surface ----------------------------------------------------

class TestShardedStore:
    def _store(self, **kwargs):
        kwargs.setdefault("shards", 2)
        return repro.open("sealdb", profile=TEST_PROFILE, **kwargs)

    def test_open_shards_one_returns_plain_store(self):
        store = repro.open("sealdb", profile=TEST_PROFILE, shards=1)
        assert not isinstance(store, ShardedStore)
        assert type(store).__name__ == "SealDB"

    def test_rejects_shared_clock(self):
        from repro.smr.timing import SimClock
        with pytest.raises(ReproError):
            repro.open("sealdb", profile=TEST_PROFILE, shards=2,
                       clock=SimClock())

    def test_write_batch_splits_and_applies_atomically(self):
        store = self._store()
        batch = WriteBatch()
        for i in range(40):
            batch.put(key(i), b"v%d" % i)
        store.write_batch(batch)
        for i in range(40):
            assert store.get(key(i)) == b"v%d" % i

    def test_snapshot_pins_all_shards(self):
        store = self._store()
        for i in range(50):
            store.put(key(i), b"old")
        with store.snapshot() as snap:
            for i in range(50):
                store.put(key(i), b"new")
            assert [v for _k, v in snap.scan()] == [b"old"] * 50
        assert [v for _k, v in store.scan()] == [b"new"] * 50

    def test_facade_snapshot_single_store(self):
        store = repro.open("sealdb", profile=TEST_PROFILE, shards=1)
        store.put(b"k", b"1")
        with store.snapshot() as snap:
            store.put(b"k", b"2")
            assert snap.get(b"k") == b"1"
        assert store.get(b"k") == b"2"

    def test_timeline_and_now(self):
        store = self._store()
        for i in range(200):
            store.put(key(i), b"x" * 32)
        store.flush()
        timeline = store.timeline()
        assert len(timeline.per_shard) == 2
        assert store.now == timeline.max_seconds
        assert timeline.total_seconds >= timeline.max_seconds
        assert 0.0 < timeline.balance <= 1.0
        assert "max=" in timeline.render()

    def test_bulk_load_parallel(self):
        store = self._store(shards=4)
        timeline = store.bulk_load(
            (key(i), b"v" * 16) for i in range(1000))
        assert len(timeline.per_shard) == 4
        assert timeline.max_seconds > 0
        assert store.get(key(999)) == b"v" * 16
        assert len(list(store.scan())) == 1000

    def test_merged_measurements(self):
        store = self._store()
        for i in range(2000):
            store.put(key(i % 300), b"y" * 48)
        store.flush()
        assert store.tracker.user_bytes == sum(
            s.tracker.user_bytes for s in store.shards)
        assert store.stats.puts == 2000
        assert store.wa() > 1.0
        assert store.mwa() == pytest.approx(store.wa() * store.awa())
        merged_files = sum(count for _l, count, _b in store.level_summary())
        assert merged_files == sum(
            count for s in store.shards
            for _l, count, _b in s.level_summary())
        records = store.compaction_records
        assert len(records) == sum(
            len(s.compaction_records) for s in store.shards)
        starts = [r.start_time for r in records]
        assert starts == sorted(starts)

    def test_compact_range_fans_out(self):
        store = self._store()
        for i in range(800):
            store.put(key(i), b"z" * 40)
        for i in range(0, 800, 2):
            store.delete(key(i))
        executed = store.compact_range()
        assert executed >= 0
        assert len(list(store.scan())) == 400

    def test_merged_metrics_registry(self):
        store = self._store()
        store.obs.arm()
        for i in range(50):
            store.put(key(i), b"v")
        store.get(key(1))
        list(store.scan(limit=5))
        merged = store.merged_metrics()
        assert merged.counters["ops.put"].value == 50
        assert merged.counters["ops.get"].value == 1
        # facade emits the cross-shard scan; shards emit their own
        assert merged.counters["ops.scan"].value >= 1
        assert merged.gauges["amp.wa"].value == store.wa()
        per_shard_puts = sum(
            s.obs.metrics.counters["ops.put"].value for s in store.shards)
        assert per_shard_puts == 50

    def test_fanout_subscribe_sees_shard_events(self):
        store = self._store()
        events = []
        store.obs.subscribe(events.append, events={"flush.end"})
        for i in range(400):
            store.put(key(i), b"w" * 40)
        store.flush()
        assert len(events) >= 2  # every shard flushed at least once
        store.obs.unsubscribe(events.append)

    def test_describe_mentions_router_and_width(self):
        store = self._store()
        text = store.describe()
        assert "2 x" in text and "HashRouter" in text


# -- scan events (facade/obs gap fix) ----------------------------------------

class TestScanEvent:
    def test_single_store_scan_emits_event(self):
        store = repro.open("sealdb", profile=TEST_PROFILE, shards=1)
        for i in range(20):
            store.put(key(i), b"v")
        events = []
        store.obs.subscribe(events.append, events={"op.scan"})
        assert len(list(store.scan(limit=7))) == 7
        assert len(events) == 1
        assert events[0].keys == 7
        assert events[0].latency >= 0
        assert store.obs.metrics.counters["ops.scan"].value == 1
        assert store.obs.metrics.counters["ops.scan_keys"].value == 7

    def test_unarmed_scan_pays_nothing(self):
        store = repro.open("sealdb", profile=TEST_PROFILE, shards=1)
        store.put(b"a", b"1")
        assert list(store.scan()) == [(b"a", b"1")]
        assert store.obs.metrics.counters.get("ops.scan") is None

    def test_sharded_scan_emits_facade_event(self):
        store = repro.open("sealdb", profile=TEST_PROFILE, shards=2)
        for i in range(20):
            store.put(key(i), b"v")
        store.obs.arm()
        list(store.scan())
        assert store.obs.metrics.counters["ops.scan"].value == 1
        assert store.obs.metrics.counters["ops.scan_keys"].value == 20


# -- environment default ------------------------------------------------------

class TestDefaultShards:
    def test_env_sets_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEFAULT_SHARDS", "2")
        store = repro.open("sealdb", profile=TEST_PROFILE)
        assert isinstance(store, ShardedStore)
        assert len(store.shards) == 2
        # explicit shards wins over the environment
        plain = repro.open("sealdb", profile=TEST_PROFILE, shards=1)
        assert not isinstance(plain, ShardedStore)

    def test_env_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEFAULT_SHARDS", "many")
        with pytest.raises(ReproError):
            repro.open("sealdb", profile=TEST_PROFILE)
        monkeypatch.setenv("REPRO_DEFAULT_SHARDS", "0")
        with pytest.raises(ReproError):
            repro.open("sealdb", profile=TEST_PROFILE)

    def test_unset_means_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_DEFAULT_SHARDS", raising=False)
        assert repro.default_shards() == 1


# -- public surface -----------------------------------------------------------

class TestPublicSurface:
    def test_facade_exports(self):
        assert repro.WriteBatch is WriteBatch
        assert repro.ShardedStore is ShardedStore
        assert repro.HashRouter is HashRouter
        assert repro.RangeRouter is RangeRouter
        assert "default" in repro.PROFILES
        assert "small" in repro.PROFILES
        for name in ("open", "WriteBatch", "Options", "PROFILES",
                     "Snapshot", "ShardedStore"):
            assert name in repro.__all__

    def test_old_import_paths_still_work(self):
        from repro.lsm.wal import WriteBatch as OldWriteBatch
        from repro.lsm.options import Options as OldOptions
        assert OldWriteBatch is repro.WriteBatch
        assert OldOptions is repro.Options
