"""Tests for dynamic-band management over the raw HM-SMR drive."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.dynamic_band import DynamicBandManager
from repro.errors import AllocationError, InvariantViolation
from repro.smr.raw_hmsmr import RawHMSMRDrive

KiB = 1024
MiB = 1024 * 1024
GUARD = 4 * KiB


def make_manager(capacity=4 * MiB, data_start=0, guard=GUARD):
    drive = RawHMSMRDrive(capacity, guard_size=guard)
    return DynamicBandManager(drive, data_start, class_unit=4 * KiB), drive


class TestAppendPath:
    def test_appends_are_contiguous(self):
        m, _ = make_manager()
        a = m.allocate(10 * KiB)
        b = m.allocate(6 * KiB)
        assert a == 0
        assert b == 10 * KiB
        assert m.tail == 16 * KiB
        assert m.appends == 2 and m.inserts == 0

    def test_appended_writes_are_drive_safe(self):
        m, drive = make_manager()
        for size in (10 * KiB, 6 * KiB, 20 * KiB):
            offset = m.allocate(size)
            drive.write(offset, b"x" * size)  # must not raise
        m.check_invariants()

    def test_disk_full(self):
        m, _ = make_manager(capacity=64 * KiB)
        m.allocate(60 * KiB)
        with pytest.raises(AllocationError):
            m.allocate(8 * KiB)


class TestInsertPath:
    def test_insert_requires_eq1(self):
        """Eq. 1: S_free >= S_req + S_guard."""
        m, drive = make_manager()
        a = m.allocate(16 * KiB)
        b = m.allocate(16 * KiB)
        drive.write(a, b"a" * 16 * KiB)
        drive.write(b, b"b" * 16 * KiB)
        m.free(a, 16 * KiB)
        # 16 KiB free; a 16 KiB request needs 16+4 KiB -> must append
        c = m.allocate(16 * KiB)
        assert c == m.tail - 16 * KiB  # appended
        # a 12 KiB request fits (12 + 4 <= 16) -> inserted at the hole
        d = m.allocate(12 * KiB)
        assert d == a
        assert m.inserts == 1

    def test_insert_leaves_guard_for_downstream_data(self):
        m, drive = make_manager()
        a = m.allocate(16 * KiB)
        b = m.allocate(16 * KiB)
        drive.write(a, b"a" * 16 * KiB)
        drive.write(b, b"b" * 16 * KiB)
        m.free(a, 16 * KiB)
        d = m.allocate(12 * KiB)
        # writing the insert must not damage the valid data at b
        drive.write(d, b"d" * 12 * KiB)
        assert drive.peek(b, 1) == b"b"

    def test_split_returns_remainder(self):
        m, drive = make_manager()
        a = m.allocate(32 * KiB)
        b = m.allocate(8 * KiB)
        drive.write(a, b"a" * 32 * KiB)
        drive.write(b, b"b" * 8 * KiB)
        m.free(a, 32 * KiB)
        m.allocate(8 * KiB)  # splits the 32 KiB hole
        assert m.splits == 1
        assert m.free_bytes() == 24 * KiB

    def test_guard_sized_leftover_never_allocated(self):
        m, drive = make_manager()
        a = m.allocate(8 * KiB)
        b = m.allocate(8 * KiB)
        drive.write(a, b"a" * 8 * KiB)
        drive.write(b, b"b" * 8 * KiB)
        m.free(a, 8 * KiB)
        got = m.allocate(4 * KiB)   # 4 + 4 <= 8: inserted, leaves 4 KiB
        assert got == a
        # the 4 KiB leftover can never satisfy any request (needs +guard)
        nxt = m.allocate(1)
        assert nxt == m.tail - 1    # appended, not inserted


class TestFreeAndCoalesce:
    def test_coalesce_adjacent(self):
        m, drive = make_manager()
        sizes = [16 * KiB, 16 * KiB, 16 * KiB]
        offs = [m.allocate(s) for s in sizes]
        tail_guard = m.allocate(16 * KiB)  # keeps region away from tail
        for off, s in zip(offs + [tail_guard], sizes + [16 * KiB]):
            drive.write(off, b"x" * s)
        m.free(offs[0], 16 * KiB)
        m.free(offs[2], 16 * KiB)
        assert len(m.free_list) == 2
        m.free(offs[1], 16 * KiB)   # bridges both neighbours
        assert len(m.free_list) == 1
        assert m.free_list.regions()[0] == \
            __import__("repro.smr.extent", fromlist=["Extent"]).Extent(0, 48 * KiB)
        assert m.coalesces == 2

    def test_free_at_tail_returns_to_residual(self):
        m, _ = make_manager()
        m.allocate(16 * KiB)
        b = m.allocate(16 * KiB)
        m.free(b, 16 * KiB)
        assert m.tail == 16 * KiB
        assert m.free_bytes() == 0

    def test_free_chain_to_tail(self):
        m, _ = make_manager()
        a = m.allocate(16 * KiB)
        b = m.allocate(16 * KiB)
        m.free(a, 16 * KiB)       # becomes a free region
        m.free(b, 16 * KiB)       # coalesces with a, reaches tail
        assert m.tail == 0
        assert m.free_bytes() == 0

    def test_free_unallocated_raises(self):
        m, _ = make_manager()
        with pytest.raises(InvariantViolation):
            m.free(0, 4 * KiB)

    def test_trim_called_on_drive(self):
        m, drive = make_manager()
        a = m.allocate(16 * KiB)
        m.allocate(4 * KiB)
        drive.write(a, b"x" * 16 * KiB)
        m.free(a, 16 * KiB)
        assert drive.valid.covered_bytes(a, a + 16 * KiB) == 0


class TestDerivedLayout:
    def test_bands(self):
        m, drive = make_manager()
        a = m.allocate(16 * KiB)
        b = m.allocate(16 * KiB)
        c = m.allocate(16 * KiB)
        for off in (a, b, c):
            drive.write(off, b"x" * 16 * KiB)
        m.free(b, 16 * KiB)
        bands = m.bands()
        assert len(bands) == 2
        assert bands[0].length == 16 * KiB
        assert bands[1].length == 16 * KiB

    def test_fragments(self):
        m, drive = make_manager()
        offs = [m.allocate(16 * KiB) for _ in range(3)]
        for off in offs:
            drive.write(off, b"x" * 16 * KiB)
        m.free(offs[1], 16 * KiB)
        assert m.fragments(max_useful=16 * KiB) == m.free_list.regions()
        assert m.fragments(max_useful=8 * KiB) == []

    def test_counters(self):
        m, drive = make_manager()
        assert m.occupied_bytes() == 0
        m.allocate(16 * KiB)
        assert m.occupied_bytes() == 16 * KiB
        assert m.allocated_bytes() == 16 * KiB


class TestDynamicBandProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.one_of(
        st.tuples(st.just("alloc"), st.integers(1, 12)),
        st.tuples(st.just("free"), st.integers(0, 30)),
    ), max_size=60))
    def test_never_violates_drive_safety(self, ops):
        """Whatever allocation/free sequence runs, writes into allocated
        space never overwrite valid data (the drive would raise), and
        manager invariants hold."""
        m, drive = make_manager(capacity=2 * MiB)
        live: list[tuple[int, int]] = []
        for op, arg in ops:
            if op == "alloc":
                size = arg * 4 * KiB
                try:
                    off = m.allocate(size)
                except AllocationError:
                    continue
                drive.write(off, bytes([arg]) * size)  # must never raise
                live.append((off, size))
            elif live:
                off, size = live.pop(arg % len(live))
                m.free(off, size)
            m.check_invariants()
        # all remaining live data is intact
        for off, size in live:
            assert drive.peek(off, 1)[0] == size // (4 * KiB)
