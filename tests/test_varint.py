"""Unit tests for the integer codecs."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import CorruptionError
from repro.util.varint import (
    decode_fixed32,
    decode_fixed64,
    decode_varint,
    encode_fixed32,
    encode_fixed64,
    encode_varint,
    get_length_prefixed,
    put_length_prefixed,
)


class TestFixed:
    def test_fixed32_roundtrip(self):
        for value in (0, 1, 255, 0xDEADBEEF, 0xFFFFFFFF):
            assert decode_fixed32(encode_fixed32(value)) == value

    def test_fixed32_is_four_bytes(self):
        assert len(encode_fixed32(0)) == 4
        assert len(encode_fixed32(0xFFFFFFFF)) == 4

    def test_fixed64_roundtrip(self):
        for value in (0, 1, 2**32, 2**63, 2**64 - 1):
            assert decode_fixed64(encode_fixed64(value)) == value

    def test_fixed32_little_endian(self):
        assert encode_fixed32(1) == b"\x01\x00\x00\x00"

    def test_fixed_decode_at_offset(self):
        buf = b"xx" + encode_fixed32(77) + encode_fixed64(88)
        assert decode_fixed32(buf, 2) == 77
        assert decode_fixed64(buf, 6) == 88

    def test_truncated_fixed_raises(self):
        with pytest.raises(CorruptionError):
            decode_fixed32(b"\x01\x02")
        with pytest.raises(CorruptionError):
            decode_fixed64(b"\x01\x02\x03")


class TestVarint:
    def test_small_values_one_byte(self):
        for value in range(128):
            assert encode_varint(value) == bytes([value])

    def test_roundtrip_boundaries(self):
        for value in (0, 127, 128, 16383, 16384, 2**32, 2**63):
            decoded, pos = decode_varint(encode_varint(value))
            assert decoded == value
            assert pos == len(encode_varint(value))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_varint(-1)

    def test_truncated_raises(self):
        with pytest.raises(CorruptionError):
            decode_varint(b"\x80\x80")

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_roundtrip_property(self, value):
        decoded, _pos = decode_varint(encode_varint(value))
        assert decoded == value

    @given(st.lists(st.integers(min_value=0, max_value=2**40), max_size=20))
    def test_stream_of_varints(self, values):
        buf = b"".join(encode_varint(v) for v in values)
        pos = 0
        out = []
        for _ in values:
            value, pos = decode_varint(buf, pos)
            out.append(value)
        assert out == values
        assert pos == len(buf)


class TestLengthPrefixed:
    def test_roundtrip(self):
        out = bytearray()
        put_length_prefixed(out, b"hello")
        put_length_prefixed(out, b"")
        put_length_prefixed(out, b"x" * 300)
        data, pos = get_length_prefixed(bytes(out))
        assert data == b"hello"
        data, pos = get_length_prefixed(bytes(out), pos)
        assert data == b""
        data, pos = get_length_prefixed(bytes(out), pos)
        assert data == b"x" * 300
        assert pos == len(out)

    def test_truncated_raises(self):
        out = bytearray()
        put_length_prefixed(out, b"hello")
        with pytest.raises(CorruptionError):
            get_length_prefixed(bytes(out[:-1]))

    @given(st.lists(st.binary(max_size=64), max_size=10))
    def test_roundtrip_property(self, blobs):
        out = bytearray()
        for blob in blobs:
            put_length_prefixed(out, blob)
        pos = 0
        decoded = []
        for _ in blobs:
            blob, pos = get_length_prefixed(bytes(out), pos)
            decoded.append(blob)
        assert decoded == blobs
