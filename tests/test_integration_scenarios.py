"""Cross-feature integration scenarios.

Each test composes several subsystems end to end -- churn + GC +
recovery + verification, range deletion + space reclamation, trace
replay across reopen, two-tier engine with recovery -- the kinds of
sequences a downstream user would actually run.
"""

import numpy as np

from repro.harness.runner import make_store
from repro.lsm.repair import repair
from repro.lsm.verify import verify_db
from repro.workloads.generators import KeyValueGenerator
from repro.workloads.trace import ChurnTraceGenerator, replay

from tests.conftest import TEST_PROFILE


def kv():
    return KeyValueGenerator(TEST_PROFILE.key_size, TEST_PROFILE.value_size)


class TestChurnGcRecoverVerify:
    def test_full_lifecycle(self):
        store = make_store("sealdb", TEST_PROFILE)
        generator = kv()
        churn = ChurnTraceGenerator(generator, working_set=800, drift=300,
                                    ops_per_phase=2000, seed=5)
        for _phase in range(3):
            replay(store, (next(iter([op]))
                           for op in churn.generate(2000)))
            store.flush()
            store.collect_fragments(max_moves=24)
            store.reopen()                    # crash between phases
        report = verify_db(store.db)
        assert report.ok, report.render()
        store.band_manager.check_invariants()
        # the store still serves reads and writes
        store.put(b"final-key", b"final")
        assert store.get(b"final-key") == b"final"


class TestDeleteRangeReclaims:
    def test_delete_range_then_compact(self):
        store = make_store("sealdb", TEST_PROFILE)
        generator = kv()
        for i in range(4000):
            store.put(generator.key(i), generator.value(i))
        store.flush()
        before = store.db.versions.current.total_bytes()

        deleted = store.db.delete_range(generator.key(1000),
                                        generator.key(3000))
        assert deleted == 2000
        assert store.get(generator.key(1500)) is None
        assert store.get(generator.key(999)) is not None
        assert store.get(generator.key(3000)) is not None

        store.compact_range()
        after = store.db.versions.current.total_bytes()
        assert after < before * 0.75
        remaining = sum(1 for _ in store.scan())
        assert remaining == 2000

    def test_delete_range_empty_window(self):
        store = make_store("leveldb", TEST_PROFILE)
        assert store.db.delete_range(b"a", b"b") == 0


class TestTraceAcrossReopen:
    def test_replay_interrupted_by_crashes(self):
        generator = kv()
        churn = ChurnTraceGenerator(generator, working_set=500, drift=100,
                                    ops_per_phase=1500, seed=9)
        ops = list(churn.generate(4500))

        # reference: replay everything on one store without crashes
        reference = make_store("sealdb", TEST_PROFILE)
        replay(reference, ops)

        # subject: same ops with a crash-reopen every 1500 ops
        subject = make_store("sealdb", TEST_PROFILE)
        for i in range(0, 4500, 1500):
            replay(subject, ops[i : i + 1500])
            subject.reopen()

        assert list(subject.scan()) == list(reference.scan())


class TestTwoTierLifecycle:
    def test_two_tier_with_recovery_and_verify(self):
        from repro.fs.storage import BandAlignedStorage
        from repro.lsm.db import DB
        from repro.lsm.options import Options
        from repro.smr.fixed_band import FixedBandSMRDrive

        drive = FixedBandSMRDrive(16 * 1024 * 1024, 40 * 1024)
        storage = BandAlignedStorage(drive, band_size=40 * 1024,
                                     wal_size=80 * 1024, meta_size=80 * 1024)
        db = DB(storage, Options(max_levels=2, style="two-tier",
                                 tier_merge_trigger=4,
                                 sstable_size=35 * 1024,
                                 write_buffer_size=30 * 1024,
                                 block_size=512))
        rng = np.random.default_rng(3)
        generator = kv()
        for i in rng.integers(0, 8000, size=8000):
            db.put(generator.key(int(i)), generator.value(int(i)))
        db.flush()
        db.check_invariants()
        db2 = DB.recover(storage, db.options)
        assert verify_db(db2).ok
        hits = sum(db2.get(generator.key(i)) is not None
                   for i in range(0, 8000, 131))
        assert hits > 30


class TestRepairAfterGcAndChurn:
    def test_repair_an_aged_store(self):
        store = make_store("sealdb", TEST_PROFILE)
        generator = kv()
        churn = ChurnTraceGenerator(generator, working_set=600, drift=200,
                                    ops_per_phase=2000, seed=8)
        replay(store, churn.generate(6000))
        store.flush()
        store.collect_fragments(max_moves=32)
        expected = dict(store.scan())

        store.storage.reset_meta()            # lose the manifest
        db, report = repair(store.storage, store.options)
        assert report.tables_dropped == 0
        assert dict(db.scan()) == expected
