"""Tests for the disk timing model and Table II calibration."""

import pytest

from repro.smr.timing import (
    DiskTimingModel,
    HDD_PROFILE,
    SMR_PROFILE,
    SimClock,
    MiB,
)

GiB = 1024 * MiB


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_advance(self):
        clock = SimClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now == pytest.approx(2.0)

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1)


def _model(profile=HDD_PROFILE, capacity=GiB):
    return DiskTimingModel(profile=profile, capacity=capacity, clock=SimClock())


class TestSeekModel:
    def test_zero_distance_free(self):
        assert _model().seek_time(0) == 0.0

    def test_seek_grows_with_distance(self):
        m = _model()
        assert m.seek_time(MiB) < m.seek_time(100 * MiB) < m.seek_time(GiB)

    def test_sequential_access_is_transfer_only(self):
        m = _model()
        m.access(0, MiB, is_write=False)
        t0 = m.clock.now
        elapsed = m.access(MiB, MiB, is_write=False)
        assert elapsed == pytest.approx(MiB / HDD_PROFILE.seq_read_bps)
        assert m.clock.now == pytest.approx(t0 + elapsed)

    def test_random_access_pays_seek_and_rotation(self):
        m = _model()
        m.access(0, 4096, is_write=False)
        elapsed = m.access(500 * MiB, 4096, is_write=False)
        assert elapsed > HDD_PROFILE.half_rotation_s

    def test_head_tracks_position(self):
        m = _model()
        m.access(100, 50, is_write=True)
        assert m.head == 150


class TestWriteCache:
    def test_small_random_write_flat_cost(self):
        m = _model(HDD_PROFILE)
        m.access(0, 4096, is_write=True)
        elapsed = m.access(700 * MiB, 4096, is_write=True)
        assert elapsed == pytest.approx(HDD_PROFILE.cached_write_s)

    def test_smr_profile_has_no_write_cache(self):
        assert not SMR_PROFILE.write_cache


class TestTableIICalibration:
    """The model approximately reproduces the paper's Table II."""

    def _random_read_iops(self, profile, capacity=GiB, samples=4000):
        import numpy as np
        m = _model(profile, capacity)
        rng = np.random.default_rng(7)
        offsets = rng.integers(0, capacity - 4096, size=samples)
        start = m.clock.now
        for off in offsets:
            m.access(int(off), 4096, is_write=False)
        return samples / (m.clock.now - start)

    def test_hdd_random_read_near_64_iops(self):
        iops = self._random_read_iops(HDD_PROFILE)
        assert 50 <= iops <= 80

    def test_smr_random_read_near_70_iops(self):
        iops = self._random_read_iops(SMR_PROFILE)
        assert 55 <= iops <= 88

    def test_hdd_random_write_near_143_iops(self):
        import numpy as np
        m = _model(HDD_PROFILE)
        rng = np.random.default_rng(3)
        offsets = rng.integers(0, GiB - 4096, size=2000)
        start = m.clock.now
        for off in offsets:
            m.access(int(off), 4096, is_write=True)
        iops = 2000 / (m.clock.now - start)
        assert 120 <= iops <= 160

    def test_sequential_rates_match_profile(self):
        m = _model(HDD_PROFILE)
        m.access(0, 64 * MiB, is_write=False)
        rate = 64 * MiB / m.clock.now
        assert rate == pytest.approx(HDD_PROFILE.seq_read_bps, rel=0.01)


class TestScaledProfile:
    def test_rates_divided(self):
        scaled = HDD_PROFILE.scaled(64)
        assert scaled.seq_read_bps == pytest.approx(HDD_PROFILE.seq_read_bps / 64)
        assert scaled.seq_write_bps == pytest.approx(HDD_PROFILE.seq_write_bps / 64)

    def test_seek_times_unchanged(self):
        scaled = HDD_PROFILE.scaled(64)
        assert scaled.full_seek_s == HDD_PROFILE.full_seek_s
        assert scaled.half_rotation_s == HDD_PROFILE.half_rotation_s

    def test_cache_threshold_scaled(self):
        scaled = HDD_PROFILE.scaled(64)
        assert scaled.cache_threshold == HDD_PROFILE.cache_threshold // 64

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            HDD_PROFILE.scaled(0)
