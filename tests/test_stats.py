"""Unit tests for drive stats and the WA/AWA/MWA tracker."""

import pytest

from repro.smr.stats import (
    AmplificationTracker,
    CATEGORY_TABLE,
    CATEGORY_WAL,
    DriveStats,
    IORecord,
)


class TestDriveStats:
    def test_read_write_counters(self):
        s = DriveStats()
        s.record_write(0, 100, 0.5, CATEGORY_TABLE, seeked=True, now=1.0)
        s.record_read(0, 40, 0.2, CATEGORY_WAL, seeked=False, now=1.2)
        assert s.bytes_written == 100
        assert s.bytes_read == 40
        assert s.write_ops == 1 and s.read_ops == 1
        assert s.seeks == 1
        assert s.busy_time == pytest.approx(0.7)
        assert s.bytes_written_by_category[CATEGORY_TABLE] == 100
        assert s.bytes_read_by_category[CATEGORY_WAL] == 40

    def test_rmw_accounting(self):
        s = DriveStats()
        s.record_write(0, 500, 1.0, CATEGORY_TABLE, seeked=True, now=0.0,
                       rmw=True)
        assert s.rmw_count == 1
        assert s.rmw_bytes == 500

    def test_trace_disabled_by_default(self):
        s = DriveStats()
        s.record_write(0, 10, 0.1, "data", seeked=False, now=0.0)
        assert s.trace is None

    def test_trace_records_when_enabled(self):
        s = DriveStats()
        s.enable_trace()
        s.record_write(64, 10, 0.1, "data", seeked=True, now=3.0)
        s.record_read(0, 5, 0.1, "data", seeked=True, now=3.1)
        assert len(s.trace) == 2
        first = s.trace[0]
        assert isinstance(first, IORecord)
        assert first.offset == 64 and first.is_write

    def test_enable_trace_idempotent(self):
        s = DriveStats()
        s.enable_trace()
        s.record_write(0, 1, 0.0, "data", seeked=False, now=0.0)
        s.enable_trace()   # must not clear
        assert len(s.trace) == 1


class TestAmplificationTracker:
    def test_wa(self):
        t = AmplificationTracker()
        t.add_user_write(100)
        t.add_lsm_write(150, is_flush=True)
        t.add_lsm_write(350)
        assert t.wa() == 5.0
        assert t.flush_bytes == 150
        assert t.compaction_bytes == 350

    def test_awa_uses_table_category_only(self):
        t = AmplificationTracker()
        t.add_user_write(100)
        t.add_lsm_write(200)
        stats = DriveStats()
        stats.record_write(0, 600, 0.1, CATEGORY_TABLE, seeked=False, now=0.0)
        stats.record_write(0, 999, 0.1, CATEGORY_WAL, seeked=False, now=0.0)
        assert t.awa(stats) == 3.0          # WAL bytes excluded
        assert t.mwa(stats) == 6.0

    def test_zero_division_guards(self):
        t = AmplificationTracker()
        stats = DriveStats()
        assert t.wa() == 0.0
        assert t.awa(stats) == 0.0
        assert t.mwa(stats) == 0.0

    def test_table_i_identity(self):
        """MWA == WA * AWA, always (Table I)."""
        t = AmplificationTracker()
        t.add_user_write(123)
        t.add_lsm_write(456)
        stats = DriveStats()
        stats.record_write(0, 789, 0.1, CATEGORY_TABLE, seeked=False, now=0.0)
        assert t.mwa(stats) == pytest.approx(t.wa() * t.awa(stats))
