"""Tests for the ASCII plotting / CSV helpers."""

import pathlib

from repro.harness.plotting import (
    ascii_scatter,
    ascii_series,
    disk_layout_map,
    to_csv,
)


class TestAsciiScatter:
    def test_empty(self):
        assert "(no data)" in ascii_scatter([], title="t")

    def test_marker_placement(self):
        text = ascii_scatter([(0, 0), (10, 10)], width=20, height=5)
        lines = [l for l in text.splitlines() if "|" in l]
        assert "*" in lines[0]       # max y on top row
        assert "*" in lines[-1]      # min y on bottom row

    def test_title_and_labels(self):
        text = ascii_scatter([(1, 2)], title="T", xlabel="x", ylabel="y")
        assert text.startswith("T")
        assert "x" in text and "y" in text

    def test_single_point_no_crash(self):
        assert "*" in ascii_scatter([(5, 5)])

    def test_dimensions(self):
        text = ascii_scatter([(0, 0), (1, 1)], width=30, height=8)
        plot_lines = [l for l in text.splitlines() if l.endswith(tuple(" *"))
                      and "|" in l]
        assert len(plot_lines) == 8


class TestAsciiSeries:
    def test_two_series_legend(self):
        text = ascii_series({"a": [1, 2, 3], "b": [3, 2, 1]}, title="T")
        assert "* = a" in text
        assert "o = b" in text
        assert "*" in text and "o" in text

    def test_empty_series(self):
        assert "(no data)" in ascii_series({"a": []})

    def test_constant_series(self):
        text = ascii_series({"flat": [5, 5, 5]})
        assert "*" in text


class TestDiskLayoutMap:
    def test_regions_rendered(self):
        text = disk_layout_map(
            [(0, 50, "#"), (50, 100, "."), (90, 100, "g")],
            capacity=100, width=20, title="layout")
        assert text.startswith("layout")
        body = text.splitlines()[1]
        assert "#" in body and "." in body and "g" in body
        assert body.index("#") < body.index(".")

    def test_tiny_extent_still_visible(self):
        text = disk_layout_map([(0, 1, "#")], capacity=10**9, width=20)
        assert "#" in text


class TestCsv:
    def test_text_output(self):
        text = to_csv(["a", "b"], [[1, 2], [3, "x"]])
        lines = text.strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,2"
        assert lines[2] == "3,x"

    def test_file_output(self, tmp_path: pathlib.Path):
        path = tmp_path / "out.csv"
        to_csv(["h"], [[1]], path=path)
        assert path.read_text().startswith("h")
