"""Unit and property tests for the extent map."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import InvariantViolation
from repro.smr.extent import Extent, ExtentMap


class TestExtent:
    def test_length(self):
        assert Extent(10, 25).length == 15

    def test_inverted_rejected(self):
        with pytest.raises(InvariantViolation):
            Extent(10, 5)

    def test_overlaps(self):
        e = Extent(10, 20)
        assert e.overlaps(15, 25)
        assert e.overlaps(5, 11)
        assert not e.overlaps(20, 30)   # half-open
        assert not e.overlaps(0, 10)

    def test_contains(self):
        e = Extent(10, 20)
        assert e.contains(10, 20)
        assert e.contains(12, 15)
        assert not e.contains(9, 15)


class TestExtentMapBasics:
    def test_add_and_total(self):
        m = ExtentMap()
        m.add(0, 10)
        m.add(20, 30)
        assert m.total_bytes == 20
        assert len(m) == 2

    def test_adjacent_merge(self):
        m = ExtentMap()
        m.add(0, 10)
        m.add(10, 20)
        assert len(m) == 1
        assert list(m) == [Extent(0, 20)]

    def test_overlapping_merge(self):
        m = ExtentMap()
        m.add(0, 15)
        m.add(10, 30)
        m.add(5, 12)
        assert list(m) == [Extent(0, 30)]

    def test_bridge_merge(self):
        m = ExtentMap()
        m.add(0, 10)
        m.add(20, 30)
        m.add(10, 20)
        assert list(m) == [Extent(0, 30)]

    def test_empty_add_ignored(self):
        m = ExtentMap()
        m.add(5, 5)
        assert len(m) == 0

    def test_remove_middle_splits(self):
        m = ExtentMap()
        m.add(0, 30)
        removed = m.remove(10, 20)
        assert removed == 10
        assert list(m) == [Extent(0, 10), Extent(20, 30)]

    def test_remove_across_extents(self):
        m = ExtentMap()
        m.add(0, 10)
        m.add(20, 30)
        removed = m.remove(5, 25)
        assert removed == 10
        assert list(m) == [Extent(0, 5), Extent(25, 30)]

    def test_remove_nothing(self):
        m = ExtentMap()
        m.add(0, 10)
        assert m.remove(10, 20) == 0
        assert list(m) == [Extent(0, 10)]

    def test_first_overlap(self):
        m = ExtentMap()
        m.add(10, 20)
        m.add(30, 40)
        assert m.first_overlap(0, 11) == Extent(10, 20)
        assert m.first_overlap(25, 35) == Extent(30, 40)
        assert m.first_overlap(20, 30) is None
        assert m.first_overlap(40, 50) is None

    def test_contains_range(self):
        m = ExtentMap()
        m.add(10, 30)
        assert m.contains_range(10, 30)
        assert m.contains_range(15, 20)
        assert not m.contains_range(5, 15)
        assert not m.contains_range(25, 35)
        assert m.contains_range(12, 12)  # empty range trivially contained

    def test_covered_bytes(self):
        m = ExtentMap()
        m.add(10, 20)
        m.add(30, 40)
        assert m.covered_bytes(0, 50) == 20
        assert m.covered_bytes(15, 35) == 10
        assert m.covered_bytes(20, 30) == 0

    def test_max_end_and_last_end_leq(self):
        m = ExtentMap()
        assert m.max_end() == 0
        m.add(10, 20)
        m.add(30, 40)
        assert m.max_end() == 40
        assert m.last_end_leq(25) == 20
        assert m.last_end_leq(40) == 40
        assert m.last_end_leq(5) is None

    def test_gaps(self):
        m = ExtentMap()
        m.add(10, 20)
        m.add(30, 40)
        assert list(m.gaps(0, 50)) == [Extent(0, 10), Extent(20, 30), Extent(40, 50)]
        assert list(m.gaps(10, 40)) == [Extent(20, 30)]
        assert list(m.gaps(12, 18)) == []


@st.composite
def _operations(draw):
    ops = draw(st.lists(
        st.tuples(st.sampled_from(["add", "remove"]),
                  st.integers(0, 200), st.integers(1, 50)),
        max_size=40,
    ))
    return ops


class TestExtentMapProperties:
    @given(_operations())
    def test_matches_reference_set(self, ops):
        """The extent map behaves exactly like a set of byte offsets."""
        m = ExtentMap()
        reference: set[int] = set()
        for op, start, length in ops:
            end = start + length
            if op == "add":
                m.add(start, end)
                reference.update(range(start, end))
            else:
                m.remove(start, end)
                reference.difference_update(range(start, end))
            m.check_invariants()
            assert m.total_bytes == len(reference)
        for probe in range(0, 260, 7):
            assert m.contains_range(probe, probe + 1) == (probe in reference)

    @given(_operations())
    def test_gaps_complement_extents(self, ops):
        m = ExtentMap()
        for op, start, length in ops:
            if op == "add":
                m.add(start, start + length)
            else:
                m.remove(start, start + length)
        covered = m.covered_bytes(0, 300)
        gap_total = sum(g.length for g in m.gaps(0, 300))
        assert covered + gap_total == 300
