"""Opt-in larger-scale validation (set REPRO_VALIDATE_SCALE=1 to run).

The benchmark suite asserts the paper's shapes at its calibrated
default scale; this test re-checks the two headline results at double
the database size to guard against scale-sensitivity regressions.
Skipped by default because it takes several minutes.
"""

import os

import pytest

from repro.experiments import fig12_write_amplification
from repro.harness.profiles import DEFAULT_PROFILE
from repro.harness.runner import make_store
from repro.workloads.generators import KeyValueGenerator
from repro.workloads.microbench import MicroBenchmark

MiB = 1024 * 1024

pytestmark = pytest.mark.skipif(
    not os.environ.get("REPRO_VALIDATE_SCALE"),
    reason="set REPRO_VALIDATE_SCALE=1 for the multi-minute scale check",
)


def test_headline_results_hold_at_double_scale():
    db_bytes = 32 * MiB
    profile = DEFAULT_PROFILE.scaled(capacity=256 * MiB)
    kv = KeyValueGenerator(profile.key_size, profile.value_size)
    entries = profile.entries_for_bytes(db_bytes)

    ops = {}
    for kind in ("leveldb", "sealdb"):
        store = make_store(kind, profile)
        bench = MicroBenchmark(kv, entries, seed=0)
        ops[kind] = bench.fill_random(store).ops_per_sec
    speedup = ops["sealdb"] / ops["leveldb"]
    assert 2.0 <= speedup <= 7.0     # paper: 3.42x

    amp = fig12_write_amplification.run(db_bytes=db_bytes, profile=profile)
    assert 3.0 <= amp.mwa_reduction_vs_leveldb() <= 14.0   # paper: 6.70x
