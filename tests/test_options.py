"""Tests for engine options validation and derived values."""

import pytest

from repro.lsm.options import Options

KiB = 1024


class TestOptionsValidation:
    def test_defaults_valid(self):
        Options()

    def test_min_levels(self):
        with pytest.raises(ValueError):
            Options(max_levels=1)

    def test_victim_policy_validated(self):
        with pytest.raises(ValueError):
            Options(victim_policy="random")

    def test_style_validated(self):
        with pytest.raises(ValueError):
            Options(style="tiered-ish")

    def test_two_tier_requires_two_levels(self):
        with pytest.raises(ValueError):
            Options(style="two-tier", max_levels=7)
        Options(style="two-tier", max_levels=2)

    def test_tier_trigger_validated(self):
        with pytest.raises(ValueError):
            Options(style="two-tier", max_levels=2, tier_merge_trigger=1)

    def test_amplification_factor_validated(self):
        with pytest.raises(ValueError):
            Options(amplification_factor=1)


class TestDerivedValues:
    def test_level_bytes_limit_growth(self):
        options = Options(base_level_bytes=10 * KiB, amplification_factor=10)
        assert options.level_bytes_limit(1) == 10 * KiB
        assert options.level_bytes_limit(2) == 100 * KiB
        assert options.level_bytes_limit(3) == 1000 * KiB

    def test_level_zero_has_no_bytes_limit(self):
        with pytest.raises(ValueError):
            Options().level_bytes_limit(0)

    def test_do_prefetch_follows_use_sets(self):
        assert not Options().do_prefetch
        assert Options(use_sets=True).do_prefetch
        assert not Options(use_sets=True,
                           prefetch_compaction_inputs=False).do_prefetch
        assert Options(use_sets=False,
                       prefetch_compaction_inputs=True).do_prefetch


class TestErrorsHierarchy:
    def test_all_errors_derive_from_base(self):
        from repro import errors

        for name in dir(errors):
            obj = getattr(errors, name)
            if (isinstance(obj, type) and issubclass(obj, Exception)
                    and obj is not errors.ReproError):
                assert issubclass(obj, errors.ReproError), name

    def test_out_of_range_message(self):
        from repro.errors import OutOfRangeError

        err = OutOfRangeError(100, 50, 120)
        assert "150" in str(err) and "120" in str(err)

    def test_shingle_error_fields(self):
        from repro.errors import ShingleOverwriteError

        err = ShingleOverwriteError(0, 10, (5, 20))
        assert err.offset == 0 and err.damaged == (5, 20)
