"""Fault-injection tests: crash at arbitrary points, recover, verify.

The "crash" model: the ``storage.write_files`` failpoint raises
:class:`~repro.faults.InjectedCrash` at a chosen hit count, aborting
whatever flush/compaction was running.  Everything already on the
simulated drive (tables, manifest log, WAL) survives; the engine is
then rebuilt with ``DB.recover`` and must come back consistent --
committed data readable, orphan files from the aborted operation
garbage-collected.
"""

import numpy as np
import pytest

from repro import faults
from repro.core.storage import DynamicBandStorage
from repro.faults import InjectedCrash
from repro.fs.ext4sim import Ext4Storage
from repro.lsm.db import DB
from repro.lsm.options import Options
from repro.smr.drive import ConventionalDrive
from repro.smr.raw_hmsmr import RawHMSMRDrive

KiB = 1024
MiB = 1024 * 1024


def _install_crash(storage, after_writes: int) -> None:
    """Crash on the write_files call after ``after_writes`` more writes."""
    faults.arm(faults.STORAGE_WRITE_FILES, "crash", after=after_writes)


def _heal(storage) -> None:
    faults.disarm(faults.STORAGE_WRITE_FILES)


def _options(**overrides):
    base = dict(write_buffer_size=4 * KiB, sstable_size=4 * KiB,
                block_size=512, base_level_bytes=8 * KiB,
                block_cache_bytes=64 * KiB)
    base.update(overrides)
    return Options(**base)


def _make(kind: str):
    if kind == "ext4":
        drive = ConventionalDrive(16 * MiB)
        storage = Ext4Storage(drive, wal_size=64 * KiB, meta_size=64 * KiB,
                              block_size=512)
        return DB(storage, _options())
    drive = RawHMSMRDrive(16 * MiB, guard_size=4 * KiB)
    storage = DynamicBandStorage(drive, wal_size=64 * KiB, meta_size=64 * KiB,
                                 class_unit=4 * KiB)
    return DB(storage, _options(use_sets=True))


def key(i: int) -> bytes:
    return b"key%08d" % i


@pytest.mark.parametrize("kind", ["ext4", "dynamic"])
@pytest.mark.parametrize("crash_after", [0, 1, 5, 17, 29])
class TestCrashAnywhere:
    def test_recovery_is_consistent(self, kind, crash_after):
        db = _make(kind)
        committed: dict[bytes, bytes] = {}
        _install_crash(db.storage, crash_after)
        crashed = False
        rng = np.random.default_rng(crash_after)
        for i in rng.permutation(4000):
            k, v = key(int(i)), b"value-%d" % i
            try:
                db.put(k, v)
            except InjectedCrash:
                crashed = True
                break
            committed[k] = v

        _heal(db.storage)
        recovered = DB.recover(db.storage, db.options)
        if crash_after <= 29:
            assert crashed, "crash point never reached"
        # every acknowledged write is present
        for k, v in list(committed.items())[::7]:
            assert recovered.get(k) == v
        recovered.check_invariants()
        # the recovered DB accepts new writes and compacts normally
        for i in range(4000, 5500):
            recovered.put(key(i), b"post-%d" % i)
        recovered.flush()
        assert recovered.get(key(5000)) == b"post-5000"


class TestOrphanCleanup:
    def test_orphans_removed_on_recovery(self):
        db = _make("ext4")
        for i in range(1500):
            db.put(key(i), b"value-%d" % i)
        # plant an orphan: a table file the manifest never learned about
        db.storage.write_files([("999999.sst", b"\x00" * 2048)])
        assert db.storage.exists("999999.sst")
        recovered = DB.recover(db.storage, db.options)
        assert not db.storage.exists("999999.sst")
        assert recovered.get(key(7)) == b"value-7"

    def test_orphan_set_space_reclaimed_on_dynamic_storage(self):
        db = _make("dynamic")
        for i in range(1500):
            db.put(key(i), b"value-%d" % i)
        manager = db.storage.manager
        live_before = manager.allocated_bytes()
        db.storage.write_files([("999998.sst", b"\x00" * 2048),
                                ("999999.sst", b"\x00" * 2048)])
        assert manager.allocated_bytes() > live_before
        DB.recover(db.storage, db.options)
        assert manager.allocated_bytes() == live_before
        manager.check_invariants()


class TestCrashDuringCompaction:
    def test_mid_compaction_crash_keeps_old_version(self):
        """Crash while writing compaction outputs: the inputs are still
        referenced by the manifest, so nothing is lost."""
        db = _make("ext4")
        # fill until a compaction is imminent, then arm the tripwire
        for i in range(1200):
            db.put(key(i), b"value-%d" % i)
        _install_crash(db.storage, 1)  # next flush ok, then crash
        crashed_at = None
        try:
            for i in range(1200, 2400):
                db.put(key(i), b"value-%d" % i)
        except InjectedCrash:
            crashed_at = i
        _heal(db.storage)
        assert crashed_at is not None
        recovered = DB.recover(db.storage, db.options)
        for i in range(0, 1200, 101):
            assert recovered.get(key(i)) == b"value-%d" % i
        recovered.check_invariants()
