"""Every example script must run cleanly end to end.

Examples are the quickstart surface of the repository; breaking one is
breaking the README.  Each runs as a subprocess with a generous timeout.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script: pathlib.Path):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True, text=True, timeout=600,
    )
    assert proc.returncode == 0, (
        f"{script.name} failed:\n{proc.stdout[-2000:]}\n{proc.stderr[-2000:]}"
    )
    assert proc.stdout.strip(), f"{script.name} produced no output"


def test_all_examples_discovered():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 8
