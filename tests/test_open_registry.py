"""Tests for the store registry and the ``repro.open`` entry point."""

import warnings

import pytest

import repro
from repro.errors import ReproError
from repro.harness.runner import make_store
from repro.kvstore import KVStoreBase
from repro.registry import open_store, register_store, store_kinds

from tests.conftest import TEST_PROFILE

ALL_KINDS = ("leveldb", "smrdb", "leveldb+sets", "zonekv", "sealdb")


class TestOpen:
    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_round_trip_every_kind(self, kind):
        store = repro.open(kind, profile=TEST_PROFILE)
        assert isinstance(store, KVStoreBase)
        store.put(b"alpha", b"1")
        store.put(b"beta", b"2")
        assert store.get(b"alpha") == b"1"
        store.reopen()
        assert store.get(b"beta") == b"2"
        store.close()

    def test_open_is_open_store(self):
        assert repro.open is open_store

    def test_kind_is_case_insensitive(self):
        assert type(repro.open("SealDB", profile=TEST_PROFILE)).__name__ == \
            type(repro.open("sealdb", profile=TEST_PROFILE)).__name__

    def test_shell_friendly_alias(self):
        a = repro.open("leveldb_sets", profile=TEST_PROFILE)
        b = repro.open("leveldb+sets", profile=TEST_PROFILE)
        assert type(a) is type(b)

    def test_unknown_kind_raises(self):
        with pytest.raises(ReproError, match="unknown store kind"):
            repro.open("rocksdb", profile=TEST_PROFILE)

    def test_store_kinds_lists_all_builtin(self):
        kinds = store_kinds()
        assert set(ALL_KINDS) <= set(kinds)
        assert kinds == tuple(sorted(kinds))

    def test_context_manager(self):
        with repro.open("sealdb", profile=TEST_PROFILE) as db:
            db.put(b"k", b"v")
            assert db.get(b"k") == b"v"

    def test_reopen_returns_self_and_stats_survive(self):
        db = repro.open("sealdb", profile=TEST_PROFILE)
        db.put(b"k", b"v")
        puts_before = db.stats.puts
        stats_obj = db.stats
        assert db.reopen() is db
        assert db.stats is stats_obj            # same object through recovery
        assert db.stats.puts == puts_before
        db.put(b"k2", b"v2")
        assert db.stats.puts == puts_before + 1

    def test_custom_registration(self):
        @register_store("test-custom-kind")
        class Custom(KVStoreBase):
            name = "CUSTOM"

            def __init__(self, profile, **overrides):
                template = repro.open("leveldb", profile=profile)
                super().__init__(template.drive, template.storage,
                                 template.options)

        try:
            store = repro.open("test-custom-kind", profile=TEST_PROFILE)
            assert store.name == "CUSTOM"
            assert "test-custom-kind" in store_kinds()
        finally:
            from repro import registry
            registry._REGISTRY.pop("test-custom-kind", None)


class TestMakeStoreDeprecation:
    def test_make_store_warns_and_delegates(self):
        with pytest.warns(DeprecationWarning, match="repro.open"):
            legacy = make_store("sealdb", TEST_PROFILE)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            fresh = repro.open("sealdb", profile=TEST_PROFILE)
        assert type(legacy) is type(fresh)

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_make_store_still_builds_every_kind(self, kind):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            store = make_store(kind, TEST_PROFILE)
        store.put(b"k", b"v")
        assert store.get(b"k") == b"v"
