"""Tests for compaction picking and the merge/dedup generator."""

from repro.lsm.compaction import (
    Compaction,
    CompactionPicker,
    compact_entries,
    _mutually_disjoint,
)
from repro.lsm.ikey import InternalKey, TYPE_DELETION, TYPE_VALUE
from repro.lsm.options import Options
from repro.lsm.version import FileMetaData, VersionEdit, VersionSet

KiB = 1024


def ik(k: bytes, seq: int = 1, type_: int = TYPE_VALUE) -> InternalKey:
    return InternalKey(k, seq, type_)


def fmd(number, lo, hi, size=4 * KiB, run=0):
    return FileMetaData(number, size, ik(lo), ik(hi), entries=10, run=run)


def _setup(options, placements):
    vs = VersionSet(options.max_levels,
                    tiered=options.style == "two-tier")
    edit = VersionEdit()
    for level, meta in placements:
        edit.add_file(level, meta)
    vs.log_and_apply(edit)
    return CompactionPicker(options, vs), vs


class TestLeveledPicking:
    def _options(self):
        return Options(sstable_size=4 * KiB, base_level_bytes=8 * KiB,
                       l0_compaction_trigger=4)

    def test_balanced_tree_picks_nothing(self):
        picker, _ = _setup(self._options(), [
            (0, fmd(1, b"a", b"b")),
            (1, fmd(2, b"a", b"z", size=4 * KiB)),
        ])
        assert picker.pick() is None

    def test_l0_trigger(self):
        files = [(0, fmd(i, b"a", b"z")) for i in range(1, 5)]
        picker, _ = _setup(self._options(), files)
        c = picker.pick()
        assert c is not None and c.level == 0
        assert len(c.inputs) == 4  # all overlapping L0 files

    def test_l0_pulls_l1_overlaps(self):
        placements = [(0, fmd(i, b"a", b"m")) for i in range(1, 5)]
        placements.append((1, fmd(10, b"c", b"d")))
        placements.append((1, fmd(11, b"x", b"z")))  # outside range
        picker, _ = _setup(self._options(), placements)
        c = picker.pick()
        assert [f.number for f in c.overlaps] == [10]

    def test_l0_transitive_expansion(self):
        placements = [
            (0, fmd(1, b"a", b"f")),
            (0, fmd(2, b"e", b"k")),   # overlaps 1
            (0, fmd(3, b"j", b"p")),   # overlaps 2, not 1
            (0, fmd(4, b"x", b"z")),   # disjoint from all
        ]
        picker, _ = _setup(self._options(), placements)
        c = picker.pick()
        assert {f.number for f in c.inputs} == {1, 2, 3}

    def test_size_pressure_picks_deeper_level(self):
        placements = [(1, fmd(i, b"%c0" % (97 + i), b"%c9" % (97 + i),
                              size=8 * KiB)) for i in range(1, 4)]
        picker, _ = _setup(self._options(), placements)
        c = picker.pick()
        assert c is not None and c.level == 1

    def test_pointer_round_robin(self):
        options = self._options()
        placements = [(1, fmd(i, b"%c0" % (96 + i), b"%c9" % (96 + i),
                              size=12 * KiB)) for i in range(1, 4)]
        picker, vs = _setup(options, placements)
        vs.compact_pointer[1] = b"a9"
        c = picker.pick()
        assert c.inputs[0].number == 2  # first file past the pointer

    def test_pointer_wraps(self):
        options = self._options()
        placements = [(1, fmd(1, b"a0", b"a9", size=32 * KiB))]
        picker, vs = _setup(options, placements)
        vs.compact_pointer[1] = b"zz"
        c = picker.pick()
        assert c.inputs[0].number == 1

    def test_invalid_set_first_policy(self):
        options = Options(sstable_size=4 * KiB, base_level_bytes=8 * KiB,
                          victim_policy="invalid-set-first")
        placements = [(1, fmd(i, b"%c0" % (96 + i), b"%c9" % (96 + i),
                              size=12 * KiB)) for i in range(1, 4)]
        picker, _ = _setup(options, placements)
        counts = {"000001.sst": 0, "000002.sst": 2, "000003.sst": 1}
        c = picker.pick(lambda name: counts[name])
        assert c.inputs[0].number == 2

    def test_last_level_never_compacts(self):
        options = Options(sstable_size=4 * KiB, base_level_bytes=4 * KiB,
                          max_levels=2)
        placements = [(1, fmd(1, b"a", b"m", size=400 * KiB)),
                      (1, fmd(2, b"n", b"z", size=400 * KiB))]
        picker, _ = _setup(options, placements)
        assert picker.pick() is None


class TestTrivialMove:
    def test_single_input_no_overlap(self):
        c = Compaction(1, [fmd(1, b"a", b"b")], [])
        assert c.is_trivial_move()

    def test_with_overlaps_not_trivial(self):
        c = Compaction(1, [fmd(1, b"a", b"b")], [fmd(2, b"a", b"c")])
        assert not c.is_trivial_move()

    def test_self_merge_not_trivial(self):
        c = Compaction(1, [fmd(1, b"a", b"b")], [], output_level=1)
        assert not c.is_trivial_move()


class TestTwoTierPicking:
    def _options(self, trigger=3):
        return Options(max_levels=2, style="two-tier",
                       l0_compaction_trigger=2, tier_merge_trigger=trigger,
                       sstable_size=4 * KiB)

    def test_below_triggers_nothing(self):
        picker, _ = _setup(self._options(), [(0, fmd(1, b"a", b"z"))])
        assert picker.pick() is None

    def test_l0_merge_all_runs(self):
        placements = [(0, fmd(i, b"a", b"z", run=i)) for i in range(1, 3)]
        picker, _ = _setup(self._options(), placements)
        c = picker.pick()
        assert c.level == 0 and c.output_level == 1
        assert len(c.inputs) == 2 and not c.overlaps

    def test_disjoint_l0_promotes_one(self):
        placements = [(0, fmd(1, b"a", b"b", run=1)),
                      (0, fmd(2, b"c", b"d", run=2))]
        picker, _ = _setup(self._options(), placements)
        c = picker.pick()
        assert c.is_trivial_move()
        assert c.inputs[0].number == 1  # oldest first

    def test_l1_run_merge(self):
        placements = [(1, fmd(i, b"a", b"z", run=i)) for i in range(1, 4)]
        picker, _ = _setup(self._options(trigger=3), placements)
        c = picker.pick()
        assert c.level == 1 and c.output_level == 1
        assert len(c.inputs) == 3

    def test_one_run_many_tables_does_not_retrigger(self):
        # all tables share a run: the whole-level merge must NOT fire
        placements = [(1, fmd(i, b"%c" % (97 + i), b"%c" % (97 + i), run=7))
                      for i in range(1, 6)]
        picker, _ = _setup(self._options(trigger=3), placements)
        assert picker.pick() is None


class TestMutuallyDisjoint:
    def test_disjoint(self):
        assert _mutually_disjoint([fmd(1, b"a", b"b"), fmd(2, b"c", b"d")])

    def test_overlapping(self):
        assert not _mutually_disjoint([fmd(1, b"a", b"m"), fmd(2, b"k", b"z")])

    def test_touching_not_disjoint(self):
        assert not _mutually_disjoint([fmd(1, b"a", b"c"), fmd(2, b"c", b"d")])


class TestCompactEntries:
    def test_newest_version_survives(self):
        stream = [(ik(b"k", 9), b"new"), (ik(b"k", 5), b"old")]
        out = list(compact_entries(iter(stream), lambda _k: False))
        assert out == [(ik(b"k", 9), b"new")]

    def test_tombstone_kept_when_deeper_data_possible(self):
        stream = [(ik(b"k", 9, TYPE_DELETION), b"")]
        out = list(compact_entries(iter(stream), lambda _k: False))
        assert len(out) == 1

    def test_tombstone_dropped_at_base_level(self):
        stream = [(ik(b"k", 9, TYPE_DELETION), b""), (ik(b"k", 5), b"old")]
        out = list(compact_entries(iter(stream), lambda _k: True))
        assert out == []

    def test_distinct_keys_all_survive(self):
        stream = [(ik(b"a", 3), b"1"), (ik(b"b", 2), b"2"), (ik(b"c", 1), b"3")]
        out = list(compact_entries(iter(stream), lambda _k: True))
        assert len(out) == 3
