"""Tests for versions, edits, and the version set."""

import pytest

from repro.errors import InvariantViolation
from repro.lsm.ikey import InternalKey, TYPE_VALUE
from repro.lsm.version import FileMetaData, Version, VersionEdit, VersionSet


def ik(k: bytes, seq: int = 1) -> InternalKey:
    return InternalKey(k, seq, TYPE_VALUE)


def fmd(number, lo, hi, size=100, run=0):
    return FileMetaData(number, size, ik(lo), ik(hi), entries=10, run=run)


class TestFileMetaData:
    def test_name(self):
        assert fmd(7, b"a", b"b").name == "000007.sst"

    def test_overlaps_user_range(self):
        f = fmd(1, b"c", b"f")
        assert f.overlaps_user_range(b"a", b"c")
        assert f.overlaps_user_range(b"f", b"z")
        assert f.overlaps_user_range(b"d", b"e")
        assert not f.overlaps_user_range(b"a", b"b")
        assert not f.overlaps_user_range(b"g", None)
        assert f.overlaps_user_range(None, None)


class TestVersion:
    def _version(self):
        v = Version(4)
        edit = VersionEdit()
        edit.add_file(0, fmd(10, b"a", b"m"))
        edit.add_file(0, fmd(11, b"g", b"z"))
        edit.add_file(1, fmd(5, b"a", b"f"))
        edit.add_file(1, fmd(6, b"g", b"p"))
        edit.add_file(1, fmd(7, b"q", b"z"))
        edit.add_file(2, fmd(3, b"a", b"z", size=500))
        return v.apply(edit)

    def test_level_bytes(self):
        v = self._version()
        assert v.level_bytes(1) == 300
        assert v.level_bytes(2) == 500
        assert v.num_files() == 6

    def test_sorted_levels_ordered_by_smallest(self):
        v = self._version()
        assert [f.number for f in v.files[1]] == [5, 6, 7]

    def test_overlapping_files_l0_linear(self):
        v = self._version()
        assert {f.number for f in v.overlapping_files(0, b"h", b"h")} == {10, 11}

    def test_overlapping_files_sorted_bisect(self):
        v = self._version()
        assert [f.number for f in v.overlapping_files(1, b"g", b"q")] == [6, 7]
        assert [f.number for f in v.overlapping_files(1, b"fz", b"fz")] == []
        assert [f.number for f in v.overlapping_files(1, None, None)] == [5, 6, 7]
        assert [f.number for f in v.overlapping_files(1, b"r", None)] == [7]

    def test_files_for_get_order(self):
        v = self._version()
        hits = v.files_for_get(b"h")
        # L0 newest first (11 > 10), then L1, then L2
        assert [(lvl, f.number) for lvl, f in hits] == [
            (0, 11), (0, 10), (1, 6), (2, 3)]

    def test_apply_delete(self):
        v = self._version()
        edit = VersionEdit()
        edit.delete_file(1, 6)
        v2 = v.apply(edit)
        assert [f.number for f in v2.files[1]] == [5, 7]
        # original untouched (immutability)
        assert [f.number for f in v.files[1]] == [5, 6, 7]

    def test_check_invariants_catches_overlap(self):
        v = Version(3)
        edit = VersionEdit()
        edit.add_file(1, fmd(1, b"a", b"m"))
        edit.add_file(1, fmd(2, b"k", b"z"))
        v2 = v.apply(edit)
        with pytest.raises(InvariantViolation):
            v2.check_invariants()

    def test_check_invariants_catches_duplicate_number(self):
        v = Version(3)
        edit = VersionEdit()
        edit.add_file(0, fmd(1, b"a", b"b"))
        edit.add_file(1, fmd(1, b"c", b"d"))
        v2 = v.apply(edit)
        with pytest.raises(InvariantViolation):
            v2.check_invariants()

    def test_tiered_last_level_allows_overlap(self):
        v = Version(2, tiered=True)
        edit = VersionEdit()
        edit.add_file(1, fmd(1, b"a", b"m", run=1))
        edit.add_file(1, fmd(2, b"k", b"z", run=2))
        v2 = v.apply(edit)
        v2.check_invariants()  # no violation
        hits = v2.files_for_get(b"l")
        assert [f.number for _lvl, f in hits] == [2, 1]  # newest first


class TestVersionEditSerialization:
    def test_roundtrip(self):
        edit = VersionEdit()
        edit.add_file(2, fmd(9, b"aa", b"zz", size=1234, run=5))
        edit.delete_file(1, 4)
        edit.next_file_number = 42
        edit.last_sequence = 999
        decoded = VersionEdit.deserialize(edit.serialize())
        assert decoded.next_file_number == 42
        assert decoded.last_sequence == 999
        assert decoded.deleted == [(1, 4)]
        level, meta = decoded.added[0]
        assert level == 2
        assert meta.number == 9 and meta.size == 1234 and meta.run == 5
        assert meta.smallest.user_key == b"aa"

    def test_empty_edit(self):
        decoded = VersionEdit.deserialize(VersionEdit().serialize())
        assert decoded.added == [] and decoded.deleted == []


class TestVersionSet:
    def test_file_numbers_monotonic(self):
        vs = VersionSet(3)
        assert vs.new_file_number() == 1
        assert vs.new_file_number() == 2
        assert vs.next_file_number == 3

    def test_log_and_apply_updates_current(self):
        vs = VersionSet(3)
        edit = VersionEdit()
        edit.add_file(0, fmd(1, b"a", b"b"))
        vs.log_and_apply(edit)
        assert vs.current.num_files() == 1

    def test_serialize_roundtrip(self):
        vs = VersionSet(3)
        vs.next_file_number = 10
        vs.last_sequence = 77
        vs.compact_pointer[1] = b"kkk"
        edit = VersionEdit()
        edit.add_file(0, fmd(1, b"a", b"b"))
        edit.add_file(2, fmd(2, b"c", b"d", size=55, run=2))
        vs.log_and_apply(edit)
        restored = VersionSet.deserialize(vs.serialize())
        assert restored.next_file_number == 10
        assert restored.last_sequence == 77
        assert restored.compact_pointer[1] == b"kkk"
        assert restored.current.num_files() == 2
        f = restored.current.files[2][0]
        assert (f.number, f.size, f.run) == (2, 55, 2)

    def test_tiered_preserved_through_deserialize(self):
        vs = VersionSet(2, tiered=True)
        restored = VersionSet.deserialize(vs.serialize(), tiered=True)
        assert restored.current.tiered
