"""Tests for the offline integrity verifier."""

import numpy as np

from repro.harness.runner import make_store
from repro.lsm.verify import verify_db
from repro.workloads.generators import KeyValueGenerator

from tests.conftest import TEST_PROFILE


def _loaded(kind="sealdb", n=6000):
    store = make_store(kind, TEST_PROFILE)
    kv = KeyValueGenerator(TEST_PROFILE.key_size, TEST_PROFILE.value_size)
    rng = np.random.default_rng(13)
    for i in rng.integers(0, n, size=n):
        store.put(kv.scrambled_key(int(i)), kv.value(int(i)))
    store.flush()
    return store


class TestVerifyClean:
    def test_sealdb_clean(self):
        store = _loaded("sealdb")
        report = verify_db(store.db)
        assert report.ok, report.render()
        assert report.tables_checked > 0
        assert report.entries_checked > 0

    def test_leveldb_clean(self):
        store = _loaded("leveldb")
        report = verify_db(store.db)
        assert report.ok, report.render()

    def test_smrdb_clean_despite_overlapping_l0(self):
        store = _loaded("smrdb")
        report = verify_db(store.db)
        assert report.ok, report.render()

    def test_clean_after_gc(self):
        store = _loaded("sealdb")
        store.collect_fragments(max_moves=64)
        report = verify_db(store.db)
        assert report.ok, report.render()

    def test_render_ok(self):
        store = _loaded("sealdb", n=1500)
        text = verify_db(store.db).render()
        assert text.startswith("verify: OK")


class TestVerifyDetectsDamage:
    def test_detects_corrupted_block(self):
        store = _loaded("sealdb", n=3000)
        meta = next(f for level in store.db.versions.current.files
                    for f in level)
        ext = store.storage.file_extents(meta.name)[0]
        store.drive._data[ext.start + 20] ^= 0xFF     # flip a byte
        report = verify_db(store.db)
        assert not report.ok
        assert any(meta.name in p for p in report.problems)

    def test_detects_missing_file(self):
        store = _loaded("leveldb", n=3000)
        meta = next(f for level in store.db.versions.current.files
                    for f in level)
        store.storage.delete_file(meta.name)
        report = verify_db(store.db)
        assert any("missing" in p for p in report.problems)

    def test_detects_size_mismatch(self):
        store = _loaded("leveldb", n=3000)
        meta = next(f for level in store.db.versions.current.files
                    for f in level)
        extents, _size = store.storage._files[meta.name]
        store.storage._files[meta.name] = (extents, meta.size + 7)
        report = verify_db(store.db)
        assert any("size" in p for p in report.problems)

    def test_report_render_lists_problems(self):
        store = _loaded("leveldb", n=2000)
        meta = next(f for level in store.db.versions.current.files
                    for f in level)
        store.storage.delete_file(meta.name)
        text = verify_db(store.db).render()
        assert "PROBLEM" in text and meta.name in text
