"""Tests for the harness: profiles, metrics, reporting, store factory."""

import pytest

from repro.errors import ReproError
from repro.harness.metrics import (
    WorkloadResult,
    bands_written_per_compaction,
    compaction_span,
    contiguous_output_fraction,
    summarize_compactions,
)
from repro.harness.profiles import DEFAULT_PROFILE, SMALL_PROFILE, ScaleProfile
from repro.harness.report import normalize, render_table
from repro.harness.runner import STORE_KINDS, make_store
from repro.lsm.db import CompactionRecord
from repro.smr.extent import Extent

from tests.conftest import TEST_PROFILE


class TestScaleProfile:
    def test_io_scale(self):
        assert DEFAULT_PROFILE.io_scale == 4 * 1024 * 1024 / DEFAULT_PROFILE.sstable_size

    def test_options_derivation(self):
        options = DEFAULT_PROFILE.options()
        assert options.sstable_size == DEFAULT_PROFILE.sstable_size
        assert options.write_buffer_size == DEFAULT_PROFILE.write_buffer_size
        assert options.base_level_bytes == \
            DEFAULT_PROFILE.level_base_tables * DEFAULT_PROFILE.sstable_size
        assert options.compaction_cpu_per_byte > 0

    def test_options_overrides(self):
        options = DEFAULT_PROFILE.options(max_levels=2, use_sets=True)
        assert options.max_levels == 2 and options.use_sets

    def test_entries_for_bytes(self):
        profile = ScaleProfile(name="x", key_size=16, value_size=84)
        assert profile.entries_for_bytes(1000) == 10

    def test_scaled_copy(self):
        bigger = SMALL_PROFILE.scaled(capacity=64 * 1024 * 1024)
        assert bigger.capacity == 64 * 1024 * 1024
        assert bigger.sstable_size == SMALL_PROFILE.sstable_size


class TestMakeStore:
    @pytest.mark.parametrize("kind", STORE_KINDS)
    def test_all_kinds_construct_and_work(self, kind):
        store = make_store(kind, TEST_PROFILE)
        store.put(b"0000000000000key", b"v")
        assert store.get(b"0000000000000key") == b"v"

    def test_unknown_kind(self):
        with pytest.raises(ReproError):
            make_store("rocksdb", TEST_PROFILE)

    def test_store_names(self):
        names = {make_store(k, TEST_PROFILE).name for k in STORE_KINDS}
        assert names == {"LevelDB", "SMRDB", "LevelDB+sets", "SEALDB",
                         "ZoneKV"}


def _record(index, level, inputs, outputs, in_extents, out_extents,
            in_bytes=100, out_bytes=100, t0=0.0, t1=1.0, trivial=False):
    return CompactionRecord(index, level, level + 1, t0, t1, inputs, outputs,
                            in_extents, out_extents, in_bytes, out_bytes,
                            trivial)


class TestMetrics:
    def test_workload_result(self):
        r = WorkloadResult("s", "w", 100, 4.0)
        assert r.ops_per_sec == 25.0
        assert WorkloadResult("s", "w", 10, 0.0).ops_per_sec == 0.0

    def test_summarize_skips_trivial(self):
        records = [
            _record(0, 1, ["a"], ["b"], [[Extent(0, 10)]], [[Extent(10, 20)]]),
            _record(1, 1, ["c"], ["c"], [[Extent(0, 10)]], [[Extent(0, 10)]],
                    trivial=True),
        ]
        s = summarize_compactions(records)
        assert s.count == 1
        assert s.avg_latency == 1.0
        assert s.total_input_bytes == 100

    def test_compaction_span(self):
        r = _record(0, 1, ["a"], ["b"],
                    [[Extent(100, 200)]], [[Extent(5000, 5100)]])
        assert compaction_span(r) == 4900

    def test_contiguous_output_fraction(self):
        store = make_store("sealdb", TEST_PROFILE)
        for i in range(6000):
            store.put(b"%016d" % (i * 2654435761 % 6000), b"v" * 30)
        store.flush()
        assert contiguous_output_fraction(store) == 1.0

    def test_bands_written_requires_banded_drive(self):
        store = make_store("sealdb", TEST_PROFILE)
        with pytest.raises(TypeError):
            bands_written_per_compaction(store)

    def test_bands_written_counts(self):
        store = make_store("leveldb", TEST_PROFILE)
        for i in range(6000):
            store.put(b"%016d" % (i * 2654435761 % 6000), b"v" * 30)
        store.flush()
        counts = bands_written_per_compaction(store)
        assert counts and all(c >= 1 for c in counts)


class TestReport:
    def test_render_table_alignment(self):
        text = render_table("Title", ["a", "bb"], [[1, 2.5], ["xx", 10000.0]])
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert "a" in lines[2] and "bb" in lines[2]
        assert "10,000" in text        # thousands formatting
        assert "2.50" in text          # float formatting

    def test_normalize(self):
        normed = normalize({"a": 2.0, "b": 6.0}, "a")
        assert normed == {"a": 1.0, "b": 3.0}

    def test_normalize_zero_base(self):
        with pytest.raises(ZeroDivisionError):
            normalize({"a": 0.0, "b": 1.0}, "a")
