"""Tests for the A/B comparison harness."""

from repro.harness.compare import ComparisonResult, SampleStats, compare
from repro.workloads.generators import KeyValueGenerator
from repro.workloads.microbench import MicroBenchmark

from tests.conftest import TEST_PROFILE


class TestSampleStats:
    def test_mean_stdev(self):
        s = SampleStats([2.0, 4.0, 6.0])
        assert s.mean == 4.0
        assert s.stdev == 2.0
        assert s.cv == 0.5

    def test_degenerate(self):
        assert SampleStats([]).mean == 0.0
        assert SampleStats([5.0]).stdev == 0.0


class TestComparisonResult:
    def _result(self, a_vals, b_vals):
        return ComparisonResult("ops/s", "A", "B",
                                SampleStats(a_vals), SampleStats(b_vals),
                                [0, 1])

    def test_ratio_and_range(self):
        r = self._result([10.0, 10.0], [20.0, 40.0])
        assert r.ratio == 3.0
        assert r.ratio_range == (2.0, 4.0)
        assert r.separated

    def test_not_separated_when_crossing_one(self):
        r = self._result([10.0, 10.0], [8.0, 12.0])
        assert not r.separated

    def test_render(self):
        text = self._result([10.0, 10.0], [20.0, 40.0]).render()
        assert "B / A" in text and "stable" in text


class TestCompareEndToEnd:
    def test_sealdb_beats_leveldb_across_seeds(self):
        def measure(store, seed):
            kv = KeyValueGenerator(TEST_PROFILE.key_size,
                                   TEST_PROFILE.value_size)
            bench = MicroBenchmark(kv, 6000, seed=seed)
            return bench.fill_random(store).ops_per_sec

        result = compare("leveldb", "sealdb", measure,
                         seeds=(0, 1), profile=TEST_PROFILE)
        assert result.a_name == "LevelDB" and result.b_name == "SEALDB"
        assert result.ratio > 1.5
        assert result.separated, result.render()
        # the simulation is low-variance across seeds
        assert result.b.cv < 0.25
