"""Tests for manual range compaction (CompactRange parity)."""

import numpy as np
import pytest

from repro.harness.runner import make_store
from repro.workloads.generators import KeyValueGenerator

from tests.conftest import TEST_PROFILE


def _loaded(kind="sealdb", n=8000, seed=1):
    store = make_store(kind, TEST_PROFILE)
    kv = KeyValueGenerator(TEST_PROFILE.key_size, TEST_PROFILE.value_size)
    rng = np.random.default_rng(seed)
    for i in rng.permutation(n):
        store.put(kv.key(int(i)), kv.value(int(i)))
    store.flush()
    return store, kv


@pytest.mark.parametrize("kind", ["leveldb", "sealdb", "smrdb"])
class TestCompactRange:
    def test_full_compaction_pushes_data_down(self, kind):
        store, kv = _loaded(kind)
        executed = store.compact_range()
        assert executed >= 0
        summary = store.level_summary()
        # all shallow levels (everything but the last) drained
        for level, count, _bytes in summary[:-1]:
            assert count == 0, f"L{level} still has {count} files"
        store.db.check_invariants()

    def test_data_survives(self, kind):
        store, kv = _loaded(kind, n=5000)
        store.compact_range()
        for i in range(0, 5000, 311):
            assert store.get(kv.key(i)) == kv.value(i)

    def test_reclaims_tombstone_space(self, kind):
        store, kv = _loaded(kind, n=5000)
        for i in range(0, 5000, 2):
            store.delete(kv.key(i))
        store.flush()
        before = store.db.versions.current.total_bytes()
        store.compact_range()
        after = store.db.versions.current.total_bytes()
        assert after < before
        # deleted keys stay deleted, survivors survive
        assert store.get(kv.key(0)) is None
        assert store.get(kv.key(1)) == kv.value(1)


class TestPartialRange:
    def test_range_limits_work(self):
        store, kv = _loaded("leveldb", n=6000)
        executed = store.compact_range(kv.key(0), kv.key(1000))
        assert executed > 0
        # keys outside the range are untouched and still readable
        assert store.get(kv.key(5000)) == kv.value(5000)
        assert store.get(kv.key(500)) == kv.value(500)
