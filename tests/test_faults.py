"""Unit tests for the failpoint registry, triggers, and actions."""

import pytest

from repro import faults
from repro.errors import FailpointError, InjectedCrash
from repro.faults.actions import Injection
from repro.faults.registry import AfterN, EveryNth, OnHit, WithProbability
from repro.smr.drive import ConventionalDrive

KiB = 1024
MiB = 1024 * 1024


class TestTriggers:
    def test_on_hit_fires_exactly_once(self):
        trigger = OnHit(3)
        assert [trigger.should_fire(h) for h in range(1, 7)] == [
            False, False, True, False, False, False]

    def test_after_n_fires_on_every_later_hit(self):
        trigger = AfterN(2)
        assert [trigger.should_fire(h) for h in range(1, 6)] == [
            False, False, True, True, True]

    def test_after_zero_fires_immediately(self):
        assert AfterN(0).should_fire(1)

    def test_every_nth(self):
        trigger = EveryNth(3)
        fired = [h for h in range(1, 10) if trigger.should_fire(h)]
        assert fired == [3, 6, 9]

    def test_probability_is_seeded_and_deterministic(self):
        a = WithProbability(0.5, seed=7)
        b = WithProbability(0.5, seed=7)
        seq_a = [a.should_fire(h) for h in range(1, 50)]
        seq_b = [b.should_fire(h) for h in range(1, 50)]
        assert seq_a == seq_b
        assert any(seq_a) and not all(seq_a)

    def test_probability_extremes(self):
        assert not any(WithProbability(0.0).should_fire(h) for h in range(1, 20))
        assert all(WithProbability(1.0).should_fire(h) for h in range(1, 20))

    def test_trigger_validation(self):
        with pytest.raises(FailpointError):
            OnHit(0)
        with pytest.raises(FailpointError):
            EveryNth(0)
        with pytest.raises(FailpointError):
            AfterN(-1)
        with pytest.raises(FailpointError):
            WithProbability(1.5)


class TestRegistry:
    def test_unknown_point_rejected(self):
        with pytest.raises(FailpointError):
            faults.arm("no.such.point")

    def test_register_point_extends_the_namespace(self):
        faults.register_point("test.extra")
        fp = faults.arm("test.extra", "crash", at=1)
        with pytest.raises(InjectedCrash):
            faults.trip("test.extra")
        assert fp.hits == 1 and fp.fired == 1

    def test_only_one_trigger_keyword_allowed(self):
        with pytest.raises(FailpointError):
            faults.arm(faults.WAL_APPEND, at=1, every=2)

    def test_arm_at_counts_hits(self):
        fp = faults.arm(faults.WAL_APPEND, "crash", at=3)
        assert faults.fire(faults.WAL_APPEND, data=b"x") is None
        assert faults.fire(faults.WAL_APPEND, data=b"x") is None
        with pytest.raises(InjectedCrash):
            faults.fire(faults.WAL_APPEND, data=b"x")
        assert (fp.hits, fp.fired) == (3, 1)
        # OnHit never fires again
        assert faults.fire(faults.WAL_APPEND, data=b"x") is None

    def test_times_caps_repeated_firing(self):
        fp = faults.arm(faults.WAL_APPEND, "crash", after=0, times=2)
        for _ in range(2):
            with pytest.raises(InjectedCrash):
                faults.fire(faults.WAL_APPEND)
        assert faults.fire(faults.WAL_APPEND) is None
        assert fp.fired == 2

    def test_arm_disarm_isolation(self):
        faults.arm(faults.WAL_APPEND, "crash", after=0)
        assert faults.fire(faults.MANIFEST_LOG) is None  # other point clean
        faults.disarm(faults.WAL_APPEND)
        assert faults.fire(faults.WAL_APPEND) is None
        assert not faults.is_armed(faults.WAL_APPEND)
        faults.disarm(faults.WAL_APPEND)  # idempotent

    def test_reset_clears_everything(self):
        faults.arm(faults.WAL_APPEND)
        faults.arm(faults.DRIVE_WRITE)
        faults.reset()
        assert faults.armed_points() == []

    def test_injected_context_manager(self):
        with faults.injected(faults.WAL_APPEND, "crash", at=1) as fp:
            assert faults.is_armed(faults.WAL_APPEND)
            with pytest.raises(InjectedCrash):
                faults.fire(faults.WAL_APPEND)
            assert fp.fired == 1
        assert not faults.is_armed(faults.WAL_APPEND)

    def test_counting_mode_counts_without_arming(self):
        with faults.counting() as counts:
            for _ in range(3):
                faults.fire(faults.WAL_APPEND, data=b"x")
            faults.trip(faults.FLUSH_INSTALL)
        assert counts[faults.WAL_APPEND] == 3
        assert counts[faults.FLUSH_INSTALL] == 1
        assert faults.fire(faults.WAL_APPEND) is None  # back to fast path


class TestInjectionArithmetic:
    def test_torn_fraction_truncates_but_never_completes(self):
        inj = Injection("p", 1, fraction=1.0)
        assert inj.mutate_bytes(b"abcdef") == b"abcde"  # always loses >= 1
        inj = Injection("p", 1, fraction=0.5)
        assert inj.mutate_bytes(b"abcdef") == b"abc"
        inj = Injection("p", 1, fraction=0.0)
        assert inj.mutate_bytes(b"abcdef") == b""

    def test_keep_units_never_keeps_all(self):
        inj = Injection("p", 1, fraction=1.0)
        assert inj.keep_units(4) == 3
        inj = Injection("p", 1, fraction=0.5)
        assert inj.keep_units(4) == 2
        inj = Injection("p", 1, fraction=0.0)
        assert inj.keep_units(4) == 0

    def test_corrupt_flips_bytes_in_place(self):
        inj = Injection("p", 1, flips=[1])
        out = inj.mutate_bytes(b"\x00\x00\x00")
        assert out == b"\x00\xff\x00"

    def test_finish_raises_only_for_crash_after(self):
        Injection("p", 1).finish()  # no-op
        with pytest.raises(InjectedCrash):
            Injection("p", 1, crash_after=True).finish()


class TestDriveWiring:
    def test_torn_drive_write_leaves_prefix(self):
        drive = ConventionalDrive(1 * MiB)
        drive.write(0, b"\xaa" * 4096)
        faults.arm(faults.DRIVE_WRITE, "torn", at=1, fraction=0.5)
        with pytest.raises(InjectedCrash):
            drive.write(8192, b"\xbb" * 4096)
        # half the payload reached the medium, the rest never did
        assert drive.peek(8192, 2048) == b"\xbb" * 2048
        assert drive.peek(8192 + 2048, 2048) == b"\x00" * 2048

    def test_crash_before_drive_write_leaves_nothing(self):
        drive = ConventionalDrive(1 * MiB)
        faults.arm(faults.DRIVE_WRITE, "crash", at=1)
        with pytest.raises(InjectedCrash):
            drive.write(0, b"\xcc" * 512)
        assert drive.peek(0, 512) == b"\x00" * 512

    def test_crash_after_drive_write_lands_payload(self):
        drive = ConventionalDrive(1 * MiB)
        faults.arm(faults.DRIVE_WRITE, "crash-after", at=1)
        with pytest.raises(InjectedCrash):
            drive.write(0, b"\xdd" * 512)
        assert drive.peek(0, 512) == b"\xdd" * 512

    def test_delay_advances_the_clock_without_failing(self):
        drive = ConventionalDrive(1 * MiB)
        before = drive.now
        faults.arm(faults.DRIVE_WRITE, "delay", after=0, delay=0.25)
        drive.write(0, b"\xee" * 512)
        assert drive.peek(0, 512) == b"\xee" * 512
        assert drive.now >= before + 0.25


class TestDisarmedOverhead:
    def test_disarmed_failpoints_change_nothing(self):
        """A workload with the hooks compiled in but nothing armed is
        byte-identical to one with a never-firing failpoint armed."""
        from repro.harness.crashsweep import CrashSweepConfig, build_store, make_ops

        def run(arm_inert: bool) -> bytes:
            faults.reset()
            if arm_inert:
                faults.arm(faults.WAL_APPEND, "crash", at=10**9)
            config = CrashSweepConfig(kind="ext4", ops=200)
            db = build_store("ext4", seed=0)
            for verb, key, value in make_ops(config):
                if verb == "put":
                    db.put(key, value)
                else:
                    db.delete(key)
            db.flush()
            return db.storage.drive.peek(0, db.storage.drive.capacity)

        assert run(False) == run(True)
