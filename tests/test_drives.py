"""Tests for the three drive models."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import OutOfRangeError, ShingleOverwriteError
from repro.smr.drive import ConventionalDrive
from repro.smr.fixed_band import FixedBandSMRDrive
from repro.smr.raw_hmsmr import RawHMSMRDrive

KiB = 1024
MiB = 1024 * 1024


class TestConventionalDrive:
    def test_read_back_what_was_written(self):
        d = ConventionalDrive(MiB)
        d.write(100, b"hello world")
        assert d.read(100, 11) == b"hello world"

    def test_out_of_range_rejected(self):
        d = ConventionalDrive(1024)
        with pytest.raises(OutOfRangeError):
            d.write(1020, b"xxxxx")
        with pytest.raises(OutOfRangeError):
            d.read(2000, 1)
        with pytest.raises(OutOfRangeError):
            d.read(-1, 1)

    def test_stats_accumulate(self):
        d = ConventionalDrive(MiB)
        d.write(0, b"x" * 100, category="table")
        d.read(0, 100, category="table")
        assert d.stats.bytes_written == 100
        assert d.stats.bytes_read == 100
        assert d.stats.bytes_written_by_category["table"] == 100
        assert d.stats.write_ops == 1 and d.stats.read_ops == 1

    def test_clock_advances_on_io(self):
        d = ConventionalDrive(MiB)
        before = d.now
        d.write(0, b"x" * 4096)
        assert d.now > before

    def test_buffered_write_no_seek(self):
        d = ConventionalDrive(MiB)
        d.write(0, b"x")              # position the head
        seeks_before = d.stats.seeks
        d.write_buffered(512 * KiB, b"y" * 100)
        assert d.stats.seeks == seeks_before
        assert d.peek(512 * KiB, 3) == b"yyy"

    def test_peek_does_not_advance_clock(self):
        d = ConventionalDrive(MiB)
        d.write(0, b"abc")
        t = d.now
        assert d.peek(0, 3) == b"abc"
        assert d.now == t

    def test_metadata_op_advances_clock(self):
        d = ConventionalDrive(MiB)
        t = d.now
        d.charge_metadata_op()
        assert d.now > t


class TestFixedBandDrive:
    def _drive(self, capacity=MiB, band=64 * KiB):
        return FixedBandSMRDrive(capacity, band)

    def test_band_of(self):
        d = self._drive()
        assert d.band_of(0) == 0
        assert d.band_of(64 * KiB - 1) == 0
        assert d.band_of(64 * KiB) == 1

    def test_bands_touched(self):
        d = self._drive()
        assert d.bands_touched(0, 64 * KiB) == 1
        assert d.bands_touched(0, 64 * KiB + 1) == 2
        assert d.bands_touched(60 * KiB, 8 * KiB) == 2
        assert d.bands_touched(0, 0) == 0

    def test_sequential_append_no_rmw(self):
        d = self._drive()
        d.write(0, b"a" * 1000)
        d.write(1000, b"b" * 1000)
        assert d.stats.rmw_count == 0
        assert d.stats.bytes_written == 2000

    def test_write_below_frontier_triggers_rmw(self):
        d = self._drive()
        d.write(0, b"a" * 32 * KiB)            # frontier at 32 KiB
        d.write(1000, b"X" * 100)              # below frontier
        assert d.stats.rmw_count > 0
        # the whole written prefix was re-read and re-written
        assert d.stats.bytes_written > 32 * KiB
        assert d.peek(1000, 3) == b"XXX"
        assert d.peek(0, 3) == b"aaa"

    def test_full_prefix_overwrite_skips_read(self):
        d = self._drive()
        d.write(0, b"a" * 16 * KiB)
        reads_before = d.stats.bytes_read
        d.write(0, b"b" * 16 * KiB)            # replaces the whole prefix
        assert d.stats.bytes_read == reads_before
        assert d.peek(0, 1) == b"b"

    def test_rmw_burst_coalescing(self):
        d = self._drive()
        d.write(0, b"a" * 32 * KiB)
        d.write(1000, b"X" * 100)              # full RMW
        rmw_bytes_first = d.stats.rmw_bytes
        d.write(5000, b"Y" * 100)              # same band: coalesced
        assert d.stats.rmw_bytes == rmw_bytes_first + 100

    def test_rmw_burst_ends_on_other_band(self):
        d = self._drive()
        d.write(0, b"a" * 32 * KiB)
        d.write(64 * KiB, b"c" * 32 * KiB)     # band 1
        d.write(1000, b"X" * 100)              # band 0: full RMW
        count0 = d.stats.rmw_count
        d.write(64 * KiB + 1000, b"Z" * 100)   # band 1: another full RMW
        assert d.stats.rmw_count > count0

    def test_gap_write_above_frontier_ok(self):
        d = self._drive()
        d.write(0, b"a" * 1000)
        d.write(10_000, b"b" * 1000)           # leaves a gap, still safe
        assert d.stats.rmw_count == 0
        assert d.band_frontier(0) == 11_000

    def test_multi_band_write_split(self):
        d = self._drive()
        d.write(0, b"q" * (130 * KiB))
        assert d.stats.write_ops == 3          # split across 3 bands
        assert d.band_frontier(0) == 64 * KiB
        assert d.band_frontier(1) == 128 * KiB

    def test_trim_whole_band_resets_frontier(self):
        d = self._drive()
        d.write(0, b"a" * 64 * KiB)
        d.trim(0, 64 * KiB)
        assert d.band_frontier(0) == 0
        d.write(0, b"b" * 100)                 # sequential again
        assert d.stats.rmw_count == 0

    def test_partial_trim_keeps_frontier(self):
        d = self._drive()
        d.write(0, b"a" * 32 * KiB)
        d.trim(0, 16 * KiB)
        assert d.band_frontier(0) == 32 * KiB


class TestRawHMSMRDrive:
    def _drive(self, capacity=MiB, guard=4 * KiB):
        return RawHMSMRDrive(capacity, guard_size=guard)

    def test_append_is_safe(self):
        d = self._drive()
        d.write(0, b"a" * 1000)
        d.write(1000, b"b" * 1000)
        assert d.valid_bytes() == 2000

    def test_overwrite_valid_data_rejected(self):
        d = self._drive()
        d.write(0, b"a" * 1000)
        with pytest.raises(ShingleOverwriteError):
            d.write(500, b"x" * 100)

    def test_damage_zone_enforced(self):
        d = self._drive()
        d.write(10_000, b"a" * 1000)           # valid at [10000, 11000)
        with pytest.raises(ShingleOverwriteError):
            # write ends at 8000; damage zone [8000, 8000+4096) hits 10000?
            # no -- make it closer: ends at 9000, damage [9000, 13096)
            d.write(8000, b"x" * 1000)

    def test_write_with_guard_gap_ok(self):
        d = self._drive()
        d.write(10_000, b"a" * 1000)
        d.write(4000, b"x" * 1000)             # damage [5000, 9096): clear
        assert d.peek(4000, 1) == b"x"

    def test_trim_then_reuse(self):
        d = self._drive()
        d.write(0, b"a" * 1000)
        d.trim(0, 1000)
        d.write(0, b"b" * 100)                 # legal after trim
        assert d.peek(0, 1) == b"b"

    def test_damage_at_capacity_edge(self):
        d = self._drive(capacity=64 * KiB)
        d.write(64 * KiB - 1000, b"z" * 1000)  # damage zone clipped at cap
        assert d.valid_bytes() == 1000

    def test_enforce_off_allows_anything(self):
        d = RawHMSMRDrive(MiB, guard_size=4 * KiB, enforce=False)
        d.write(0, b"a" * 1000)
        d.write(500, b"x" * 100)               # no exception

    def test_highest_valid_offset(self):
        d = self._drive()
        assert d.highest_valid_offset() == 0
        d.write(5000, b"a" * 1000)
        assert d.highest_valid_offset() == 6000

    @settings(max_examples=30)
    @given(st.lists(st.tuples(st.integers(0, 60), st.integers(1, 20)), max_size=25))
    def test_no_silent_overwrite_property(self, writes):
        """Whatever sequence of writes/trims happens, data accepted by
        the drive is never silently corrupted: every valid byte reads
        back as last written."""
        d = RawHMSMRDrive(128 * KiB, guard_size=KiB)
        shadow: dict[int, int] = {}
        for i, (slot, length) in enumerate(writes):
            offset, nbytes = slot * KiB, length * 64
            payload = bytes([i % 251 + 1]) * nbytes
            d.trim(offset, nbytes)
            for b in range(offset, offset + nbytes):
                shadow.pop(b, None)
            try:
                d.write(offset, payload)
            except ShingleOverwriteError:
                continue
            for b in range(offset, offset + nbytes):
                shadow[b] = payload[0]
        for offset, expected in shadow.items():
            assert d.peek(offset, 1)[0] == expected
