"""Tests for the LRU cache."""

from repro.lsm.cache import LRUCache


class TestLRUCache:
    def test_put_get(self):
        c = LRUCache(1000)
        c.put("a", b"xxx")
        assert c.get("a") == b"xxx"
        assert c.get("b") is None

    def test_hit_miss_counters(self):
        c = LRUCache(1000)
        c.put("a", b"x")
        c.get("a")
        c.get("a")
        c.get("nope")
        assert c.hits == 2 and c.misses == 1
        assert c.hit_rate == 2 / 3

    def test_eviction_by_bytes(self):
        c = LRUCache(100)
        c.put("a", b"x" * 60)
        c.put("b", b"y" * 60)  # evicts a
        assert c.get("a") is None
        assert c.get("b") is not None
        assert c.used_bytes <= 100

    def test_lru_order(self):
        c = LRUCache(100)
        c.put("a", b"x" * 40)
        c.put("b", b"y" * 40)
        c.get("a")              # refresh a
        c.put("c", b"z" * 40)   # evicts b, not a
        assert c.get("a") is not None
        assert c.get("b") is None

    def test_overwrite_same_key(self):
        c = LRUCache(100)
        c.put("a", b"x" * 40)
        c.put("a", b"y" * 20)
        assert c.get("a") == b"y" * 20
        assert c.used_bytes == 20

    def test_single_oversized_entry_kept(self):
        c = LRUCache(10)
        c.put("big", b"z" * 100)
        assert c.get("big") is not None  # never evicts the only entry

    def test_evict_explicit(self):
        c = LRUCache(100)
        c.put("a", b"x")
        c.evict("a")
        assert c.get("a") is None
        c.evict("a")  # idempotent

    def test_evict_prefix(self):
        c = LRUCache(1000)
        c.put(("f1", 0), b"x")
        c.put(("f1", 10), b"y")
        c.put(("f2", 0), b"z")
        c.evict_prefix(("f1",))
        assert c.get(("f1", 0)) is None
        assert c.get(("f1", 10)) is None
        assert c.get(("f2", 0)) is not None

    def test_clear(self):
        c = LRUCache(100)
        c.put("a", b"x")
        c.clear()
        assert len(c) == 0 and c.used_bytes == 0

    def test_charge_fn_object_size(self):
        class Blockish:
            size = 77

        c = LRUCache(100)
        c.put("a", Blockish())
        assert c.used_bytes == 77
