"""Tests for SSTable building and reading."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CorruptionError
from repro.lsm.cache import LRUCache
from repro.lsm.ikey import InternalKey, TYPE_DELETION, TYPE_VALUE
from repro.lsm.options import Options
from repro.lsm.sstable import FOOTER_SIZE, SSTableBuilder, SSTableReader
from repro.fs.ext4sim import Ext4Storage
from repro.smr.drive import ConventionalDrive

KiB = 1024


def make_storage():
    drive = ConventionalDrive(8 * 1024 * KiB)
    return Ext4Storage(drive, wal_size=16 * KiB, meta_size=16 * KiB,
                       block_size=512)


def build_table(pairs, options=None):
    options = options or Options(block_size=512, block_restart_interval=4)
    b = SSTableBuilder(options)
    for ikey, value in pairs:
        b.add(ikey, value)
    return b.finish()


def pairs_for(n, seq=10):
    return [(InternalKey(b"key%05d" % i, seq, TYPE_VALUE), b"value-%d" % i)
            for i in range(n)]


class TestBuilder:
    def test_empty_table_rejected(self):
        b = SSTableBuilder(Options())
        with pytest.raises(CorruptionError):
            b.finish()

    def test_out_of_order_rejected(self):
        b = SSTableBuilder(Options())
        b.add(InternalKey(b"b", 1, TYPE_VALUE), b"v")
        with pytest.raises(CorruptionError):
            b.add(InternalKey(b"a", 1, TYPE_VALUE), b"v")

    def test_properties(self):
        data, props = build_table(pairs_for(100))
        assert props.num_entries == 100
        assert props.smallest.user_key == b"key00000"
        assert props.largest.user_key == b"key00099"
        assert props.file_size == len(data)
        assert props.file_size > FOOTER_SIZE

    def test_drain_streaming_equals_whole_file(self):
        options = Options(block_size=512, block_restart_interval=4)
        whole, props_a = build_table(pairs_for(200), options)

        b = SSTableBuilder(options)
        chunks = []
        for ikey, value in pairs_for(200):
            b.add(ikey, value)
            if b.pending_bytes >= 1024:
                chunks.append(b.drain())
        tail, props_b = b.finish()
        chunks.append(tail)
        assert b"".join(chunks) == whole
        assert props_b.file_size == props_a.file_size


class TestReader:
    def _open(self, pairs, cache=None, readahead=1):
        storage = make_storage()
        data, props = build_table(pairs)
        storage.write_file("t.sst", data)
        reader = SSTableReader(storage, "t.sst", props.file_size, cache,
                               readahead_blocks=readahead)
        return reader, storage

    def test_get_existing(self):
        reader, _ = self._open(pairs_for(300))
        found, value = reader.get(b"key00123", 100)
        assert (found, value) == (True, b"value-123")

    def test_get_missing(self):
        reader, _ = self._open(pairs_for(300))
        assert reader.get(b"nope", 100) == (False, None)

    def test_get_respects_snapshot(self):
        pairs = [(InternalKey(b"k", 20, TYPE_VALUE), b"new"),
                 (InternalKey(b"k", 10, TYPE_VALUE), b"old")]
        reader, _ = self._open(pairs)
        assert reader.get(b"k", 15) == (True, b"old")
        assert reader.get(b"k", 25) == (True, b"new")
        assert reader.get(b"k", 5) == (False, None)

    def test_get_tombstone(self):
        pairs = [(InternalKey(b"k", 20, TYPE_DELETION), b""),
                 (InternalKey(b"k", 10, TYPE_VALUE), b"old")]
        reader, _ = self._open(pairs)
        assert reader.get(b"k", 30) == (True, None)

    def test_iteration_full(self):
        pairs = pairs_for(250)
        reader, _ = self._open(pairs)
        got = [(k.user_key, v) for k, v in reader]
        assert got == [(k.user_key, v) for k, v in pairs]

    def test_iterate_from(self):
        pairs = pairs_for(100)
        reader, _ = self._open(pairs)
        from repro.lsm.ikey import lookup_key
        got = [k.user_key for k, _v in reader.iterate_from(lookup_key(b"key00050", 999))]
        assert got == [b"key%05d" % i for i in range(50, 100)]

    def test_readahead_results_identical(self):
        pairs = pairs_for(300)
        r1, _ = self._open(pairs, readahead=1)
        r8, _ = self._open(pairs, readahead=8)
        assert [(k.user_key, v) for k, v in r1] == [(k.user_key, v) for k, v in r8]

    def test_readahead_fewer_device_reads(self):
        pairs = pairs_for(400)
        r1, s1 = self._open(pairs, readahead=1)
        ops_before = s1.drive.stats.read_ops
        list(r1)
        single = s1.drive.stats.read_ops - ops_before

        r8, s8 = self._open(pairs, readahead=8)
        ops_before = s8.drive.stats.read_ops
        list(r8)
        chunked = s8.drive.stats.read_ops - ops_before
        assert chunked < single

    def test_prefetch_serves_from_memory(self):
        pairs = pairs_for(300)
        reader, storage = self._open(pairs)
        reader.prefetch()
        reads_after_prefetch = storage.drive.stats.read_ops
        list(reader)
        reader.get(b"key00100", 100)
        assert storage.drive.stats.read_ops == reads_after_prefetch
        reader.release()
        reader.get(b"key00100", 100)
        assert storage.drive.stats.read_ops > reads_after_prefetch

    def test_block_cache_hit(self):
        cache = LRUCache(1024 * KiB)
        pairs = pairs_for(300)
        reader, storage = self._open(pairs, cache=cache)
        reader.get(b"key00000", 100)
        reads = storage.drive.stats.read_ops
        reader.get(b"key00001", 100)  # same block
        assert storage.drive.stats.read_ops == reads
        assert cache.hits >= 1

    def test_bad_magic_rejected(self):
        storage = make_storage()
        data, props = build_table(pairs_for(10))
        corrupted = data[:-8] + b"\x00" * 8
        storage.write_file("bad.sst", corrupted)
        with pytest.raises(CorruptionError):
            SSTableReader(storage, "bad.sst", len(corrupted))

    def test_bloom_disabled_still_works(self):
        options = Options(block_size=512, bloom_bits_per_key=0)
        storage = make_storage()
        data, props = build_table(pairs_for(50), options)
        storage.write_file("nb.sst", data)
        reader = SSTableReader(storage, "nb.sst", props.file_size)
        assert reader.get(b"key00010", 100) == (True, b"value-10")

    @settings(max_examples=20, deadline=None)
    @given(st.sets(st.integers(0, 9999), min_size=1, max_size=150))
    def test_every_written_key_readable(self, indices):
        pairs = [(InternalKey(b"k%04d" % i, 7, TYPE_VALUE), b"v%d" % i)
                 for i in sorted(indices)]
        reader, _ = self._open(pairs)
        for i in indices:
            assert reader.get(b"k%04d" % i, 100) == (True, b"v%d" % i)
        assert reader.get(b"zzzz", 100) == (False, None)
