"""Tests for the observability layer (repro.obs): event bus, typed
events, metrics registry, and the zero-cost disarmed fast path."""

import json

import repro
from repro.obs import (
    EVENT_TYPES,
    Histogram,
    MetricsRegistry,
    Observability,
    PutEvent,
)
from repro.workloads.generators import KeyValueGenerator

from tests.conftest import TEST_PROFILE


def _loaded_store(events=None, n=4000):
    """A sealdb store with every event collected during a write-heavy
    load (enough to trigger flushes and compactions)."""
    store = repro.open("sealdb", profile=TEST_PROFILE)
    collected = []
    store.obs.subscribe(collected.append, events)
    kv = KeyValueGenerator(16, 100)
    for i in range(n):
        store.put(kv.scrambled_key(i % (n // 2)), kv.value(i))
    store.flush()
    return store, collected


class TestEventStream:
    def test_event_ordering(self):
        _store, events = _loaded_store()
        names = [e.TYPE for e in events]
        assert "flush.end" in names
        assert "compaction.end" in names
        # The first compaction can only run after at least one memtable
        # flush produced an input file.
        assert names.index("flush.end") < names.index("compaction.end")
        # Every compaction.end is preceded by at least as many starts.
        starts = ends = 0
        for n in names:
            starts += n == "compaction.start"
            ends += n == "compaction.end"
            assert ends <= starts
        # Per event type, timestamps never run backwards (simulated
        # clock).  Globally they may interleave: op.put carries its
        # *start* time but is emitted after the wal.append it caused.
        by_type = {}
        for e in events:
            by_type.setdefault(e.TYPE, []).append(e.ts)
        for ts in by_type.values():
            assert all(a <= b for a, b in zip(ts, ts[1:]))

    def test_band_and_set_events_on_sealdb(self):
        _store, events = _loaded_store()
        names = {e.TYPE for e in events}
        assert {"band.allocate", "band.split", "set.register",
                "wal.append", "op.put"} <= names

    def test_event_filter(self):
        _store, events = _loaded_store(events={"compaction.end"})
        assert events
        assert {e.TYPE for e in events} == {"compaction.end"}

    def test_events_serialize_to_json(self):
        _store, events = _loaded_store()
        for event in events[:200]:
            line = json.dumps(event.to_dict())
            parsed = json.loads(line)
            assert parsed["event"] == event.TYPE
            assert isinstance(parsed["ts"], float)

    def test_every_event_type_is_named(self):
        for name, cls in EVENT_TYPES.items():
            assert cls.TYPE == name


class TestZeroCostPath:
    def test_disarmed_components_hold_none(self):
        store = repro.open("sealdb", profile=TEST_PROFILE)
        assert store._obs is None
        assert store.db._obs is None
        assert store.drive._obs is None
        assert store.storage._obs is None

    def test_subscribe_arms_unsubscribe_disarms(self):
        store = repro.open("sealdb", profile=TEST_PROFILE)
        cb = store.obs.subscribe(lambda e: None)
        assert store.obs.armed
        assert store._obs is store.obs
        assert store.db._obs is store.obs
        store.obs.unsubscribe(cb)
        assert not store.obs.armed
        assert store._obs is None
        assert store.db._obs is None

    def test_explicit_arm_holds_without_subscribers(self):
        store = repro.open("sealdb", profile=TEST_PROFILE)
        store.obs.arm()
        cb = store.obs.subscribe(lambda e: None)
        store.obs.unsubscribe(cb)
        assert store.obs.armed          # arm() keeps it live
        store.obs.disarm()
        assert not store.obs.armed
        assert store._obs is None

    def test_armed_and_disarmed_runs_agree_on_simulated_time(self):
        def load(store):
            kv = KeyValueGenerator(16, 100)
            for i in range(2500):
                store.put(kv.scrambled_key(i % 1000), kv.value(i))
            store.flush()
            return store.now

        plain = repro.open("sealdb", profile=TEST_PROFILE)
        observed = repro.open("sealdb", profile=TEST_PROFILE)
        observed.obs.arm()
        assert load(plain) == load(observed)

    def test_rewired_after_reopen(self):
        store = repro.open("sealdb", profile=TEST_PROFILE)
        store.obs.arm()
        store.put(b"k", b"v")
        old_db = store.db
        store.reopen()
        assert old_db is not store.db
        assert store.db._obs is store.obs   # new engine rebound
        store.put(b"k2", b"v2")
        assert store.obs.metrics.value("ops.put") == 2


class TestMetrics:
    def test_op_counters_and_latency(self):
        store = repro.open("sealdb", profile=TEST_PROFILE)
        store.obs.arm()
        for i in range(50):
            store.put(b"key-%03d" % i, b"v" * 64)
        store.get(b"key-001")
        store.get(b"missing")
        m = store.obs.metrics
        assert m.value("ops.put") == 50
        assert m.value("ops.get") == 2
        assert m.value("ops.get_hit") == 1
        assert m.histograms["latency.put"].count == 50
        assert m.histograms["latency.put"].percentile(50) >= 0.0

    def test_lazy_gauges_track_store(self):
        store, _events = _loaded_store()
        m = store.obs.metrics
        assert m.value("amp.wa") == store.wa()
        assert m.value("amp.mwa") == store.mwa()
        assert m.value("band.count") == len(store.band_manager.bands())

    def test_histogram_percentiles_within_resolution(self):
        h = Histogram("unit")
        for v in range(1, 1001):
            h.record(v / 1000.0)
        # Log-bucketed: ~2.3 % relative error per bucket.
        assert abs(h.percentile(50) - 0.5) / 0.5 < 0.05
        assert abs(h.percentile(99) - 0.99) / 0.99 < 0.05
        assert h.count == 1000

    def test_histogram_merge(self):
        a, b = Histogram("a"), Histogram("b")
        for v in (0.001, 0.002):
            a.record(v)
        for v in (0.003, 0.004):
            b.record(v)
        a.merge(b)
        assert a.count == 4
        assert a.percentile(100) >= a.percentile(0)

    def test_registry_merge(self):
        r1, r2 = MetricsRegistry(), MetricsRegistry()
        r1.counter("x").inc(2)
        r2.counter("x").inc(3)
        r2.counter("y").inc(1)
        merged = MetricsRegistry()
        merged.merge(r1)
        merged.merge(r2)
        assert merged.value("x") == 5
        assert merged.value("y") == 1

    def test_render_mentions_percentiles(self):
        store, _events = _loaded_store()
        text = store.obs.metrics.render(title="t")
        assert "p50" in text and "p99" in text
        assert "latency.put" in text


class TestBusUnit:
    def test_emit_without_subscribers_still_counts(self):
        bus = Observability("unit")
        bus.emit(PutEvent(ts=0.0, key_len=3, value_len=5, latency=0.001))
        assert bus.metrics.value("ops.put") == 1

    def test_bind_rebind_while_armed(self):
        class C:
            _obs = None

        bus = Observability("unit")
        c1, c2 = C(), C()
        bus.bind(c1)
        bus.arm()
        assert c1._obs is bus
        bus.bind(c2)
        assert c1._obs is None
        assert c2._obs is bus
