"""Tests for the LinkBench-style graph workload."""

import pytest

from repro.harness.runner import make_store
from repro.workloads.linkbench import (
    DEFAULT_MIX,
    LinkBenchWorkload,
    link_key,
    link_prefix,
    node_key,
)

from tests.conftest import TEST_PROFILE


class TestKeyEncoding:
    def test_node_key_width(self):
        assert node_key(5) == b"n:000000000005"
        assert node_key(0) < node_key(1) < node_key(10 ** 11)

    def test_link_key_grouping(self):
        # all links of (src, type) sort inside their prefix range
        k = link_key(7, 2, 123)
        prefix = link_prefix(7, 2)
        assert k.startswith(prefix)
        assert link_key(7, 2, 0) < link_key(7, 2, 999)
        assert not link_key(7, 3, 0).startswith(prefix)
        assert not link_key(8, 2, 0).startswith(prefix)


class TestWorkload:
    def _bench(self, nodes=400):
        return LinkBenchWorkload(nodes, links_per_node=3, seed=2)

    def test_mix_normalized(self):
        w = self._bench()
        assert sum(w.mix.values()) == pytest.approx(1.0)
        assert set(w.mix) == set(DEFAULT_MIX)

    def test_load_creates_graph(self):
        store = make_store("sealdb", TEST_PROFILE)
        w = self._bench()
        result = w.load(store)
        assert result.per_op["nodes"] == 400
        assert result.per_op["links"] == 400 * 3
        assert store.get(node_key(0)) is not None
        assert store.get(node_key(399)) is not None

    def test_link_lists_are_contiguous_scans(self):
        store = make_store("sealdb", TEST_PROFILE)
        w = self._bench()
        w.load(store)
        # scan a hot node's type-0 links: every returned key belongs to it
        prefix = link_prefix(0, 0)
        for key, _v in store.scan(prefix, prefix + b"\xff", limit=100):
            assert key.startswith(prefix)

    def test_run_executes_full_mix(self):
        store = make_store("sealdb", TEST_PROFILE)
        w = self._bench()
        w.load(store)
        result = w.run(store, 800)
        assert result.ops == 800
        assert sum(result.per_op.values()) == 800
        # the frequent ops definitely occurred
        assert result.per_op["get_link"] > 200
        assert result.per_op["get_link_list"] > 50
        assert result.per_op["add_link"] > 10
        assert result.sim_seconds > 0

    def test_deterministic(self):
        a = make_store("sealdb", TEST_PROFILE)
        b = make_store("sealdb", TEST_PROFILE)
        w = self._bench()
        ra = (w.load(a).sim_seconds, w.run(a, 300).sim_seconds)
        w2 = self._bench()
        rb = (w2.load(b).sim_seconds, w2.run(b, 300).sim_seconds)
        assert ra == rb

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkBenchWorkload(1)

    def test_runs_on_every_store(self):
        w = LinkBenchWorkload(150, links_per_node=2, seed=1)
        for kind in ("leveldb", "smrdb", "sealdb"):
            store = make_store(kind, TEST_PROFILE)
            w.load(store)
            result = w.run(store, 200)
            assert result.ops == 200
