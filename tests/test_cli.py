"""Tests for the command-line interface."""

import pathlib

import pytest

from repro import cli


class TestCliList:
    def test_list_prints_all(self, capsys):
        assert cli.main(["list"]) == 0
        out = capsys.readouterr().out
        for name in cli.EXPERIMENTS:
            assert name in out


class TestCliRun:
    def test_run_one(self, capsys):
        assert cli.main(["run", "fig13", "--db-mib", "1"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 13" in out
        assert "fragment share" in out

    def test_run_with_output_dir(self, capsys, tmp_path: pathlib.Path):
        out_dir = tmp_path / "r"
        assert cli.main(["run", "fig12", "--db-mib", "1",
                         "-o", str(out_dir)]) == 0
        saved = out_dir / "fig12.txt"
        assert saved.exists()
        assert "MWA" in saved.read_text()

    def test_report_collects_saved_tables(self, capsys,
                                          tmp_path: pathlib.Path):
        results = tmp_path / "results"
        results.mkdir()
        (results / "demo.txt").write_text("A table\n=======\n")
        out = tmp_path / "RESULTS.md"
        assert cli.main(["report", "--results-dir", str(results),
                         "-o", str(out)]) == 0
        text = out.read_text()
        assert "## demo" in text and "A table" in text

    def test_report_empty_dir(self, tmp_path: pathlib.Path):
        results = tmp_path / "results"
        results.mkdir()
        out = tmp_path / "RESULTS.md"
        assert cli.main(["report", "--results-dir", str(results),
                         "-o", str(out)]) == 0
        assert "no saved results" in out.read_text()

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            cli.main(["run", "fig99"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            cli.main([])
