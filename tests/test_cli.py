"""Tests for the command-line interface."""

import json
import pathlib

import pytest

from repro import cli


class TestCliList:
    def test_list_prints_all(self, capsys):
        assert cli.main(["list"]) == 0
        out = capsys.readouterr().out
        for name in cli.EXPERIMENTS:
            assert name in out


class TestCliRun:
    def test_run_one(self, capsys):
        assert cli.main(["run", "fig13", "--db-mib", "1"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 13" in out
        assert "fragment share" in out

    def test_run_with_output_dir(self, capsys, tmp_path: pathlib.Path):
        out_dir = tmp_path / "r"
        assert cli.main(["run", "fig12", "--db-mib", "1",
                         "-o", str(out_dir)]) == 0
        saved = out_dir / "fig12.txt"
        assert saved.exists()
        assert "MWA" in saved.read_text()

    def test_report_collects_saved_tables(self, capsys,
                                          tmp_path: pathlib.Path):
        results = tmp_path / "results"
        results.mkdir()
        (results / "demo.txt").write_text("A table\n=======\n")
        out = tmp_path / "RESULTS.md"
        assert cli.main(["report", "--results-dir", str(results),
                         "-o", str(out)]) == 0
        text = out.read_text()
        assert "## demo" in text and "A table" in text

    def test_report_empty_dir(self, tmp_path: pathlib.Path):
        results = tmp_path / "results"
        results.mkdir()
        out = tmp_path / "RESULTS.md"
        assert cli.main(["report", "--results-dir", str(results),
                         "-o", str(out)]) == 0
        assert "no saved results" in out.read_text()

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            cli.main(["run", "fig99"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            cli.main([])


class TestCliTrace:
    def test_trace_fig10_emits_parseable_jsonl(self, capsys,
                                               tmp_path: pathlib.Path):
        """Regression: ``repro trace fig10 --db-mib 8`` streams a
        JSON-lines event log covering compaction, band, and RMW
        activity across the three fig10 stores."""
        out = tmp_path / "fig10.jsonl"
        assert cli.main(["trace", "fig10", "--db-mib", "8",
                         "-o", str(out)]) == 0
        assert "trace:" in capsys.readouterr().err
        lines = out.read_text().splitlines()
        assert len(lines) > 1000
        seen_events, seen_stores = set(), set()
        for line in lines:
            record = json.loads(line)
            assert {"ts", "store", "event"} <= record.keys()
            seen_events.add(record["event"])
            seen_stores.add(record["store"])
        assert {"compaction.start", "compaction.end", "band.allocate",
                "drive.rmw", "flush.end", "op.put"} <= seen_events
        assert {"LevelDB", "SMRDB", "SEALDB"} <= seen_stores

    def test_trace_event_filter(self, capsys, tmp_path: pathlib.Path):
        out = tmp_path / "filtered.jsonl"
        assert cli.main(["trace", "fig13", "--db-mib", "1",
                         "--events", "compaction.end,band.allocate",
                         "-o", str(out)]) == 0
        events = {json.loads(line)["event"]
                  for line in out.read_text().splitlines()}
        assert events == {"compaction.end", "band.allocate"}

    def test_trace_unknown_event_rejected(self, capsys):
        assert cli.main(["trace", "fig13", "--events", "bogus"]) == 2
        captured = capsys.readouterr()
        assert "unknown event type" in captured.out + captured.err


class TestCliMetrics:
    def test_metrics_reports_latency_percentiles(self, capsys):
        assert cli.main(["metrics", "fig13", "--db-mib", "1"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 13" in out                 # experiment table intact
        assert "SEALDB metrics" in out
        assert "latency.put" in out
        assert "p50" in out and "p99" in out
        assert "ops.put" in out

    def test_metrics_json(self, capsys):
        assert cli.main(["metrics", "fig13", "--db-mib", "1",
                         "--json"]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert "SEALDB" in payload
        assert payload["SEALDB"]["counters"]["ops.put"] > 0
        assert payload["SEALDB"]["shard_health"] == ["healthy"]

    def test_metrics_network_includes_shard_health_and_net(self, capsys):
        """The serving experiment surfaces the net.* family and every
        store group carries its shard_health line."""
        assert cli.main(["metrics", "network", "--db-mib", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "net metrics" in out
        assert "net.requests" in out
        assert "latency.net" in out
        assert "shard_health" in out
        assert "healthy,healthy" in out          # the 2-shard fleet


class TestCliBaseline:
    def test_baseline_round_trips(self, capsys, tmp_path: pathlib.Path):
        out = tmp_path / "base.json"
        assert cli.main(["baseline", "--db-mib", "2",
                         "-o", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["experiment"] == "fig08"
        assert "fillrandom" in payload["ops_per_sec"]
        for store, ops in payload["latency_seconds"].items():
            for op, stats in ops.items():
                assert stats["p50"] <= stats["p99"] <= stats["p999"]
