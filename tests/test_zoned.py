"""Tests for the zoned drive, zone storage, and the ZoneKV store."""

import numpy as np
import pytest

from repro.baselines.zonekv import ZoneKVStore
from repro.errors import FileNotFoundStorageError, StorageError
from repro.fs.zonefs import ZoneStorage
from repro.smr.zoned import ZonedDrive, ZoneViolation
from repro.workloads.generators import KeyValueGenerator

from tests.conftest import TEST_PROFILE

KiB = 1024
MiB = 1024 * 1024


class TestZonedDrive:
    def _drive(self, capacity=MiB, zone=64 * KiB):
        return ZonedDrive(capacity, zone)

    def test_sequential_writes_ok(self):
        d = self._drive()
        d.write(0, b"a" * 1000)
        d.write(1000, b"b" * 1000)
        assert d.read(0, 1) == b"a"
        assert d.write_pointer(0) == 2000

    def test_write_not_at_wp_rejected(self):
        d = self._drive()
        d.write(0, b"a" * 1000)
        with pytest.raises(ZoneViolation):
            d.write(500, b"x")
        with pytest.raises(ZoneViolation):
            d.write(5000, b"x")

    def test_zone_boundary_crossing_rejected(self):
        d = self._drive()
        with pytest.raises(ZoneViolation):
            d.write(0, b"x" * (65 * KiB))

    def test_reset_zone_rewinds(self):
        d = self._drive()
        d.write(0, b"a" * 1000)
        d.reset_zone(0)
        assert d.write_pointer(0) == 0
        d.write(0, b"b" * 10)   # sequential again
        assert d.zone_resets == 1

    def test_independent_zone_pointers(self):
        d = self._drive()
        d.write(64 * KiB, b"z" * 100)      # zone 1 from its start
        assert d.write_pointer(0) == 0
        assert d.write_pointer(1) == 64 * KiB + 100

    def test_zone_remaining_and_empty(self):
        d = self._drive()
        assert d.zone_remaining(0) == 64 * KiB
        d.write(0, b"a" * KiB)
        assert d.zone_remaining(0) == 63 * KiB
        assert 0 not in d.empty_zones()
        assert 1 in d.empty_zones()

    def test_capacity_rounded_to_zones(self):
        d = ZonedDrive(100 * KiB, 64 * KiB)
        assert d.capacity == 64 * KiB
        assert d.num_zones == 1


class TestZoneStorage:
    def _storage(self, capacity=2 * MiB, zone=64 * KiB, reserve=2):
        drive = ZonedDrive(capacity, zone)
        return ZoneStorage(drive, wal_size=32 * KiB, meta_size=32 * KiB,
                           gc_reserve_zones=reserve)

    def test_roundtrip(self):
        s = self._storage()
        data = bytes(range(256)) * 100
        s.write_file("f", data)
        assert s.read_file("f", 0, len(data)) == data
        assert s.read_file("f", 100, 64) == data[100:164]

    def test_file_spans_zones(self):
        s = self._storage()
        big = b"\xab" * (100 * KiB)     # > one 64 KiB zone
        s.write_file("big", big)
        assert len(s.file_extents("big")) >= 2
        assert s.read_file("big", 0, len(big)) == big

    def test_delete_marks_garbage_and_resets_empty_zone(self):
        s = self._storage()
        s.write_file("a", b"x" * 64 * KiB)   # fills its zone exactly
        s.write_file("b", b"y" * 10 * KiB)   # opens the next zone
        resets_before = s.drive.zone_resets
        s.delete_file("a")
        # a fully-garbage, non-open zone resets for free
        assert s.drive.zone_resets > resets_before
        assert s.garbage_bytes() == 0

    def test_missing_file(self):
        s = self._storage()
        with pytest.raises(FileNotFoundStorageError):
            s.read_file("ghost", 0, 1)

    def test_duplicate_rejected(self):
        s = self._storage()
        s.write_file("f", b"x")
        with pytest.raises(StorageError):
            s.write_file("f", b"y")

    def test_gc_relocates_live_data(self):
        s = self._storage(capacity=1 * MiB, zone=64 * KiB, reserve=8)
        # interleave two files per zone, delete one of each pair: every
        # zone is half garbage; GC must relocate the live halves
        names = []
        for i in range(8):
            s.write_file(f"keep{i}", bytes([i + 1]) * 30 * KiB)
            s.write_file(f"dead{i}", bytes([100 + i]) * 30 * KiB)
            names.append(f"keep{i}")
        for i in range(8):
            s.delete_file(f"dead{i}")
        s.write_file("trigger", b"t" * 30 * KiB)  # forces _maybe_collect
        assert s.gc_runs > 0
        for i, name in enumerate(names):
            assert s.read_file(name, 0, 1) == bytes([i + 1])

    def test_stream_matches_write_file(self):
        s = self._storage()
        data = bytes(range(256)) * 300
        stream = s.create_stream("st", chunk_size=4 * KiB)
        for i in range(0, len(data), 777):
            stream.append(data[i : i + 777])
        assert stream.close() == len(data)
        assert s.read_file("st", 0, len(data)) == data


class TestZoneKVStore:
    def test_basic_kv(self):
        store = ZoneKVStore(TEST_PROFILE)
        store.put(b"0000000000000key", b"v")
        assert store.get(b"0000000000000key") == b"v"

    def test_random_load_and_read(self):
        store = ZoneKVStore(TEST_PROFILE)
        kv = KeyValueGenerator(TEST_PROFILE.key_size, TEST_PROFILE.value_size)
        rng = np.random.default_rng(4)
        n = 10_000
        for i in rng.integers(0, n, size=n):
            store.put(kv.scrambled_key(int(i)), kv.value(int(i)))
        store.flush()
        store.db.check_invariants()
        hits = sum(store.get(kv.scrambled_key(i)) is not None
                   for i in range(0, n, 97))
        assert hits > 50
        # the zoned stack works but pays GC traffic once zones churn
        assert store.awa() >= 1.0
