"""Tests for the set registry."""

import pytest

from repro.core.sets import SetRegistry
from repro.errors import InvariantViolation
from repro.smr.extent import Extent

KiB = 1024


def members(*specs):
    return [(name, Extent(start, start + size)) for name, start, size in specs]


class TestSetRegistry:
    def test_register(self):
        r = SetRegistry()
        info = r.register(members(("a", 0, 4 * KiB), ("b", 4 * KiB, 4 * KiB)))
        assert info.num_members == 2
        assert info.extent == Extent(0, 8 * KiB)
        assert info.size == 8 * KiB
        assert len(r) == 1

    def test_empty_set_rejected(self):
        with pytest.raises(InvariantViolation):
            SetRegistry().register([])

    def test_member_cannot_join_two_sets(self):
        r = SetRegistry()
        r.register(members(("a", 0, KiB)))
        with pytest.raises(InvariantViolation):
            r.register(members(("a", 2 * KiB, KiB)))

    def test_set_of(self):
        r = SetRegistry()
        info = r.register(members(("a", 0, KiB), ("b", KiB, KiB)))
        assert r.set_of("a") is info
        assert r.set_of("nope") is None

    def test_fade_on_last_invalidation(self):
        r = SetRegistry()
        r.register(members(("a", 0, KiB), ("b", KiB, KiB), ("c", 2 * KiB, KiB)))
        assert r.mark_invalid("a") is None
        assert r.mark_invalid("c") is None
        faded = r.mark_invalid("b")
        assert faded is not None and faded.faded
        assert faded.extent == Extent(0, 3 * KiB)
        assert len(r) == 0
        assert r.set_of("a") is None

    def test_double_invalidation_rejected(self):
        r = SetRegistry()
        r.register(members(("a", 0, KiB), ("b", KiB, KiB)))
        r.mark_invalid("a")
        with pytest.raises(InvariantViolation):
            r.mark_invalid("a")

    def test_unknown_member_rejected(self):
        with pytest.raises(InvariantViolation):
            SetRegistry().mark_invalid("ghost")

    def test_invalid_count(self):
        r = SetRegistry()
        r.register(members(("a", 0, KiB), ("b", KiB, KiB), ("c", 2 * KiB, KiB)))
        assert r.invalid_count("b") == 0
        r.mark_invalid("a")
        assert r.invalid_count("b") == 1
        assert r.invalid_count("ghost") == 0

    def test_single_member_set_fades_immediately(self):
        r = SetRegistry()
        r.register(members(("solo", 0, KiB)))
        assert r.mark_invalid("solo") is not None

    def test_statistics(self):
        r = SetRegistry()
        r.register(members(("a", 0, 2 * KiB)))
        r.register(members(("b", 2 * KiB, 4 * KiB), ("c", 6 * KiB, 2 * KiB)))
        assert r.average_set_size() == (2 * KiB + 6 * KiB) / 2
        assert r.average_set_members() == 1.5
        # stats survive fading (history, not live state)
        r.mark_invalid("a")
        assert r.average_set_size() == (2 * KiB + 6 * KiB) / 2

    def test_dead_bytes(self):
        r = SetRegistry()
        r.register(members(("a", 0, KiB), ("b", KiB, 3 * KiB)))
        assert r.dead_bytes() == 0
        r.mark_invalid("b")
        assert r.dead_bytes() == 3 * KiB

    def test_live_sets(self):
        r = SetRegistry()
        r.register(members(("a", 0, KiB)))
        r.register(members(("b", KiB, KiB)))
        assert len(r.live_sets()) == 2
