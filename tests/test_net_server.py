"""The serving layer end to end over loopback: commands, pipelining,
admission control, graceful drain, and degraded-mode parity.

Every test boots a real asyncio server (on its own thread, ephemeral
port) in front of a real store built on the tiny test profile, and
talks to it over TCP -- no mocked transports.
"""

import socket
import time

import pytest

import repro
from repro.net.client import NetClient, Overloaded, ServerError, Unavailable
from repro.net.protocol import RespParser, encode_command
from repro.net.server import ServerConfig, ServerThread
from repro.workloads.generators import KeyValueGenerator

from tests.conftest import TEST_PROFILE

pytestmark = pytest.mark.net


@pytest.fixture
def served():
    """A 2-shard sealdb store behind a live server; yields
    ``(store, handle, client)`` and drains everything afterwards."""
    store = repro.open("sealdb", profile=TEST_PROFILE, shards=2)
    handle = ServerThread(store).start()
    client = NetClient(*handle.address)
    yield store, handle, client
    client.close()
    handle.stop()
    store.close()


class TestCommands:
    def test_ping(self, served):
        _store, _handle, client = served
        assert client.ping()

    def test_set_get_del(self, served):
        _store, _handle, client = served
        client.set(b"k1", b"v1")
        assert client.get(b"k1") == b"v1"
        assert client.get(b"missing") is None
        client.delete(b"k1")
        assert client.get(b"k1") is None

    def test_set_reaches_the_store(self, served):
        store, _handle, client = served
        client.set(b"wire-key", b"wire-value")
        assert store.get(b"wire-key") == b"wire-value"

    def test_mset_is_write_batch(self, served):
        store, _handle, client = served
        client.mset([(b"a", b"1"), (b"m", b"2"), (b"z", b"3")])
        assert store.get(b"a") == b"1"
        assert store.get(b"z") == b"3"

    def test_scan_sorted_across_shards(self, served):
        _store, _handle, client = served
        for i in range(30):
            client.set(b"s%03d" % i, b"v%d" % i)
        pairs, partial = client.scan(b"s", b"t")
        assert not partial
        assert [k for k, _ in pairs] == sorted(k for k, _ in pairs)
        assert len(pairs) == 30
        assert dict(pairs)[b"s007"] == b"v7"

    def test_scan_limit(self, served):
        _store, _handle, client = served
        for i in range(20):
            client.set(b"s%03d" % i, b"v")
        pairs, _ = client.scan(b"s", b"t", limit=5)
        assert len(pairs) == 5

    def test_scan_limit_capped_by_server(self, served):
        _store, _handle, client = served
        for i in range(10):
            client.set(b"s%03d" % i, b"v")
        pairs, _ = client.scan(b"s", b"t", limit=10_000_000)
        assert len(pairs) == 10

    def test_unknown_command(self, served):
        _store, _handle, client = served
        with pytest.raises(ServerError) as exc:
            client.execute(b"FLUSHALL")
        assert exc.value.code == "ERR"

    def test_bad_arity(self, served):
        _store, _handle, client = served
        with pytest.raises(ServerError):
            client.execute(b"SET", b"only-key")

    def test_info(self, served):
        _store, _handle, client = served
        client.set(b"k", b"v")
        info = client.info()
        assert info["store"] == "SEALDBx2"
        assert info["shards"] == "2"
        assert info["shard_health"] == "healthy,healthy"
        assert int(info["net.requests"]) >= 1
        assert info["draining"] == "0"

    def test_quit_closes_connection(self, served):
        _store, _handle, client = served
        client.quit()
        with pytest.raises(Exception):
            client.ping()

    def test_protocol_error_answered_then_closed(self, served):
        _store, handle, _client = served
        raw = socket.create_connection(handle.address, timeout=5)
        raw.sendall(b"*1\r\n:5\r\n")  # array of ints: not a valid request
        parser = RespParser()
        deadline = time.monotonic() + 5
        reply = None
        while time.monotonic() < deadline:
            data = raw.recv(4096)
            if not data:
                break
            parser.feed(data)
            reply = parser.next_value()
            if reply is not None:
                break
        assert reply is not None and reply.code == "ERR"
        assert raw.recv(4096) == b""  # server closed after the error
        raw.close()


class TestPipelining:
    def test_replies_in_request_order(self, served):
        _store, _handle, client = served
        with client.pipeline() as pipe:
            for i in range(50):
                pipe.set(b"p%03d" % i, b"v%d" % i)
            for i in range(50):
                pipe.get(b"p%03d" % i)
        results = pipe.results
        assert results[:50] == ["OK"] * 50
        assert results[50:] == [b"v%d" % i for i in range(50)]

    def test_pipeline_with_tiny_window_still_completes(self):
        store = repro.open("sealdb", profile=TEST_PROFILE, shards=2)
        handle = ServerThread(
            store, ServerConfig(max_pipeline=2)).start()
        client = NetClient(*handle.address)
        try:
            results = client.execute_pipeline(
                [[b"SET", b"k%d" % i, b"v"] for i in range(40)])
            assert results == ["OK"] * 40
        finally:
            client.close()
            handle.stop()
            store.close()


class TestAdmissionControl:
    def test_overloaded_replies_when_saturated(self):
        store = repro.open("sealdb", profile=TEST_PROFILE, shards=2)
        handle = ServerThread(
            store, ServerConfig(max_inflight=1, max_pipeline=256)).start()
        client = NetClient(*handle.address)
        try:
            results = client.execute_pipeline(
                [[b"SET", b"k%d" % i, b"x" * 64] for i in range(80)])
            shed = [r for r in results if isinstance(r, Overloaded)]
            served = [r for r in results if r == "OK"]
            assert shed, "expected -OVERLOADED under max_inflight=1"
            assert served, "some requests must still be served"
            assert len(shed) + len(served) == 80
            # the server counted every shed request
            info = client.info()
            assert int(info["net.overloads"]) == len(shed)
            # control commands pass even while saturated
            assert client.ping()
        finally:
            client.close()
            handle.stop()
            store.close()

    def test_byte_budget_sheds_large_payloads(self):
        store = repro.open("sealdb", profile=TEST_PROFILE, shards=1)
        handle = ServerThread(
            store, ServerConfig(max_inflight_bytes=1024,
                                max_pipeline=64)).start()
        client = NetClient(*handle.address)
        try:
            results = client.execute_pipeline(
                [[b"SET", b"big%d" % i, b"x" * 4096] for i in range(8)])
            assert any(isinstance(r, Overloaded) for r in results)
        finally:
            client.close()
            handle.stop()
            store.close()


class TestGracefulDrain:
    def test_inflight_finish_before_close(self):
        store = repro.open("sealdb", profile=TEST_PROFILE, shards=2)
        handle = ServerThread(store).start()
        raw = socket.create_connection(handle.address, timeout=10)
        n = 60
        raw.sendall(b"".join(
            encode_command([b"SET", b"d%03d" % i, b"v%d" % i])
            for i in range(n)))
        time.sleep(0.2)  # let the server read + dispatch the burst
        handle.stop()
        parser = RespParser()
        replies = []
        while True:
            data = raw.recv(65536)
            if not data:
                break
            parser.feed(data)
            while (value := parser.next_value()) is not None:
                replies.append(value)
        raw.close()
        # every dispatched request got its reply before the close
        assert replies == ["OK"] * n
        # and the writes are durable in the (closed, flushed) store
        store.reopen()
        assert store.get(b"d000") == b"v0"
        assert store.get(b"d%03d" % (n - 1)) == b"v%d" % (n - 1)
        store.close()

    def test_listener_refuses_after_drain(self):
        store = repro.open("sealdb", profile=TEST_PROFILE, shards=1)
        handle = ServerThread(store).start()
        address = handle.address
        NetClient(*address).close()
        handle.stop()
        with pytest.raises(Exception):
            socket.create_connection(address, timeout=1).close()
        store.close()

    def test_server_owning_store_closes_it_idempotently(self):
        store = repro.open("sealdb", profile=TEST_PROFILE, shards=2)
        handle = ServerThread(store, owns_store=True).start()
        handle.stop()
        store.close()  # second close: must be a no-op
        store.close()


class TestDegradedModeOverTheWire:
    """PR 4 semantics survive the wire: a quarantined range answers a
    typed ``-UNAVAILABLE`` while every other key keeps serving."""

    def _rot_shard_table(self, shard):
        """Rot one live table of ``shard`` end to end; returns a user
        key whose only version lives in that table."""
        version = shard.db.versions.current
        meta = next(f for level in reversed(version.files) for f in level)
        keys = [ikey.user_key for ikey, _ in shard.db._table(meta)]
        victim = keys[len(keys) // 2]
        media = shard.drive.inject_media_errors(seed=1)
        for ext in shard.storage.file_extents(meta.name):
            for off in range(0, ext.length, 256):
                media.add_rot(ext.start + off)
        shard.reopen()
        return victim

    def test_quarantined_range_is_typed_error_others_serve(self):
        store = repro.open("sealdb", profile=TEST_PROFILE, shards=2)
        kv = KeyValueGenerator(TEST_PROFILE.key_size,
                               TEST_PROFILE.value_size)
        for i in range(3000):
            store.put(kv.key(i), kv.value(i))
        store.flush()
        victim = self._rot_shard_table(store.shards[0])

        handle = ServerThread(store).start()
        client = NetClient(*handle.address)
        try:
            # the affected key: typed -UNAVAILABLE, not a hang or garbage
            with pytest.raises(Unavailable):
                client.get(victim)
            # ... and again: the degraded state is sticky, not flapping
            with pytest.raises(Unavailable):
                client.get(victim)
            # the store is degraded, and INFO says so over the wire
            info = client.info()
            assert "degraded" in info["shard_health"]
            assert int(info["degraded_ranges"]) >= 1
            # every key outside the degraded ranges still serves
            ranges = store.degraded_ranges()
            assert ranges
            served = 0
            for i in range(0, 3000, 61):
                key = kv.key(i)
                if any(lo <= key <= hi for lo, hi in ranges):
                    continue
                assert client.get(key) == kv.value(i)
                served += 1
            assert served > 20
            # writes keep landing too (possibly on the healthy shard)
            client.set(b"post-quarantine", b"ok")
            assert client.get(b"post-quarantine") == b"ok"
        finally:
            client.close()
            handle.stop()
            store.close()


class TestShardedScanClose:
    """Early termination releases every per-shard iterator
    deterministically (the mid-SCAN-disconnect contract)."""

    def test_close_releases_per_shard_streams(self):
        store = repro.open("sealdb", profile=TEST_PROFILE, shards=2)
        for i in range(200):
            store.put(b"c%04d" % i, b"v")
        store.obs.arm()
        scan = store.scan(b"c", b"d")
        for _count, _pair in zip(range(5), scan):
            pass
        scan.close()
        # closing emitted each shard's ScanEvent (finally clauses ran
        # eagerly, not whenever the GC got around to it)
        shard_scans = sum(
            shard.obs.metrics.counters["ops.scan"].value
            for shard in store.shards)
        assert shard_scans == 2
        with pytest.raises(StopIteration):
            next(scan)
        store.close()

    def test_scan_context_manager_closes(self):
        store = repro.open("sealdb", profile=TEST_PROFILE, shards=2)
        for i in range(50):
            store.put(b"c%04d" % i, b"v")
        store.obs.arm()
        with store.scan(b"c", b"d") as scan:
            next(scan)
        with pytest.raises(StopIteration):
            next(scan)
        store.close()
