"""Tests for the snapshot handle API."""

from repro.harness.runner import make_store

from tests.conftest import TEST_PROFILE


class TestSnapshotHandle:
    def _store(self):
        return make_store("sealdb", TEST_PROFILE)

    def test_snapshot_pins_view(self):
        store = self._store()
        store.put(b"k", b"v1")
        snap = store.db.snapshot()
        store.put(b"k", b"v2")
        assert snap.get(b"k") == b"v1"
        assert store.get(b"k") == b"v2"

    def test_snapshot_hides_later_inserts(self):
        store = self._store()
        store.put(b"a", b"1")
        snap = store.db.snapshot()
        store.put(b"b", b"2")
        assert snap.get(b"b") is None
        assert [k for k, _v in snap.scan()] == [b"a"]

    def test_snapshot_hides_later_deletes(self):
        store = self._store()
        store.put(b"k", b"v")
        snap = store.db.snapshot()
        store.delete(b"k")
        assert snap.get(b"k") == b"v"
        assert store.get(b"k") is None

    def test_context_manager(self):
        store = self._store()
        store.put(b"k", b"v1")
        with store.db.snapshot() as snap:
            store.put(b"k", b"v2")
            assert snap.get(b"k") == b"v1"

    def test_two_snapshots_independent(self):
        store = self._store()
        store.put(b"k", b"v1")
        s1 = store.db.snapshot()
        store.put(b"k", b"v2")
        s2 = store.db.snapshot()
        store.put(b"k", b"v3")
        assert s1.get(b"k") == b"v1"
        assert s2.get(b"k") == b"v2"
        assert store.get(b"k") == b"v3"

    def test_snapshot_scan_with_range(self):
        store = self._store()
        for i in range(20):
            store.put(b"k%02d" % i, b"v%d" % i)
        snap = store.db.snapshot()
        for i in range(20, 40):
            store.put(b"k%02d" % i, b"v%d" % i)
        got = [k for k, _v in snap.scan(b"k05", b"k25")]
        assert got == [b"k%02d" % i for i in range(5, 20)]
