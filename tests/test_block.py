"""Tests for the SSTable block format."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CorruptionError
from repro.lsm.block import Block, BlockBuilder, BlockHandle
from repro.lsm.ikey import InternalKey, TYPE_VALUE, lookup_key


def ikey(user_key: bytes, seq: int = 1) -> InternalKey:
    return InternalKey(user_key, seq, TYPE_VALUE)


def build(pairs, restart_interval=16) -> Block:
    b = BlockBuilder(restart_interval)
    for k, v in pairs:
        b.add(k.encode(), v)
    return Block(b.finish())


class TestBlockHandle:
    def test_roundtrip(self):
        h = BlockHandle(12345, 678)
        decoded, pos = BlockHandle.decode(h.encode())
        assert decoded == h
        assert pos == len(h.encode())


class TestBlockBuilder:
    def test_empty_block_iterates_nothing(self):
        b = BlockBuilder()
        block = Block(b.finish())
        assert list(block) == []

    def test_size_estimate_grows(self):
        b = BlockBuilder()
        initial = b.size_estimate()
        b.add(ikey(b"aaa").encode(), b"v" * 50)
        assert b.size_estimate() > initial

    def test_invalid_restart_interval(self):
        with pytest.raises(ValueError):
            BlockBuilder(0)


class TestBlockRoundtrip:
    def test_iterate_in_order(self):
        pairs = [(ikey(b"k%03d" % i, 100 + i), b"v%d" % i) for i in range(50)]
        block = build(pairs)
        out = list(block)
        assert [k.user_key for k, _v in out] == [p[0].user_key for p in pairs]
        assert [v for _k, v in out] == [p[1] for p in pairs]

    def test_prefix_compression_shrinks(self):
        shared = [(ikey(b"commonprefix%04d" % i), b"v") for i in range(100)]
        block_shared = build(shared)
        distinct = [(ikey(bytes([65 + i % 26]) * 16 + b"%04d" % i), b"v")
                    for i in range(100)]
        block_distinct = build(distinct)
        assert block_shared.size < block_distinct.size

    def test_restart_interval_one(self):
        pairs = [(ikey(b"k%02d" % i), b"v") for i in range(10)]
        block = build(pairs, restart_interval=1)
        assert [k.user_key for k, _ in block] == [p[0].user_key for p in pairs]

    def test_seek_exact(self):
        pairs = [(ikey(b"k%03d" % i, 50), b"v%d" % i) for i in range(40)]
        block = build(pairs, restart_interval=4)
        hits = list(block.seek(lookup_key(b"k020", 1000)))
        assert hits[0][0].user_key == b"k020"
        assert len(hits) == 20

    def test_seek_between_keys(self):
        pairs = [(ikey(b"k%03d" % (2 * i), 50), b"v") for i in range(20)]
        block = build(pairs, restart_interval=4)
        hits = list(block.seek(lookup_key(b"k003", 1000)))
        assert hits[0][0].user_key == b"k004"

    def test_seek_past_end(self):
        pairs = [(ikey(b"k%03d" % i, 50), b"v") for i in range(10)]
        block = build(pairs)
        assert list(block.seek(lookup_key(b"z", 1000))) == []

    def test_seek_before_start(self):
        pairs = [(ikey(b"k%03d" % i, 50), b"v") for i in range(10)]
        block = build(pairs)
        hits = list(block.seek(lookup_key(b"a", 1000)))
        assert len(hits) == 10

    def test_seek_respects_sequence_ordering(self):
        # same user key, multiple versions: newest (higher seq) first
        pairs = [(InternalKey(b"k", 9, TYPE_VALUE), b"new"),
                 (InternalKey(b"k", 5, TYPE_VALUE), b"old")]
        block = build(pairs)
        hits = list(block.seek(lookup_key(b"k", 7)))
        assert hits[0][1] == b"old"  # seq 9 invisible at snapshot 7


class TestBlockCorruption:
    def test_crc_mismatch_detected(self):
        b = BlockBuilder()
        b.add(ikey(b"abc").encode(), b"value")
        data = bytearray(b.finish())
        data[3] ^= 0xFF
        with pytest.raises(CorruptionError):
            Block(bytes(data))

    def test_too_small_block(self):
        with pytest.raises(CorruptionError):
            Block(b"tiny")


@st.composite
def _sorted_pairs(draw):
    n = draw(st.integers(1, 60))
    user_keys = sorted({b"k%05d" % draw(st.integers(0, 99999)) for _ in range(n)})
    return [(ikey(k, 10), b"val-%d" % i) for i, k in enumerate(user_keys)]


class TestBlockProperties:
    @settings(max_examples=50)
    @given(_sorted_pairs(), st.integers(1, 8))
    def test_roundtrip_property(self, pairs, restart):
        block = build(pairs, restart_interval=restart)
        assert [(k.user_key, v) for k, v in block] == \
               [(k.user_key, v) for k, v in pairs]

    @settings(max_examples=50)
    @given(_sorted_pairs(), st.binary(min_size=1, max_size=8))
    def test_seek_matches_linear_scan(self, pairs, probe):
        block = build(pairs, restart_interval=4)
        target = lookup_key(probe, 1000)
        expected = [(k.user_key, v) for k, v in pairs
                    if not k.sort_key < target.sort_key]
        assert [(k.user_key, v) for k, v in block.seek(target)] == expected
