"""Corruption fuzzing: random byte flips must never corrupt silently.

The safety property: for any single-byte flip anywhere in a serialized
SSTable, every read either returns the original, correct data or raises
:class:`CorruptionError` -- a wrong answer is never returned silently.
(Flips in the bloom filter may only cause false positives/negatives in
``may_contain``; the read path double-checks keys, so point reads stay
correct-or-raising.)
"""

from hypothesis import given, settings, strategies as st
from repro.errors import ReproError
from repro.lsm.block import Block, BlockBuilder
from repro.lsm.ikey import InternalKey, TYPE_VALUE
from repro.lsm.options import Options
from repro.lsm.sstable import SSTableBuilder, SSTableReader
from repro.fs.ext4sim import Ext4Storage
from repro.smr.drive import ConventionalDrive

KiB = 1024


def _table_bytes(n=120):
    options = Options(block_size=512, block_restart_interval=4)
    builder = SSTableBuilder(options)
    pairs = [(InternalKey(b"key%04d" % i, 5, TYPE_VALUE), b"val-%d" % i)
             for i in range(n)]
    for ikey, value in pairs:
        builder.add(ikey, value)
    data, props = builder.finish()
    return data, props, pairs


class TestBlockFuzz:
    @settings(max_examples=120)
    @given(st.integers(0, 10_000), st.integers(1, 255))
    def test_flip_detected_or_harmless(self, position, flip):
        builder = BlockBuilder(restart_interval=4)
        expected = []
        for i in range(40):
            ikey = InternalKey(b"k%03d" % i, 9, TYPE_VALUE)
            builder.add(ikey.encode(), b"v%d" % i)
            expected.append((ikey.user_key, b"v%d" % i))
        data = bytearray(builder.finish())
        data[position % len(data)] ^= flip
        try:
            block = Block(bytes(data))
            got = [(k.user_key, v) for k, v in block]
        except ReproError:
            return  # detected: fine
        # undetected implies the flip was masked or CRC collided --
        # with crc32 over the payload a silent wrong answer means the
        # flip hit the stored CRC field itself and still matched, which
        # cannot alter the payload
        assert got == expected


class TestSSTableFuzz:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 10**9), st.integers(1, 255))
    def test_point_reads_correct_or_raise(self, position, flip):
        data, props, pairs = _table_bytes()
        corrupted = bytearray(data)
        corrupted[position % len(data)] ^= flip

        drive = ConventionalDrive(4 * 1024 * KiB)
        storage = Ext4Storage(drive, wal_size=16 * KiB, meta_size=16 * KiB,
                              block_size=512)
        storage.write_file("t.sst", bytes(corrupted))
        try:
            reader = SSTableReader(storage, "t.sst", props.file_size)
        except ReproError:
            return  # open-time detection
        for ikey, value in pairs[::13]:
            try:
                found, got = reader.get(ikey.user_key, 100)
            except ReproError:
                return  # read-time detection
            # a miss is acceptable only from a damaged bloom filter;
            # a HIT must return the true value
            if found:
                assert got == value
