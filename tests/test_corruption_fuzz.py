"""Corruption fuzzing: random byte flips must never corrupt silently.

The safety property: for any single-byte flip anywhere in a serialized
SSTable, every read either returns the original, correct data or raises
:class:`CorruptionError` -- a wrong answer is never returned silently.
(Flips in the bloom filter may only cause false positives/negatives in
``may_contain``; the read path double-checks keys, so point reads stay
correct-or-raising.)
"""

import random

import pytest
from hypothesis import given, settings, strategies as st
from repro.errors import (
    CorruptionError,
    KeyRangeUnavailable,
    MediaError,
    ReproError,
)
from repro.lsm.block import Block, BlockBuilder
from repro.lsm.ikey import InternalKey, TYPE_VALUE
from repro.lsm.options import Options
from repro.lsm.sstable import SSTableBuilder, SSTableReader
from repro.fs.ext4sim import Ext4Storage
from repro.smr.drive import ConventionalDrive

KiB = 1024


def _table_bytes(n=120):
    options = Options(block_size=512, block_restart_interval=4)
    builder = SSTableBuilder(options)
    pairs = [(InternalKey(b"key%04d" % i, 5, TYPE_VALUE), b"val-%d" % i)
             for i in range(n)]
    for ikey, value in pairs:
        builder.add(ikey, value)
    data, props = builder.finish()
    return data, props, pairs


class TestBlockFuzz:
    @settings(max_examples=120)
    @given(st.integers(0, 10_000), st.integers(1, 255))
    def test_flip_detected_or_harmless(self, position, flip):
        builder = BlockBuilder(restart_interval=4)
        expected = []
        for i in range(40):
            ikey = InternalKey(b"k%03d" % i, 9, TYPE_VALUE)
            builder.add(ikey.encode(), b"v%d" % i)
            expected.append((ikey.user_key, b"v%d" % i))
        data = bytearray(builder.finish())
        data[position % len(data)] ^= flip
        try:
            block = Block(bytes(data))
            got = [(k.user_key, v) for k, v in block]
        except ReproError:
            return  # detected: fine
        # undetected implies the flip was masked or CRC collided --
        # with crc32 over the payload a silent wrong answer means the
        # flip hit the stored CRC field itself and still matched, which
        # cannot alter the payload
        assert got == expected


class TestSSTableFuzz:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 10**9), st.integers(1, 255))
    def test_point_reads_correct_or_raise(self, position, flip):
        data, props, pairs = _table_bytes()
        corrupted = bytearray(data)
        corrupted[position % len(data)] ^= flip

        drive = ConventionalDrive(4 * 1024 * KiB)
        storage = Ext4Storage(drive, wal_size=16 * KiB, meta_size=16 * KiB,
                              block_size=512)
        storage.write_file("t.sst", bytes(corrupted))
        try:
            reader = SSTableReader(storage, "t.sst", props.file_size)
        except ReproError:
            return  # open-time detection
        for ikey, value in pairs[::13]:
            try:
                found, got = reader.get(ikey.user_key, 100)
            except ReproError:
                return  # read-time detection
            # a miss is acceptable only from a damaged bloom filter;
            # a HIT must return the true value
            if found:
                assert got == value


@pytest.mark.scrub
@pytest.mark.single_shard
class TestDBSingleBitFlip:
    """Whole-store safety: one flipped bit anywhere in a live table ->
    every point read returns the correct value or raises a typed error
    (`CorruptionError`, `MediaError`, `KeyRangeUnavailable`) -- never a
    silently wrong answer.  Each trial builds a fresh store so the
    quarantine persisted by the previous trial cannot leak in."""

    N = 500
    TRIALS = 8

    def _build(self):
        from repro.harness.runner import make_store
        from repro.workloads.generators import KeyValueGenerator

        from tests.conftest import TEST_PROFILE

        store = make_store("sealdb", TEST_PROFILE)
        kv = KeyValueGenerator(TEST_PROFILE.key_size,
                               TEST_PROFILE.value_size)
        for i in range(self.N):
            store.put(kv.key(i), kv.value(i))
        store.flush()
        return store, kv

    def test_flip_anywhere_in_live_tables(self):
        rng = random.Random(0xC0FFEE)
        raised = 0
        for _trial in range(self.TRIALS):
            store, kv = self._build()
            extents = [ext
                       for level in store.db.versions.current.files
                       for meta in level
                       for ext in store.storage.file_extents(meta.name)]
            ext = rng.choice(extents)
            offset = ext.start + rng.randrange(ext.length)
            store.drive._data[offset] ^= 1 << rng.randrange(8)
            try:
                store.reopen()  # cold caches: reads must hit the media
            except ReproError:
                raised += 1  # open-time detection is a valid outcome
                continue
            for i in range(0, self.N, 11):
                try:
                    got = store.get(kv.key(i))
                except (CorruptionError, MediaError, KeyRangeUnavailable):
                    raised += 1
                    continue
                assert got == kv.value(i), (
                    f"silent corruption at media offset {offset}")
        # across all trials at least some reads must have tripped a
        # typed error, otherwise the flips never landed anywhere live
        assert raised > 0
