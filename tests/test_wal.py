"""Tests for the write-ahead log framing and WriteBatch."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CorruptionError
from repro.lsm.wal import (
    HEADER_SIZE,
    LogWriter,
    WriteBatch,
    read_log_records,
    scan_log,
)


class _Sink:
    def __init__(self):
        self.data = bytearray()

    def __call__(self, chunk: bytes) -> None:
        self.data += chunk


class TestWriteBatch:
    def test_put_delete_roundtrip(self):
        b = WriteBatch().put(b"k1", b"v1").delete(b"k2").put(b"k3", b"v3")
        seq, decoded = WriteBatch.deserialize(b.serialize(100))
        assert seq == 100
        assert decoded.ops == b.ops

    def test_byte_size(self):
        b = WriteBatch().put(b"abc", b"defgh")
        assert b.byte_size() == 8

    def test_empty_batch(self):
        seq, decoded = WriteBatch.deserialize(WriteBatch().serialize(5))
        assert seq == 5
        assert len(decoded) == 0

    def test_truncated_raises(self):
        blob = WriteBatch().put(b"key", b"value").serialize(1)
        with pytest.raises(CorruptionError):
            WriteBatch.deserialize(blob[:-2])

    @given(st.lists(st.tuples(st.booleans(), st.binary(min_size=1, max_size=20),
                              st.binary(max_size=40)), max_size=20),
           st.integers(0, 2**40))
    def test_roundtrip_property(self, ops, seq):
        b = WriteBatch()
        for is_put, key, value in ops:
            if is_put:
                b.put(key, value)
            else:
                b.delete(key)
        seq2, decoded = WriteBatch.deserialize(b.serialize(seq))
        assert seq2 == seq
        assert decoded.ops == b.ops


class TestLogFraming:
    def _roundtrip(self, payloads, block_size=128):
        sink = _Sink()
        w = LogWriter(sink, block_size=block_size)
        for p in payloads:
            w.add_record(p)
        return list(read_log_records(bytes(sink.data), block_size=block_size))

    def test_single_record(self):
        assert self._roundtrip([b"hello"]) == [b"hello"]

    def test_record_spanning_blocks(self):
        payload = b"x" * 500  # much larger than the 128-byte block
        assert self._roundtrip([payload]) == [payload]

    def test_many_records(self):
        payloads = [b"rec%d" % i * (i + 1) for i in range(20)]
        assert self._roundtrip(payloads) == payloads

    def test_empty_record(self):
        assert self._roundtrip([b""]) == [b""]

    def test_block_tail_padding(self):
        # records sized so that a block tail < HEADER_SIZE remains
        sink = _Sink()
        w = LogWriter(sink, block_size=64)
        first = b"a" * (64 - HEADER_SIZE - 3)  # leaves 3 bytes in the block
        w.add_record(first)
        w.add_record(b"second")
        records = list(read_log_records(bytes(sink.data), block_size=64))
        assert records == [first, b"second"]

    def test_truncated_tail_tolerated(self):
        sink = _Sink()
        w = LogWriter(sink, block_size=128)
        w.add_record(b"complete")
        w.add_record(b"will-be-truncated" * 3)
        data = bytes(sink.data[: len(sink.data) - 10])
        assert list(read_log_records(data, block_size=128)) == [b"complete"]

    def test_corrupt_crc_raises_strict(self):
        sink = _Sink()
        LogWriter(sink, block_size=128).add_record(b"payload")
        data = bytearray(sink.data)
        data[HEADER_SIZE] ^= 0xFF
        with pytest.raises(CorruptionError):
            list(read_log_records(bytes(data), block_size=128, strict=True))

    def test_corrupt_crc_salvaged_by_default(self):
        # the unified damage policy: default parsing ends the log at the
        # damage instead of raising -- same records scan_log salvages
        sink = _Sink()
        w = LogWriter(sink, block_size=128)
        w.add_record(b"good")
        w.add_record(b"doomed")
        data = bytearray(sink.data)
        data[-1] ^= 0xFF  # flip the last payload byte of the second record
        records = list(read_log_records(bytes(data), block_size=128))
        payloads, _valid = scan_log(bytes(data), block_size=128)
        assert records == payloads == [b"good"]

    def test_torn_tail_raises_strict(self):
        # strict mode treats a torn tail like any other damage
        sink = _Sink()
        w = LogWriter(sink, block_size=128)
        w.add_record(b"complete")
        w.add_record(b"will-be-truncated" * 3)
        data = bytes(sink.data[: len(sink.data) - 10])
        with pytest.raises(CorruptionError):
            list(read_log_records(data, block_size=128, strict=True))

    def test_bad_block_size_rejected(self):
        with pytest.raises(ValueError):
            LogWriter(_Sink(), block_size=4)

    @settings(max_examples=50)
    @given(st.lists(st.binary(max_size=300), max_size=15),
           st.sampled_from([64, 128, 1024, 32 * 1024]))
    def test_roundtrip_property(self, payloads, block_size):
        assert self._roundtrip(payloads, block_size) == payloads
