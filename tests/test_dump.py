"""Tests for the debug dump tools."""

import pytest

from repro.errors import ReproError
from repro.harness.runner import make_store
from repro.lsm.dump import dump_levels, dump_manifest, dump_table, dump_wal
from repro.workloads.generators import KeyValueGenerator

from tests.conftest import TEST_PROFILE


def _loaded(n=4000):
    store = make_store("sealdb", TEST_PROFILE)
    kv = KeyValueGenerator(TEST_PROFILE.key_size, TEST_PROFILE.value_size)
    for i in range(n):
        store.put(kv.key(i), kv.value(i))
    return store, kv


class TestDumpTable:
    def test_lists_entries(self):
        store, kv = _loaded()
        store.flush()
        name = store.db.versions.current.files_for_get(kv.key(10))[0][1].name
        text = dump_table(store.storage, name, limit=5)
        assert name in text
        assert "total" in text
        assert "put" in text
        assert "ORDER VIOLATION" not in text

    def test_limit_truncates(self):
        store, kv = _loaded()
        store.flush()
        meta = next(f for level in store.db.versions.current.files
                    for f in level)
        text = dump_table(store.storage, meta.name, limit=2)
        assert "more" in text

    def test_missing_table(self):
        store, _kv = _loaded(100)
        with pytest.raises(ReproError):
            dump_table(store.storage, "nope.sst")


class TestDumpManifest:
    def test_shows_edits(self):
        store, _kv = _loaded()
        store.flush()
        text = dump_manifest(store.storage)
        assert "EDIT" in text
        assert "+[L0:" in text

    def test_shows_snapshot_after_rollover(self):
        # tiny meta region forces a snapshot rollover quickly
        from repro.lsm.db import DB
        from repro.core.storage import DynamicBandStorage
        from repro.smr.raw_hmsmr import RawHMSMRDrive
        from repro.lsm.options import Options

        drive = RawHMSMRDrive(8 * 1024 * 1024, guard_size=4096)
        storage = DynamicBandStorage(drive, wal_size=64 * 1024,
                                     meta_size=8 * 1024, class_unit=4096)
        db = DB(storage, Options(write_buffer_size=4096, sstable_size=4096,
                                 block_size=512, base_level_bytes=8192))
        for i in range(3000):
            db.put(b"key%08d" % i, b"v" * 20)
        text = dump_manifest(storage)
        assert "SNAPSHOT" in text


class TestDumpWal:
    def test_shows_pending_batches(self):
        store, _kv = _loaded(50)  # small: nothing flushed yet
        text = dump_wal(store.storage)
        assert "batch @ seq" in text
        assert "put" in text

    def test_empty_after_flush(self):
        store, _kv = _loaded(50)
        store.flush()
        text = dump_wal(store.storage)
        assert "0 bytes" in text


class TestDumpLevels:
    def test_tree_shape(self):
        store, kv = _loaded()
        store.flush()
        text = dump_levels(store.db)
        assert "L0" in text and "L1" in text
        assert ".sst" in text
        assert "run=" in text
