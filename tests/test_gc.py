"""Tests for the fragment garbage collector (paper future work)."""

import numpy as np

from repro.core.sealdb import SealDB
from repro.workloads.generators import KeyValueGenerator

from tests.conftest import TEST_PROFILE


def _loaded_sealdb(n=15_000, seed=3):
    store = SealDB(TEST_PROFILE)
    kv = KeyValueGenerator(TEST_PROFILE.key_size, TEST_PROFILE.value_size)
    rng = np.random.default_rng(seed)
    for i in rng.integers(0, n, size=n):
        store.put(kv.scrambled_key(int(i)), kv.value(int(i)))
    store.flush()
    return store, kv


class TestFragmentGC:
    def test_gc_reduces_fragments(self):
        store, _kv = _loaded_sealdb()
        before = sum(f.length for f in store.fragments())
        assert before > 0, "random load should leave fragments"
        moves, rewritten = store.collect_fragments(max_moves=64)
        assert moves > 0
        after = sum(f.length for f in store.fragments())
        assert after < before

    def test_gc_preserves_data(self):
        store, kv = _loaded_sealdb(n=8_000)
        snapshot = {}
        for i in range(0, 8_000, 211):
            key = kv.scrambled_key(i)
            snapshot[key] = store.get(key)
        store.collect_fragments(max_moves=64)
        store.band_manager.check_invariants()
        for key, expected in snapshot.items():
            assert store.get(key) == expected
        # scans still see a consistent ordered view
        scanned = list(store.scan(limit=200))
        keys = [k for k, _v in scanned]
        assert keys == sorted(keys)

    def test_gc_cost_is_accounted(self):
        store, _kv = _loaded_sealdb()
        device_before = store.drive.stats.bytes_written
        moves, rewritten = store.collect_fragments(max_moves=16)
        if moves:
            assert rewritten >= 0
            assert store.drive.stats.bytes_written >= device_before + rewritten

    def test_gc_drops_dead_members(self):
        store, _kv = _loaded_sealdb()
        dead_before = store.set_registry.dead_bytes()
        store.collect_fragments(max_moves=128)
        # relocation copies only live members, shedding dead weight
        assert store.set_registry.dead_bytes() <= dead_before

    def test_gc_idempotent_when_clean(self):
        store, _kv = _loaded_sealdb(n=4_000)
        store.collect_fragments(max_moves=256)
        moves_again, _ = store.collect_fragments(max_moves=256)
        # a second pass finds little or nothing left to move
        assert moves_again <= 2

    def test_store_keeps_working_after_gc(self):
        store, kv = _loaded_sealdb(n=6_000)
        store.collect_fragments(max_moves=64)
        for i in range(6_000, 9_000):
            store.put(kv.scrambled_key(i), kv.value(i))
        store.flush()
        store.band_manager.check_invariants()
        store.db.check_invariants()
        assert store.get(kv.scrambled_key(6_500)) == kv.value(6_500)
