"""Tests for manifest repair from surviving table files."""

import numpy as np

from repro.harness.runner import make_store
from repro.lsm.repair import repair
from repro.lsm.verify import verify_db
from repro.workloads.generators import KeyValueGenerator

from tests.conftest import TEST_PROFILE


def _loaded(kind="sealdb", n=5000):
    store = make_store(kind, TEST_PROFILE)
    kv = KeyValueGenerator(TEST_PROFILE.key_size, TEST_PROFILE.value_size)
    rng = np.random.default_rng(21)
    for i in rng.permutation(n):
        store.put(kv.key(int(i)), kv.value(int(i)))
    store.flush()
    return store, kv


class TestRepair:
    def test_repair_after_manifest_loss(self):
        store, kv = _loaded()
        # catastrophic manifest loss
        store.storage.reset_meta()
        db, report = repair(store.storage, store.options)
        assert report.tables_recovered > 0
        assert report.tables_dropped == 0
        for i in range(0, 5000, 173):
            assert db.get(kv.key(i)) == kv.value(i)

    def test_repaired_db_is_verifiable_and_writable(self):
        store, kv = _loaded(n=3000)
        store.storage.reset_meta()
        db, _report = repair(store.storage, store.options)
        assert verify_db(db).ok
        for i in range(3000, 4000):
            db.put(kv.key(i), kv.value(i))
        db.flush()
        db.check_invariants()
        assert db.get(kv.key(3500)) == kv.value(3500)

    def test_newest_version_wins_after_repair(self):
        store, kv = _loaded(n=2000)
        store.put(kv.key(7), b"NEWEST")
        store.flush()
        store.storage.reset_meta()
        db, _report = repair(store.storage, store.options)
        assert db.get(kv.key(7)) == b"NEWEST"

    def test_deletes_survive_repair(self):
        store, kv = _loaded(n=2000)
        store.delete(kv.key(42))
        store.flush()
        store.storage.reset_meta()
        db, _report = repair(store.storage, store.options)
        assert db.get(kv.key(42)) is None

    def test_corrupt_table_dropped(self):
        store, kv = _loaded(n=3000)
        meta = next(f for level in store.db.versions.current.files
                    for f in level)
        ext = store.storage.file_extents(meta.name)[0]
        store.drive._data[ext.start + 30] ^= 0xFF
        store.storage.reset_meta()
        db, report = repair(store.storage, store.options)
        assert report.tables_dropped >= 1
        assert meta.name in report.dropped_names
        # every drop carries a reason
        assert all(reason for _name, reason in report.dropped)
        # the rest of the database still reads
        hits = sum(db.get(kv.key(i)) is not None for i in range(0, 3000, 59))
        assert hits > 20

    def test_wal_replayed_when_intact(self):
        store, kv = _loaded(n=1000)
        store.put(b"wal-only", b"still-here")   # not flushed
        store.storage.reset_meta()
        db, _report = repair(store.storage, store.options)
        assert db.get(b"wal-only") == b"still-here"

    def test_report_render(self):
        store, _kv = _loaded(n=1000)
        store.storage.reset_meta()
        _db, report = repair(store.storage, store.options)
        text = report.render()
        assert "tables recovered" in text
