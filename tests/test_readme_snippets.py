"""The README's quickstart code must keep working verbatim."""

from repro import SealDB, DEFAULT_PROFILE, SMALL_PROFILE


def test_readme_quickstart_snippet():
    db = SealDB(SMALL_PROFILE)          # README uses DEFAULT_PROFILE;
    db.put(b"key", b"value")            # SMALL keeps the test quick
    assert db.get(b"key") == b"value"
    db.delete(b"key")

    for _k, _v in db.scan(b"a", b"z", limit=10):
        pass

    assert db.wa() >= 0.0
    assert db.awa() >= 0.0
    assert db.mwa() >= 0.0
    assert isinstance(db.band_manager.bands(), list)


def test_default_profile_constructs():
    db = SealDB(DEFAULT_PROFILE)
    db.put(b"key", b"value")
    assert db.get(b"key") == b"value"
