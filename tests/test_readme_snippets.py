"""The README's quickstart code must keep working verbatim."""

import repro
from repro import DEFAULT_PROFILE, SMALL_PROFILE


def test_readme_quickstart_snippet():
    # README opens with the default profile; SMALL keeps the test quick.
    with repro.open("sealdb", profile=SMALL_PROFILE) as db:
        db.put(b"key", b"value")
        assert db.get(b"key") == b"value"
        db.delete(b"key")

        for _k, _v in db.scan(b"a", b"z", limit=10):
            pass

        assert db.wa() >= 0.0
        assert db.awa() >= 0.0
        assert db.mwa() >= 0.0
        assert isinstance(db.band_manager.bands(), list)


def test_readme_public_api_snippet():
    db = repro.open("sealdb", profile=SMALL_PROFILE)
    db.obs.arm()
    seen = []
    db.obs.subscribe(seen.append, {"compaction.end"})
    db.put(b"key", b"value")
    text = db.obs.metrics.render()
    assert "ops.put" in text


def test_default_profile_constructs():
    db = repro.open("sealdb", profile=DEFAULT_PROFILE)
    db.put(b"key", b"value")
    assert db.get(b"key") == b"value"
