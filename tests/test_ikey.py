"""Unit tests for internal keys."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import CorruptionError
from repro.lsm.ikey import (
    InternalKey,
    MAX_SEQUENCE,
    TYPE_DELETION,
    TYPE_VALUE,
    decode_internal_key,
    lookup_key,
)


class TestInternalKey:
    def test_encode_decode_roundtrip(self):
        ikey = InternalKey(b"user-key", 12345, TYPE_VALUE)
        assert decode_internal_key(ikey.encode()) == ikey

    def test_trailer_is_eight_bytes(self):
        ikey = InternalKey(b"k", 7, TYPE_DELETION)
        assert len(ikey.encode()) == 1 + 8

    def test_empty_user_key(self):
        ikey = InternalKey(b"", 1, TYPE_VALUE)
        assert decode_internal_key(ikey.encode()) == ikey

    def test_sequence_bounds(self):
        InternalKey(b"k", MAX_SEQUENCE, TYPE_VALUE)
        with pytest.raises(ValueError):
            InternalKey(b"k", MAX_SEQUENCE + 1, TYPE_VALUE)
        with pytest.raises(ValueError):
            InternalKey(b"k", -1, TYPE_VALUE)

    def test_bad_type_rejected(self):
        with pytest.raises(ValueError):
            InternalKey(b"k", 1, 7)

    def test_too_short_decode(self):
        with pytest.raises(CorruptionError):
            decode_internal_key(b"short")


class TestOrdering:
    def test_user_key_ascending(self):
        assert InternalKey(b"a", 1, TYPE_VALUE) < InternalKey(b"b", 99, TYPE_VALUE)

    def test_same_key_sequence_descending(self):
        newer = InternalKey(b"k", 10, TYPE_VALUE)
        older = InternalKey(b"k", 5, TYPE_VALUE)
        assert newer < older          # newest sorts first

    def test_same_key_same_seq_type_descending(self):
        value = InternalKey(b"k", 5, TYPE_VALUE)
        tomb = InternalKey(b"k", 5, TYPE_DELETION)
        assert value < tomb           # TYPE_VALUE (1) before TYPE_DELETION (0)

    def test_lookup_key_sorts_before_visible_entries(self):
        seek = lookup_key(b"k", 10)
        visible = InternalKey(b"k", 10, TYPE_VALUE)
        older = InternalKey(b"k", 3, TYPE_DELETION)
        invisible = InternalKey(b"k", 11, TYPE_VALUE)
        assert invisible < seek       # newer than snapshot: skipped by seek
        assert seek <= visible <= older

    @given(st.binary(max_size=12), st.binary(max_size=12),
           st.integers(0, 1000), st.integers(0, 1000))
    def test_order_consistent_with_sort_key(self, ka, kb, sa, sb):
        a = InternalKey(ka, sa, TYPE_VALUE)
        b = InternalKey(kb, sb, TYPE_VALUE)
        assert (a < b) == (a.sort_key < b.sort_key)

    @given(st.binary(max_size=16), st.integers(0, 2**40),
           st.sampled_from([TYPE_VALUE, TYPE_DELETION]))
    def test_roundtrip_property(self, key, seq, type_):
        ikey = InternalKey(key, seq, type_)
        assert decode_internal_key(ikey.encode()) == ikey
