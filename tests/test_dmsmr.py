"""Tests for the drive-managed SMR model and track geometry."""

import pytest

from repro.smr.drive_managed import DriveManagedSMRDrive
from repro.smr.geometry import TrackGeometry

KiB = 1024
MiB = 1024 * 1024


class TestTrackGeometry:
    def test_guard_bytes(self):
        g = TrackGeometry(track_bytes=2 * MiB, shingle_overlap_tracks=2)
        assert g.guard_bytes == 4 * MiB

    def test_track_of(self):
        g = TrackGeometry(track_bytes=1024)
        assert g.track_of(0) == 0
        assert g.track_of(1023) == 0
        assert g.track_of(1024) == 1

    def test_tracks_spanned(self):
        g = TrackGeometry(track_bytes=1024)
        assert g.tracks_spanned(0, 1024) == 1
        assert g.tracks_spanned(512, 1024) == 2
        assert g.tracks_spanned(0, 0) == 0

    def test_damage_zone(self):
        g = TrackGeometry(track_bytes=1024, shingle_overlap_tracks=2)
        start, end = g.damage_zone(0, 1024)     # write fills track 0
        assert start == 1024
        assert end == 3 * 1024                  # tracks 1 and 2 destroyed

    def test_for_guard_roundtrip(self):
        g = TrackGeometry.for_guard(4 * MiB, shingle_overlap_tracks=2)
        assert g.guard_bytes == 4 * MiB

    def test_validation(self):
        with pytest.raises(ValueError):
            TrackGeometry(0)
        with pytest.raises(ValueError):
            TrackGeometry(1024, 0)


class TestDriveManagedSMR:
    def _drive(self, capacity=8 * MiB, band=256 * KiB, cache=512 * KiB):
        return DriveManagedSMRDrive(capacity, band, cache_size=cache)

    def test_sequential_writes_bypass_cache(self):
        d = self._drive()
        base = d.native_start
        d.write(base, b"a" * 64 * KiB)
        d.write(base + 64 * KiB, b"b" * 64 * KiB)
        assert d._cache_used == 0
        assert d.cleanings == 0
        assert d.read(base, 1) == b"a"

    def test_random_write_absorbed_fast(self):
        d = self._drive()
        base = d.native_start
        d.write(base, b"a" * 128 * KiB)
        t0 = d.now
        d.write(base + 16 * KiB, b"X" * 4 * KiB)   # below frontier
        absorbed = d.now - t0
        assert d._cache_used > 0
        # absorbed write is far cheaper than a band RMW would be
        assert absorbed < 0.05
        assert d.read(base + 16 * KiB, 1) == b"X"

    def test_cleaning_triggers_at_watermark(self):
        d = self._drive(cache=64 * KiB)
        base = d.native_start
        d.write(base, b"a" * 128 * KiB)
        for i in range(20):
            d.write(base + i * 4 * KiB, b"Y" * 4 * KiB)
        assert d.cleanings > 0
        assert d.stats.rmw_count > 0
        assert d._cache_used < 64 * KiB  # reset after cleaning

    def test_bimodal_latency(self):
        """Most cached writes are fast; cleaning writes stall -- the
        bimodal behaviour the paper cites as DM-SMR's flaw."""
        d = self._drive(cache=64 * KiB)
        base = d.native_start
        d.write(base, b"a" * 192 * KiB)
        latencies = []
        for i in range(40):
            t0 = d.now
            d.write(base + (i % 24) * 8 * KiB, b"Z" * 4 * KiB)
            latencies.append(d.now - t0)
        fast = sorted(latencies)[: len(latencies) // 2]
        slow = max(latencies)
        assert slow > 20 * (sum(fast) / len(fast))

    def test_cleaning_produces_write_amplification(self):
        d = self._drive(cache=64 * KiB)
        base = d.native_start
        d.write(base, b"a" * 128 * KiB)
        user = 128 * KiB
        for i in range(30):
            d.write(base + (i % 16) * 4 * KiB, b"W" * 4 * KiB)
            user += 4 * KiB
        assert d.stats.bytes_written > 1.5 * user

    def test_data_correct_after_cleaning(self):
        d = self._drive(cache=32 * KiB)
        base = d.native_start
        d.write(base, bytes(range(256)) * 256)    # 64 KiB pattern
        for i in range(12):
            d.write(base + i * 4 * KiB, bytes([i + 1]) * 4 * KiB)
        for i in range(12):
            assert d.read(base + i * 4 * KiB, 1)[0] == i + 1

    def test_huge_write_folds_directly(self):
        d = self._drive(cache=64 * KiB)
        base = d.native_start
        d.write(base, b"a" * 128 * KiB)
        d.write(base, b"B" * 100 * KiB)   # >= half the cache
        assert d.read(base, 1) == b"B"
        assert d.stats.rmw_count > 0

    def test_cache_region_not_host_addressable(self):
        d = self._drive()
        with pytest.raises(ValueError):
            d.write(0, b"nope")

    def test_trim_resets_band(self):
        d = self._drive()
        base = d.native_start
        d.write(base, b"a" * d.band_size)
        d.trim(base, d.band_size)
        d.write(base, b"b" * 4 * KiB)      # sequential again, no cache
        assert d._cache_used == 0
