"""The crash sweeper: bounded smoke runs in tier 1, full sweep marked.

Also pins, as plain regression tests, the two recovery bugs the sweep
originally surfaced:

* a torn WAL tail left garbage after the salvaged prefix, so records
  appended after recovery could land behind it and be lost by the next
  recovery (fixed: recovery rewrites the salvaged log);
* a crash between writing a new manifest snapshot and committing it
  lost the whole manifest (fixed: two-slot manifest rollover -- the old
  slot stays authoritative until the new slot holds a snapshot).
"""

import pytest

from repro import faults
from repro.faults import InjectedCrash
from repro.harness.crashsweep import (
    DEFAULT_POINTS,
    CrashSweepConfig,
    build_store,
    count_hits,
    run_one,
    sweep,
)
from repro.lsm.db import DB


def _smoke_config(kind: str) -> CrashSweepConfig:
    return CrashSweepConfig(kind=kind, ops=300, max_hits_per_point=2,
                            post_ops=20)


class TestSmokeSweep:
    @pytest.mark.parametrize("kind", ["dynamic", "ext4", "ext4-sets"])
    def test_bounded_sweep_has_no_violations(self, kind):
        report = sweep(_smoke_config(kind))
        assert report.ok, report.render()
        assert not report.missed, report.render()
        assert set(report.points_exercised) == set(DEFAULT_POINTS)

    def test_count_hits_sees_every_failpoint(self):
        counts = count_hits(_smoke_config("dynamic"))
        assert set(DEFAULT_POINTS) <= set(counts)
        assert counts[faults.WAL_APPEND] == 300  # one per operation


@pytest.mark.crashsweep
class TestFullSweep:
    """The acceptance-criteria sweep: >= 200 crash points, >= 6 points."""

    @pytest.mark.parametrize("kind", ["dynamic", "ext4", "ext4-sets"])
    def test_full_sweep(self, kind):
        report = sweep(CrashSweepConfig(kind=kind))
        assert report.ok, report.render()
        assert report.crash_points >= 200, report.render()
        assert len(report.points_exercised) >= 6, report.render()


class TestTornWalTailRegression:
    """Crash tearing a WAL record, recover, write more, recover again.

    Before the fix the first recovery salvaged the complete prefix but
    left the torn frame on the medium; the reopened writer then appended
    after it, and the second recovery stopped at the torn frame --
    silently dropping every post-crash write.
    """

    @pytest.mark.parametrize("kind", ["dynamic", "ext4"])
    def test_writes_after_salvage_survive_the_next_recovery(self, kind):
        db = build_store(kind)
        for i in range(40):
            db.put(b"k%04d" % i, b"v%04d" % i)
        faults.arm(faults.WAL_APPEND, "torn", at=1, fraction=0.5)
        with pytest.raises(InjectedCrash):
            db.put(b"torn-key", b"torn-value")
        faults.reset()

        first = DB.recover(db.storage, db.options)
        for i in range(40):
            assert first.get(b"k%04d" % i) == b"v%04d" % i
        for i in range(40, 60):
            first.put(b"k%04d" % i, b"v%04d" % i)

        second = DB.recover(first.storage, first.options)
        for i in range(60):
            assert second.get(b"k%04d" % i) == b"v%04d" % i

    def test_double_torn_crash(self):
        """Tear the tail, recover, tear it again, recover again."""
        db = build_store("ext4")
        model = {}
        for round_no in range(3):
            for i in range(20):
                key = b"r%d-k%04d" % (round_no, i)
                db.put(key, b"value")
                model[key] = b"value"
            faults.arm(faults.WAL_APPEND, "torn", at=1, fraction=0.3)
            with pytest.raises(InjectedCrash):
                db.put(b"r%d-torn" % round_no, b"x")
            faults.reset()
            db = DB.recover(db.storage, db.options)
            for key, value in model.items():
                assert db.get(key) == value


class TestManifestRolloverRegression:
    """Crash while the manifest is being compacted into a fresh slot."""

    def test_crash_during_snapshot_keeps_old_manifest(self):
        db = build_store("ext4")
        for i in range(400):
            db.put(b"key%06d" % i, b"value-%d" % i)
        db.flush()
        # crash on the next manifest append -- which we force to be the
        # rollover snapshot by resetting the meta log
        faults.arm(faults.MANIFEST_LOG, "crash", at=1)
        with pytest.raises(InjectedCrash):
            db.storage.reset_meta()
        faults.reset()
        recovered = DB.recover(db.storage, db.options)
        for i in range(0, 400, 7):
            assert recovered.get(b"key%06d" % i) == b"value-%d" % i

    def test_torn_snapshot_during_rollover_keeps_old_manifest(self):
        from repro.fs.storage import Storage

        db = build_store("ext4")
        for i in range(400):
            db.put(b"key%06d" % i, b"value-%d" % i)
        db.flush()
        # the rollover sequence: OPEN record (hit 1) lands and the slots
        # switch, then the snapshot (hit 2) tears -- the new slot never
        # becomes usable, so recovery must fall back to the old one
        faults.arm(faults.MANIFEST_LOG, "torn", at=2, fraction=0.5)
        with pytest.raises(InjectedCrash):
            db.storage.reset_meta()
            db.storage.append_meta_record(Storage.META_SNAPSHOT,
                                          db.versions.serialize())
        faults.reset()
        recovered = DB.recover(db.storage, db.options)
        for i in range(0, 400, 7):
            assert recovered.get(b"key%06d" % i) == b"value-%d" % i


class TestInFlightIndeterminacy:
    def test_in_flight_write_lands_either_way_but_never_garbled(self):
        """Sweep the WAL append of one specific put: depending on how
        much of the frame landed, the key is either fully there or fully
        absent -- never a partial value."""
        for hit in range(1, 6):
            outcome = run_one(_smoke_config("ext4"), faults.WAL_APPEND,
                              "torn", hit)
            assert outcome.crashed
            assert not outcome.violations, outcome.violations
