"""Smoke tests for every experiment module (tiny scales).

The benchmarks exercise the experiments at calibrated scale and assert
the paper's shapes; these tests only verify that each experiment runs,
returns a structurally sound result, and renders.
"""

from repro.experiments import (
    fig02_sstable_scatter,
    fig03_band_amplification,
    fig08_microbench,
    fig09_ycsb,
    fig10_compaction_detail,
    fig11_set_layout,
    fig12_write_amplification,
    fig13_fragments,
    fig14_ablation,
    table02_drive_params,
)
from repro.harness.profiles import SMALL_PROFILE

MiB = 1024 * 1024
DB = 1 * MiB


class TestFig02:
    def test_runs_and_renders(self):
        r = fig02_sstable_scatter.run(db_bytes=DB, profile=SMALL_PROFILE)
        assert r.num_compactions > 0
        assert len(r.offsets) == r.num_compactions
        assert r.max_offset > 0
        assert "Fig. 2" in fig02_sstable_scatter.render(r)


class TestFig03:
    def test_runs_and_renders(self):
        r = fig03_band_amplification.run(db_bytes=DB, profile=SMALL_PROFILE,
                                         ratios=(5, 10))
        assert len(r.points) == 2
        assert all(p.wa > 1 for p in r.points)
        assert all(p.mwa >= p.wa for p in r.points)
        assert "band" in fig03_band_amplification.render(r)


class TestTable02:
    def test_runs_and_renders(self):
        r = table02_drive_params.run()
        assert r.hdd.seq_read_mbps > r.hdd.seq_write_mbps
        assert r.smr.rand_write_iops_min <= r.smr.rand_write_iops_max
        assert "Table II" in table02_drive_params.render(r)


class TestFig08:
    def test_runs_and_renders(self):
        r = fig08_microbench.run(db_bytes=DB, read_ops=150,
                                 profile=SMALL_PROFILE)
        assert set(r.results) == {"fillseq", "fillrandom", "readseq",
                                  "readrandom"}
        for by_store in r.results.values():
            assert set(by_store) == {"LevelDB", "SMRDB", "SEALDB"}
        assert r.normalized["fillseq"]["LevelDB"] == 1.0
        assert "Fig. 8" in fig08_microbench.render(r)


class TestFig09:
    def test_runs_and_renders(self):
        r = fig09_ycsb.run(db_bytes=DB // 2, operation_count=100,
                           profile=SMALL_PROFILE, workloads=("A", "C"),
                           store_kinds=("leveldb", "sealdb"))
        assert set(r.results) == {"load", "A", "C"}
        assert r.results["A"]["SEALDB"].ops == 100
        assert "YCSB" in fig09_ycsb.render(r)


class TestFig10:
    def test_runs_and_renders(self):
        r = fig10_compaction_detail.run(db_bytes=DB, profile=SMALL_PROFILE,
                                        store_kinds=("leveldb", "sealdb"))
        assert r.details["SEALDB"].avg_set_size is not None
        assert r.details["LevelDB"].avg_set_size is None
        assert r.details["LevelDB"].summary.count > 0
        assert "Fig. 10" in fig10_compaction_detail.render(r)


class TestFig11:
    def test_runs_and_renders(self):
        r = fig11_set_layout.run(db_bytes=DB, profile=SMALL_PROFILE)
        assert r.contiguous_fraction == 1.0
        assert r.footprint > 0
        assert "Fig. 11" in fig11_set_layout.render(r)


class TestFig12:
    def test_runs_and_renders(self):
        r = fig12_write_amplification.run(db_bytes=DB, profile=SMALL_PROFILE)
        assert r.factors["SEALDB"][1] == 1.0       # AWA
        assert r.factors["LevelDB"][1] > 1.0
        assert r.mwa_reduction_vs_leveldb() > 1.0
        assert "Fig. 12" in fig12_write_amplification.render(r)


class TestFig13:
    def test_runs_and_renders(self):
        r = fig13_fragments.run(db_bytes=DB, profile=SMALL_PROFILE)
        assert r.occupied_bytes >= r.allocated_bytes
        assert 0 <= r.fragment_share < 1
        assert r.num_bands >= 1
        assert "Fig. 13" in fig13_fragments.render(r)


class TestFig14:
    def test_runs_and_renders(self):
        r = fig14_ablation.run(db_bytes=DB, read_ops=150,
                               profile=SMALL_PROFILE)
        assert set(next(iter(r.results.values()))) == \
            {"LevelDB", "LevelDB+sets", "SEALDB"}
        share = r.sets_contribution("fillrandom")
        assert 0.0 <= share <= 1.5
        assert "Fig. 14" in fig14_ablation.render(r)
