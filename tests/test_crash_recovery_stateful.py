"""Property-based crash/recovery: random ops vs a model dict.

A :class:`hypothesis.stateful.RuleBasedStateMachine` drives the engine
with puts, deletes, flushes, clean reopens, and injected crashes (plain
and torn-WAL), mirroring every acknowledged operation into a plain
dict.  After every recovery the store must agree with the model: no
acknowledged write lost, no deleted key resurrected.  The operation in
flight at a crash is never acknowledged, so the model simply doesn't
contain it.
"""

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro import faults
from repro.faults import InjectedCrash
from repro.harness.crashsweep import build_store
from repro.lsm.db import DB

KEYS = st.integers(min_value=0, max_value=40)
VALUES = st.binary(min_size=1, max_size=48)


def _key(i: int) -> bytes:
    return b"key%04d" % i


class CrashRecoveryMachine(RuleBasedStateMachine):
    @initialize(kind=st.sampled_from(["dynamic", "ext4"]))
    def setup(self, kind):
        faults.reset()
        self.db = build_store(kind)
        self.model: dict[bytes, bytes] = {}
        self.deleted: set[bytes] = set()
        self.crash_count = 0

    def teardown(self):
        faults.reset()

    @rule(k=KEYS, v=VALUES)
    def put(self, k, v):
        self.db.put(_key(k), v)
        self.model[_key(k)] = v
        self.deleted.discard(_key(k))

    @rule(k=KEYS)
    def delete(self, k):
        self.db.delete(_key(k))
        self.model.pop(_key(k), None)
        self.deleted.add(_key(k))

    @rule()
    def flush(self):
        self.db.flush()

    @rule()
    def clean_reopen(self):
        """Power loss with an intact WAL: everything acked survives."""
        self.db = DB.recover(self.db.storage, self.db.options)
        self.crash_count += 1

    @rule(k=KEYS, v=VALUES, fraction=st.floats(min_value=0.0, max_value=1.0))
    def torn_wal_crash(self, k, v, fraction):
        """Power fails mid-append: the unacked record may land or not."""
        faults.arm(faults.WAL_APPEND, "torn", at=1, fraction=fraction)
        try:
            with pytest.raises(InjectedCrash):
                self.db.put(_key(k), v)
        finally:
            faults.reset()
        # not acked: the model keeps the previous belief about _key(k),
        # but on the medium the record may have committed -- recovery
        # may legitimately surface it, so stop tracking this key
        self.model.pop(_key(k), None)
        self.deleted.discard(_key(k))
        self.db = DB.recover(self.db.storage, self.db.options)
        self.crash_count += 1

    @precondition(lambda self: self.crash_count > 0)
    @rule()
    def crash_during_flush_install(self):
        """Crash between writing the flushed table and logging the edit."""
        faults.arm(faults.MANIFEST_LOG, "crash", at=1)
        try:
            for i in range(60):  # force a flush through the failpoint
                try:
                    self.db.put(b"filler%04d" % i, b"f" * 64)
                except InjectedCrash:
                    break
            else:  # pragma: no cover - flush landed before the append
                pass
        finally:
            faults.reset()
        for i in range(60):
            self.model.pop(b"filler%04d" % i, None)
        self.db = DB.recover(self.db.storage, self.db.options)
        self.crash_count += 1

    @invariant()
    def model_agreement(self):
        if not hasattr(self, "db"):
            return
        for key, value in self.model.items():
            assert self.db.get(key) == value
        for key in self.deleted:
            assert self.db.get(key) is None


CrashRecoveryMachine.TestCase.settings = settings(
    max_examples=15, stateful_step_count=25, deadline=None)

TestCrashRecoveryStateful = CrashRecoveryMachine.TestCase


class TestDeterministicCycles:
    """Three-plus crash/recover cycles with deletes, no hypothesis."""

    @pytest.mark.parametrize("kind", ["dynamic", "ext4", "ext4-sets"])
    def test_three_torn_crash_cycles(self, kind):
        db = build_store(kind)
        model: dict[bytes, bytes] = {}
        deleted: set[bytes] = set()
        for cycle in range(4):
            for i in range(30):
                key = _key((cycle * 13 + i) % 40)
                if i % 5 == 4:
                    db.delete(key)
                    model.pop(key, None)
                    deleted.add(key)
                else:
                    value = b"c%d-i%d" % (cycle, i)
                    db.put(key, value)
                    model[key] = value
                    deleted.discard(key)
            faults.arm(faults.WAL_APPEND, "torn", at=1,
                       fraction=0.1 + 0.2 * cycle)
            with pytest.raises(InjectedCrash):
                db.put(b"doomed", b"never-acked")
            faults.reset()
            db = DB.recover(db.storage, db.options)
            for key, value in model.items():
                assert db.get(key) == value
            for key in deleted:
                if key not in model:
                    assert db.get(key) is None
