"""Tests for the bloom filter."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import CorruptionError
from repro.lsm.bloom import BloomFilter, _probes_for


class TestProbeCount:
    def test_ten_bits_gives_six_probes(self):
        assert _probes_for(10) == 6

    def test_clamped_low(self):
        assert _probes_for(1) == 1

    def test_clamped_high(self):
        assert _probes_for(100) == 30


class TestBloomFilter:
    def test_no_false_negatives(self):
        keys = [b"key%d" % i for i in range(1000)]
        f = BloomFilter.build(keys, 10)
        assert all(f.may_contain(k) for k in keys)

    def test_false_positive_rate_reasonable(self):
        keys = [b"key%d" % i for i in range(2000)]
        f = BloomFilter.build(keys, 10)
        false_positives = sum(
            f.may_contain(b"other%d" % i) for i in range(2000)
        )
        assert false_positives / 2000 < 0.05  # ~1% expected at 10 bits/key

    def test_empty_key_set(self):
        f = BloomFilter.build([], 10)
        # minimum-size bitmap exists; lookups just return False mostly
        assert isinstance(f.may_contain(b"anything"), bool)

    def test_encode_decode_roundtrip(self):
        keys = [b"a", b"b", b"c"]
        f = BloomFilter.build(keys, 10)
        g = BloomFilter.decode(f.encode())
        assert all(g.may_contain(k) for k in keys)
        assert g.encode() == f.encode()

    def test_decode_too_short_raises(self):
        with pytest.raises(CorruptionError):
            BloomFilter.decode(b"\x06")

    def test_empty_bitmap_rejected(self):
        with pytest.raises(CorruptionError):
            BloomFilter(b"", 6)

    @given(st.sets(st.binary(min_size=1, max_size=24), max_size=200),
           st.integers(min_value=4, max_value=16))
    def test_no_false_negatives_property(self, keys, bits):
        keys = list(keys)
        if not keys:
            return
        f = BloomFilter.build(keys, bits)
        assert all(f.may_contain(k) for k in keys)
