"""Tests for DB.approximate_size (GetApproximateSizes parity)."""

from repro.harness.runner import make_store
from repro.workloads.generators import KeyValueGenerator

from tests.conftest import TEST_PROFILE

N = 6000


def _loaded():
    store = make_store("sealdb", TEST_PROFILE)
    kv = KeyValueGenerator(TEST_PROFILE.key_size, TEST_PROFILE.value_size)
    for i in range(N):
        store.put(kv.key(i), kv.value(i))
    store.flush()
    return store, kv


class TestApproximateSize:
    def test_full_range_equals_total(self):
        store, _kv = _loaded()
        total = store.db.versions.current.total_bytes()
        approx = store.db.approximate_size()
        assert abs(approx - total) / total < 0.02

    def test_half_range_about_half(self):
        store, kv = _loaded()
        total = store.db.versions.current.total_bytes()
        half = store.db.approximate_size(kv.key(0), kv.key(N // 2))
        assert 0.3 * total < half < 0.7 * total

    def test_empty_range_near_zero(self):
        store, kv = _loaded()
        total = store.db.versions.current.total_bytes()
        tiny = store.db.approximate_size(kv.key(N + 100), kv.key(N + 200))
        assert tiny < total * 0.05

    def test_monotone_in_range_width(self):
        store, kv = _loaded()
        quarter = store.db.approximate_size(kv.key(0), kv.key(N // 4))
        half = store.db.approximate_size(kv.key(0), kv.key(N // 2))
        full = store.db.approximate_size(kv.key(0), kv.key(N))
        assert quarter <= half <= full
