"""Tests for key/value generation, the micro-benchmarks, and YCSB."""

import pytest

from repro.errors import ReproError
from repro.harness.runner import make_store
from repro.workloads.generators import KeyValueGenerator, scramble32
from repro.workloads.microbench import MICRO_WORKLOADS, MicroBenchmark
from repro.workloads.ycsb import YCSB_WORKLOADS, YCSBRunner, YCSBWorkload

from tests.conftest import TEST_PROFILE


class TestKeyValueGenerator:
    def test_key_width_and_order(self):
        kv = KeyValueGenerator(16, 100)
        assert len(kv.key(0)) == 16
        assert len(kv.key(123456)) == 16
        assert kv.key(1) < kv.key(2) < kv.key(100)

    def test_scrambled_key_stable_and_distinct(self):
        kv = KeyValueGenerator(16, 100)
        assert kv.scrambled_key(5) == kv.scrambled_key(5)
        keys = {kv.scrambled_key(i) for i in range(10000)}
        assert len(keys) == 10000

    def test_scramble32_bijective_window(self):
        outs = {scramble32(i) for i in range(100000)}
        assert len(outs) == 100000

    def test_value_deterministic_and_sized(self):
        kv = KeyValueGenerator(16, 37)
        assert len(kv.value(9)) == 37
        assert kv.value(9) == kv.value(9)
        assert kv.value(9) != kv.value(10)

    def test_entry_size(self):
        assert KeyValueGenerator(16, 100).entry_size == 116

    def test_validation(self):
        with pytest.raises(ValueError):
            KeyValueGenerator(4, 100)
        with pytest.raises(ValueError):
            KeyValueGenerator(16, 0)


class TestMicroBenchmark:
    def _bench(self, n=2000):
        kv = KeyValueGenerator(TEST_PROFILE.key_size, TEST_PROFILE.value_size)
        return MicroBenchmark(kv, n, seed=1)

    def test_workload_names(self):
        assert MICRO_WORKLOADS == ("fillseq", "fillrandom", "readseq",
                                   "readrandom")

    def test_fill_seq(self):
        store = make_store("sealdb", TEST_PROFILE)
        r = self._bench().fill_seq(store)
        assert r.ops == 2000
        assert r.sim_seconds > 0
        assert r.ops_per_sec > 0
        kv = self._bench().kv
        assert store.get(kv.key(0)) == kv.value(0)
        assert store.get(kv.key(1999)) == kv.value(1999)

    def test_fill_random_then_read_random(self):
        store = make_store("sealdb", TEST_PROFILE)
        bench = self._bench()
        bench.fill_random(store)
        r = bench.read_random(store, 200)
        assert r.ops == 200
        # uniform-with-duplicates load: most probed keys exist
        assert r.hits > 100

    def test_read_seq_returns_sorted(self):
        store = make_store("leveldb", TEST_PROFILE)
        bench = self._bench()
        bench.fill_seq(store)
        r = bench.read_seq(store, 500)
        assert r.ops == 500

    def test_deterministic_given_seed(self):
        a = make_store("sealdb", TEST_PROFILE)
        b = make_store("sealdb", TEST_PROFILE)
        ra = self._bench().fill_random(a)
        rb = self._bench().fill_random(b)
        assert ra.sim_seconds == rb.sim_seconds  # fully deterministic


class TestYCSBDefinitions:
    def test_all_six_defined(self):
        assert set(YCSB_WORKLOADS) == set("ABCDEF")

    def test_paper_mixes(self):
        assert YCSB_WORKLOADS["A"].read == 0.5 and YCSB_WORKLOADS["A"].update == 0.5
        assert YCSB_WORKLOADS["B"].read == 0.95
        assert YCSB_WORKLOADS["C"].read == 1.0
        assert YCSB_WORKLOADS["D"].insert == 0.05
        assert YCSB_WORKLOADS["E"].scan == 0.95
        assert YCSB_WORKLOADS["F"].rmw == 0.5

    def test_distributions(self):
        assert YCSB_WORKLOADS["A"].distribution == "zipfian"
        assert YCSB_WORKLOADS["D"].distribution == "latest"
        assert YCSB_WORKLOADS["E"].distribution == "latest"  # per the paper

    def test_proportions_validated(self):
        with pytest.raises(ReproError):
            YCSBWorkload("bad", read=0.5, update=0.6)
        with pytest.raises(ReproError):
            YCSBWorkload("bad", read=1.0, distribution="nope")


class TestYCSBRunner:
    def _runner(self, n=1500):
        kv = KeyValueGenerator(TEST_PROFILE.key_size, TEST_PROFILE.value_size)
        return YCSBRunner(kv, n, seed=4)

    def test_load_phase(self):
        store = make_store("sealdb", TEST_PROFILE)
        runner = self._runner()
        r = runner.load(store)
        assert r.ops == 1500
        assert store.get(runner.kv.scrambled_key(7)) == runner.kv.value(7)

    @pytest.mark.parametrize("name", list("ABCDEF"))
    def test_each_workload_runs(self, name):
        store = make_store("sealdb", TEST_PROFILE)
        runner = self._runner(800)
        runner.load(store)
        r = runner.run(store, YCSB_WORKLOADS[name], 150)
        assert r.ops == 150
        total = r.reads + r.updates + r.inserts + r.scans + r.rmws
        assert total == 150
        w = YCSB_WORKLOADS[name]
        if w.read > 0.4:
            assert r.reads > 0
        if w.scan > 0.4:
            assert r.scans > 0
        if w.read >= 0.5:
            assert r.read_hits / max(1, r.reads) > 0.9

    def test_inserts_extend_keyspace(self):
        store = make_store("sealdb", TEST_PROFILE)
        runner = self._runner(500)
        runner.load(store)
        r = runner.run(store, YCSB_WORKLOADS["D"], 400)
        assert r.inserts > 0
        # a key inserted during the run phase is readable
        probe = runner.kv.scrambled_key(500)  # first run-phase insert
        assert store.get(probe) is not None
