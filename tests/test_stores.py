"""Behavioural tests for the four store facades (the paper's Section IV
configurations), at tiny scale."""

import pytest

from repro.baselines.leveldb import LevelDBStore
from repro.baselines.leveldb_sets import LevelDBWithSets
from repro.baselines.smrdb import SMRDBStore
from repro.core.sealdb import SealDB
from repro.errors import ReproError
from repro.harness.metrics import contiguous_output_fraction
from repro.smr.drive import ConventionalDrive
from repro.smr.fixed_band import FixedBandSMRDrive
from repro.smr.raw_hmsmr import RawHMSMRDrive
from repro.workloads.generators import KeyValueGenerator
from repro.workloads.microbench import MicroBenchmark

from tests.conftest import TEST_PROFILE

KiB = 1024
N = 12_000


def _random_load(store, n=N):
    kv = KeyValueGenerator(TEST_PROFILE.key_size, TEST_PROFILE.value_size)
    MicroBenchmark(kv, n, seed=2).fill_random(store)
    return store


class TestConfigurations:
    def test_leveldb_stack(self):
        store = LevelDBStore(TEST_PROFILE)
        assert isinstance(store.drive, FixedBandSMRDrive)
        assert not store.options.use_sets
        assert store.options.max_levels == 7

    def test_leveldb_on_hdd(self):
        store = LevelDBStore(TEST_PROFILE, drive_kind="hdd")
        assert isinstance(store.drive, ConventionalDrive)

    def test_leveldb_bad_drive_kind(self):
        with pytest.raises(ReproError):
            LevelDBStore(TEST_PROFILE, drive_kind="ssd")

    def test_smrdb_stack(self):
        store = SMRDBStore(TEST_PROFILE)
        assert isinstance(store.drive, FixedBandSMRDrive)
        assert store.options.max_levels == 2
        assert store.options.sstable_size <= TEST_PROFILE.band_size

    def test_sealdb_stack(self):
        store = SealDB(TEST_PROFILE)
        assert isinstance(store.drive, RawHMSMRDrive)
        assert store.options.use_sets
        assert store.drive.guard_size == TEST_PROFILE.guard_size

    def test_leveldb_sets_stack(self):
        store = LevelDBWithSets(TEST_PROFILE)
        assert isinstance(store.drive, FixedBandSMRDrive)
        assert store.options.use_sets
        assert store.storage.contiguous_groups

    def test_io_scaling_applied(self):
        store = SealDB(TEST_PROFILE)
        # TEST_PROFILE sstable is 4 KiB -> io_scale 1024
        assert store.drive.profile.seq_write_bps < 1024 * 1024


class TestPaperInvariants:
    """The structural claims of the paper, verified end-to-end."""

    def test_sealdb_awa_is_one(self):
        store = _random_load(SealDB(TEST_PROFILE))
        assert store.awa() == 1.0

    def test_smrdb_awa_is_one(self):
        store = _random_load(SMRDBStore(TEST_PROFILE))
        assert store.awa() == 1.0
        assert store.drive.stats.rmw_count == 0

    def test_leveldb_awa_above_one(self):
        store = _random_load(LevelDBStore(TEST_PROFILE))
        assert store.awa() > 1.5
        assert store.drive.stats.rmw_count > 0

    def test_sets_do_not_change_wa(self):
        plain = _random_load(LevelDBStore(TEST_PROFILE))
        sealdb = _random_load(SealDB(TEST_PROFILE))
        assert sealdb.wa() == pytest.approx(plain.wa(), rel=0.01)

    def test_smrdb_lowers_wa(self):
        plain = _random_load(LevelDBStore(TEST_PROFILE))
        smrdb = _random_load(SMRDBStore(TEST_PROFILE))
        assert smrdb.wa() < plain.wa()

    def test_sealdb_outputs_contiguous_leveldb_not(self):
        sealdb = _random_load(SealDB(TEST_PROFILE))
        leveldb = _random_load(LevelDBStore(TEST_PROFILE))
        assert contiguous_output_fraction(sealdb) == 1.0
        assert contiguous_output_fraction(leveldb) < 0.5

    def test_sealdb_average_set_matches_compaction_size(self):
        store = _random_load(SealDB(TEST_PROFILE))
        from repro.harness.metrics import summarize_compactions
        summary = summarize_compactions(store.real_compactions())
        # "the average set size is equivalent to the average compaction
        # data size" (Section IV-B1) -- sets are registered per output
        # group (flushes included), so allow a loose band
        assert store.average_set_size() > 0
        assert summary.avg_input_bytes > 0

    def test_sealdb_mwa_reduction(self):
        leveldb = _random_load(LevelDBStore(TEST_PROFILE))
        sealdb = _random_load(SealDB(TEST_PROFILE))
        assert leveldb.mwa() / sealdb.mwa() > 2.0

    def test_reopen_preserves_data(self):
        store = _random_load(SealDB(TEST_PROFILE), n=4000)
        kv = KeyValueGenerator(TEST_PROFILE.key_size, TEST_PROFILE.value_size)
        probe = None
        for i in range(4000):
            if store.get(kv.scrambled_key(i)) is not None:
                probe = i
                break
        assert probe is not None
        store.reopen()
        assert store.get(kv.scrambled_key(probe)) is not None

    def test_describe(self):
        text = SealDB(TEST_PROFILE).describe()
        assert "SEALDB" in text and "RawHMSMRDrive" in text
