"""Tests for the store-analysis helpers."""

import numpy as np

from repro.harness.analysis import (
    analyze,
    bytes_by_level_flow,
    compaction_histogram,
    stats_string,
)
from repro.harness.runner import make_store
from repro.workloads.generators import KeyValueGenerator

from tests.conftest import TEST_PROFILE


def _loaded(kind="sealdb", n=8000):
    store = make_store(kind, TEST_PROFILE)
    kv = KeyValueGenerator(TEST_PROFILE.key_size, TEST_PROFILE.value_size)
    rng = np.random.default_rng(9)
    for i in rng.integers(0, n, size=n):
        store.put(kv.scrambled_key(int(i)), kv.value(int(i)))
    store.flush()
    return store


class TestAnalyze:
    def test_structure_consistent_with_version(self):
        store = _loaded()
        a = analyze(store)
        version = store.db.versions.current
        assert a.total_files == version.num_files()
        assert a.total_bytes == version.total_bytes()
        assert sum(s.files for s in a.levels) == a.total_files
        assert len(a.levels) == store.options.max_levels

    def test_amplification_matches_store(self):
        store = _loaded()
        a = analyze(store)
        assert a.wa == store.wa()
        assert a.awa == store.awa()
        assert a.mwa == store.mwa()

    def test_compaction_attribution(self):
        store = _loaded()
        a = analyze(store)
        from_counts = sum(s.compactions_from for s in a.levels)
        assert from_counts == len(store.real_compactions())

    def test_device_counters_positive(self):
        store = _loaded()
        a = analyze(store)
        assert a.device_writes > 0
        assert a.busy_time > 0
        assert a.flushes > 0


class TestStatsString:
    def test_renders(self):
        store = _loaded(n=4000)
        text = stats_string(store)
        assert "level structure" in text
        assert "WA=" in text and "MWA=" in text
        assert "block cache hit rate" in text


class TestHistogramsAndFlows:
    def test_histogram_counts_all(self):
        store = _loaded()
        hist = compaction_histogram(store, bucket_seconds=0.5)
        assert sum(hist.values()) == len(store.real_compactions())

    def test_flow_levels_adjacent(self):
        store = _loaded()
        flow = bytes_by_level_flow(store)
        assert flow
        for (src, dst), moved in flow.items():
            assert dst in (src, src + 1)
            assert moved > 0
