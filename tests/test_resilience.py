"""Media-fault resilience: latent errors, rot, retry, quarantine, scrub.

The contract under test, end to end: a single flipped bit (or an
unreadable sector) anywhere on the media results in the correct value,
a typed corruption error, or a typed ``KeyRangeUnavailable`` -- never
silently wrong data -- and the rest of the store keeps serving.
"""

import pytest

from repro import faults
from repro.errors import (
    KeyRangeUnavailable,
    MediaError,
    ShardUnavailable,
    StorageError,
)
from repro.harness.runner import make_store
from repro.lsm.verify import verify_db
from repro.resilience import MediaErrorMap
from repro.workloads.generators import KeyValueGenerator

from tests.conftest import TEST_PROFILE


def _loaded(kind="sealdb", n=3000):
    store = make_store(kind, TEST_PROFILE)
    kv = KeyValueGenerator(TEST_PROFILE.key_size, TEST_PROFILE.value_size)
    for i in range(n):
        store.put(kv.key(i), kv.value(i))
    store.flush()
    return store, kv


def _rot_table(store):
    """Rot one live table end to end; returns ``(meta, victim_key)``.

    One rotted byte per 256 on-disk bytes corrupts every block, so any
    read into the table fails.  ``victim_key`` is a user key whose only
    version lives in the sick table.  The store is reopened afterwards
    so the block cache cannot mask the on-media damage.
    """
    version = store.db.versions.current
    meta = next(f for level in reversed(version.files) for f in level)
    keys = [ikey.user_key for ikey, _ in store.db._table(meta)]
    victim = keys[len(keys) // 2]
    media = store.drive.inject_media_errors(seed=1)
    for ext in store.storage.file_extents(meta.name):
        for off in range(0, ext.length, 256):
            media.add_rot(ext.start + off)
    store.reopen()
    return meta, victim


class TestMediaErrorMap:
    def test_latent_error_raises_on_overlap(self):
        media = MediaErrorMap()
        media.add_latent_error(100, 8)
        with pytest.raises(MediaError):
            media.check_read(96, 16)
        media.check_read(0, 100)  # disjoint: fine
        assert media.read_errors == 1

    def test_rot_is_deterministic_under_seed(self):
        a, b = MediaErrorMap(seed=7), MediaErrorMap(seed=7)
        a.add_rot(50, 4)
        b.add_rot(50, 4)
        data = bytes(range(40, 70))
        assert a.corrupt(40, data) == b.corrupt(40, data)
        assert a.corrupt(40, data) != data

    def test_rot_never_identity(self):
        # the XOR mask is never zero, so a rotted byte always differs
        media = MediaErrorMap(seed=0)
        media.add_rot(0, 64)
        data = bytes(64)
        corrupted = media.corrupt(0, data)
        assert all(c != 0 for c in corrupted)

    def test_overwrite_heals(self):
        media = MediaErrorMap()
        media.add_latent_error(10, 4)
        media.add_rot(100)
        media.note_write(0, 200)
        media.check_read(0, 200)  # no raise
        assert media.corrupt(90, bytes(20)) == bytes(20)
        assert not media


@pytest.mark.single_shard
class TestDriveMediaFaults:
    def test_latent_error_fails_read(self):
        store, kv = _loaded(n=500)
        ext = store.storage.file_extents(
            next(f for level in store.db.versions.current.files
                 for f in level).name)[0]
        media = store.drive.inject_media_errors()
        media.add_latent_error(ext.start, 1)
        with pytest.raises(MediaError):
            store.drive.read(ext.start, 16)

    def test_rot_flips_read_payload(self):
        store, _kv = _loaded(n=500)
        drive = store.drive
        offsets = drive.rot_valid_bytes(count=3, seed=5)
        assert len(offsets) == 3
        for offset in offsets:
            clean = bytes(drive._data[offset : offset + 1])
            assert drive.read(offset, 1) != clean

    def test_rot_valid_bytes_deterministic(self):
        a, _ = _loaded(n=500)
        b, _ = _loaded(n=500)
        assert (a.drive.rot_valid_bytes(count=4, seed=9)
                == b.drive.rot_valid_bytes(count=4, seed=9))


@pytest.mark.single_shard
class TestRetry:
    def test_transient_corruption_clears_with_retry(self):
        store, kv = _loaded(n=1000)
        faults.arm(faults.DRIVE_READ, "corrupt", at=1, times=1)
        assert store.get(kv.key(10)) == kv.value(10)
        faults.reset()
        assert store.stats.read_retries >= 1
        assert store.stats.quarantines == 0

    def test_retry_charges_simulated_backoff(self):
        store, kv = _loaded(n=1000)
        before = store.now
        faults.arm(faults.DRIVE_READ, "corrupt", at=1, times=1)
        store.get(kv.key(10))
        faults.reset()
        assert store.now > before


@pytest.mark.single_shard
class TestQuarantine:
    def test_persistent_rot_quarantines_and_degrades(self):
        store, kv = _loaded()
        _meta, victim = _rot_table(store)
        with pytest.raises(KeyRangeUnavailable):
            store.get(victim)
        assert store.stats.quarantines >= 1
        assert store.quarantined_tables >= 1
        assert store.degraded_ranges()
        # the quarantined range stays typed-unavailable, not corrupt
        with pytest.raises(KeyRangeUnavailable):
            store.get(victim)
        # keys outside every degraded range still serve correctly
        ranges = store.degraded_ranges()
        served = 0
        for i in range(0, 3000, 17):
            key = kv.key(i)
            if any(lo <= key <= hi for lo, hi in ranges):
                continue
            assert store.get(key) == kv.value(i)
            served += 1
        assert served > 20

    def test_scan_over_degraded_range_raises_typed(self):
        store, kv = _loaded()
        meta, victim = _rot_table(store)
        lo, hi = meta.smallest.user_key, meta.largest.user_key
        with pytest.raises(KeyRangeUnavailable):
            store.get(victim)
        with pytest.raises(KeyRangeUnavailable):
            list(store.scan(lo, hi + b"\xff"))

    def test_quarantine_survives_reopen(self):
        store, kv = _loaded()
        _meta, victim = _rot_table(store)
        with pytest.raises(KeyRangeUnavailable):
            store.get(victim)
        quarantined = store.quarantined_tables
        store.reopen()  # the mark is persisted in the manifest
        assert store.quarantined_tables == quarantined
        with pytest.raises(KeyRangeUnavailable):
            store.get(victim)

    def test_repair_restores_service(self):
        store, kv = _loaded()
        _rot_table(store)
        report = store.scrub()
        assert store.quarantined_tables >= 1
        report = store.repair()
        assert report.tables_dropped >= 1
        assert store.quarantined_tables == 0
        # every key now serves (dropped-table keys read as misses or
        # older versions; nothing raises, nothing is silently wrong)
        for i in range(0, 3000, 13):
            got = store.get(kv.key(i))
            assert got is None or got == kv.value(i)


@pytest.mark.scrub
@pytest.mark.single_shard
class TestScrubber:
    def test_scrub_detects_rot_before_any_read(self):
        store, _kv = _loaded()
        store.drive.rot_valid_bytes(count=2, seed=3)
        report = store.scrub()
        assert not report.clean
        assert report.quarantined
        assert store.quarantined_tables == len(set(report.quarantined))
        # second pass skips the quarantined tables and is clean
        again = store.scrub()
        assert again.tables_checked < report.tables_checked

    def test_clean_store_scrubs_clean(self):
        store, _kv = _loaded(n=800)
        report = store.scrub()
        assert report.clean
        assert report.blocks_checked > 0
        assert report.duration > 0  # device reads cost simulated time

    def test_scrub_emits_event_and_metrics(self):
        store, _kv = _loaded(n=800)
        events = []
        store.obs.subscribe(events.append, ["scrub.pass"])
        store.drive.rot_valid_bytes(count=1, seed=2)
        store.scrub()
        assert [e.TYPE for e in events] == ["scrub.pass"]
        metrics = store.obs.metrics
        assert metrics.counter("scrub.passes").value == 1
        assert metrics.counter("scrub.blocks").value > 0
        assert metrics.counter("scrub.errors").value >= 1
        assert metrics.counter("resilience.quarantine_events").value >= 1

    def test_idle_path_scrub_interval(self):
        store = make_store("sealdb", TEST_PROFILE)
        store.options.scrub_interval_flushes = 1
        events = []
        store.obs.subscribe(events.append, ["scrub.pass"])
        kv = KeyValueGenerator(TEST_PROFILE.key_size,
                               TEST_PROFILE.value_size)
        for i in range(800):
            store.put(kv.key(i), kv.value(i))
        store.flush()
        assert events, "flushes should have triggered idle-path scrubs"


@pytest.mark.single_shard
class TestVerifyExtensions:
    def test_verify_reports_quarantined_table(self):
        store, kv = _loaded()
        _meta, victim = _rot_table(store)
        with pytest.raises(KeyRangeUnavailable):
            store.get(victim)
        report = verify_db(store.db)
        assert not report.ok
        assert any("quarantined" in p for p in report.problems)

    def test_verify_walks_wal_damage(self):
        store, _kv = _loaded(n=300)
        store.put(b"unflushed", b"value")  # leaves a live WAL record
        wal = store.storage.wal
        # flip the last byte of the live WAL region
        store.drive._data[wal.tail - 1] ^= 0xFF
        report = verify_db(store.db)
        assert any(p.startswith("wal:") for p in report.problems)

    def test_verify_walks_manifest_slots(self):
        store, _kv = _loaded(n=300)
        region = store.storage.meta_region
        store.drive._data[region.tail - 1] ^= 0xFF
        report = verify_db(store.db)
        assert any(p.startswith("manifest slot") for p in report.problems)

    @pytest.mark.scrub
    def test_verify_scrub_flag_folds_media_findings(self):
        store, _kv = _loaded()
        store.drive.rot_valid_bytes(count=1, seed=4)
        report = verify_db(store.db, scrub=True)
        assert any(p.startswith("scrub:") for p in report.problems)


@pytest.mark.single_shard
class TestRepairEvents:
    def test_dropped_table_emits_event_with_reason(self):
        from repro.lsm.repair import repair

        store, _kv = _loaded()
        meta = next(f for level in store.db.versions.current.files
                    for f in level)
        ext = store.storage.file_extents(meta.name)[0]
        store.drive._data[ext.start + 40] ^= 0xFF
        store.storage.reset_meta()
        events = []
        store.obs.arm()
        store.obs.subscribe(events.append, ["repair.drop"])
        _db, report = repair(store.storage, store.options, obs=store.obs)
        assert report.tables_dropped >= 1
        assert len(events) == report.tables_dropped
        assert all(e.reason for e in events)
        assert store.obs.metrics.counter("repair.drops").value >= 1


@pytest.mark.shards
class TestShardFaultIsolation:
    def _sharded(self, n=3000):
        import repro

        store = repro.open("sealdb", profile=TEST_PROFILE, shards=2)
        kv = KeyValueGenerator(TEST_PROFILE.key_size,
                               TEST_PROFILE.value_size)
        for i in range(n):
            store.put(kv.key(i), kv.value(i))
        store.flush()
        return store, kv

    @pytest.mark.scrub
    def test_quarantine_end_to_end(self):
        """The acceptance scenario: persistent bit-rot in one shard of a
        two-shard store degrades only its key range; ``reopen()`` (which
        routes through repair) restores full service."""
        store, kv = self._sharded()
        sick = store.shards[0]
        sick.drive.rot_valid_bytes(count=3, seed=11)
        report = store.scrub()
        assert report.quarantined
        assert store.shard_health() == ["degraded", "healthy"]
        # reads inside the degraded ranges raise typed; all other keys
        # (including the whole sibling shard) serve correct values
        ranges = store.degraded_ranges()
        assert ranges
        unavailable = served = 0
        for i in range(0, 3000, 7):
            key = kv.key(i)
            try:
                got = store.get(key)
            except KeyRangeUnavailable:
                # only keys inside a degraded range may be refused
                assert any(lo <= key <= hi for lo, hi in ranges)
                unavailable += 1
            else:
                # a degraded-range key may still be served by a newer
                # healthy table -- but never with wrong data
                assert got == kv.value(i)
                served += 1
        assert unavailable and served
        # `repro metrics` surface: the merged gauge reports the fleet sum
        merged = store.merged_metrics()
        assert (merged.gauge("resilience.quarantined_tables").value
                == store.quarantined_tables > 0)
        # recovery: reopen() runs the repair path on quarantined shards
        store.reopen()
        assert store.quarantined_tables == 0
        assert store.shard_health() == ["healthy", "healthy"]
        for i in range(0, 3000, 7):
            got = store.get(kv.key(i))  # never raises now
            assert got is None or got == kv.value(i)

    def test_failed_shard_isolated(self, monkeypatch):
        store, kv = self._sharded(n=1000)
        # find keys on each shard
        on0 = next(kv.key(i) for i in range(1000)
                   if store.router.shard_of(kv.key(i)) == 0)
        on1 = next(kv.key(i) for i in range(1000)
                   if store.router.shard_of(kv.key(i)) == 1)
        monkeypatch.setattr(store.shards[0], "get",
                            lambda key: (_ for _ in ()).throw(
                                StorageError("drive detached")))
        with pytest.raises(ShardUnavailable):
            store.get(on0)
        assert store.shard_health()[0] == "failed"
        # sticky: the next op is refused without touching the shard
        with pytest.raises(ShardUnavailable):
            store.put(on0, b"x")
        # the sibling keeps serving
        assert store.get(on1) is not None

    def test_scan_skips_failed_shard_and_flags_partial(self, monkeypatch):
        store, kv = self._sharded(n=1000)
        scan = store.scan()
        assert not scan.partial
        total = sum(1 for _ in scan)
        assert total == 1000
        monkeypatch.setattr(
            store.shards[0], "get",
            lambda key: (_ for _ in ()).throw(StorageError("gone")))
        try:
            store.get(next(kv.key(i) for i in range(1000)
                           if store.router.shard_of(kv.key(i)) == 0))
        except ShardUnavailable:
            pass
        partial = store.scan()
        got = sum(1 for _ in partial)
        assert partial.partial
        assert partial.skipped_shards == [0]
        assert 0 < got < total

    def test_write_batch_refused_on_failed_shard(self):
        import repro

        store, kv = self._sharded(n=200)
        store._failed.add(0)
        batch = repro.WriteBatch()
        for i in range(50):
            batch.put(kv.key(i), b"new")
        with pytest.raises(ShardUnavailable):
            store.write_batch(batch)


@pytest.mark.scrub
class TestReadFaultCrashSweep:
    """Crash mid-read at every read failpoint: recovery must hold."""

    def test_bounded_read_fault_sweep(self):
        from repro.harness.crashsweep import (
            READ_ACTIONS,
            READ_POINTS,
            CrashSweepConfig,
            sweep,
        )

        config = CrashSweepConfig(kind="dynamic", ops=300,
                                  max_hits_per_point=2, post_ops=20,
                                  points=READ_POINTS, actions=READ_ACTIONS)
        report = sweep(config)
        assert report.ok, report.render()
        assert set(report.points_exercised) == set(READ_POINTS)


class TestCLI:
    @pytest.mark.scrub
    def test_scrub_command_detects_injected_rot(self, capsys):
        from repro.cli import main

        code = main(["scrub", "--kind", "sealdb", "--ops", "800",
                     "--inject-rot", "2"])
        out = capsys.readouterr().out
        assert code == 1
        assert "BAD TABLE" in out
        assert "quarantined" in out

    def test_scrub_command_clean_store(self, capsys):
        from repro.cli import main

        code = main(["scrub", "--kind", "sealdb", "--ops", "500"])
        assert code == 0
        assert "CLEAN" in capsys.readouterr().out

    @pytest.mark.scrub
    def test_verify_command_with_scrub_flag(self, capsys):
        from repro.cli import main

        code = main(["verify", "--kind", "sealdb", "--ops", "800",
                     "--inject-rot", "1", "--scrub"])
        out = capsys.readouterr().out
        assert code == 1
        assert "scrub:" in out

    def test_verify_command_clean(self, capsys):
        from repro.cli import main

        code = main(["verify", "--kind", "sealdb", "--ops", "500"])
        assert code == 0
        assert "OK" in capsys.readouterr().out


@pytest.mark.single_shard
class TestZeroCost:
    def test_disarmed_media_map_is_one_attribute_check(self):
        store, kv = _loaded(n=500)
        assert store.drive._media is None  # never allocated until injected
        assert store.drive.media_errors is None

    def test_quarantine_bit_is_wire_invisible_when_healthy(self):
        # healthy manifests must serialize bit-identically to pre-
        # resilience builds: the flag rides a high bit of `run` that is
        # zero for every healthy file
        from repro.lsm.version import _QUARANTINE_BIT

        store, _kv = _loaded(n=500)
        payload = store.db.versions.serialize()
        restored = type(store.db.versions).deserialize(payload)
        for level in restored.current.files:
            for meta in level:
                assert not meta.quarantined
                assert meta.run < _QUARANTINE_BIT
