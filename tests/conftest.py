"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro import faults
from repro.harness.profiles import ScaleProfile

KiB = 1024
MiB = 1024 * 1024

#: tiny profile so unit/integration tests run in milliseconds
TEST_PROFILE = ScaleProfile(
    name="test",
    capacity=8 * MiB,
    sstable_size=4 * KiB,
    band_size=40 * KiB,
    guard_size=4 * KiB,
    block_size=512,
    value_size=32,
    wal_region=40 * KiB,
    meta_region=40 * KiB,
    block_cache_bytes=64 * KiB,
)


@pytest.fixture
def profile() -> ScaleProfile:
    return TEST_PROFILE


@pytest.fixture(autouse=True)
def _clean_failpoints():
    """The failpoint registry is process-global; isolate every test."""
    faults.reset()
    yield
    faults.reset()


def pytest_addoption(parser):
    parser.addoption(
        "--run-crashsweep", action="store_true", default=False,
        help="run the full crash-sweep tests (marker: crashsweep)")


#: test modules that legitimately reach into single-store internals
#: (``store.db``, drive geometry, experiment table shapes, verify /
#: repair / dump walking one engine).  The ``REPRO_DEFAULT_SHARDS=2``
#: CI matrix entry skips these (marker: single_shard) so that any
#: *other* test failing under forced sharding is a newly introduced
#: single-shard assumption.
SINGLE_SHARD_MODULES = frozenset({
    "test_analysis",
    "test_approximate_size",
    "test_cli",
    "test_compact_range",
    "test_compare",
    "test_dump",
    "test_edge_cases",
    "test_examples",
    "test_experiments",
    "test_harness",
    "test_integration_scenarios",
    "test_microbench_extra",
    "test_obs",
    "test_open_registry",
    "test_readme_snippets",
    "test_repair",
    "test_snapshot",
    "test_trace",
    "test_verify",
})


def pytest_collection_modifyitems(config, items):
    from repro.registry import default_shards

    if default_shards() > 1:
        skip_single = pytest.mark.skip(
            reason="assumes single-store internals "
                   "(REPRO_DEFAULT_SHARDS > 1)")
        for item in items:
            module = item.module.__name__.rpartition(".")[2]
            if "single_shard" in item.keywords or module in SINGLE_SHARD_MODULES:
                item.add_marker(skip_single)
    if config.getoption("--run-crashsweep"):
        return
    skip = pytest.mark.skip(reason="needs --run-crashsweep")
    for item in items:
        if "crashsweep" in item.keywords:
            item.add_marker(skip)
