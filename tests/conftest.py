"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro import faults
from repro.harness.profiles import ScaleProfile

KiB = 1024
MiB = 1024 * 1024

#: tiny profile so unit/integration tests run in milliseconds
TEST_PROFILE = ScaleProfile(
    name="test",
    capacity=8 * MiB,
    sstable_size=4 * KiB,
    band_size=40 * KiB,
    guard_size=4 * KiB,
    block_size=512,
    value_size=32,
    wal_region=40 * KiB,
    meta_region=40 * KiB,
    block_cache_bytes=64 * KiB,
)


@pytest.fixture
def profile() -> ScaleProfile:
    return TEST_PROFILE


@pytest.fixture(autouse=True)
def _clean_failpoints():
    """The failpoint registry is process-global; isolate every test."""
    faults.reset()
    yield
    faults.reset()


def pytest_addoption(parser):
    parser.addoption(
        "--run-crashsweep", action="store_true", default=False,
        help="run the full crash-sweep tests (marker: crashsweep)")


def pytest_collection_modifyitems(config, items):
    if config.getoption("--run-crashsweep"):
        return
    skip = pytest.mark.skip(reason="needs --run-crashsweep")
    for item in items:
        if "crashsweep" in item.keywords:
            item.add_marker(skip)
