"""Stateful (model-based) property tests with hypothesis.

Two rule machines:

* ``DynamicBandMachine`` drives the dynamic-band manager with random
  allocate/write/free sequences and checks, after every step, that the
  manager's invariants hold and the drive never saw an unsafe write.
* ``KVStateMachine`` drives a SEALDB instance against a plain dict and
  checks get/scan equivalence, including across crash-recovery.
"""

from hypothesis import settings
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    invariant,
    rule,
)
import hypothesis.strategies as st

from repro.core.dynamic_band import DynamicBandManager
from repro.core.sealdb import SealDB
from repro.errors import AllocationError
from repro.harness.profiles import ScaleProfile
from repro.smr.raw_hmsmr import RawHMSMRDrive

KiB = 1024
MiB = 1024 * 1024


class DynamicBandMachine(RuleBasedStateMachine):
    """Random allocate/free traffic against the band manager."""

    regions = Bundle("regions")

    def __init__(self):
        super().__init__()
        self.drive = RawHMSMRDrive(2 * MiB, guard_size=4 * KiB)
        self.manager = DynamicBandManager(self.drive, 0, class_unit=4 * KiB)
        self.fill = 0

    @rule(target=regions, size_units=st.integers(1, 10))
    def allocate(self, size_units):
        size = size_units * 4 * KiB
        try:
            offset = self.manager.allocate(size)
        except AllocationError:
            return None
        self.fill = (self.fill + 1) % 251
        self.drive.write(offset, bytes([self.fill + 1]) * size)
        return (offset, size, self.fill + 1)

    @rule(region=regions)
    def free(self, region):
        if region is None:
            return
        offset, size, _fill = region
        if not self.manager.allocated.contains_range(offset, offset + size):
            return  # already freed in a previous rule application
        self.manager.free(offset, size)

    @invariant()
    def invariants_hold(self):
        self.manager.check_invariants()

    @invariant()
    def free_space_is_really_free(self):
        for region in self.manager.free_list.regions():
            assert self.drive.valid.covered_bytes(region.start, region.end) == 0


DynamicBandMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None)
TestDynamicBandStateful = DynamicBandMachine.TestCase


_TINY = ScaleProfile(
    name="stateful",
    capacity=8 * MiB,
    sstable_size=2 * KiB,
    band_size=20 * KiB,
    guard_size=2 * KiB,
    block_size=512,
    value_size=24,
    wal_region=20 * KiB,
    meta_region=40 * KiB,
    block_cache_bytes=32 * KiB,
)


class KVStateMachine(RuleBasedStateMachine):
    """SEALDB vs dict, with crash-recovery thrown in."""

    def __init__(self):
        super().__init__()
        self.store = SealDB(_TINY)
        self.model: dict[bytes, bytes] = {}

    def _key(self, i: int) -> bytes:
        return b"k%015d" % i

    @rule(i=st.integers(0, 60), v=st.binary(min_size=1, max_size=40))
    def put(self, i, v):
        self.store.put(self._key(i), v)
        self.model[self._key(i)] = v

    @rule(i=st.integers(0, 60))
    def delete(self, i):
        self.store.delete(self._key(i))
        self.model.pop(self._key(i), None)

    @rule(i=st.integers(0, 60))
    def get_matches(self, i):
        assert self.store.get(self._key(i)) == self.model.get(self._key(i))

    @rule()
    def flush(self):
        self.store.flush()

    @rule()
    def crash_and_recover(self):
        self.store.reopen()

    @rule(lo=st.integers(0, 60), n=st.integers(1, 10))
    def scan_matches(self, lo, n):
        got = list(self.store.scan(self._key(lo), limit=n))
        expected = sorted((k, v) for k, v in self.model.items()
                          if k >= self._key(lo))[:n]
        assert got == expected

    @invariant()
    def tree_invariants(self):
        self.store.db.check_invariants()


KVStateMachine.TestCase.settings = settings(
    max_examples=12, stateful_step_count=30, deadline=None)
TestKVStateful = KVStateMachine.TestCase
