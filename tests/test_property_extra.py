"""Additional property tests: version overlap queries and zone GC churn."""

from hypothesis import given, settings, strategies as st

from repro.errors import AllocationError
from repro.fs.zonefs import ZoneStorage
from repro.lsm.ikey import InternalKey, TYPE_VALUE
from repro.lsm.version import FileMetaData, Version, VersionEdit
from repro.smr.zoned import ZonedDrive

KiB = 1024
MiB = 1024 * 1024


def ik(k: bytes) -> InternalKey:
    return InternalKey(k, 1, TYPE_VALUE)


@st.composite
def _disjoint_level(draw):
    """A sorted level: disjoint files over two-byte keys."""
    bounds = sorted(draw(st.sets(st.integers(0, 200), min_size=2,
                                 max_size=30)))
    files = []
    for number, (lo, hi) in enumerate(zip(bounds[:-1], bounds[1:]), start=1):
        files.append(FileMetaData(number, 10,
                                  ik(b"%03d" % lo), ik(b"%03d" % (hi - 1))))
    return files


class TestVersionOverlapProperty:
    @settings(max_examples=80)
    @given(_disjoint_level(), st.integers(0, 210), st.integers(0, 210))
    def test_bisect_matches_linear_scan(self, files, a, b):
        begin, end = b"%03d" % min(a, b), b"%03d" % max(a, b)
        version = Version(3)
        edit = VersionEdit()
        for f in files:
            edit.add_file(1, f)
        version = version.apply(edit)
        got = {f.number for f in version.overlapping_files(1, begin, end)}
        expected = {f.number for f in files
                    if f.overlaps_user_range(begin, end)}
        assert got == expected

    @settings(max_examples=40)
    @given(_disjoint_level(), st.integers(0, 210))
    def test_files_for_get_finds_the_containing_file(self, files, probe):
        key = b"%03d" % probe
        version = Version(3)
        edit = VersionEdit()
        for f in files:
            edit.add_file(1, f)
        version = version.apply(edit)
        hits = [f for _lvl, f in version.files_for_get(key)]
        containing = [f for f in files
                      if f.smallest.user_key <= key <= f.largest.user_key]
        assert {f.number for f in hits} == {f.number for f in containing}
        assert len(hits) <= 1   # disjoint level: at most one candidate


class TestZoneChurnProperty:
    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.tuples(st.integers(1, 40), st.booleans()),
                    min_size=5, max_size=60))
    def test_churn_never_corrupts_live_files(self, ops):
        """Random create/delete churn through zone GC keeps every live
        file byte-identical and the zone accounting consistent."""
        drive = ZonedDrive(2 * MiB, 64 * KiB)
        storage = ZoneStorage(drive, wal_size=32 * KiB, meta_size=32 * KiB,
                              gc_reserve_zones=3)
        live: dict[str, bytes] = {}
        counter = 0
        for size_kib, also_delete in ops:
            name = f"f{counter}"
            counter += 1
            payload = bytes([counter % 251 + 1]) * (size_kib * KiB)
            try:
                storage.write_file(name, payload)
            except AllocationError:
                continue
            live[name] = payload
            if also_delete and live:
                victim = next(iter(live))
                storage.delete_file(victim)
                del live[victim]
        for name, payload in live.items():
            assert storage.read_file(name, 0, len(payload)) == payload
        # accounting: live bytes equals what we believe is alive
        assert storage.live_bytes() == sum(len(p) for p in live.values())
