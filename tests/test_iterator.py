"""Tests for merging iterators and MVCC visibility."""

from hypothesis import given, strategies as st

from repro.lsm.ikey import InternalKey, TYPE_DELETION, TYPE_VALUE
from repro.lsm.iterator import DBIterator, merge_iterators, take_range


def ik(k: bytes, seq: int, type_: int = TYPE_VALUE) -> InternalKey:
    return InternalKey(k, seq, type_)


class TestMergeIterators:
    def test_empty_sources(self):
        assert list(merge_iterators([])) == []
        assert list(merge_iterators([iter([]), iter([])])) == []

    def test_two_way_merge(self):
        a = [(ik(b"a", 1), b"1"), (ik(b"c", 3), b"3")]
        b = [(ik(b"b", 2), b"2"), (ik(b"d", 4), b"4")]
        out = [k.user_key for k, _v in merge_iterators([iter(a), iter(b)])]
        assert out == [b"a", b"b", b"c", b"d"]

    def test_same_user_key_ordered_by_sequence_desc(self):
        a = [(ik(b"k", 5), b"old")]
        b = [(ik(b"k", 9), b"new")]
        out = list(merge_iterators([iter(a), iter(b)]))
        assert [v for _k, v in out] == [b"new", b"old"]

    @given(st.lists(st.lists(st.tuples(st.integers(0, 50), st.integers(1, 1000)),
                             max_size=20), max_size=5))
    def test_merge_is_sorted_property(self, raw_sources):
        seqs = set()
        sources = []
        for src in raw_sources:
            entries = []
            for key_i, seq in src:
                if seq in seqs:
                    continue  # sequence numbers are globally unique
                seqs.add(seq)
                entries.append((ik(b"k%02d" % key_i, seq), b"v"))
            entries.sort(key=lambda e: e[0].sort_key)
            sources.append(iter(entries))
        merged = [k.sort_key for k, _v in merge_iterators(sources)]
        assert merged == sorted(merged)


class TestDBIterator:
    def test_skips_newer_than_snapshot(self):
        merged = iter([(ik(b"k", 9), b"new"), (ik(b"k", 3), b"old")])
        out = list(DBIterator(merged, snapshot_sequence=5))
        assert out == [(b"k", b"old")]

    def test_only_newest_visible_version(self):
        merged = iter([(ik(b"k", 9), b"new"), (ik(b"k", 3), b"old")])
        out = list(DBIterator(merged, snapshot_sequence=100))
        assert out == [(b"k", b"new")]

    def test_tombstone_suppresses_key(self):
        merged = iter([
            (ik(b"a", 5), b"va"),
            (ik(b"b", 9, TYPE_DELETION), b""),
            (ik(b"b", 3), b"vb"),
            (ik(b"c", 2), b"vc"),
        ])
        out = list(DBIterator(merged, snapshot_sequence=100))
        assert out == [(b"a", b"va"), (b"c", b"vc")]

    def test_tombstone_older_than_snapshot_reveals_value(self):
        merged = iter([(ik(b"b", 9, TYPE_DELETION), b""), (ik(b"b", 3), b"vb")])
        out = list(DBIterator(merged, snapshot_sequence=5))
        assert out == [(b"b", b"vb")]


class TestTakeRange:
    def _pairs(self):
        return [(b"a", b"1"), (b"c", b"2"), (b"e", b"3"), (b"g", b"4")]

    def test_unbounded(self):
        assert list(take_range(self._pairs(), None, None)) == self._pairs()

    def test_start_inclusive(self):
        assert [k for k, _ in take_range(self._pairs(), b"c", None)] == \
            [b"c", b"e", b"g"]

    def test_end_exclusive(self):
        assert [k for k, _ in take_range(self._pairs(), None, b"e")] == [b"a", b"c"]

    def test_limit(self):
        assert len(list(take_range(self._pairs(), None, None, limit=2))) == 2

    def test_empty_window(self):
        assert list(take_range(self._pairs(), b"x", b"z")) == []
