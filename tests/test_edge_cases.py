"""Engine edge cases: oversized values, extreme keys, heavy versioning."""

import pytest

from repro.harness.runner import make_store
from repro.lsm.wal import WriteBatch

from tests.conftest import TEST_PROFILE

KiB = 1024


def _store(kind="sealdb"):
    return make_store(kind, TEST_PROFILE)


class TestExtremeValues:
    def test_value_larger_than_block(self):
        store = _store()
        big = bytes(range(256)) * 8     # 2 KiB > 512 B block
        store.put(b"big", big)
        store.flush()
        assert store.get(b"big") == big

    def test_value_larger_than_sstable_target(self):
        store = _store()
        huge = b"\x5a" * (12 * KiB)     # 3x the 4 KiB table target
        store.put(b"huge", huge)
        store.put(b"other", b"x")
        store.flush()
        assert store.get(b"huge") == huge
        assert store.get(b"other") == b"x"

    def test_many_large_values_compact(self):
        store = _store()
        for i in range(40):
            store.put(b"k%02d" % i, bytes([i]) * (3 * KiB))
        store.flush()
        store.db.check_invariants()
        for i in range(0, 40, 7):
            assert store.get(b"k%02d" % i) == bytes([i]) * (3 * KiB)

    def test_empty_value_everywhere(self):
        store = _store()
        for i in range(300):
            store.put(b"e%04d" % i, b"")
        store.flush()
        assert store.get(b"e0000") == b""
        assert store.get(b"e0299") == b""
        assert sum(1 for _ in store.scan(b"e")) == 300


class TestExtremeKeys:
    def test_binary_keys_with_high_bytes(self):
        store = _store()
        keys = [bytes([0xFF, i]) for i in range(50)] + [b"\xff\xff\xff"]
        for k in keys:
            store.put(k, b"v" + k)
        store.flush()
        for k in keys:
            assert store.get(k) == b"v" + k
        scanned = [k for k, _v in store.scan(b"\xff")]
        assert scanned == sorted(keys)

    def test_single_byte_and_long_keys(self):
        store = _store()
        long_key = b"L" * 300
        store.put(b"a", b"1")
        store.put(long_key, b"2")
        store.flush()
        assert store.get(b"a") == b"1"
        assert store.get(long_key) == b"2"

    def test_adjacent_keys_differ_by_one_bit(self):
        store = _store()
        store.put(b"key\x00", b"zero")
        store.put(b"key\x01", b"one")
        store.flush()
        assert store.get(b"key\x00") == b"zero"
        assert store.get(b"key\x01") == b"one"


class TestHeavyVersioning:
    def test_thousand_overwrites_of_one_key(self):
        store = _store()
        for i in range(1000):
            store.put(b"hot", b"v%d" % i)
        store.flush()
        assert store.get(b"hot") == b"v999"
        assert [kv for kv in store.scan(b"hot", b"hou")] == [(b"hot", b"v999")]

    def test_put_delete_cycles(self):
        store = _store()
        for round_ in range(60):
            store.put(b"cycle", b"r%d" % round_)
            store.delete(b"cycle")
        store.flush()
        assert store.get(b"cycle") is None
        # and a final resurrection works
        store.put(b"cycle", b"alive")
        assert store.get(b"cycle") == b"alive"

    def test_delete_only_database(self):
        store = _store()
        for i in range(2000):
            store.delete(b"never%05d" % i)
        store.flush()
        store.db.check_invariants()
        assert list(store.scan()) == []


class TestDegenerateUsage:
    def test_empty_db_operations(self):
        store = _store()
        assert store.get(b"x") is None
        assert list(store.scan()) == []
        store.flush()                       # no-op
        assert store.compact_range() == 0
        assert store.wa() == 0.0

    def test_empty_batch_is_noop(self):
        store = _store()
        seq = store.db.last_sequence
        store.write_batch(WriteBatch())
        assert store.db.last_sequence == seq

    def test_scan_limit_zero_and_reversed_range(self):
        store = _store()
        store.put(b"a", b"1")
        assert list(store.scan(limit=0)) == []
        assert list(store.scan(b"z", b"a")) == []

    def test_reopen_empty_store(self):
        store = _store()
        store.reopen()
        assert store.get(b"x") is None
        store.put(b"x", b"y")
        assert store.get(b"x") == b"y"

    @pytest.mark.parametrize("kind", ["leveldb", "smrdb", "zonekv"])
    def test_other_stores_edge_basics(self, kind):
        store = _store(kind)
        store.put(b"k", b"\x00" * (5 * KiB))
        store.flush()
        assert store.get(b"k") == b"\x00" * (5 * KiB)
        store.delete(b"k")
        assert store.get(b"k") is None