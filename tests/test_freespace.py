"""Tests for the free-space list (sorted size-class array of lists)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.freespace import FreeSpaceList
from repro.errors import InvariantViolation
from repro.smr.extent import Extent

KiB = 1024


class TestFreeSpaceList:
    def _fsl(self, unit=4 * KiB):
        return FreeSpaceList(unit)

    def test_empty(self):
        f = self._fsl()
        assert len(f) == 0
        assert f.total_bytes == 0
        assert f.allocate(100) is None

    def test_insert_allocate_exact(self):
        f = self._fsl()
        f.insert(Extent(0, 8 * KiB))
        got = f.allocate(8 * KiB)
        assert got == Extent(0, 8 * KiB)
        assert len(f) == 0

    def test_allocate_prefers_smallest_adequate_class(self):
        f = self._fsl()
        f.insert(Extent(100 * KiB, 140 * KiB))   # 40 KiB, class 10
        f.insert(Extent(0, 8 * KiB))             # 8 KiB, class 2
        got = f.allocate(6 * KiB)
        assert got == Extent(0, 8 * KiB)

    def test_allocate_skips_too_small_in_class(self):
        f = self._fsl(unit=4 * KiB)
        # two regions in the same class (sizes 8..12 KiB => class 2)
        f.insert(Extent(0, 9 * KiB))             # 9 KiB
        f.insert(Extent(50 * KiB, 61 * KiB))     # 11 KiB
        got = f.allocate(10 * KiB)
        assert got == Extent(50 * KiB, 61 * KiB)

    def test_allocate_first_in_insertion_order(self):
        f = self._fsl()
        f.insert(Extent(40 * KiB, 48 * KiB))
        f.insert(Extent(0, 8 * KiB))
        got = f.allocate(8 * KiB)
        assert got.start == 40 * KiB  # first inserted in that class

    def test_remove_exact(self):
        f = self._fsl()
        ext = Extent(0, 8 * KiB)
        f.insert(ext)
        f.remove(ext)
        assert len(f) == 0 and f.total_bytes == 0

    def test_remove_unknown_raises(self):
        f = self._fsl()
        with pytest.raises(InvariantViolation):
            f.remove(Extent(0, 8 * KiB))

    def test_duplicate_start_rejected(self):
        f = self._fsl()
        f.insert(Extent(0, 8 * KiB))
        with pytest.raises(InvariantViolation):
            f.insert(Extent(0, 4 * KiB))

    def test_region_at(self):
        f = self._fsl()
        f.insert(Extent(16 * KiB, 32 * KiB))
        assert f.region_at(16 * KiB) == Extent(16 * KiB, 32 * KiB)
        assert f.region_at(0) is None

    def test_regions_sorted(self):
        f = self._fsl()
        f.insert(Extent(64 * KiB, 72 * KiB))
        f.insert(Extent(0, 8 * KiB))
        f.insert(Extent(32 * KiB, 48 * KiB))
        starts = [r.start for r in f.regions()]
        assert starts == sorted(starts)

    def test_zero_length_ignored(self):
        f = self._fsl()
        f.insert(Extent(5, 5))
        assert len(f) == 0

    def test_bad_unit(self):
        with pytest.raises(ValueError):
            FreeSpaceList(0)

    def test_bad_allocation_size(self):
        with pytest.raises(ValueError):
            self._fsl().allocate(0)

    @given(st.lists(st.tuples(st.integers(0, 500), st.integers(1, 40)),
                    max_size=40),
           st.lists(st.integers(1, 60 * 1024), max_size=20))
    def test_property_alloc_never_overlaps(self, inserts, requests):
        """Allocations always come from previously inserted, disjoint
        regions; invariants hold throughout."""
        f = FreeSpaceList(4 * KiB)
        occupied: set[int] = set()
        for slot, length in inserts:
            start, end = slot * KiB, (slot + length) * KiB
            if any(b in occupied for b in range(slot, slot + length)):
                continue
            f.insert(Extent(start, end))
            occupied.update(range(slot, slot + length))
        f.check_invariants()
        total_before = f.total_bytes
        allocated = 0
        for req in requests:
            got = f.allocate(req)
            if got is not None:
                assert got.length >= req
                allocated += got.length
            f.check_invariants()
        assert f.total_bytes == total_before - allocated
