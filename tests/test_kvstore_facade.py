"""Tests for the KVStoreBase facade surface."""

from repro.harness.runner import make_store
from repro.lsm.wal import WriteBatch
from repro.workloads.generators import KeyValueGenerator

from tests.conftest import TEST_PROFILE


class TestFacade:
    def _store(self):
        return make_store("sealdb", TEST_PROFILE)

    def test_write_batch_atomic_view(self):
        store = self._store()
        store.write_batch(WriteBatch().put(b"a", b"1").put(b"b", b"2"))
        assert store.get(b"a") == b"1"
        assert store.get(b"b") == b"2"

    def test_metrics_delegate_to_tracker(self):
        store = self._store()
        kv = KeyValueGenerator(16, 32)
        for i in range(3000):
            store.put(kv.scrambled_key(i % 500), kv.value(i))
        store.flush()
        assert store.wa() == store.tracker.wa()
        assert store.mwa() == store.wa() * store.awa()

    def test_tracker_survives_reopen(self):
        store = self._store()
        store.put(b"k", b"v")
        user_before = store.tracker.user_bytes
        store.reopen()
        assert store.tracker.user_bytes == user_before
        store.put(b"k2", b"v2")
        assert store.tracker.user_bytes > user_before

    def test_level_summary_shape(self):
        store = self._store()
        kv = KeyValueGenerator(16, 32)
        for i in range(3000):
            store.put(kv.key(i), kv.value(i))
        store.flush()
        summary = store.level_summary()
        assert len(summary) == store.options.max_levels
        assert all(len(row) == 3 for row in summary)

    def test_real_compactions_excludes_moves(self):
        store = self._store()
        kv = KeyValueGenerator(16, 32)
        for i in range(6000):           # sequential: moves dominate
            store.put(kv.key(i), kv.value(i))
        store.flush()
        real = store.real_compactions()
        assert all(not r.trivial_move for r in real)
        assert len(real) <= len(store.compaction_records)

    def test_compact_range_via_facade(self):
        store = self._store()
        kv = KeyValueGenerator(16, 32)
        for i in range(2000):
            store.put(kv.key(i), kv.value(i))
        executed = store.compact_range()
        assert executed >= 0
        assert store.get(kv.key(100)) == kv.value(100)

    def test_describe_mentions_every_layer(self):
        text = self._store().describe()
        assert "SEALDB" in text
        assert "DynamicBandStorage" in text
        assert "levels=7" in text
        assert "sets=True" in text
