"""Tests for the additional db_bench workloads."""

from repro.harness.runner import make_store
from repro.workloads.generators import KeyValueGenerator
from repro.workloads.microbench import EXTRA_WORKLOADS, MicroBenchmark

from tests.conftest import TEST_PROFILE

N = 2500


def _loaded(kind="sealdb", sequential=False):
    store = make_store(kind, TEST_PROFILE)
    kv = KeyValueGenerator(TEST_PROFILE.key_size, TEST_PROFILE.value_size)
    bench = MicroBenchmark(kv, N, seed=6)
    if sequential:
        bench.fill_seq(store)
    else:
        bench.fill_random(store)
    return store, bench


class TestExtraWorkloads:
    def test_names(self):
        assert EXTRA_WORKLOADS == ("overwrite", "readmissing", "seekrandom",
                                   "deleteseq")

    def test_overwrite_updates_values(self):
        store, bench = _loaded()
        r = bench.overwrite(store, 800)
        assert r.ops == 800 and r.sim_seconds > 0
        # at least one overwritten key now carries the new value
        found_new = any(
            store.get(bench.kv.scrambled_key(i)) == bench.kv.value(i + 1)
            for i in range(200)
        )
        assert found_new

    def test_read_missing_fast_and_empty(self):
        store, bench = _loaded()
        hit = bench.read_random(store, 200)
        miss = bench.read_missing(store, 200)
        assert miss.sim_seconds > 0
        # bloom filters make missing lookups cheaper than hits
        assert miss.sim_seconds < hit.sim_seconds

    def test_seek_random(self):
        store, bench = _loaded(sequential=True)
        r = bench.seek_random(store, 100, scan_length=5)
        assert r.ops == 100 and r.sim_seconds > 0

    def test_delete_seq_removes_everything(self):
        store, bench = _loaded(sequential=True)
        r = bench.delete_seq(store)
        assert r.ops == N
        assert store.get(bench.kv.key(0)) is None
        assert store.get(bench.kv.key(N - 1)) is None
        assert list(store.scan(limit=5)) == []

    def test_fill_batch_equals_fill_random_content(self):
        kv_store, bench = _loaded()
        batch_store = make_store("sealdb", TEST_PROFILE)
        r = bench.fill_batch(batch_store, batch_size=64)
        assert r.ops == N
        # the two loads apply the same (index, value) stream, so any key
        # present in one is present with the same value in the other
        for i in range(0, N, 137):
            key = bench.kv.scrambled_key(i)
            assert kv_store.get(key) == batch_store.get(key)

    def test_fill_batch_faster_than_singles(self):
        bench = self._batchless_bench()
        single = make_store("sealdb", TEST_PROFILE)
        r1 = bench.fill_random(single)
        batched = make_store("sealdb", TEST_PROFILE)
        r2 = bench.fill_batch(batched, batch_size=100)
        assert r2.sim_seconds < r1.sim_seconds

    def _batchless_bench(self):
        kv = KeyValueGenerator(TEST_PROFILE.key_size, TEST_PROFILE.value_size)
        return MicroBenchmark(kv, N, seed=6)

    def test_delete_then_compact_range_reclaims(self):
        store, bench = _loaded(sequential=True)
        total_before = store.db.versions.current.total_bytes()
        bench.delete_seq(store)
        store.compact_range()
        assert store.db.versions.current.total_bytes() < total_before
