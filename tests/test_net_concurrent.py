"""Satellite 4: concurrent multi-client access over the wire.

N pipelined clients run mixed GET/SET/SCAN traffic against a live
2-shard server from real threads.  The assertions are the serving
layer's whole contract under concurrency:

* no interleaving corruption -- every client reads back exactly the
  values it wrote (per-client key namespaces make cross-talk visible);
* replies stay in request order per connection;
* admission control sheds with typed ``-OVERLOADED`` replies and the
  server's counters agree with what the clients saw;
* a drain during live traffic answers every dispatched request before
  the connections close.
"""

import threading
import time

import pytest

import repro
from repro.net.client import NetClient, NetError, Overloaded
from repro.net.server import ServerConfig, ServerThread

from tests.conftest import TEST_PROFILE

pytestmark = pytest.mark.net

N_CLIENTS = 6
OPS_PER_CLIENT = 120


def _retry(fn, overloads, worker, attempts=200):
    """The Overloaded contract: back off and retry."""
    for _attempt in range(attempts):
        try:
            return fn()
        except Overloaded:
            overloads.append(worker)
            time.sleep(0.002)
    raise AssertionError("request never admitted")


def _client_worker(address, worker, errors, overloads):
    """One client thread: pipelined SET burst, GET-back verification,
    a SCAN over its own namespace, interleaved with single-shot ops."""
    me = b"w%02d" % worker
    try:
        client = NetClient(*address)
        try:
            # pipelined writes into this worker's namespace
            results = client.execute_pipeline(
                [[b"SET", b"%s:%03d" % (me, i), b"%s=%d" % (me, i)]
                 for i in range(OPS_PER_CLIENT)])
            for r in results:
                if isinstance(r, Overloaded):
                    overloads.append(worker)
                elif r != "OK":
                    errors.append(f"worker {worker}: SET reply {r!r}")
            # retry anything shed until it lands (bounded)
            for _attempt in range(200):
                missing = [i for i, r in enumerate(results)
                           if isinstance(r, Overloaded)]
                if not missing:
                    break
                time.sleep(0.002)
                retries = client.execute_pipeline(
                    [[b"SET", b"%s:%03d" % (me, i), b"%s=%d" % (me, i)]
                     for i in missing])
                for i, r in zip(missing, retries):
                    results[i] = r
            else:
                errors.append(f"worker {worker}: SETs never admitted")
            # read back: values must be ours, in request order
            replies = client.execute_pipeline(
                [[b"GET", b"%s:%03d" % (me, i)]
                 for i in range(OPS_PER_CLIENT)])
            for i, r in enumerate(replies):
                if isinstance(r, Overloaded):  # GETs retry too
                    overloads.append(worker)
                    r = _retry(lambda i=i: client.get(b"%s:%03d" % (me, i)),
                               overloads, worker)
                if r != b"%s=%d" % (me, i):
                    errors.append(
                        f"worker {worker}: key {i} read {r!r}")
            # a scan over this namespace sees only this worker's data
            pairs, partial = _retry(
                lambda: client.scan(me + b":", me + b";"),
                overloads, worker)
            if partial:
                errors.append(f"worker {worker}: partial scan")
            if len(pairs) != OPS_PER_CLIENT:
                errors.append(
                    f"worker {worker}: scan saw {len(pairs)} keys")
            for key, value in pairs:
                if not key.startswith(me + b":") or not value.startswith(me):
                    errors.append(
                        f"worker {worker}: foreign pair {key!r}={value!r}")
        finally:
            client.close()
    except Exception as exc:  # noqa: BLE001 - surfaced via the errors list
        errors.append(f"worker {worker}: {type(exc).__name__}: {exc}")


class TestConcurrentClients:
    def test_no_interleaving_corruption(self):
        store = repro.open("sealdb", profile=TEST_PROFILE, shards=2)
        handle = ServerThread(store).start()
        errors: list[str] = []
        overloads: list[int] = []
        try:
            threads = [
                threading.Thread(target=_client_worker,
                                 args=(handle.address, w, errors, overloads))
                for w in range(N_CLIENTS)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
                assert not t.is_alive(), "client worker hung"
            assert errors == []
            # the store holds every key each client verified over the wire
            for w in range(N_CLIENTS):
                me = b"w%02d" % w
                assert store.get(b"%s:000" % me) == b"%s=0" % me
        finally:
            handle.stop()
            store.close()

    def test_overload_shed_is_counted_and_recoverable(self):
        """Under a deliberately tiny admission window, concurrent
        pipelined bursts get typed ``-OVERLOADED`` replies; retries
        converge and the server-side counter matches what clients saw."""
        store = repro.open("sealdb", profile=TEST_PROFILE, shards=2)
        handle = ServerThread(
            store,
            ServerConfig(max_inflight=2, max_pipeline=256)).start()
        errors: list[str] = []
        overloads: list[int] = []
        try:
            threads = [
                threading.Thread(target=_client_worker,
                                 args=(handle.address, w, errors, overloads))
                for w in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
                assert not t.is_alive(), "client worker hung"
            # retries converged: the data is complete and uncorrupted
            assert errors == []
            probe = NetClient(*handle.address)
            info = probe.info()
            probe.close()
            assert int(info["net.overloads"]) >= len(overloads) > 0
        finally:
            handle.stop()
            store.close()

    def test_drain_during_live_traffic(self):
        """stop() while clients are mid-burst: every request the server
        dispatched gets a reply, then the connection closes cleanly --
        clients see complete batches or a clean close, never a torn
        reply or a hang."""
        store = repro.open("sealdb", profile=TEST_PROFILE, shards=2)
        handle = ServerThread(store).start()
        outcomes: list[str] = []
        lock = threading.Lock()
        stop_now = threading.Event()

        def pound(worker):
            me = b"z%02d" % worker
            try:
                client = NetClient(*handle.address, timeout=30)
                batch = 0
                while not stop_now.is_set():
                    results = client.execute_pipeline(
                        [[b"SET", b"%s:%03d" % (me, batch * 32 + i), b"v"]
                         for i in range(32)])
                    if any(not isinstance(r, Overloaded) and r != "OK"
                           for r in results):
                        with lock:
                            outcomes.append("bad-reply")
                        return
                    batch += 1
                with lock:
                    outcomes.append("complete")
            except NetError:
                # the drain closed the connection between batches, or
                # mid-read after the flushed replies: a clean outcome
                with lock:
                    outcomes.append("closed")

        threads = [threading.Thread(target=pound, args=(w,))
                   for w in range(4)]
        for t in threads:
            t.start()
        time.sleep(0.5)  # let traffic build
        handle.stop()    # graceful drain under load
        stop_now.set()
        for t in threads:
            t.join(timeout=60)
            assert not t.is_alive(), "client hung through the drain"
        store.close()
        assert len(outcomes) == 4
        assert "bad-reply" not in outcomes
