"""Tests for the memtable."""

from hypothesis import given, strategies as st

from repro.lsm.ikey import TYPE_DELETION, TYPE_VALUE, lookup_key
from repro.lsm.memtable import Memtable


class TestMemtable:
    def test_add_get(self):
        m = Memtable()
        m.add(1, TYPE_VALUE, b"k", b"v")
        assert m.get(b"k", 10) == (True, b"v")
        assert m.get(b"missing", 10) == (False, None)

    def test_newest_version_wins(self):
        m = Memtable()
        m.add(1, TYPE_VALUE, b"k", b"v1")
        m.add(2, TYPE_VALUE, b"k", b"v2")
        assert m.get(b"k", 10) == (True, b"v2")

    def test_snapshot_isolation(self):
        m = Memtable()
        m.add(1, TYPE_VALUE, b"k", b"v1")
        m.add(5, TYPE_VALUE, b"k", b"v5")
        assert m.get(b"k", 4) == (True, b"v1")
        assert m.get(b"k", 5) == (True, b"v5")
        assert m.get(b"k", 0) == (False, None)

    def test_tombstone(self):
        m = Memtable()
        m.add(1, TYPE_VALUE, b"k", b"v")
        m.add(2, TYPE_DELETION, b"k", b"")
        assert m.get(b"k", 10) == (True, None)
        assert m.get(b"k", 1) == (True, b"v")

    def test_size_accounting(self):
        m = Memtable()
        assert m.approximate_size == 0
        m.add(1, TYPE_VALUE, b"key", b"value")
        assert m.approximate_size >= len(b"key") + len(b"value")

    def test_entries_in_internal_order(self):
        m = Memtable()
        m.add(3, TYPE_VALUE, b"b", b"x")
        m.add(1, TYPE_VALUE, b"a", b"y")
        m.add(2, TYPE_VALUE, b"b", b"z")
        entries = list(m.entries())
        assert [(e.user_key, e.sequence) for e, _v in entries] == [
            (b"a", 1), (b"b", 3), (b"b", 2),
        ]

    def test_entries_from(self):
        m = Memtable()
        for i in range(10):
            m.add(i + 1, TYPE_VALUE, b"k%02d" % i, b"v")
        seek = lookup_key(b"k05", 100)
        got = [e.user_key for e, _v in m.entries_from(seek)]
        assert got == [b"k%02d" % i for i in range(5, 10)]

    @given(st.lists(st.tuples(st.binary(min_size=1, max_size=6),
                              st.binary(max_size=10)), max_size=80))
    def test_matches_dict_semantics(self, ops):
        m = Memtable()
        reference: dict[bytes, bytes] = {}
        for seq, (key, value) in enumerate(ops, start=1):
            m.add(seq, TYPE_VALUE, key, value)
            reference[key] = value
        for key, expected in reference.items():
            assert m.get(key, len(ops) + 1) == (True, expected)
