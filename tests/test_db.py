"""Integration tests for the DB engine across storage/drive combos."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.storage import DynamicBandStorage
from repro.fs.ext4sim import Ext4Storage
from repro.fs.storage import BandAlignedStorage
from repro.lsm.db import DB
from repro.lsm.options import Options
from repro.smr.drive import ConventionalDrive
from repro.smr.fixed_band import FixedBandSMRDrive
from repro.smr.raw_hmsmr import RawHMSMRDrive
from repro.lsm.wal import WriteBatch

KiB = 1024
MiB = 1024 * 1024


def tiny_options(**overrides):
    base = dict(
        write_buffer_size=4 * KiB,
        sstable_size=4 * KiB,
        block_size=512,
        base_level_bytes=8 * KiB,
        block_cache_bytes=64 * KiB,
    )
    base.update(overrides)
    return Options(**base)


def make_db(kind="ext4", **opt_overrides):
    options = tiny_options(**opt_overrides)
    if kind == "ext4":
        drive = ConventionalDrive(16 * MiB)
        storage = Ext4Storage(drive, wal_size=64 * KiB, meta_size=64 * KiB,
                              block_size=512)
    elif kind == "dynamic":
        drive = RawHMSMRDrive(16 * MiB, guard_size=4 * KiB)
        storage = DynamicBandStorage(drive, wal_size=64 * KiB,
                                     meta_size=64 * KiB, class_unit=4 * KiB)
    elif kind == "band":
        drive = FixedBandSMRDrive(16 * MiB, 40 * KiB)
        storage = BandAlignedStorage(drive, band_size=40 * KiB,
                                     wal_size=80 * KiB, meta_size=80 * KiB)
        options = tiny_options(max_levels=2, sstable_size=36 * KiB,
                               write_buffer_size=32 * KiB, **opt_overrides)
    else:
        raise ValueError(kind)
    return DB(storage, options)


def key(i: int) -> bytes:
    return b"key%08d" % i


class TestBasicOperations:
    def test_put_get(self):
        db = make_db()
        db.put(b"a", b"1")
        assert db.get(b"a") == b"1"
        assert db.get(b"b") is None

    def test_overwrite(self):
        db = make_db()
        db.put(b"a", b"1")
        db.put(b"a", b"2")
        assert db.get(b"a") == b"2"

    def test_delete(self):
        db = make_db()
        db.put(b"a", b"1")
        db.delete(b"a")
        assert db.get(b"a") is None

    def test_delete_missing_is_fine(self):
        db = make_db()
        db.delete(b"never-existed")
        assert db.get(b"never-existed") is None

    def test_batch_atomicity_of_sequence(self):
        db = make_db()
        batch = WriteBatch().put(b"x", b"1").put(b"y", b"2").delete(b"x")
        db.write(batch)
        assert db.get(b"x") is None
        assert db.get(b"y") == b"2"

    def test_empty_value(self):
        db = make_db()
        db.put(b"k", b"")
        assert db.get(b"k") == b""

    def test_snapshot_get(self):
        db = make_db()
        db.put(b"k", b"v1")
        snap = db.last_sequence
        db.put(b"k", b"v2")
        assert db.get(b"k", snapshot=snap) == b"v1"
        assert db.get(b"k") == b"v2"


@pytest.mark.parametrize("kind", ["ext4", "dynamic", "band"])
class TestAcrossStorages:
    N = 3000

    def _load(self, db, n=None, step=1):
        n = n or self.N
        for i in range(0, n, step):
            db.put(key(i), b"value-%d" % i)
        return n

    def test_sequential_load_and_readback(self, kind):
        db = make_db(kind)
        self._load(db)
        db.check_invariants()
        for i in (0, 1, self.N // 2, self.N - 1):
            assert db.get(key(i)) == b"value-%d" % i
        assert db.get(key(self.N + 5)) is None

    def test_random_load_and_readback(self, kind):
        import numpy as np
        db = make_db(kind)
        rng = np.random.default_rng(11)
        order = rng.permutation(self.N)
        for i in order:
            db.put(key(int(i)), b"value-%d" % i)
        db.check_invariants()
        for i in range(0, self.N, 97):
            assert db.get(key(i)) == b"value-%d" % i

    def test_overwrites_survive_compaction(self, kind):
        db = make_db(kind)
        for round_ in range(4):
            for i in range(0, 800):
                db.put(key(i), b"round-%d-%d" % (round_, i))
        for i in range(0, 800, 41):
            assert db.get(key(i)) == b"round-3-%d" % i

    def test_deletes_survive_compaction(self, kind):
        db = make_db(kind)
        self._load(db, 1200)
        for i in range(0, 1200, 3):
            db.delete(key(i))
        db.flush()
        for i in range(0, 1200, 3):
            assert db.get(key(i)) is None, i
        for i in range(1, 1200, 3):
            assert db.get(key(i)) == b"value-%d" % i

    def test_scan_full(self, kind):
        db = make_db(kind)
        self._load(db, 1000)
        got = list(db.scan())
        assert len(got) == 1000
        keys = [k for k, _v in got]
        assert keys == sorted(keys)
        assert got[0] == (key(0), b"value-0")

    def test_scan_range_and_limit(self, kind):
        db = make_db(kind)
        self._load(db, 1000)
        got = list(db.scan(start=key(100), end=key(110)))
        assert [k for k, _v in got] == [key(i) for i in range(100, 110)]
        got = list(db.scan(start=key(50), limit=5))
        assert len(got) == 5

    def test_scan_skips_deleted(self, kind):
        db = make_db(kind)
        self._load(db, 500)
        db.delete(key(250))
        db.flush()
        keys = [k for k, _v in db.scan(start=key(249), limit=3)]
        assert key(250) not in keys

    def test_level_invariants_after_load(self, kind):
        db = make_db(kind)
        self._load(db)
        db.flush()
        db.check_invariants()
        summary = db.level_summary()
        assert sum(count for _l, count, _b in summary) > 0


class TestCompactionBehaviour:
    def test_compactions_happen(self):
        db = make_db()
        for i in range(4000):
            db.put(key(i), b"v" * 40)
        assert len(db.compaction_records) > 0
        assert any(not r.trivial_move for r in db.compaction_records) or True

    def test_data_flows_to_deeper_levels(self):
        import numpy as np
        db = make_db()
        rng = np.random.default_rng(5)
        for i in rng.permutation(6000):
            db.put(key(int(i)), b"v" * 40)
        db.flush()
        deep_files = sum(len(db.versions.current.files[lvl])
                         for lvl in range(2, db.options.max_levels))
        assert deep_files > 0

    def test_wa_accounting(self):
        import numpy as np
        db = make_db()
        rng = np.random.default_rng(5)
        for i in rng.permutation(4000):
            db.put(key(int(i)), b"v" * 40)
        db.flush()
        assert db.tracker.user_bytes == 4000 * (len(key(0)) + 40)
        assert db.tracker.wa() > 1.0

    def test_trivial_moves_on_sequential_load(self):
        db = make_db()
        for i in range(4000):
            db.put(key(i), b"v" * 40)
        moves = [r for r in db.compaction_records if r.trivial_move]
        assert moves, "sequential load should produce trivial moves"

    def test_set_grouping_on_dynamic_storage(self):
        import numpy as np
        db = make_db("dynamic", use_sets=True)
        rng = np.random.default_rng(5)
        for i in rng.permutation(5000):
            db.put(key(int(i)), b"v" * 40)
        real = [r for r in db.compaction_records
                if not r.trivial_move and r.num_output_files > 1]
        assert real
        for record in real:
            extents = sorted((e for exts in record.output_extents for e in exts),
                             key=lambda e: e.start)
            assert all(a.end == b.start for a, b in zip(extents, extents[1:])), \
                "set outputs must be contiguous"


class TestRecovery:
    def test_recover_from_wal_only(self):
        db = make_db()
        db.put(b"a", b"1")
        db.put(b"b", b"2")
        # crash: no flush; reopen from the same storage
        db2 = DB.recover(db.storage, db.options)
        assert db2.get(b"a") == b"1"
        assert db2.get(b"b") == b"2"
        assert db2.last_sequence == db.last_sequence

    def test_recover_manifest_and_wal(self):
        db = make_db()
        for i in range(2000):
            db.put(key(i), b"value-%d" % i)
        # some tables exist now, plus a partial memtable in the WAL
        db2 = DB.recover(db.storage, db.options)
        for i in range(0, 2000, 113):
            assert db2.get(key(i)) == b"value-%d" % i

    def test_recover_preserves_deletes(self):
        db = make_db()
        for i in range(800):
            db.put(key(i), b"v")
        db.delete(key(13))
        db2 = DB.recover(db.storage, db.options)
        assert db2.get(key(13)) is None

    def test_writes_continue_after_recovery(self):
        db = make_db()
        for i in range(500):
            db.put(key(i), b"v1")
        db2 = DB.recover(db.storage, db.options)
        for i in range(500, 900):
            db2.put(key(i), b"v2")
        assert db2.get(key(0)) == b"v1"
        assert db2.get(key(800)) == b"v2"
        db2.check_invariants()

    def test_recover_after_manifest_rollover(self):
        # tiny meta region forces snapshot rollovers
        drive = ConventionalDrive(16 * MiB)
        storage = Ext4Storage(drive, wal_size=64 * KiB, meta_size=4 * KiB,
                              block_size=512)
        db = DB(storage, tiny_options())
        for i in range(3000):
            db.put(key(i), b"value-%d" % i)
        db2 = DB.recover(storage, db.options)
        for i in range(0, 3000, 211):
            assert db2.get(key(i)) == b"value-%d" % i


class TestPropertyBased:
    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.tuples(st.booleans(), st.integers(0, 60),
                              st.binary(min_size=1, max_size=30)),
                    max_size=150))
    def test_db_matches_dict(self, ops):
        """The DB behaves exactly like a dict under put/delete/get,
        across flush and compaction boundaries."""
        db = make_db("dynamic", use_sets=True, write_buffer_size=1 * KiB,
                     sstable_size=1 * KiB, base_level_bytes=2 * KiB)
        reference: dict[bytes, bytes] = {}
        for is_put, key_i, value in ops:
            k = b"k%03d" % key_i
            if is_put:
                db.put(k, value)
                reference[k] = value
            else:
                db.delete(k)
                reference.pop(k, None)
        for k in {b"k%03d" % i for i in range(61)}:
            assert db.get(k) == reference.get(k)
        assert list(db.scan()) == sorted(reference.items())
