"""RESP-subset codec: encoding, incremental parsing, protocol errors."""

import pytest

from repro.net.protocol import (
    NULL,
    MAX_BULK,
    ProtocolError,
    RespError,
    RespParser,
    encode_array,
    encode_bulk,
    encode_command,
    encode_error,
    encode_int,
    encode_simple,
)

pytestmark = pytest.mark.net


class TestEncoding:
    def test_simple(self):
        assert encode_simple("OK") == b"+OK\r\n"

    def test_error_flattens_newlines(self):
        wire = encode_error("ERR", "multi\r\nline")
        assert b"\r\n" not in wire[:-2]
        assert wire.startswith(b"-ERR ")

    def test_int(self):
        assert encode_int(-7) == b":-7\r\n"

    def test_bulk_and_null(self):
        assert encode_bulk(b"hi") == b"$2\r\nhi\r\n"
        assert encode_bulk(None) == b"$-1\r\n"

    def test_array_nested(self):
        wire = encode_array([1, [b"a"], None])
        assert wire == b"*3\r\n:1\r\n*1\r\n$1\r\na\r\n$-1\r\n"

    def test_command(self):
        assert (encode_command([b"GET", b"k"])
                == b"*2\r\n$3\r\nGET\r\n$1\r\nk\r\n")


def _parse_all(wire: bytes):
    parser = RespParser()
    parser.feed(wire)
    out = []
    while (value := parser.next_value()) is not None:
        out.append(value)
    return out


class TestParsing:
    def test_round_trip_values(self):
        wire = (encode_simple("PONG") + encode_int(42) + encode_bulk(b"v")
                + encode_array([b"a", 1]) + encode_bulk(None))
        values = _parse_all(wire)
        assert values == ["PONG", 42, b"v", [b"a", 1], NULL]

    def test_error_value(self):
        (value,) = _parse_all(encode_error("OVERLOADED", "shed"))
        assert isinstance(value, RespError)
        assert value.code == "OVERLOADED"
        assert value.message == "shed"

    def test_binary_safe_bulk(self):
        payload = bytes(range(256)) + b"\r\n$9\r\n"
        (value,) = _parse_all(encode_bulk(payload))
        assert value == payload

    def test_incremental_byte_at_a_time(self):
        wire = encode_command([b"SET", b"key", b"value"])
        parser = RespParser()
        seen = []
        for i, byte in enumerate(wire):
            parser.feed(bytes([byte]))
            request = parser.next_request()
            if request is not None:
                seen.append((i, request))
        assert seen == [(len(wire) - 1, [b"SET", b"key", b"value"])]

    def test_pipelined_requests_in_order(self):
        wire = b"".join(encode_command([b"GET", b"k%d" % i])
                        for i in range(5))
        parser = RespParser()
        parser.feed(wire)
        keys = []
        while (request := parser.next_request()) is not None:
            keys.append(request[1])
        assert keys == [b"k0", b"k1", b"k2", b"k3", b"k4"]
        assert parser.buffered == 0

    def test_inline_command(self):
        parser = RespParser()
        parser.feed(b"PING\r\n")
        assert parser.next_request() == [b"PING"]

    def test_inline_splits_args(self):
        parser = RespParser()
        parser.feed(b"GET  some-key\r\n")
        assert parser.next_request() == [b"GET", b"some-key"]

    def test_empty_inline_is_noop(self):
        parser = RespParser()
        parser.feed(b"\r\n")
        assert parser.next_request() == []

    def test_incomplete_returns_none(self):
        parser = RespParser()
        parser.feed(b"*2\r\n$3\r\nGET\r\n$5\r\nab")
        assert parser.next_request() is None
        parser.feed(b"cde\r\n")
        assert parser.next_request() == [b"GET", b"abcde"]


class TestProtocolErrors:
    def test_bad_bulk_length(self):
        parser = RespParser()
        parser.feed(b"$abc\r\n")
        with pytest.raises(ProtocolError):
            parser.next_value()

    def test_oversized_bulk_rejected(self):
        parser = RespParser()
        parser.feed(b"$%d\r\n" % (MAX_BULK + 1))
        with pytest.raises(ProtocolError):
            parser.next_value()

    def test_negative_array_rejected(self):
        parser = RespParser()
        parser.feed(b"*-2\r\n")
        with pytest.raises(ProtocolError):
            parser.next_value()

    def test_request_must_be_bulk_strings(self):
        parser = RespParser()
        parser.feed(b"*1\r\n:5\r\n")
        with pytest.raises(ProtocolError):
            parser.next_request()

    def test_bulk_missing_terminator(self):
        parser = RespParser()
        parser.feed(b"$2\r\nhiXX")
        with pytest.raises(ProtocolError):
            parser.next_value()

    def test_unterminated_line_bounded(self):
        parser = RespParser()
        parser.feed(b"+" + b"x" * (70 * 1024))
        with pytest.raises(ProtocolError):
            parser.next_value()
